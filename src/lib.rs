#![warn(missing_docs)]

//! # seqdrift
//!
//! A lightweight, fully-sequential concept-drift detection library for
//! on-device learning, reproducing *"A Lightweight Concept Drift Detection
//! Method for On-Device Learning on Resource-Limited Edge Devices"*
//! (Yamada & Matsutani, 2023).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`core`] — the proposed detector (Algorithm 1), model reconstruction
//!   (Algorithms 2–4), threshold calibration (Eq. 1), the coupled online
//!   pipeline, and the multi-window ensemble extension;
//! * [`oselm`] — OS-ELM autoencoders, the per-label multi-instance
//!   discriminative model, and the ONLAD forgetting mechanism;
//! * [`baselines`] — Quant Tree, SPLL, DDM, ADWIN, Page–Hinkley, CUSUM and
//!   the k-means / GMM substrates;
//! * [`datasets`] — synthetic NSL-KDD-like and cooling-fan streams plus
//!   generic drift-type composition;
//! * [`edgesim`] — Raspberry Pi 4 / Pico device models, memory accounting
//!   and timing scaling;
//! * [`eval`] — the experiment harness regenerating every table and figure
//!   of the paper;
//! * [`fleet`] — the multi-tenant serving layer multiplexing many
//!   independent pipeline sessions across a supervised worker pool with
//!   panic isolation, checkpoint-based recovery and fault injection;
//! * [`federate`] — cooperative cross-session model merging: closed-form
//!   federated OS-ELM aggregation with health gating, transactional
//!   validation and durable merged generations;
//! * [`linalg`] — the shared dense/stack linear-algebra substrate;
//! * [`store`] — the crash-safe durable state store: CRC-framed
//!   generational checkpoints written atomically (temp + fsync + rename),
//!   recovery that survives torn writes, bit flips and power loss;
//! * [`server`] — the network ingest layer: a std-only TCP server
//!   multiplexing device connections into one fleet over the versioned,
//!   CRC-sealed `SQNP` wire protocol, plus the matching client;
//! * [`scenario`] — declarative `.sqsc` stream scenarios: drift shape ×
//!   schedule × per-session stagger × fault seeds, synthesized
//!   deterministically for eval/fleet/load, plus live-ingest recording
//!   into replayable bundles.
//!
//! ## Quickstart
//!
//! ```
//! use seqdrift::prelude::*;
//!
//! // 1. Build a tiny 2-class training set (two Gaussian blobs in 4-D).
//! let mut rng = Rng::seed_from(42);
//! let mut class0 = Vec::new();
//! let mut class1 = Vec::new();
//! for _ in 0..120 {
//!     let mut a = vec![0.0; 4];
//!     let mut b = vec![0.0; 4];
//!     rng.fill_normal(&mut a, 0.2, 0.05);
//!     rng.fill_normal(&mut b, 0.8, 0.05);
//!     class0.push(a);
//!     class1.push(b);
//! }
//!
//! // 2. Train one OS-ELM autoencoder instance per class.
//! let cfg = OsElmConfig::new(4, 3).with_seed(7);
//! let mut model = MultiInstanceModel::new(2, cfg).unwrap();
//! model.init_train_class(0, &class0).unwrap();
//! model.init_train_class(1, &class1).unwrap();
//!
//! // 3. Calibrate the drift detector on the training data and stream.
//! let train: Vec<(usize, &[f32])> = class0.iter().map(|x| (0usize, x.as_slice()))
//!     .chain(class1.iter().map(|x| (1usize, x.as_slice()))).collect();
//! let det_cfg = DetectorConfig::new(2, 4).with_window(16);
//! let mut pipeline = DriftPipeline::calibrate(model, det_cfg, &train).unwrap();
//!
//! // 4. Feed test samples; the pipeline predicts labels and watches for drift.
//! let mut x = vec![0.0; 4];
//! rng.fill_normal(&mut x, 0.2, 0.05);
//! let out = pipeline.process(&x).unwrap();
//! assert_eq!(out.predicted_label, Some(0));
//! ```

pub use seqdrift_baselines as baselines;
pub use seqdrift_core as core;
pub use seqdrift_datasets as datasets;
pub use seqdrift_edgesim as edgesim;
pub use seqdrift_eval as eval;
pub use seqdrift_federate as federate;
pub use seqdrift_fleet as fleet;
pub use seqdrift_linalg as linalg;
pub use seqdrift_oselm as oselm;
pub use seqdrift_scenario as scenario;
pub use seqdrift_server as server;
pub use seqdrift_store as store;

/// Convenient single-import surface for examples and quickstarts.
pub mod prelude {
    pub use seqdrift_core::{
        detector::{CentroidDetector, DetectorConfig},
        pipeline::{DriftPipeline, PipelineOutput},
        threshold::calibrate_drift_threshold,
    };
    pub use seqdrift_federate::{
        FederateError, Federator, PoisonInjector, PoisonMode, ReputationBook, RoundSummary,
    };
    pub use seqdrift_fleet::{
        DegradedReason, DurabilityHealth, Fault, FaultInjector, FederationConfig, FeedReply,
        FleetConfig, FleetEngine, FleetError, FleetEvent, MergeRejectReason, QuarantineReason,
        RecoveryReport, RejectReasons, ReputationEntry, SessionId, SessionStatus,
    };
    pub use seqdrift_linalg::{Matrix, Real, Rng};
    pub use seqdrift_oselm::{
        autoencoder::Autoencoder,
        multi_instance::MultiInstanceModel,
        oselm::{OsElm, OsElmConfig},
    };
    pub use seqdrift_scenario::{Recording, Scenario, ScenarioPlayer};
    pub use seqdrift_server::{
        AdmissionConfig, ChaosConfig, ChaosProxy, Client, ReconnectPolicy, ResilientClient, Server,
        ServerConfig,
    };
    pub use seqdrift_store::{FaultPlan, FaultVfs, RealVfs, Store, StoreConfig, StoreError, Vfs};
}
