//! Network-intrusion scenario (the paper's NSL-KDD experiment, §4.1.1).
//!
//! Streams the 38-feature two-class intrusion dataset through the proposed
//! method and the frozen baseline side by side, printing a windowed
//! accuracy trace like Figure 4. The attack concept evolves at the drift
//! point to evade the trained signature; the frozen model collapses, the
//! pipeline detects the shift and rebuilds.
//!
//! ```text
//! cargo run --release --example network_intrusion
//! ```

use seqdrift::datasets::nslkdd::{self, NslKddConfig};
use seqdrift::eval::methods::MethodSpec;
use seqdrift::eval::runner::{run_method, RunOptions};

fn main() {
    // Paper-shaped but shortened so the example finishes in seconds; set
    // `NslKddConfig::default()` for the full 22701-sample stream.
    let dataset = nslkdd::generate(&NslKddConfig {
        n_train: 600,
        n_test: 6000,
        drift_point: 2000,
        ..NslKddConfig::default()
    });
    println!(
        "dataset: {} train, {} test, drift at {}",
        dataset.train.len(),
        dataset.test.len(),
        dataset.drift_start
    );

    let opts = RunOptions {
        hidden: 22,
        seed: 42,
        accuracy_window: 500,
    };
    let proposed = run_method(&MethodSpec::Proposed { window: 100 }, &dataset, &opts);
    let baseline = run_method(&MethodSpec::BaselineNoDetect, &dataset, &opts);

    println!("\nwindowed accuracy (Figure-4 style):");
    println!("{:>8} {:>10} {:>10}", "samples", "proposed", "baseline");
    for (p, b) in proposed
        .accuracy_series
        .iter()
        .zip(baseline.accuracy_series.iter())
    {
        let marker = if p.0 > dataset.drift_start && p.0 - 500 <= dataset.drift_start {
            "  <- drift"
        } else {
            ""
        };
        println!("{:>8} {:>10.3} {:>10.3}{marker}", p.0, p.1, b.1);
    }

    println!(
        "\noverall: proposed {:.1}% vs baseline {:.1}%",
        proposed.accuracy_pct(),
        baseline.accuracy_pct()
    );
    match proposed.delay {
        Some(d) => println!(
            "proposed detected the drift {d} samples after onset (at sample {})",
            dataset.drift_start + d
        ),
        None => println!("proposed never detected the drift"),
    }
    println!(
        "false positives before the drift: {}",
        proposed.false_positives
    );
}
