//! Model persistence: train and calibrate on the host, serialise to the
//! dependency-free binary format, and restore — the train-anywhere /
//! run-on-device workflow of an edge deployment.
//!
//! ```text
//! cargo run --release --example persist_model
//! ```

use seqdrift::prelude::*;

fn main() {
    let dim = 8;
    let mut rng = Rng::seed_from(99);
    let blob = |rng: &mut Rng, mean: Real| -> Vec<Real> {
        let mut x = vec![0.0; dim];
        rng.fill_normal(&mut x, mean, 0.05);
        x
    };

    // Host side: train the per-class instances.
    let class0: Vec<Vec<Real>> = (0..120).map(|_| blob(&mut rng, 0.25)).collect();
    let class1: Vec<Vec<Real>> = (0..120).map(|_| blob(&mut rng, 0.75)).collect();
    let mut model = MultiInstanceModel::new(2, OsElmConfig::new(dim, 5).with_seed(3)).unwrap();
    model.init_train_class(0, &class0).unwrap();
    model.init_train_class(1, &class1).unwrap();

    // Serialise: a versioned little-endian blob an MCU-side C decoder can
    // read (magic "SQDM", u16 version, u16 kind, config, raw f32 runs).
    let blob_bytes = model.to_bytes();
    println!(
        "serialised 2-instance model ({dim}-5-{dim} each): {} bytes",
        blob_bytes.len()
    );

    // Ship `blob_bytes` to the device; restore and keep learning there.
    let mut restored = MultiInstanceModel::from_bytes(&blob_bytes).unwrap();
    let probe = blob(&mut rng, 0.25);
    let original_prediction = model.predict(&probe).unwrap();
    let restored_prediction = restored.predict(&probe).unwrap();
    assert_eq!(original_prediction, restored_prediction);
    println!(
        "restored model predicts identically: label {} (score {:.6})",
        restored_prediction.label, restored_prediction.score
    );

    // Sequential training continues seamlessly on the restored model.
    for _ in 0..50 {
        let x = blob(&mut rng, 0.25);
        restored.seq_train_closest(&x).unwrap();
    }
    println!(
        "after 50 on-device sequential updates: instance 0 has seen {} samples",
        restored.instance(0).unwrap().samples_seen()
    );

    // Corruption is detected, not silently accepted.
    let mut tampered = blob_bytes.clone();
    tampered[0] = b'X';
    assert!(MultiInstanceModel::from_bytes(&tampered).is_err());
    println!("tampered blob rejected (bad magic)");
}
