//! Edge-deployment feasibility: the Table 4 memory comparison plus the
//! Raspberry Pi Pico RAM budget check, and a demonstration of the
//! stack-allocated (`no-heap`) math path the MCU firmware would use.
//!
//! ```text
//! cargo run --release --example mcu_budget
//! ```

use seqdrift::edgesim::{bytes_of_scalars, check_budget, MemoryReport, PI4, PICO};
use seqdrift::eval::experiments::{table4, Scale};
use seqdrift::linalg::fixed::{SMat, SVec};

fn main() {
    println!("device specs (Table 1):");
    for dev in [&PI4, &PICO] {
        println!(
            "  {:<24} {:<24} RAM {:>10.0} kB  OS {}",
            dev.name,
            dev.cpu,
            dev.ram_kb(),
            dev.os
        );
    }

    println!("\ndetector memory (Table 4, fan configuration):");
    let reports: Vec<MemoryReport> = table4::memory_reports(Scale::Full);
    for r in &reports {
        println!(
            "  {:<16} detector {:>8.0} kB   (+ model {:>5.0} kB)",
            r.label,
            r.detector_kb(),
            r.model_bytes as f64 / 1024.0
        );
    }

    println!("\nPico feasibility (75% of 264 kB usable):");
    for v in check_budget(&reports, &PICO) {
        println!(
            "  {:<16} total {:>8.0} kB   fits: {}",
            v.label,
            v.total_bytes as f64 / 1024.0,
            if v.fits { "yes" } else { "NO" }
        );
    }

    // The firmware view: fixed-size stack matrices, zero heap in the loop.
    // This is the same Sherman-Morrison update the heap pipeline runs —
    // the tests in seqdrift-linalg prove bit-level parity.
    println!("\nstack-allocated OS-ELM covariance update (no heap):");
    let mut p = SMat::<22, 22>::identity();
    let mut h = SVec::<22>::zeros();
    for (i, v) in h.as_mut_slice().iter_mut().enumerate() {
        *v = ((i as f32) * 0.1).sin() * 0.3;
    }
    let stack_bytes = core::mem::size_of_val(&p) + core::mem::size_of_val(&h);
    let denom = p.oselm_p_update(&h).expect("SPD update");
    println!(
        "  P is 22x22 on the stack ({} bytes); update gain denominator = {:.4}",
        stack_bytes, denom
    );
    println!(
        "  equivalent heap state would be {} bytes — identical arithmetic,\n\
         \x20 but the stack variant never allocates inside the sample loop.",
        bytes_of_scalars(22 * 22 + 22)
    );
}
