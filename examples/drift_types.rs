//! The four concept-drift types of Figure 1, rendered as ASCII traces.
//!
//! Each trace streams a 1-D signal whose concept moves from 0 to 1 under a
//! different schedule; the printed bars show the bucketed stream mean —
//! exactly the sketch in the paper's Figure 1.
//!
//! ```text
//! cargo run --release --example drift_types
//! ```

use seqdrift::datasets::drift::DriftSchedule;
use seqdrift::eval::experiments::fig1;

fn render(name: &str, schedule: DriftSchedule) {
    let means = fig1::trace(&schedule, 0xF161);
    println!("{name}:");
    for (b, &m) in means.iter().enumerate() {
        let width = (m.clamp(0.0, 1.2) * 40.0) as usize;
        println!(
            "  t={:>4} |{}{}| {:.2}",
            (b + 1) * fig1::BUCKET,
            "#".repeat(width),
            " ".repeat(48usize.saturating_sub(width)),
            m
        );
    }
    println!();
}

fn main() {
    println!("Figure 1: four concept drift types (bucketed stream mean)\n");
    render("sudden (switch at t=400)", DriftSchedule::sudden(400));
    render(
        "gradual (mixture ramps 300..700)",
        DriftSchedule::gradual(300, 700),
    );
    render(
        "incremental (distribution morphs 300..700)",
        DriftSchedule::incremental(300, 700),
    );
    render(
        "reoccurring (new concept only in 400..600)",
        DriftSchedule::reoccurring(400, 600),
    );
}
