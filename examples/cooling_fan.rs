//! Cooling-fan condition-monitoring scenario (§4.1.2 / Table 3).
//!
//! A single OS-ELM autoencoder watches 511-bin vibration spectra of a fan;
//! the detector runs at three window sizes over the paper's three drift
//! scenarios (sudden hole damage, gradually mixing chip damage, and a
//! transient chip-damage burst that reoccurs to normal).
//!
//! ```text
//! cargo run --release --example cooling_fan
//! ```

use seqdrift::datasets::fan::FanScenario;
use seqdrift::eval::experiments::{fan_dataset, Scale};
use seqdrift::eval::methods::MethodSpec;
use seqdrift::eval::runner::{run_method, RunOptions};

fn main() {
    let scenarios = [
        ("sudden (hole damage @120)", FanScenario::Sudden),
        ("gradual (chip damage 120-600)", FanScenario::Gradual),
        ("reoccurring (chip burst 120-170)", FanScenario::Reoccurring),
    ];
    let windows = [10usize, 50, 150];
    let opts = RunOptions {
        hidden: 22,
        seed: 42,
        accuracy_window: 100,
    };

    println!("detection delay by window size (Table 3 of the paper):\n");
    println!(
        "{:<32} {:>6} {:>6} {:>6}",
        "scenario", "W=10", "W=50", "W=150"
    );
    for (name, scenario) in scenarios {
        let dataset = fan_dataset(scenario, Scale::Full);
        let mut cells = Vec::new();
        for w in windows {
            let r = run_method(&MethodSpec::Proposed { window: w }, &dataset, &opts);
            cells.push(match r.delay {
                Some(d) => d.to_string(),
                None => "-".into(),
            });
        }
        println!(
            "{:<32} {:>6} {:>6} {:>6}",
            name, cells[0], cells[1], cells[2]
        );
    }

    println!(
        "\nreading the table like the paper does:\n\
         - sudden: smaller windows check sooner, so delay grows with W;\n\
         - gradual: the old/new mixture needs more evidence for every W;\n\
         - reoccurring: only small windows close a check inside the burst —\n\
           W=150's window spans the burst plus 100 healthy samples, the\n\
           centroid recovers, and the transient is (intentionally) ignored."
    );
}
