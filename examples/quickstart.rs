//! Quickstart: train a 2-class OS-ELM discriminative model, calibrate the
//! sequential drift detector, stream data through the pipeline, and watch
//! it detect a concept drift and rebuild the model on the fly.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use seqdrift::prelude::*;
use seqdrift_core::pipeline::PipelineEvent;

fn blob(rng: &mut Rng, dim: usize, mean: Real) -> Vec<Real> {
    let mut x = vec![0.0; dim];
    rng.fill_normal(&mut x, mean, 0.05);
    x
}

fn main() {
    let dim = 8;
    let mut rng = Rng::seed_from(2024);

    // 1. Initial training data: two well-separated concepts.
    let class0: Vec<Vec<Real>> = (0..150).map(|_| blob(&mut rng, dim, 0.2)).collect();
    let class1: Vec<Vec<Real>> = (0..150).map(|_| blob(&mut rng, dim, 0.8)).collect();

    // 2. One OS-ELM autoencoder instance per class.
    let cfg = OsElmConfig::new(dim, 5).with_seed(7);
    let mut model = MultiInstanceModel::new(2, cfg).expect("model config");
    model.init_train_class(0, &class0).expect("train class 0");
    model.init_train_class(1, &class1).expect("train class 1");

    // 3. Calibrate the detector (θ_drift via Eq. 1, θ_error from training
    //    scores) and wire the full pipeline.
    let train: Vec<(usize, &[Real])> = class0
        .iter()
        .map(|x| (0usize, x.as_slice()))
        .chain(class1.iter().map(|x| (1usize, x.as_slice())))
        .collect();
    let det_cfg = DetectorConfig::new(2, dim).with_window(25);
    let mut pipeline = DriftPipeline::calibrate(model, det_cfg, &train).expect("calibration");
    println!(
        "calibrated: theta_drift = {:.3}, theta_error = {:.5}, window = 25",
        pipeline.detector().config().theta_drift,
        pipeline.detector().config().theta_error,
    );

    // 4. Stream: 300 stable samples, then the concepts move.
    let mut correct = 0;
    let mut total = 0;
    for i in 0..1200 {
        let drifted = i >= 300;
        let (label, mean) = match (i % 2, drifted) {
            (0, false) => (0, 0.2),
            (1, false) => (1, 0.8),
            (0, true) => (0, 0.45),
            _ => (1, 1.15),
        };
        let x = blob(&mut rng, dim, mean);
        let out = pipeline.process(&x).expect("pipeline step");
        if out.drift_detected {
            println!(
                "sample {i}: DRIFT detected (distance {:.3})",
                out.drift_distance
            );
        }
        if out.predicted_label == Some(label) {
            correct += 1;
        }
        total += 1;
    }

    println!(
        "overall accuracy: {:.1}%",
        100.0 * correct as f64 / total as f64
    );
    for event in pipeline.events() {
        match event {
            PipelineEvent::DriftDetected { index, dist } => {
                println!("event: drift at sample {index} (dist {dist:.3})")
            }
            PipelineEvent::Reconstructed {
                index,
                new_theta_drift,
            } => println!(
                "event: model reconstructed at sample {index} (new theta_drift {new_theta_drift:.3})"
            ),
            PipelineEvent::Degraded { index, reason } => {
                println!("event: degraded at sample {index} ({reason})")
            }
            PipelineEvent::Recovered { index } => {
                println!("event: recovered at sample {index}")
            }
        }
    }
}
