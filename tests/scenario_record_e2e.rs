//! Record-then-replay end-to-end: a live `serve --record`-style session's
//! captured bundle must replay through the scenario player to
//! bit-identical final model state — any production incident becomes a
//! deterministic regression test.

use seqdrift::core::{DetectorConfig, DriftPipeline};
use seqdrift::prelude::*;
use seqdrift::scenario::ScenarioPlayer;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const DIM: usize = 6;

fn sample(rng: &mut Rng, mean: Real) -> Vec<Real> {
    let mut x = vec![0.0; DIM];
    rng.fill_normal(&mut x, mean, 0.05);
    x
}

fn checkpoint() -> Vec<u8> {
    let mut rng = Rng::seed_from(99);
    let train: Vec<Vec<Real>> = (0..120).map(|_| sample(&mut rng, 0.3)).collect();
    let mut model = MultiInstanceModel::new(1, OsElmConfig::new(DIM, 4).with_seed(3)).unwrap();
    model.init_train_class(0, &train).unwrap();
    let pairs: Vec<(usize, &[Real])> = train.iter().map(|x| (0, x.as_slice())).collect();
    let cfg = DetectorConfig::new(1, DIM).with_window(20);
    DriftPipeline::calibrate(model, cfg, &pairs)
        .unwrap()
        .to_bytes()
        .unwrap()
}

#[test]
fn recorded_bundle_replays_to_bit_identical_state() {
    let dir = std::env::temp_dir().join(format!("seqdrift-scn-rec-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let rec_dir = dir.join("captured");

    // Live side: a recording server fed by two sessions over real TCP,
    // with each session's final state snapshotted over the wire.
    let blob = checkpoint();
    let cfg = ServerConfig::new(FleetConfig::new(2))
        .with_reference(blob.clone())
        .with_record(rec_dir.clone());
    let server = Server::bind("127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr().to_string();
    let stop = Arc::new(AtomicBool::new(false));
    let handle = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || server.run(|| stop.load(Ordering::Relaxed)))
    };

    let mut rng = Rng::seed_from(7);
    let mut live: Vec<(u64, Vec<u8>)> = Vec::new();
    for session in 0..2u64 {
        let (mut client, _) = Client::connect(addr.as_str(), session, DIM as u32).unwrap();
        let mut rows = Vec::new();
        for i in 0..40 {
            let mean = if i < 25 { 0.3 } else { 0.7 };
            rows.extend_from_slice(&sample(&mut rng, mean));
        }
        client.send_all(&rows).unwrap();
        let snap = client.snapshot().unwrap();
        client.bye().unwrap();
        live.push((session, snap));
    }
    stop.store(true, Ordering::Relaxed);
    let report = handle.join().unwrap();
    let manifest = report
        .recording
        .expect("server was recording")
        .expect("bundle write failed");
    assert!(
        manifest.ends_with("scenario.sqsc"),
        "{}",
        manifest.display()
    );

    // Replay side: the bundle alone (rows + embedded reference) must
    // reproduce every live snapshot bit for bit.
    let player = ScenarioPlayer::from_file(&manifest).unwrap();
    assert_eq!(player.dim(), DIM);
    let reference = player
        .reference_model()
        .expect("bundle carries the reference blob")
        .to_vec();
    assert_eq!(reference, blob);
    let engine = FleetEngine::new(FleetConfig::new(2)).unwrap();
    for &(session, _) in &live {
        engine
            .create_from_bytes(SessionId(session), &reference)
            .unwrap();
        let stream = player.stream(session).unwrap();
        assert_eq!(stream.len(), 40, "session {session} row count");
        for row in &stream {
            engine.feed_blocking(SessionId(session), row).unwrap();
        }
    }
    for (session, snap) in &live {
        let replayed = engine.snapshot(SessionId(*session)).unwrap();
        assert_eq!(
            &replayed, snap,
            "session {session}: replayed state diverged from the live fleet"
        );
    }
    engine.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
