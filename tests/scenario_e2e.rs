//! Scenario determinism end-to-end: one `.sqsc` file must drive every
//! consumer — eval datasets, fleet replays, load streams — with
//! bit-identical per-session streams, and the resulting fleet state must
//! not depend on how many workers the engine shards sessions across.

use seqdrift::core::{DetectorConfig, DriftPipeline};
use seqdrift::prelude::*;
use seqdrift::scenario::ScenarioPlayer;

const SCENARIO: &str = "\
sqsc 1
name workers-drill
kind synthetic
seed 5
sessions 4
dim 6
classes 2
train 30
samples 300
noise 0.05
drift sudden start 50 magnitude 0.5
stagger 10
";

fn player() -> ScenarioPlayer {
    let scenario = Scenario::parse(SCENARIO).unwrap();
    ScenarioPlayer::new(scenario, None).unwrap()
}

/// Calibrate a reference checkpoint from the scenario's own deterministic
/// training split; every worker-count run starts from this same blob.
fn reference(p: &ScenarioPlayer) -> Vec<u8> {
    let pairs = p.train_pairs().unwrap();
    let mut model = MultiInstanceModel::new(2, OsElmConfig::new(6, 4).with_seed(5)).unwrap();
    let mut buckets: Vec<Vec<Vec<Real>>> = vec![Vec::new(); 2];
    for (label, x) in &pairs {
        buckets[*label].push(x.clone());
    }
    for (label, bucket) in buckets.iter().enumerate() {
        model.init_train_class(label, bucket).unwrap();
    }
    let refs: Vec<(usize, &[Real])> = pairs.iter().map(|(l, x)| (*l, x.as_slice())).collect();
    let det = DetectorConfig::new(2, 6).with_window(20);
    DriftPipeline::calibrate(model, det, &refs)
        .unwrap()
        .to_bytes()
        .unwrap()
}

/// Replays the scenario through a fleet with the given worker count and
/// returns every session's final snapshot blob.
fn final_states(workers: usize) -> Vec<(u64, Vec<u8>)> {
    let p = player();
    let blob = reference(&p);
    let sessions = p.sessions();
    let engine = FleetEngine::new(FleetConfig::new(workers)).unwrap();
    for &id in &sessions {
        engine.create_from_bytes(SessionId(id), &blob).unwrap();
    }
    let streams: Vec<Vec<Vec<Real>>> = sessions.iter().map(|&id| p.stream(id).unwrap()).collect();
    let max_len = streams.iter().map(Vec::len).max().unwrap_or(0);
    for t in 0..max_len {
        for (i, &id) in sessions.iter().enumerate() {
            if let Some(row) = streams[i].get(t) {
                engine.feed_blocking(SessionId(id), row).unwrap();
            }
        }
    }
    let out = sessions
        .iter()
        .map(|&id| (id, engine.snapshot(SessionId(id)).unwrap()))
        .collect();
    engine.shutdown();
    out
}

#[test]
fn same_seed_synthesis_is_identical_across_worker_counts() {
    let one = final_states(1);
    let two = final_states(2);
    let eight = final_states(8);
    assert_eq!(one.len(), 4);
    for ((a, b), c) in one.iter().zip(&two).zip(&eight) {
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1, "session {} diverged between 1 and 2 workers", a.0);
        assert_eq!(a.1, c.1, "session {} diverged between 1 and 8 workers", a.0);
    }
}

#[test]
fn one_sqsc_drives_every_consumer_with_identical_streams() {
    let p = player();
    // A second, independently-constructed player (as eval / fleet / load
    // would each build) must synthesize the same bits.
    let q = player();
    for &id in &p.sessions() {
        let fleet_stream = p.stream(id).unwrap();
        let load_stream = q.stream(id).unwrap();
        assert_eq!(fleet_stream, load_stream, "session {id} streams diverged");
        // The eval dataset's test features are the same stream, labelled.
        let dataset = p.dataset(id).unwrap();
        assert_eq!(dataset.test.len(), fleet_stream.len());
        for (sample, row) in dataset.test.iter().zip(&fleet_stream) {
            assert_eq!(&sample.x, row, "eval features diverged in session {id}");
        }
    }
}

#[test]
fn canonical_round_trip_preserves_streams() {
    let scenario = Scenario::parse(SCENARIO).unwrap();
    let reparsed = Scenario::parse(&scenario.render()).unwrap();
    assert_eq!(scenario, reparsed);
    let p = ScenarioPlayer::new(scenario, None).unwrap();
    let q = ScenarioPlayer::new(reparsed, None).unwrap();
    for &id in &p.sessions() {
        assert_eq!(p.stream(id).unwrap(), q.stream(id).unwrap());
    }
}

#[test]
fn stagger_shifts_each_sessions_drift_onset() {
    let p = player();
    for (s, off) in [(0u64, 0usize), (1, 10), (2, 20), (3, 30)] {
        let d = p.dataset(s).unwrap();
        assert_eq!(d.drift_start, 50 + off, "session {s}");
    }
}
