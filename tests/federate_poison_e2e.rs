//! Byzantine-robust federation under seeded model poisoning: a 50-session
//! fleet where 16% of the contributors submit deterministically corrupted
//! models that pass every overt health gate, spanning linalg -> oselm ->
//! core -> fleet -> federate through the facade crate.
//!
//! The headline scenario proves three properties at once: the robust
//! merge converges **bit-identically** to the clean-merge baseline, a
//! poisoned model is never redistributed to any session, and the laggard
//! adaptation-delay win of federation (the `federate50_delay_merge_on`
//! envelope in `BENCH_ingest.json`) survives the attack. The negative
//! control re-runs the same seed with robust merging disabled and shows
//! the baseline demonstrably corrupted — the injector has teeth.

use seqdrift::core::pipeline::PipelineEvent;
use seqdrift::core::{DetectorConfig, DriftPipeline};
use seqdrift::prelude::*;
use seqdrift_bench::json::parse as parse_bench;

const DIM: usize = 6;
const SESSIONS: u64 = 50;
const VANGUARDS: u64 = 12; // honest sessions that learn the new concept
const PHASE1: usize = 400; // drifted samples fed to each vanguard
const HORIZON: usize = 400; // phase-2 samples fed to each laggard
const NEW_MEAN: Real = 0.9; // post-drift concept (trained concept is 0.3)
const POISON_SEED: u64 = 0xBAD5EED;

/// The 8 poisoned laggards (16% of the fleet), covering every corruption
/// mode whose signature is visible in a single round. The slow-bias ramp
/// gets its own multi-round scenario below.
fn victims() -> Vec<(u64, PoisonMode)> {
    vec![
        (40, PoisonMode::ScaledBeta(2.5)),
        (41, PoisonMode::ScaledBeta(4.0)),
        (42, PoisonMode::ScaledBeta(5.5)),
        (43, PoisonMode::RotatedGram),
        (44, PoisonMode::RotatedGram),
        (45, PoisonMode::Colluding),
        (46, PoisonMode::Colluding),
        (47, PoisonMode::Colluding),
    ]
}

fn sample(rng: &mut Rng, mean: Real) -> Vec<Real> {
    let mut x = vec![0.0; DIM];
    rng.fill_normal(&mut x, mean, 0.05);
    x
}

/// Calibrate a single-class pipeline on a stable blob and serialise it.
fn checkpoint() -> Vec<u8> {
    let mut rng = Rng::seed_from(99);
    let train: Vec<Vec<Real>> = (0..120).map(|_| sample(&mut rng, 0.3)).collect();
    let mut model = MultiInstanceModel::new(1, OsElmConfig::new(DIM, 4).with_seed(3)).unwrap();
    model.init_train_class(0, &train).unwrap();
    let pairs: Vec<(usize, &[Real])> = train.iter().map(|x| (0, x.as_slice())).collect();
    let cfg = DetectorConfig::new(1, DIM).with_window(20);
    DriftPipeline::calibrate(model, cfg, &pairs)
        .unwrap()
        .to_bytes()
        .unwrap()
}

/// Drives one session through detection + reconstruction on the new
/// concept with a per-session stream, so contributor state is identical
/// across runs regardless of what the other sessions are doing.
fn adapt_session(fleet: &FleetEngine, dev: u64) {
    let mut rng = Rng::seed_from(10_000 + dev);
    for _ in 0..PHASE1 {
        let x = sample(&mut rng, NEW_MEAN);
        fleet.feed_blocking(SessionId(dev), &x).unwrap();
    }
}

/// Per-laggard adaptation delay after phase-2 onset, in samples (same
/// semantics as the PR 6 federation e2e).
fn laggard_delays(events: &[FleetEvent]) -> Vec<f64> {
    let mut detected = std::collections::BTreeMap::new();
    let mut reconstructed = std::collections::BTreeMap::new();
    for e in events {
        if let FleetEvent::Pipeline { id, event } = e {
            if id.0 < VANGUARDS {
                continue;
            }
            match event {
                PipelineEvent::DriftDetected { index, .. } => {
                    detected.entry(id.0).or_insert(*index);
                }
                PipelineEvent::Reconstructed { index, .. } => {
                    reconstructed.entry(id.0).or_insert(*index);
                }
                _ => {}
            }
        }
    }
    (VANGUARDS..SESSIONS)
        .map(|id| {
            if !detected.contains_key(&id) {
                0.0
            } else {
                reconstructed
                    .get(&id)
                    .map(|&r| r as f64)
                    .unwrap_or(HORIZON as f64)
            }
        })
        .collect()
}

struct Outcome {
    round: RoundSummary,
    /// Snapshot of an honest laggard right after the round — the model
    /// the fleet actually redistributed.
    honest_snap: Vec<u8>,
    /// Snapshot of a poisoned laggard right after the round.
    victim_snap: Vec<u8>,
    /// Trust of every poisoned session after the round.
    victim_trust: Vec<Real>,
    delays: Vec<f64>,
}

/// One full scenario: 12 vanguards learn the new concept, one federation
/// round merges and redistributes, phase 2 streams the new concept to the
/// laggards. With `poison` the 8 victims submit corrupted contributions
/// to that round.
fn run_scenario(poison: bool, robust: bool) -> Outcome {
    let blob = checkpoint();
    let fleet = FleetEngine::new(
        FleetConfig::new(4).with_federation(FederationConfig::default().with_robust(robust)),
    )
    .unwrap();
    for dev in 0..SESSIONS {
        fleet.create_from_bytes(SessionId(dev), &blob).unwrap();
    }
    for dev in 0..VANGUARDS {
        adapt_session(&fleet, dev);
    }
    // Quiesce: a snapshot request drains each vanguard's FIFO behind the
    // samples above, so the event log is complete before we assert on it
    // (feed_blocking returns at enqueue, not at processing).
    for dev in 0..VANGUARDS {
        let _ = fleet.snapshot(SessionId(dev));
    }
    let adapted: std::collections::BTreeSet<u64> = fleet
        .drain_events()
        .iter()
        .filter_map(|e| match e {
            FleetEvent::Pipeline {
                id,
                event: PipelineEvent::Reconstructed { .. },
            } => Some(id.0),
            _ => None,
        })
        .collect();
    assert_eq!(
        adapted.len(),
        VANGUARDS as usize,
        "every vanguard must reconstruct in phase 1: {adapted:?}"
    );

    let mut federator = Federator::new(&fleet, &blob).unwrap();
    if poison {
        federator = federator.with_poison(PoisonInjector::new(POISON_SEED, victims()));
    }
    let round = federator.run_round(&fleet).unwrap();
    assert!(round.merged, "the round must still merge: {round:?}");
    let honest_snap = fleet.snapshot(SessionId(20)).unwrap();
    let victim_snap = fleet.snapshot(SessionId(45)).unwrap();
    let victim_trust = victims()
        .iter()
        .map(|&(id, _)| federator.reputation().trust(id))
        .collect();

    let mut rng = Rng::seed_from(777);
    for _ in 0..HORIZON {
        for dev in VANGUARDS..SESSIONS {
            let x = sample(&mut rng, NEW_MEAN);
            fleet.feed_blocking(SessionId(dev), &x).unwrap();
        }
    }
    let report = fleet.shutdown();
    assert_eq!(report.sessions.len(), SESSIONS as usize);
    Outcome {
        round,
        honest_snap,
        victim_snap,
        victim_trust,
        delays: laggard_delays(&report.events),
    }
}

/// The acceptance scenario: with 16% of the fleet poisoned, the robust
/// merge rejects every corrupted contribution, converges bit-identically
/// to the clean-merge baseline, never hands a poisoned model to any
/// session, decays every victim's trust — and keeps the laggard
/// adaptation delay inside the PR 6 merge-on envelope.
#[test]
fn poisoned_fleet_converges_to_the_clean_baseline() {
    let clean = run_scenario(false, true);
    assert_eq!(clean.round.accepted, VANGUARDS, "{:?}", clean.round);
    assert_eq!(clean.round.rejected, 0, "{:?}", clean.round);

    let poisoned = run_scenario(true, true);
    assert_eq!(
        poisoned.round.accepted, VANGUARDS,
        "all honest vanguards must survive the robust pass: {:?}",
        poisoned.round
    );
    let rr = poisoned.round.reject_reasons;
    assert_eq!(
        rr.deviation + rr.non_pd,
        victims().len() as u64,
        "every poisoned contribution must be rejected: {:?}",
        poisoned.round
    );
    assert_eq!(poisoned.round.rejected, rr.total(), "{:?}", poisoned.round);
    assert_eq!(
        poisoned.round.redistributed, SESSIONS,
        "{:?}",
        poisoned.round
    );

    // The merged model the fleet redistributed is bit-identical to the
    // clean-merge baseline: the attack contributed exactly nothing, and
    // no session — victim or honest — ever held a poisoned model.
    assert_eq!(
        poisoned.honest_snap, clean.honest_snap,
        "robust merge must converge bit-identically to the clean baseline"
    );
    assert_eq!(
        poisoned.victim_snap, clean.honest_snap,
        "a poisoned session must be re-seeded with the clean merged model"
    );

    // Every victim's trust decayed from the default 1.0.
    for (&(id, _), &trust) in victims().iter().zip(&poisoned.victim_trust) {
        assert!(
            trust < 1.0,
            "victim {id} should have lost trust, still at {trust}"
        );
    }

    // The point of federating at all — the laggard adaptation-delay win —
    // must survive the attack. Compare against the PR 6 merge-on envelope
    // recorded in BENCH_ingest.json (delay means, in samples).
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let bench_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_ingest.json");
    let bench = std::fs::read_to_string(&bench_path).unwrap();
    let entries = parse_bench(&bench).unwrap();
    let envelope = entries
        .get("federate50_delay_merge_on")
        .expect("PR 6 federation benchmark entry must exist")
        .samples_per_sec;
    let poisoned_mean = mean(&poisoned.delays);
    assert!(
        poisoned_mean <= envelope * 1.5 + 8.0,
        "poisoned-fleet laggard delay {poisoned_mean} blew the merge-on envelope {envelope}"
    );
    // And it must not be worse than this run's own clean fleet either.
    let clean_mean = mean(&clean.delays);
    assert!(
        poisoned_mean <= clean_mean * 1.5 + 8.0,
        "poisoned delay {poisoned_mean} vs clean delay {clean_mean}"
    );
}

/// The negative control: the same seed with robust merging disabled must
/// demonstrably corrupt the fleet baseline — otherwise the headline test
/// proves nothing about the injector.
#[test]
fn without_robust_merging_the_same_seed_corrupts_the_baseline() {
    let clean = run_scenario(false, true);
    let off = run_scenario(true, false);
    assert_eq!(
        off.round.accepted,
        VANGUARDS + victims().len() as u64,
        "without the robust pass every poisoned contribution is admitted: {:?}",
        off.round
    );
    assert_ne!(
        off.honest_snap, clean.honest_snap,
        "the poisoned merge must corrupt the redistributed model"
    );
    // Quantify: the merged beta the fleet received differs materially,
    // not by a rounding artefact.
    let beta_of = |blob: &[u8]| -> Vec<Real> {
        DriftPipeline::from_bytes(blob)
            .unwrap()
            .model()
            .instance(0)
            .unwrap()
            .network()
            .beta()
            .as_slice()
            .to_vec()
    };
    let (clean_beta, off_beta) = (beta_of(&clean.honest_snap), beta_of(&off.honest_snap));
    let norm = |v: &[Real]| v.iter().map(|x| x * x).sum::<Real>().sqrt();
    let diff: Vec<Real> = clean_beta
        .iter()
        .zip(&off_beta)
        .map(|(a, b)| a - b)
        .collect();
    let rel = norm(&diff) / norm(&clean_beta).max(Real::MIN_POSITIVE);
    assert!(
        rel > 1e-2,
        "poisoning should shift the merged beta materially, got relative diff {rel}"
    );
}

/// The slow-bias ramp: a victim whose corruption starts tiny and grows
/// each round. The robust pass flags it once the ramp clears the
/// deviation bound, its trust then decays below the floor, and from that
/// point it is excluded from merging entirely (and the exclusion is
/// surfaced as a fleet event) — while the honest sessions keep merging
/// every single round.
#[test]
fn slow_bias_attacker_loses_trust_and_is_excluded() {
    let blob = checkpoint();
    let fleet =
        FleetEngine::new(FleetConfig::new(2).with_federation(FederationConfig::default())).unwrap();
    for dev in 0..4 {
        fleet.create_from_bytes(SessionId(dev), &blob).unwrap();
    }
    let mut federator = Federator::new(&fleet, &blob)
        .unwrap()
        .with_poison(PoisonInjector::new(5, vec![(3, PoisonMode::SlowBias)]));

    let mut rng = Rng::seed_from(31337);
    let mut saw_deviation = false;
    let mut saw_low_trust = false;
    for _ in 0..12 {
        // Hand every honest session a freshly (and slightly differently)
        // trained divergence from the baseline so each round has honest
        // contributors; the victim never trains, its divergence is pure
        // poison.
        for dev in 0..3u64 {
            let mut m = federator.baseline().clone();
            for _ in 0..8 {
                let x = sample(&mut rng, NEW_MEAN);
                m.seq_train_label(0, &x).unwrap();
            }
            fleet.install_model(SessionId(dev), m).unwrap();
        }
        let round = federator.run_round(&fleet).unwrap();
        assert!(
            round.merged,
            "honest contributors must keep merging: {round:?}"
        );
        assert_eq!(round.accepted, 3, "{round:?}");
        saw_deviation |= round.reject_reasons.deviation > 0;
        saw_low_trust |= round.reject_reasons.low_trust > 0;
    }
    assert!(
        saw_deviation,
        "the ramp must eventually clear the deviation bound"
    );
    assert!(
        saw_low_trust,
        "repeated outlier rounds must push the victim below the trust floor"
    );
    let trust = federator.reputation().trust(3);
    assert!(
        trust < 0.3,
        "victim trust should sit below the floor: {trust}"
    );
    let excluded = fleet.drain_events().into_iter().any(|e| {
        matches!(
            e,
            FleetEvent::SessionExcludedLowTrust { id, .. } if id.0 == 3
        )
    });
    assert!(excluded, "the exclusion must be surfaced as a fleet event");
    fleet.shutdown();
}

/// Reputation durability: trust verdicts survive a kill-and-resume. A
/// federator rebuilt over the same state dir restores the book through
/// `Store::open`'s recovery scan, so an adversarial device cannot launder
/// its history through a process restart.
#[test]
fn reputation_survives_restart() {
    let dir = std::env::temp_dir().join(format!("seqdrift-poison-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let blob = checkpoint();
    let cfg = || {
        FleetConfig::new(2)
            .with_federation(FederationConfig::default())
            .with_state_dir(&dir)
    };
    let fleet = FleetEngine::new(cfg()).unwrap();
    for dev in 0..3 {
        fleet.create_from_bytes(SessionId(dev), &blob).unwrap();
    }
    adapt_session(&fleet, 0);
    adapt_session(&fleet, 1);
    let mut federator = Federator::new(&fleet, &blob)
        .unwrap()
        .with_poison(PoisonInjector::new(
            9,
            vec![(2, PoisonMode::ScaledBeta(50.0))],
        ));
    let round = federator.run_round(&fleet).unwrap();
    assert!(round.merged, "{round:?}");
    assert_eq!(round.reject_reasons.deviation, 1, "{round:?}");
    let decayed = federator.reputation().trust(2);
    assert!(decayed < 1.0);
    fleet.shutdown();

    // "Power loss": a brand-new engine and federator over the same state
    // dir restore the decayed trust, not the default 1.0.
    let fleet2 = FleetEngine::new(cfg()).unwrap();
    let federator2 = Federator::new(&fleet2, &blob).unwrap();
    assert_eq!(
        federator2.reputation().trust(2),
        decayed,
        "the reputation book must survive restart bit-exactly"
    );
    fleet2.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
