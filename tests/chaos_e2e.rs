//! Chaos end-to-end: a 16-session fleet streamed through the
//! fault-injection proxy with **every** fault family armed must finish
//! bit-identical to a clean in-process run (exactly-once delivery under
//! arbitrary connection failures), and the `seqdrift load --chaos` CLI
//! scenario must leave healthy devices within latency bounds while the
//! victim half rides out the faults.
//!
//! Everything derives from fixed seeds: rerunning a failure replays the
//! same faults at the same byte offsets.

use seqdrift::core::{DetectorConfig, DriftPipeline};
use seqdrift::prelude::*;
use seqdrift::server::ServerReport;
use seqdrift_cli::{commands, Cli, Command};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const DIM: usize = 4;
const CHAOS_SEED: u64 = 4242;

fn checkpoint(seed: u64) -> Vec<u8> {
    let mut rng = Rng::seed_from(seed);
    let train: Vec<Vec<Real>> = (0..100)
        .map(|_| {
            let mut x = vec![0.0; DIM];
            rng.fill_normal(&mut x, 0.3, 0.05);
            x
        })
        .collect();
    let mut model = MultiInstanceModel::new(1, OsElmConfig::new(DIM, 3).with_seed(seed)).unwrap();
    model.init_train_class(0, &train).unwrap();
    let pairs: Vec<(usize, &[Real])> = train.iter().map(|x| (0, x.as_slice())).collect();
    DriftPipeline::calibrate(model, DetectorConfig::new(1, DIM).with_window(16), &pairs)
        .unwrap()
        .to_bytes()
        .unwrap()
}

/// Deterministic per-session stream, flattened row-major.
fn stream(session: u64, rows: usize) -> Vec<Real> {
    let mut rng = Rng::seed_from(9000 + session);
    let mut out = Vec::with_capacity(rows * DIM);
    for _ in 0..rows {
        let mut x = vec![0.0; DIM];
        rng.fill_normal(&mut x, 0.3, 0.05);
        out.extend_from_slice(&x);
    }
    out
}

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("seqdrift-chaos-e2e-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spawn_server(
    cfg: ServerConfig,
) -> (
    std::net::SocketAddr,
    Arc<AtomicBool>,
    std::thread::JoinHandle<ServerReport>,
) {
    let server = Server::bind("127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr();
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let handle = std::thread::spawn(move || server.run(move || flag.load(Ordering::Relaxed)));
    (addr, stop, handle)
}

/// The tentpole acceptance test: 16 concurrent device sessions stream
/// through a proxy injecting resets, short writes, stalls, jitter, and
/// blackholes from one fixed seed — and every session's final state is
/// bit-identical to a clean in-process run of the same rows. No row is
/// lost, none is applied twice, no matter where the faults cut.
#[test]
fn sixteen_sessions_through_every_fault_family_are_bit_identical() {
    const SESSIONS: u64 = 16;
    const ROWS: usize = 100;
    let blob = checkpoint(4001);
    let cfg = ServerConfig::new(FleetConfig::new(3)).with_reference(blob.clone());
    let (addr, stop, handle) = spawn_server(cfg);
    let proxy = ChaosProxy::spawn(addr, ChaosConfig::all_faults(CHAOS_SEED)).unwrap();
    let proxy_addr = proxy.local_addr();

    let devices: Vec<std::thread::JoinHandle<(u64, Vec<u8>, u64)>> = (0..SESSIONS)
        .map(|dev| {
            std::thread::spawn(move || {
                let policy = ReconnectPolicy {
                    max_attempts: 24,
                    base: Duration::from_millis(2),
                    cap: Duration::from_millis(250),
                    seed: CHAOS_SEED ^ dev.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                };
                let mut rc = ResilientClient::new(proxy_addr, dev, DIM as u32, policy).unwrap();
                // Shorter than the longest scheduled blackhole (300 ms),
                // so held connections surface as reconnects too.
                rc.read_timeout = Some(Duration::from_millis(150));
                let rows = stream(dev, ROWS);
                let report = rc.run_stream(&rows, 8).unwrap();
                assert_eq!(rc.acked_rows(), ROWS as u64, "session {dev}");
                // Verification snapshot: wait the remaining holds out.
                rc.read_timeout = Some(Duration::from_secs(2));
                let snap = rc.snapshot().unwrap();
                let _ = rc.bye();
                (dev, snap, report.reconnects)
            })
        })
        .collect();
    let mut results: Vec<(u64, Vec<u8>, u64)> = devices
        .into_iter()
        .map(|h| h.join().expect("device thread panicked"))
        .collect();
    results.sort_by_key(|(dev, _, _)| *dev);

    let faults = proxy.events();
    let conns = proxy.connections();
    assert!(
        !faults.is_empty(),
        "the all-faults schedule must have injected something over {conns} connections"
    );
    proxy.shutdown();
    stop.store(true, Ordering::Relaxed);
    let report = handle.join().unwrap();
    assert_eq!(
        report.net.samples_accepted,
        SESSIONS * ROWS as u64,
        "exactly-once across {conns} proxied connections and {} fault(s)",
        faults.len()
    );

    // Clean in-process reference over the identical streams.
    let fleet = FleetEngine::new(FleetConfig::new(3)).unwrap();
    for dev in 0..SESSIONS {
        fleet.create_from_bytes(SessionId(dev), &blob).unwrap();
    }
    for (dev, net_snap, _) in &results {
        for row in stream(*dev, ROWS).chunks_exact(DIM) {
            fleet.feed_blocking(SessionId(*dev), row).unwrap();
        }
        let clean = fleet.snapshot(SessionId(*dev)).unwrap();
        assert_eq!(
            &clean, net_snap,
            "session {dev}: state under chaos diverged from the clean run"
        );
    }
    fleet.shutdown();

    let total_reconnects: u64 = results.iter().map(|(_, _, r)| r).sum();
    assert!(
        total_reconnects >= 1,
        "with resets at p=0.5 some of the 16 sessions must have reconnected"
    );
}

/// The CLI scenario: `seqdrift load --chaos` routes the victim half of
/// the fleet through the proxy while healthy devices connect directly.
/// The run must finish (reconnect storm absorbed), verify bit-identity,
/// emit per-group `chaos_*` bench entries, and keep healthy-client p99
/// within an order of magnitude of the clean path.
#[test]
fn cli_load_chaos_bounds_healthy_latency_and_emits_bench_entries() {
    const CLI_DIM: usize = 6;
    let dir = tmp_dir("cli-load");
    let model = dir.join("model.sqdm");
    // The CLI path infers dim from the CSV; build a matching checkpoint.
    let blob = {
        let mut rng = Rng::seed_from(99);
        let train: Vec<Vec<Real>> = (0..120)
            .map(|_| {
                let mut x = vec![0.0; CLI_DIM];
                rng.fill_normal(&mut x, 0.3, 0.05);
                x
            })
            .collect();
        let mut model =
            MultiInstanceModel::new(1, OsElmConfig::new(CLI_DIM, 4).with_seed(3)).unwrap();
        model.init_train_class(0, &train).unwrap();
        let pairs: Vec<(usize, &[Real])> = train.iter().map(|x| (0, x.as_slice())).collect();
        DriftPipeline::calibrate(
            model,
            DetectorConfig::new(1, CLI_DIM).with_window(20),
            &pairs,
        )
        .unwrap()
        .to_bytes()
        .unwrap()
    };
    std::fs::write(&model, &blob).unwrap();

    let mut rng = Rng::seed_from(31);
    let mut csv = String::new();
    for _ in 0..60 {
        let mut x = vec![0.0; CLI_DIM];
        rng.fill_normal(&mut x, 0.3, 0.05);
        let row: Vec<String> = x.iter().map(|v| v.to_string()).collect();
        csv.push_str(&row.join(","));
        csv.push('\n');
    }
    let csv_path = dir.join("stream.csv");
    std::fs::write(&csv_path, csv).unwrap();

    // One fresh server instance per load run (sessions start at 0 in
    // both, so sharing a server would make the second run a no-op
    // resume instead of a stream).
    let spawn_serve = |port_file: &std::path::Path| {
        let line = format!(
            "serve --model {} --listen 127.0.0.1:0 --workers 2 --port-file {}",
            model.display(),
            port_file.display()
        );
        let argv: Vec<String> = line.split_whitespace().map(String::from).collect();
        let cli = Cli::parse(&argv).unwrap();
        let Command::Serve(args) = cli.command else {
            panic!("parsed something other than serve");
        };
        let stop = Arc::new(AtomicBool::new(false));
        let server = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut buf = Vec::new();
                commands::serve_with_stop(&args, &mut buf, &stop).unwrap();
                String::from_utf8(buf).unwrap()
            })
        };
        let mut addr = String::new();
        for _ in 0..500 {
            if let Ok(s) = std::fs::read_to_string(port_file) {
                if !s.is_empty() {
                    addr = s;
                    break;
                }
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(!addr.is_empty(), "server never wrote its port file");
        (addr, stop, server)
    };

    let bench_json = dir.join("BENCH_ingest.json");
    let run_load = |addr: &str, extra: &str| -> String {
        let line = format!(
            "load --csv {} --addr {addr} --sessions 8 --batch 8 --no-header \
             --verify --model {} --bench-json {} {extra}",
            csv_path.display(),
            model.display(),
            bench_json.display()
        );
        let argv: Vec<String> = line.split_whitespace().map(String::from).collect();
        let cli = Cli::parse(&argv).unwrap();
        let mut buf = Vec::new();
        seqdrift_cli::run(&cli, &mut buf).unwrap();
        String::from_utf8(buf).unwrap()
    };

    // Clean baseline.
    let (addr, stop, server) = spawn_serve(&dir.join("port-clean.txt"));
    let clean_out = run_load(&addr, "");
    assert!(
        clean_out.contains("8 device(s) bit-identical"),
        "{clean_out}"
    );
    stop.store(true, Ordering::Relaxed);
    server.join().unwrap();

    // Chaos run against a fresh server.
    let (addr, stop, server) = spawn_serve(&dir.join("port-chaos.txt"));
    let chaos_out = run_load(
        &addr,
        &format!("--chaos --chaos-seed {CHAOS_SEED} --chaos-victims 4"),
    );
    assert!(
        chaos_out.contains("chaos: seed 4242"),
        "chaos banner missing: {chaos_out}"
    );
    assert!(
        chaos_out.contains("8 device(s) bit-identical"),
        "chaos run must still verify exactly-once delivery: {chaos_out}"
    );
    stop.store(true, Ordering::Relaxed);
    let served = server.join().unwrap();
    assert!(served.contains("resilience:"), "{served}");

    let entries = seqdrift_bench::json::parse(&std::fs::read_to_string(&bench_json).unwrap())
        .expect("BENCH_ingest.json must stay machine-readable");
    let clean = &entries["load_sessions_8_batch_8"];
    let healthy = &entries["chaos_healthy_sessions_8_batch_8"];
    let victim = &entries["chaos_victim_sessions_8_batch_8"];
    assert!(clean.p99_us > 0.0 && healthy.p99_us > 0.0 && victim.p99_us > 0.0);
    assert_eq!(healthy.samples + victim.samples, 8 * 60);
    // Healthy devices bypass the proxy; the chaos they feel is only
    // server-side contention from the victim half's storm. Bound: an
    // order of magnitude over the clean path (with a small absolute
    // floor so loopback-jitter microseconds cannot flake the suite).
    let bound = (clean.p99_us * 10.0).max(5_000.0);
    assert!(
        healthy.p99_us <= bound,
        "healthy p99 {:.1} us exceeds bound {:.1} us (clean p99 {:.1} us)",
        healthy.p99_us,
        bound,
        clean.p99_us
    );
    std::fs::remove_dir_all(&dir).ok();
}
