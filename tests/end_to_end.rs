//! End-to-end integration: the full drift pipeline over the synthetic
//! NSL-KDD stream, spanning datasets -> oselm -> core -> eval.

use seqdrift::core::pipeline::PipelineEvent;
use seqdrift::datasets::nslkdd::{self, NslKddConfig};
use seqdrift::eval::methods::MethodSpec;
use seqdrift::eval::runner::{run_method, RunOptions};
use seqdrift::prelude::*;

fn dataset() -> seqdrift::datasets::DriftDataset {
    nslkdd::generate(&NslKddConfig {
        n_train: 400,
        n_test: 4000,
        drift_point: 1400,
        ..NslKddConfig::default()
    })
}

fn opts() -> RunOptions {
    RunOptions {
        hidden: 22,
        seed: 42,
        accuracy_window: 500,
    }
}

#[test]
fn proposed_full_lifecycle() {
    let d = dataset();
    let r = run_method(&MethodSpec::Proposed { window: 100 }, &d, &opts());
    // Lifecycle claims: no false positives before the drift, detection
    // after it, and strong overall accuracy thanks to the recovery.
    assert_eq!(r.false_positives, 0, "false positives: {:?}", r.detections);
    let delay = r.delay.expect("drift must be detected");
    assert!(delay < 1500, "delay {delay}");
    assert!(r.accuracy > 0.85, "accuracy {:.3}", r.accuracy);
}

#[test]
fn pipeline_is_deterministic() {
    let d = dataset();
    let a = run_method(&MethodSpec::Proposed { window: 100 }, &d, &opts());
    let b = run_method(&MethodSpec::Proposed { window: 100 }, &d, &opts());
    assert_eq!(a.accuracy, b.accuracy);
    assert_eq!(a.detections, b.detections);
    assert_eq!(a.detector_memory_scalars, b.detector_memory_scalars);
}

#[test]
fn different_seeds_are_similar_but_not_identical() {
    let d = dataset();
    let mut accs = Vec::new();
    for seed in [1u64, 2, 3] {
        let r = run_method(
            &MethodSpec::Proposed { window: 100 },
            &d,
            &RunOptions { seed, ..opts() },
        );
        assert!(r.delay.is_some(), "seed {seed} missed the drift");
        accs.push(r.accuracy);
    }
    let min = accs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = accs.iter().cloned().fold(0.0, f64::max);
    assert!(max - min < 0.1, "seed variance too high: {accs:?}");
}

#[test]
fn events_tell_a_consistent_story() {
    // Drive the pipeline manually and check the event log matches the
    // outputs sample by sample.
    let d = dataset();
    let dim = d.dim();
    let mut model = MultiInstanceModel::new(2, OsElmConfig::new(dim, 22).with_seed(9)).unwrap();
    for (label, bucket) in d.train_by_class().iter().enumerate() {
        model.init_train_class(label, bucket).unwrap();
    }
    let pairs: Vec<(usize, &[Real])> = d.train.iter().map(|s| (s.label, s.x.as_slice())).collect();
    let det = DetectorConfig::new(2, dim).with_window(100);
    let mut pipe = DriftPipeline::calibrate(model, det, &pairs).unwrap();

    let mut flagged_indices = Vec::new();
    for (i, s) in d.test.iter().enumerate() {
        let out = pipe.process(&s.x).unwrap();
        if out.drift_detected {
            flagged_indices.push(i as u64);
        }
    }
    let logged: Vec<u64> = pipe
        .events()
        .iter()
        .filter_map(|e| match e {
            PipelineEvent::DriftDetected { index, .. } => Some(*index),
            _ => None,
        })
        .collect();
    assert_eq!(flagged_indices, logged);
    // Every detection is followed by exactly one reconstruction (the
    // stream is long enough to finish the schedule).
    let reconstructions = pipe
        .events()
        .iter()
        .filter(|e| matches!(e, PipelineEvent::Reconstructed { .. }))
        .count();
    assert_eq!(reconstructions, flagged_indices.len());
    assert_eq!(pipe.samples_processed(), d.test.len() as u64);
}

#[test]
fn window_size_trades_delay_for_stability() {
    // Table 2's window sweep on the quick stream: delays are weakly
    // increasing in window size.
    let d = dataset();
    let mut delays = Vec::new();
    for w in [50usize, 100, 400] {
        let r = run_method(&MethodSpec::Proposed { window: w }, &d, &opts());
        delays.push(r.delay.unwrap_or(usize::MAX));
    }
    assert!(
        delays[0] <= delays[2],
        "W=50 delay {} > W=400 delay {}",
        delays[0],
        delays[2]
    );
}
