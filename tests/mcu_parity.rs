//! Firmware-parity integration: the stack-allocated (`no-heap`) math path
//! must agree with the heap path the host pipeline uses, because the MCU
//! port of the paper runs exactly these kernels with static buffers.

use seqdrift::linalg::fixed::{SMat, SVec};
use seqdrift::linalg::sherman::{oselm_p_update, Rank1Scratch};
use seqdrift::linalg::{vector, Matrix, Real, Rng};

const H: usize = 22;

#[test]
fn covariance_update_parity_over_long_streams() {
    let mut rng = Rng::seed_from(123);
    let mut p_heap = Matrix::identity(H);
    let mut p_stack = SMat::<H, H>::identity();
    let mut scratch = Rank1Scratch::new(H);
    for step in 0..500 {
        let mut h = [0.0 as Real; H];
        for v in &mut h {
            *v = rng.normal(0.0, 0.4);
        }
        let d_heap = oselm_p_update(&mut p_heap, &h, &mut scratch).unwrap();
        let d_stack = p_stack.oselm_p_update(&SVec::from_array(h)).unwrap();
        assert!(
            (d_heap - d_stack).abs() < 1e-4 * d_heap.abs().max(1.0),
            "step {step}: gain denominators diverged ({d_heap} vs {d_stack})"
        );
    }
    // Final matrices agree element-wise.
    let mut max_diff: Real = 0.0;
    for r in 0..H {
        for c in 0..H {
            max_diff = max_diff.max((p_heap.get(r, c) - p_stack.data[r][c]).abs());
        }
    }
    assert!(max_diff < 1e-3, "P diverged by {max_diff}");
}

#[test]
fn centroid_update_parity() {
    let mut rng = Rng::seed_from(321);
    let mut heap = vec![0.0 as Real; 16];
    let mut stack = SVec::<16>::zeros();
    for n in 0..1000u64 {
        let mut x = [0.0 as Real; 16];
        for v in &mut x {
            *v = rng.uniform_range(-1.0, 1.0);
        }
        vector::running_mean_update(&mut heap, n, &x);
        stack.running_mean_update(n, &SVec::from_array(x));
    }
    for (a, b) in heap.iter().zip(stack.as_slice()) {
        assert!((a - b).abs() < 1e-6);
    }
}

#[test]
fn stack_state_fits_pico_budget() {
    // The full per-instance model state of the fan configuration as static
    // arrays: W (22x511) + b (22) + P (22x22) + beta (22x511) in f32.
    let scalars = 22 * 511 + 22 + 22 * 22 + 22 * 511;
    let bytes = scalars * core::mem::size_of::<Real>();
    let pico_usable = (264.0 * 1024.0 * 0.75) as usize;
    assert!(
        bytes < pico_usable,
        "model state {bytes} B exceeds usable Pico RAM {pico_usable} B"
    );
    // And the detector adds only centroid sets.
    let detector_bytes = (2 * (511 + 1) * 2 + 4) * core::mem::size_of::<Real>();
    assert!(bytes + detector_bytes < pico_usable);
}
