//! End-to-end network ingest: the `seqdrift serve` / `seqdrift load` CLI
//! pair over loopback TCP, spanning oselm -> core -> fleet -> server ->
//! cli, plus a networked kill-and-resume cycle through the durable store.

use seqdrift::core::{DetectorConfig, DriftPipeline};
use seqdrift::prelude::*;
use seqdrift_cli::{commands, Cli, Command};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const DIM: usize = 6;

fn sample(rng: &mut Rng, mean: Real) -> Vec<Real> {
    let mut x = vec![0.0; DIM];
    rng.fill_normal(&mut x, mean, 0.05);
    x
}

/// Calibrate a single-class pipeline on a stable blob and serialise it.
fn checkpoint() -> Vec<u8> {
    let mut rng = Rng::seed_from(99);
    let train: Vec<Vec<Real>> = (0..120).map(|_| sample(&mut rng, 0.3)).collect();
    let mut model = MultiInstanceModel::new(1, OsElmConfig::new(DIM, 4).with_seed(3)).unwrap();
    model.init_train_class(0, &train).unwrap();
    let pairs: Vec<(usize, &[Real])> = train.iter().map(|x| (0, x.as_slice())).collect();
    let cfg = DetectorConfig::new(1, DIM).with_window(20);
    DriftPipeline::calibrate(model, cfg, &pairs)
        .unwrap()
        .to_bytes()
        .unwrap()
}

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("seqdrift-server-e2e-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Spawns `seqdrift serve` (via the library entry point) on an ephemeral
/// port, returning the discovered address, the stop flag, and the join
/// handle yielding the command's full output.
fn spawn_serve(
    extra: &str,
    model: &std::path::Path,
    port_file: &std::path::Path,
) -> (String, Arc<AtomicBool>, std::thread::JoinHandle<String>) {
    let line = format!(
        "serve --model {} --listen 127.0.0.1:0 --workers 2 --port-file {} {extra}",
        model.display(),
        port_file.display()
    );
    let argv: Vec<String> = line.split_whitespace().map(String::from).collect();
    let cli = Cli::parse(&argv).unwrap();
    let Command::Serve(args) = cli.command else {
        panic!("parsed something other than serve");
    };
    let stop = Arc::new(AtomicBool::new(false));
    let handle = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut buf = Vec::new();
            commands::serve_with_stop(&args, &mut buf, &stop).unwrap();
            String::from_utf8(buf).unwrap()
        })
    };
    let addr = wait_for_port_file(port_file);
    (addr, stop, handle)
}

fn wait_for_port_file(path: &std::path::Path) -> String {
    for _ in 0..500 {
        if let Ok(addr) = std::fs::read_to_string(path) {
            if !addr.is_empty() {
                return addr;
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("server never wrote {}", path.display());
}

/// The full CLI pair: `load --verify` proves the networked state of every
/// device is bit-identical to a local replay of the same CSV.
#[test]
fn cli_serve_and_load_verify_bit_identity_over_loopback() {
    let dir = tmp_dir("cli-pair");
    let model = dir.join("model.sqdm");
    std::fs::write(&model, checkpoint()).unwrap();

    // A features-only CSV replayed by every simulated device.
    let mut rng = Rng::seed_from(31);
    let mut csv = String::new();
    for _ in 0..80 {
        let row: Vec<String> = sample(&mut rng, 0.3)
            .iter()
            .map(|v| v.to_string())
            .collect();
        csv.push_str(&row.join(","));
        csv.push('\n');
    }
    let stream = dir.join("stream.csv");
    std::fs::write(&stream, csv).unwrap();

    let port_file = dir.join("port.txt");
    let (addr, stop, server) = spawn_serve("", &model, &port_file);

    let bench_json = dir.join("BENCH_ingest.json");
    let line = format!(
        "load --csv {} --addr {addr} --sessions 4 --batch 16 --no-header \
         --verify --model {} --bench-json {}",
        stream.display(),
        model.display(),
        bench_json.display()
    );
    let argv: Vec<String> = line.split_whitespace().map(String::from).collect();
    let cli = Cli::parse(&argv).unwrap();
    let mut buf = Vec::new();
    seqdrift_cli::run(&cli, &mut buf).unwrap();
    let out = String::from_utf8(buf).unwrap();
    assert!(out.contains("sent 320 rows"), "{out}");
    assert!(
        out.contains("verify: 4 device(s) bit-identical to local replay"),
        "{out}"
    );
    let json = std::fs::read_to_string(&bench_json).unwrap();
    assert!(json.contains("load_sessions_4_batch_16"), "{json}");

    stop.store(true, Ordering::Relaxed);
    let served = server.join().unwrap();
    assert!(served.contains("320 sample(s) processed"), "{served}");
    assert!(served.contains("4 session(s) drained"), "{served}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Kill-and-resume over the network: stream part of the data, drain the
/// server (Ctrl-C path — the same stop flag the SIGINT handler flips),
/// restart it on the same state dir, and finish the stream. The final
/// state must be bit-identical to a local replay that snapshots and
/// restores at the same cut point.
#[test]
fn networked_kill_and_resume_is_bit_identical() {
    let dir = tmp_dir("kill-resume");
    let model = dir.join("model.sqdm");
    let blob = checkpoint();
    std::fs::write(&model, &blob).unwrap();
    let state = dir.join("state");
    let state_flag = format!("--state-dir {}", state.display());

    let mut rng = Rng::seed_from(57);
    let rows: Vec<Vec<Real>> = (0..100).map(|_| sample(&mut rng, 0.3)).collect();
    let head: Vec<Real> = rows[..40].concat();
    let tail: Vec<Real> = rows[40..].concat();

    // Generation 1: stream the first 40 rows, then drain gracefully.
    let port1 = dir.join("port1.txt");
    let (addr, stop, server) = spawn_serve(&state_flag, &model, &port1);
    let (mut client, hello) = Client::connect(&*addr, 9, DIM as u32).unwrap();
    assert!(!hello.existing);
    client.send_all(&head).unwrap();
    client.bye().unwrap();
    stop.store(true, Ordering::Relaxed);
    let served = server.join().unwrap();
    assert!(served.contains("40 sample(s) processed"), "{served}");
    assert!(!served.contains("0 checkpoint flush(es)"), "{served}");

    // Generation 2: the session resumes from the durable store exactly
    // where the drain flushed it.
    let port2 = dir.join("port2.txt");
    let (addr, stop, server) = spawn_serve(&state_flag, &model, &port2);
    let (mut client, hello) = Client::connect(&*addr, 9, DIM as u32).unwrap();
    assert!(hello.existing, "session should have been resumed");
    assert_eq!(
        hello.resume_from, 40,
        "graceful drain must lose zero samples"
    );
    client.send_all(&tail).unwrap();
    let networked = client.snapshot().unwrap();
    client.bye().unwrap();
    stop.store(true, Ordering::Relaxed);
    server.join().unwrap();

    // Local mirror of the same lifecycle: 40 rows, serialise/restore at
    // the cut, 60 more rows.
    let gen1 = FleetEngine::new(FleetConfig::new(2)).unwrap();
    gen1.create_from_bytes(SessionId(9), &blob).unwrap();
    for row in head.chunks_exact(DIM) {
        gen1.feed_blocking(SessionId(9), row).unwrap();
    }
    let cut = gen1.snapshot(SessionId(9)).unwrap();
    gen1.shutdown();
    let gen2 = FleetEngine::new(FleetConfig::new(2)).unwrap();
    gen2.create_from_bytes(SessionId(9), &cut).unwrap();
    for row in tail.chunks_exact(DIM) {
        gen2.feed_blocking(SessionId(9), row).unwrap();
    }
    let local = gen2.snapshot(SessionId(9)).unwrap();
    gen2.shutdown();

    assert_eq!(
        networked, local,
        "networked kill-and-resume state diverged from the local mirror"
    );
    std::fs::remove_dir_all(&dir).ok();
}
