//! Integration of the real-data substitution path: CSV in, normalisation,
//! pipeline out. This is the route a user takes to run the actual NSL-KDD
//! or cooling-fan exports instead of the synthetic equivalents.

use seqdrift::datasets::loader;
use seqdrift::datasets::normalize::MinMaxNormalizer;
use seqdrift::prelude::*;

/// Builds a small labelled CSV in memory (two drifting concepts).
fn csv_fixture() -> String {
    let mut rng = Rng::seed_from(77);
    let mut out = String::from("f0,f1,f2,f3,class\n");
    for i in 0..400 {
        let (mean, label) = if i % 2 == 0 {
            (10.0, "normal")
        } else {
            (40.0, "attack")
        };
        let mut x = vec![0.0; 4];
        rng.fill_normal(&mut x, mean, 2.0);
        out.push_str(&format!("{},{},{},{},{label}\n", x[0], x[1], x[2], x[3]));
    }
    out
}

#[test]
fn csv_to_pipeline_roundtrip() {
    let samples = loader::parse_csv(&csv_fixture(), true, true).unwrap();
    assert_eq!(samples.len(), 400);
    let classes = 2;

    // Split, normalise on train only.
    let (train, test) = samples.split_at(200);
    let train_rows: Vec<Vec<Real>> = train.iter().map(|s| s.x.clone()).collect();
    let norm = MinMaxNormalizer::fit(&train_rows);

    // Train per-class instances on normalised data.
    let mut model = MultiInstanceModel::new(classes, OsElmConfig::new(4, 3).with_seed(5)).unwrap();
    let mut buckets = vec![Vec::new(); classes];
    for s in train {
        buckets[s.label].push(norm.apply(&s.x));
    }
    for (label, bucket) in buckets.iter().enumerate() {
        model.init_train_class(label, bucket).unwrap();
    }

    // Calibrate + stream.
    let normalised_train: Vec<(usize, Vec<Real>)> =
        train.iter().map(|s| (s.label, norm.apply(&s.x))).collect();
    let pairs: Vec<(usize, &[Real])> = normalised_train
        .iter()
        .map(|(l, x)| (*l, x.as_slice()))
        .collect();
    let det = DetectorConfig::new(classes, 4).with_window(20);
    let mut pipe = DriftPipeline::calibrate(model, det, &pairs).unwrap();

    let mut correct = 0;
    for s in test {
        let x = norm.apply(&s.x);
        let out = pipe.process(&x).unwrap();
        if out.predicted_label == Some(s.label) {
            correct += 1;
        }
    }
    assert!(
        correct > test.len() * 9 / 10,
        "accuracy {correct}/{}",
        test.len()
    );
}

#[test]
fn loader_rejects_malformed_real_data() {
    assert!(loader::parse_csv("a,b\n1,2\n3\n", true, false).is_err());
    assert!(loader::parse_csv("", false, false).is_err());
}
