//! End-to-end federation: cooperative cross-session model merging over a
//! fleet, spanning linalg -> oselm -> core -> fleet -> federate through
//! the facade crate.
//!
//! The headline scenario injects drift into 10% of a 50-session fleet,
//! merges the vanguard sessions' reconstructed models, redistributes the
//! result, and measures how much sooner the remaining 90% adapt when the
//! new concept finally reaches them.

use seqdrift::core::pipeline::PipelineEvent;
use seqdrift::core::{DetectorConfig, DriftPipeline};
use seqdrift::prelude::*;
use seqdrift_bench::json::{latency_percentiles, merge_into_file, IngestEntry};

const DIM: usize = 6;
const SESSIONS: u64 = 50;
const VANGUARDS: u64 = 5; // the injected 10%
const PHASE1: usize = 400; // drifted samples fed to each vanguard
const HORIZON: usize = 400; // phase-2 samples fed to each laggard
const NEW_MEAN: Real = 0.9; // post-drift concept (trained concept is 0.3)

fn sample(rng: &mut Rng, mean: Real) -> Vec<Real> {
    let mut x = vec![0.0; DIM];
    rng.fill_normal(&mut x, mean, 0.05);
    x
}

/// Calibrate a single-class pipeline on a stable blob and serialise it.
fn checkpoint() -> Vec<u8> {
    let mut rng = Rng::seed_from(99);
    let train: Vec<Vec<Real>> = (0..120).map(|_| sample(&mut rng, 0.3)).collect();
    let mut model = MultiInstanceModel::new(1, OsElmConfig::new(DIM, 4).with_seed(3)).unwrap();
    model.init_train_class(0, &train).unwrap();
    let pairs: Vec<(usize, &[Real])> = train.iter().map(|x| (0, x.as_slice())).collect();
    let cfg = DetectorConfig::new(1, DIM).with_window(20);
    DriftPipeline::calibrate(model, cfg, &pairs)
        .unwrap()
        .to_bytes()
        .unwrap()
}

/// Per-laggard adaptation delay after phase-2 onset, in samples: 0 when
/// the session never even flags drift (the redistributed model already
/// fits the new concept), the reconstruction-completion index when it
/// adapts, and the full horizon when it detects but never finishes.
fn laggard_delays(events: &[FleetEvent]) -> Vec<f64> {
    let mut detected = std::collections::BTreeMap::new();
    let mut reconstructed = std::collections::BTreeMap::new();
    for e in events {
        if let FleetEvent::Pipeline { id, event } = e {
            if id.0 < VANGUARDS {
                continue;
            }
            match event {
                PipelineEvent::DriftDetected { index, .. } => {
                    detected.entry(id.0).or_insert(*index);
                }
                PipelineEvent::Reconstructed { index, .. } => {
                    reconstructed.entry(id.0).or_insert(*index);
                }
                _ => {}
            }
        }
    }
    (VANGUARDS..SESSIONS)
        .map(|id| {
            if !detected.contains_key(&id) {
                0.0
            } else {
                reconstructed
                    .get(&id)
                    .map(|&r| r as f64)
                    .unwrap_or(HORIZON as f64)
            }
        })
        .collect()
}

/// One full scenario: vanguards learn the new concept in phase 1, an
/// optional merge round propagates it, and phase 2 streams the new
/// concept to every laggard. Returns the laggard delays.
fn run_scenario(merge: bool) -> Vec<f64> {
    let blob = checkpoint();
    let mut cfg = FleetConfig::new(4);
    if merge {
        cfg = cfg.with_federation(FederationConfig::default());
    }
    let fleet = FleetEngine::new(cfg).unwrap();
    for dev in 0..SESSIONS {
        fleet.create_from_bytes(SessionId(dev), &blob).unwrap();
    }

    // Phase 1: only the vanguards see the new concept; everyone else is
    // idle, so their models stay bit-identical to the baseline.
    let mut rng = Rng::seed_from(4242);
    for _ in 0..PHASE1 {
        for dev in 0..VANGUARDS {
            let x = sample(&mut rng, NEW_MEAN);
            fleet.feed_blocking(SessionId(dev), &x).unwrap();
        }
    }
    let phase1_events = fleet.drain_events();
    let adapted: std::collections::BTreeSet<u64> = phase1_events
        .iter()
        .filter_map(|e| match e {
            FleetEvent::Pipeline {
                id,
                event: PipelineEvent::Reconstructed { .. },
            } => Some(id.0),
            _ => None,
        })
        .collect();
    assert_eq!(
        adapted.len(),
        VANGUARDS as usize,
        "every vanguard must reconstruct in phase 1: {adapted:?}"
    );

    if merge {
        let mut federator = Federator::new(&fleet, &blob).unwrap();
        let round = federator.run_round(&fleet).unwrap();
        assert!(round.merged, "round should merge: {round:?}");
        assert_eq!(round.accepted, VANGUARDS, "{round:?}");
        assert_eq!(round.rejected, 0, "{round:?}");
        assert_eq!(round.redistributed, SESSIONS, "{round:?}");
        let m = fleet.metrics();
        assert_eq!(m.merge_rounds, 1);
        assert_eq!(m.contributions_accepted, VANGUARDS);
        assert_eq!(m.redistributions, SESSIONS);
    }

    // Phase 2: the new concept reaches the other 90% of the fleet.
    let mut rng = Rng::seed_from(777);
    for _ in 0..HORIZON {
        for dev in VANGUARDS..SESSIONS {
            let x = sample(&mut rng, NEW_MEAN);
            fleet.feed_blocking(SessionId(dev), &x).unwrap();
        }
    }
    let report = fleet.shutdown();
    assert_eq!(report.sessions.len(), SESSIONS as usize);
    laggard_delays(&report.events)
}

/// The acceptance scenario: with merging on, the mean adaptation delay
/// across the uninjected 90% of the fleet is strictly lower than the
/// merge-off baseline. Both runs land in `BENCH_ingest.json` through the
/// ingest schema with `unit: "samples"` declaring the honest semantics:
/// `samples_per_sec` carries the mean adaptation delay *in samples*, and
/// `p50_us`/`p99_us` the delay percentiles in the same unit.
#[test]
fn federated_merging_cuts_reconstruction_delay_for_the_fleet() {
    let mut off = run_scenario(false);
    let mut on = run_scenario(true);
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let (mean_off, mean_on) = (mean(&off), mean(&on));

    // The baseline fleet must genuinely re-learn the concept (every
    // laggard pays detection + reconstruction), otherwise the comparison
    // is vacuous.
    assert!(
        mean_off > 100.0,
        "merge-off laggards should pay a real reconstruction delay, got {mean_off}"
    );
    assert!(
        mean_on < mean_off,
        "merging must strictly lower the mean adaptation delay: on {mean_on} vs off {mean_off}"
    );

    let (off_p50, off_p99) = latency_percentiles(&mut off);
    let (on_p50, on_p99) = latency_percentiles(&mut on);
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_ingest.json");
    merge_into_file(
        &path,
        &[
            (
                "federate50_delay_merge_off".to_string(),
                IngestEntry {
                    samples_per_sec: mean_off,
                    p50_us: off_p50,
                    p99_us: off_p99,
                    samples: SESSIONS - VANGUARDS,
                    unit: Some("samples".to_string()),
                    scenario: None,
                },
            ),
            (
                "federate50_delay_merge_on".to_string(),
                IngestEntry {
                    samples_per_sec: mean_on,
                    p50_us: on_p50,
                    p99_us: on_p99,
                    samples: SESSIONS - VANGUARDS,
                    unit: Some("samples".to_string()),
                    scenario: None,
                },
            ),
        ],
    )
    .unwrap();
}

/// Drives one session through detection + reconstruction on the new
/// concept with a per-session stream, so contributor state is identical
/// across runs regardless of which other sessions exist.
fn adapt_session(fleet: &FleetEngine, dev: u64) {
    let mut rng = Rng::seed_from(10_000 + dev);
    for _ in 0..PHASE1 {
        let x = sample(&mut rng, NEW_MEAN);
        fleet.feed_blocking(SessionId(dev), &x).unwrap();
    }
}

/// Poison gating: a contributor driven `Degraded` by a NaN burst after
/// reconstructing has its pending contribution dropped (and counted in
/// `contributions_rejected`), and the merged model the healthy
/// contributors receive is bit-identical to a run where the poisoned
/// session never existed.
#[test]
fn degraded_contributor_is_rejected_and_cannot_perturb_the_merge() {
    let run = |with_victim: bool| -> (Vec<u8>, u64, u64) {
        let blob = checkpoint();
        let fleet =
            FleetEngine::new(FleetConfig::new(2).with_federation(FederationConfig::default()))
                .unwrap();
        for dev in 0..2 {
            fleet.create_from_bytes(SessionId(dev), &blob).unwrap();
            adapt_session(&fleet, dev);
        }
        if with_victim {
            fleet.create_from_bytes(SessionId(2), &blob).unwrap();
            adapt_session(&fleet, 2);
            // Mid-round NaN burst: the guard degrades the session, so its
            // freshly reconstructed model is a pending contribution that
            // must now be dropped.
            let poison = vec![Real::NAN; DIM];
            for _ in 0..3 {
                fleet.feed_blocking(SessionId(2), &poison).unwrap();
            }
        }
        let mut federator = Federator::new(&fleet, &blob).unwrap();
        let round = federator.run_round(&fleet).unwrap();
        assert!(round.merged, "{round:?}");
        assert_eq!(round.accepted, 2, "{round:?}");
        if with_victim {
            assert_eq!(round.rejected, 1, "victim must be gated out: {round:?}");
        } else {
            assert_eq!(round.rejected, 0, "{round:?}");
        }
        let snap = fleet.snapshot(SessionId(0)).unwrap();
        let m = fleet.metrics();
        let (accepted, rejected) = (m.contributions_accepted, m.contributions_rejected);
        fleet.shutdown();
        (snap, accepted, rejected)
    };

    let (clean, clean_acc, clean_rej) = run(false);
    let (poisoned, pois_acc, pois_rej) = run(true);
    assert_eq!((clean_acc, clean_rej), (2, 0));
    assert_eq!((pois_acc, pois_rej), (2, 1));
    assert_eq!(
        clean, poisoned,
        "a rejected contributor must not alter the merged model by a single bit"
    );
}

/// A merge round rejected wholesale must be loud: `run_round` emits
/// `FleetEvent::MergeRoundRejected` (and bumps `merge_rounds_rejected`)
/// instead of failing silently, both when the merged result fails
/// validation and when the robust pass leaves too few contributors.
#[test]
fn wholesale_merge_rejection_emits_a_fleet_event() {
    let run = |robust: bool| -> (RoundSummary, Vec<FleetEvent>, u64) {
        let blob = checkpoint();
        let fleet = FleetEngine::new(
            FleetConfig::new(1).with_federation(FederationConfig::default().with_robust(robust)),
        )
        .unwrap();
        fleet.create_from_bytes(SessionId(0), &blob).unwrap();
        adapt_session(&fleet, 0);
        // A NaN-beta contribution passes every health gate (the pipeline
        // itself is untouched) but can never merge.
        let mut federator =
            Federator::new(&fleet, &blob)
                .unwrap()
                .with_poison(PoisonInjector::new(
                    1,
                    vec![(0, PoisonMode::ScaledBeta(Real::NAN))],
                ));
        let round = federator.run_round(&fleet).unwrap();
        let events = fleet.drain_events();
        let rejected_rounds = fleet.metrics().merge_rounds_rejected;
        fleet.shutdown();
        (round, events, rejected_rounds)
    };

    // Robust off: the poison reaches the merge, whose validation rejects
    // the whole round.
    let (round, events, rejected_rounds) = run(false);
    assert!(!round.merged, "{round:?}");
    assert_eq!(round.reject_reasons.non_pd, 1, "{round:?}");
    assert_eq!(rejected_rounds, 1);
    assert!(
        events.iter().any(|e| matches!(
            e,
            FleetEvent::MergeRoundRejected {
                candidates: 1,
                reason: MergeRejectReason::FailedValidation,
            }
        )),
        "validation failure must surface as an event: {events:?}"
    );

    // Robust on: the same contribution is caught individually by the
    // scoring pass, leaving too few contributors — still a wholesale
    // rejection, still surfaced.
    let (round, events, rejected_rounds) = run(true);
    assert!(!round.merged, "{round:?}");
    assert_eq!(round.reject_reasons.non_pd, 1, "{round:?}");
    assert_eq!(rejected_rounds, 1);
    assert!(
        events.iter().any(|e| matches!(
            e,
            FleetEvent::MergeRoundRejected {
                candidates: 1,
                reason: MergeRejectReason::TooFewContributors,
            }
        )),
        "an emptied round must surface as an event: {events:?}"
    );
}

/// Durable merged generations: a federator built against a resumed
/// engine restores the last merged model as its baseline, so a power
/// loss never regresses the fleet-wide model.
#[test]
fn merged_generation_survives_restart() {
    let dir = std::env::temp_dir().join(format!("seqdrift-federate-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let blob = checkpoint();
    let cfg = || {
        FleetConfig::new(2)
            .with_federation(FederationConfig::default())
            .with_state_dir(&dir)
    };
    let fleet = FleetEngine::new(cfg()).unwrap();
    fleet.create_from_bytes(SessionId(0), &blob).unwrap();
    adapt_session(&fleet, 0);
    let mut federator = Federator::new(&fleet, &blob).unwrap();
    let round = federator.run_round(&fleet).unwrap();
    assert!(round.merged, "{round:?}");
    assert_eq!(
        round.persisted_generation,
        Some(1),
        "first merged generation must be flushed: {round:?}"
    );
    let merged_beta: Vec<Real> = federator
        .baseline()
        .instance(0)
        .unwrap()
        .network()
        .beta()
        .as_slice()
        .to_vec();
    fleet.shutdown();

    // "Power loss": a brand-new engine and federator over the same state
    // dir. The restored baseline is the merged model, not the reference.
    let fleet2 = FleetEngine::new(cfg()).unwrap();
    let federator2 = Federator::new(&fleet2, &blob).unwrap();
    let restored_beta = federator2.baseline().instance(0).unwrap().network().beta();
    assert_eq!(restored_beta.as_slice(), merged_beta.as_slice());
    let reference_beta = DriftPipeline::from_bytes(&blob)
        .unwrap()
        .model()
        .instance(0)
        .unwrap()
        .network()
        .beta()
        .clone();
    assert_ne!(
        restored_beta.as_slice(),
        reference_beta.as_slice(),
        "restored baseline should be the merged model, not the reference"
    );
    fleet2.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
