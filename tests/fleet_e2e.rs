//! End-to-end fleet integration: one calibrated checkpoint multiplexed
//! across simulated devices through the facade crate, spanning
//! oselm -> core -> persist -> fleet.

use seqdrift::core::pipeline::PipelineEvent;
use seqdrift::core::{DetectorConfig, DriftPipeline};
use seqdrift::prelude::*;

const DIM: usize = 6;
const DEVICES: u64 = 10;

fn sample(rng: &mut Rng, mean: Real) -> Vec<Real> {
    let mut x = vec![0.0; DIM];
    rng.fill_normal(&mut x, mean, 0.05);
    x
}

/// Calibrate a single-class pipeline on a stable blob and serialise it.
fn checkpoint() -> Vec<u8> {
    let mut rng = Rng::seed_from(99);
    let train: Vec<Vec<Real>> = (0..120).map(|_| sample(&mut rng, 0.3)).collect();
    let mut model = MultiInstanceModel::new(1, OsElmConfig::new(DIM, 4).with_seed(3)).unwrap();
    model.init_train_class(0, &train).unwrap();
    let pairs: Vec<(usize, &[Real])> = train.iter().map(|x| (0, x.as_slice())).collect();
    let cfg = DetectorConfig::new(1, DIM).with_window(20);
    DriftPipeline::calibrate(model, cfg, &pairs)
        .unwrap()
        .to_bytes()
        .unwrap()
}

/// Odd-numbered devices receive a shifted stream after sample 100; even
/// devices stay stable. Only the odd ones may flag drift, and every
/// session must come back intact at shutdown.
#[test]
fn fleet_isolates_drift_to_the_drifting_devices() {
    let blob = checkpoint();
    let fleet = FleetEngine::new(FleetConfig::new(3)).unwrap();
    for dev in 0..DEVICES {
        fleet.create_from_bytes(SessionId(dev), &blob).unwrap();
    }

    let mut rng = Rng::seed_from(17);
    for t in 0..400 {
        for dev in 0..DEVICES {
            let drifted = dev % 2 == 1 && t >= 100;
            let mean = if drifted { 0.75 } else { 0.3 };
            let x = sample(&mut rng, mean);
            fleet.feed_blocking(SessionId(dev), &x).unwrap();
        }
    }

    let report = fleet.shutdown();
    assert_eq!(report.sessions.len(), DEVICES as usize);
    assert_eq!(report.metrics.samples_processed, 400 * DEVICES);

    let drifted_devices: std::collections::BTreeSet<u64> = report
        .events
        .iter()
        .filter_map(|e| match e {
            FleetEvent::Pipeline {
                id,
                event: PipelineEvent::DriftDetected { .. },
            } => Some(id.0),
            _ => None,
        })
        .collect();
    for dev in drifted_devices.iter() {
        assert_eq!(dev % 2, 1, "stable device {dev} flagged drift");
    }
    assert!(
        drifted_devices.len() >= 4,
        "only {drifted_devices:?} of the 5 drifting devices detected"
    );

    // Every returned session processed exactly its share of the stream.
    for (id, pipeline) in &report.sessions {
        assert_eq!(
            pipeline.samples_processed(),
            400,
            "session {id} sample count"
        );
    }
}

/// Snapshot mid-stream, restore into a second fleet, and check the restored
/// sessions continue bit-identically to an uninterrupted reference.
#[test]
fn fleet_snapshot_restore_continues_identically() {
    let blob = checkpoint();
    let mut reference = DriftPipeline::from_bytes(&blob).unwrap();

    let fleet = FleetEngine::new(FleetConfig::new(2)).unwrap();
    fleet.create_from_bytes(SessionId(0), &blob).unwrap();

    let mut rng = Rng::seed_from(23);
    let warmup: Vec<Vec<Real>> = (0..150).map(|_| sample(&mut rng, 0.3)).collect();
    let tail: Vec<Vec<Real>> = (0..150).map(|_| sample(&mut rng, 0.3)).collect();

    for x in &warmup {
        fleet.feed_blocking(SessionId(0), x).unwrap();
        reference.process(x).unwrap();
    }
    let snap = fleet.snapshot(SessionId(0)).unwrap();
    fleet.shutdown();

    let resumed = FleetEngine::new(FleetConfig::new(2)).unwrap();
    resumed.create_from_bytes(SessionId(7), &snap).unwrap();
    for x in &tail {
        resumed.feed_blocking(SessionId(7), x).unwrap();
    }
    let report = resumed.shutdown();
    let (_, mut restored) = report.sessions.into_iter().next().unwrap();
    assert_eq!(restored.samples_processed(), 300);

    // Both copies have seen the same 300 samples; their next outputs agree
    // exactly.
    for x in &tail {
        reference.process(x).unwrap();
    }
    let probe = sample(&mut rng, 0.3);
    assert_eq!(
        reference.process(&probe).unwrap(),
        restored.process(&probe).unwrap()
    );
}
