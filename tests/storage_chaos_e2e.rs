//! Storage-chaos end-to-end: a 16-session fleet ingesting under a
//! sustained ENOSPC + EIO + lying-fsync storm.
//!
//! The network sibling of `chaos_e2e.rs`: where that suite corrupts the
//! wire under a healthy server, this one corrupts the *disk* under a
//! healthy fleet. The invariants proved here:
//!
//! * **Zero sample loss, zero panics** — every `feed_blocking` during
//!   the storm returns `Ok`; the fleet never lets a failing disk touch
//!   the in-memory models.
//! * **Degrade, then recover** — durability health flips to degraded on
//!   the first failed flush and returns to durable on its own once the
//!   fault window closes (the background retry loop drains every
//!   buffered write).
//! * **Kill-and-resume bit-identity** — after the storm heals and the
//!   process dies, a fresh engine on a healthy disk resumes from
//!   whatever survived (torn frames from lying fsyncs fall back through
//!   older generations) and, with the lost tails replayed, every
//!   session matches an uninterrupted memory-only run bit-for-bit.
//! * **Seeded replay** — the same seed drives byte-for-byte the same
//!   fault schedule, so any failing storm reproduces from one number.

use seqdrift::core::{DetectorConfig, DriftPipeline};
use seqdrift::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

const DIM: usize = 5;
const SESSIONS: u64 = 16;
const INTERVAL: u64 = 32;
const CUT: usize = 192; // samples fed under the storm (before the "kill")
const TOTAL: usize = 256; // full stream length for the reference run

fn checkpoint() -> Vec<u8> {
    let mut rng = Rng::seed_from(77);
    let train: Vec<Vec<Real>> = (0..120)
        .map(|_| {
            let mut x = vec![0.0; DIM];
            rng.fill_normal(&mut x, 0.3, 0.05);
            x
        })
        .collect();
    let mut model = MultiInstanceModel::new(1, OsElmConfig::new(DIM, 4).with_seed(7)).unwrap();
    model.init_train_class(0, &train).unwrap();
    let pairs: Vec<(usize, &[Real])> = train.iter().map(|x| (0, x.as_slice())).collect();
    DriftPipeline::calibrate(model, DetectorConfig::new(1, DIM).with_window(20), &pairs)
        .unwrap()
        .to_bytes()
        .unwrap()
}

/// Deterministic per-session stream.
fn stream(session: u64, len: usize) -> Vec<Vec<Real>> {
    let mut rng = Rng::seed_from(4000 + session);
    (0..len)
        .map(|_| {
            let mut x = vec![0.0; DIM];
            rng.fill_normal(&mut x, 0.3, 0.05);
            x
        })
        .collect()
}

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "seqdrift-storagechaos-{name}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn storm_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_enospc(300)
        .with_eio(200, 3)
        .with_lying_fsync(300)
}

#[test]
fn fleet_survives_storage_storm_and_resumes_bit_identical() {
    let blob = checkpoint();
    let dir = tmp_dir("storm");

    // --- Reference: uninterrupted, memory-only, full streams. ---
    let reference = FleetEngine::new(FleetConfig::new(4)).unwrap();
    let mut expected = Vec::new();
    for s in 0..SESSIONS {
        reference.create_from_bytes(SessionId(s), &blob).unwrap();
        for x in stream(s, TOTAL) {
            reference.feed_blocking(SessionId(s), &x).unwrap();
        }
        expected.push(reference.snapshot(SessionId(s)).unwrap());
    }
    drop(reference);

    // --- Victim: same streams, durable store on a failing disk. ---
    let vfs = Arc::new(FaultVfs::new(storm_plan(0xBAD_D15C)).with_base(&dir));
    {
        let victim = FleetEngine::new(
            FleetConfig::new(4)
                .with_checkpoint_interval(INTERVAL)
                .with_state_dir(&dir)
                .with_state_keep_generations(4)
                .with_state_vfs(Arc::clone(&vfs) as Arc<dyn Vfs>)
                .with_flush_retry(Duration::from_millis(2), Duration::from_millis(50)),
        )
        .unwrap();
        for s in 0..SESSIONS {
            victim.create_from_bytes(SessionId(s), &blob).unwrap();
        }
        // Zero sample loss: every feed is accepted while the disk burns.
        for t in 0..CUT {
            for s in 0..SESSIONS {
                victim
                    .feed_blocking(SessionId(s), &stream(s, CUT)[t])
                    .unwrap();
            }
        }
        // Wait until every sample is actually processed, then check the
        // storm really bit (this seed injects plenty of faults) and the
        // fleet degraded without a single panic or dropped sample.
        let deadline = Instant::now() + Duration::from_secs(30);
        while victim.metrics().samples_processed < SESSIONS * CUT as u64
            && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        let m = victim.metrics();
        assert_eq!(m.samples_processed, SESSIONS * CUT as u64);
        assert_eq!(m.panics_caught, 0);
        assert_eq!(m.samples_dropped, 0);
        assert!(vfs.fault_count() > 0, "the storm never injected a fault");
        assert!(
            m.durability_degraded >= 1,
            "sustained ENOSPC/EIO never degraded durability: {m:?}"
        );

        // The fault window closes; the retry loop must drain every
        // buffered write and report durable again on its own.
        vfs.set_active(false);
        let deadline = Instant::now() + Duration::from_secs(30);
        while victim.durability_health() != DurabilityHealth::Durable && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(victim.durability_health(), DurabilityHealth::Durable);
        let m = victim.metrics();
        assert!(m.durability_recovered >= 1, "{m:?}");
        // Kill: whatever reached stable storage is all the next process
        // gets. (Lying fsyncs mean some newest generations are torn.)
        drop(victim);
    }

    // --- Resume on a healthy disk, replay each lost tail. ---
    let revived = FleetEngine::new(
        FleetConfig::new(4)
            .with_checkpoint_interval(INTERVAL)
            .with_state_dir(&dir)
            .with_state_keep_generations(4),
    )
    .unwrap();
    let resumed = revived.resume().unwrap();
    assert!(!resumed.is_empty(), "nothing survived the storm");
    let mut seen = std::collections::HashSet::new();
    for &(id, samples_processed) in &resumed {
        assert!(
            samples_processed <= CUT as u64,
            "{id}: resumed ahead of the kill point"
        );
        seen.insert(id.0);
        for x in &stream(id.0, TOTAL)[samples_processed as usize..] {
            revived.feed_blocking(id, x).unwrap();
        }
    }
    // A session whose every on-disk generation was torn by lying fsyncs
    // is not resumed; it restarts from the reference checkpoint — lost
    // progress, never a wrong model.
    for s in 0..SESSIONS {
        if seen.contains(&s) {
            continue;
        }
        revived.create_from_bytes(SessionId(s), &blob).unwrap();
        for x in stream(s, TOTAL) {
            revived.feed_blocking(SessionId(s), &x).unwrap();
        }
    }
    for s in 0..SESSIONS {
        let got = revived.snapshot(SessionId(s)).unwrap();
        assert_eq!(
            got, expected[s as usize],
            "session {s}: post-storm state diverged from the uninterrupted run"
        );
    }
    drop(revived);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn same_seed_replays_the_same_storm() {
    // Two stores in different directories, identical op sequences (real
    // pipeline checkpoints + quarantine verdicts), same seed: the
    // injected fault logs must match byte for byte. `with_base` keys the
    // schedule on store-relative paths, so location does not matter.
    let blob = checkpoint();
    let drive = |dir: &std::path::PathBuf| {
        let vfs = Arc::new(FaultVfs::new(storm_plan(0x5EED)).with_base(dir));
        let store = Store::open_with_vfs(
            dir,
            StoreConfig::default().with_keep_generations(4),
            Arc::clone(&vfs) as Arc<dyn Vfs>,
        )
        .unwrap();
        for round in 0..12u64 {
            for s in 0..4u64 {
                let _ = store.put(s, &blob);
            }
            let _ = store.set_quarantined(
                round % 4,
                seqdrift::store::LedgerEntry {
                    reason_code: 1,
                    restarts_spent: round,
                },
            );
            let _ = store.load(round % 4);
        }
        drop(store);
        vfs.take_events()
    };
    let dir_a = tmp_dir("replay-a");
    let dir_b = tmp_dir("replay-b");
    let events_a = drive(&dir_a);
    let events_b = drive(&dir_b);
    assert!(!events_a.is_empty(), "the replay seed injected nothing");
    assert_eq!(events_a, events_b, "same seed produced different storms");
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}
