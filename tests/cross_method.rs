//! Cross-method integration: the five §4.2 combinations side by side,
//! checking the relative claims of the paper's evaluation hold end to end.

use seqdrift::datasets::nslkdd::{self, NslKddConfig};
use seqdrift::eval::methods::MethodSpec;
use seqdrift::eval::runner::{run_method, RunOptions, RunResult};

fn dataset() -> seqdrift::datasets::DriftDataset {
    nslkdd::generate(&NslKddConfig {
        n_train: 400,
        n_test: 4000,
        drift_point: 1400,
        ..NslKddConfig::default()
    })
}

fn run_all() -> Vec<RunResult> {
    let d = dataset();
    let opts = RunOptions {
        hidden: 22,
        seed: 42,
        accuracy_window: 500,
    };
    [
        MethodSpec::Proposed { window: 100 },
        MethodSpec::BaselineNoDetect,
        MethodSpec::QuantTree {
            batch: 160,
            bins: 32,
        },
        MethodSpec::Spll { batch: 160 },
        MethodSpec::Onlad { forgetting: 0.97 },
    ]
    .iter()
    .map(|s| run_method(s, &d, &opts))
    .collect()
}

fn find<'a>(rs: &'a [RunResult], needle: &str) -> &'a RunResult {
    rs.iter()
        .find(|r| r.method.contains(needle))
        .unwrap_or_else(|| panic!("{needle} missing"))
}

#[test]
fn active_methods_beat_the_frozen_baseline() {
    let rs = run_all();
    let baseline = find(&rs, "Baseline").accuracy;
    for needle in ["Proposed", "Quant Tree", "SPLL"] {
        let acc = find(&rs, needle).accuracy;
        assert!(
            acc > baseline + 0.02,
            "{needle} {acc:.3} vs baseline {baseline:.3}"
        );
    }
}

#[test]
fn batch_methods_detect_faster_than_proposed() {
    // Table 2's delay ordering: batch detectors flag at the first post-
    // drift batch boundary; the proposed method needs the centroid to
    // accumulate displacement.
    let rs = run_all();
    let qt = find(&rs, "Quant Tree").delay.expect("QT detects");
    let spll = find(&rs, "SPLL").delay.expect("SPLL detects");
    let proposed = find(&rs, "Proposed").delay.expect("proposed detects");
    assert!(qt < proposed, "qt {qt} >= proposed {proposed}");
    assert!(spll < proposed, "spll {spll} >= proposed {proposed}");
}

#[test]
fn proposed_stays_within_a_few_points_of_batch_methods() {
    // The headline trade-off: 3.8-4.3% accuracy loss for a ~10x memory
    // reduction. Allow a slightly wider band on the shortened stream.
    let rs = run_all();
    let qt = find(&rs, "Quant Tree").accuracy;
    let proposed = find(&rs, "Proposed").accuracy;
    assert!(
        qt - proposed < 0.12,
        "gap {:.3} too wide (qt {qt:.3}, proposed {proposed:.3})",
        qt - proposed
    );
}

#[test]
fn proposed_memory_is_far_below_batch_methods() {
    let rs = run_all();
    let qt = find(&rs, "Quant Tree").detector_memory_scalars;
    let spll = find(&rs, "SPLL").detector_memory_scalars;
    let proposed = find(&rs, "Proposed").detector_memory_scalars;
    assert!(proposed * 10 < qt, "proposed {proposed} vs qt {qt}");
    assert!(proposed * 20 < spll, "proposed {proposed} vs spll {spll}");
}

#[test]
fn passive_and_baseline_never_flag_drift() {
    let rs = run_all();
    assert!(find(&rs, "Baseline").detections.is_empty());
    assert!(find(&rs, "ONLAD").detections.is_empty());
}
