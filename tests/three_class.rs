//! Three-class integration: the paper's Figure 3 illustrates the method
//! with three labels; everything in the pipeline (argmin prediction,
//! per-label centroids, Algorithm 3's pairwise spread, cluster matching)
//! must work beyond the two-class evaluation datasets.

use seqdrift::core::pipeline::PipelineEvent;
use seqdrift::prelude::*;

const DIM: usize = 8;
/// Pre-drift class means.
const MEANS0: [Real; 3] = [0.15, 0.5, 0.85];
/// Post-drift class means (each within 0.1 of its own old position, far
/// from the others, so label identity is preserved).
const MEANS1: [Real; 3] = [0.25, 0.6, 0.95];

fn blob(rng: &mut Rng, mean: Real) -> Vec<Real> {
    let mut x = vec![0.0; DIM];
    rng.fill_normal(&mut x, mean, 0.03);
    x
}

fn build() -> (DriftPipeline, Rng) {
    let mut rng = Rng::seed_from(0x3C1A);
    let mut model = MultiInstanceModel::new(3, OsElmConfig::new(DIM, 5).with_seed(11)).unwrap();
    let mut train_pairs: Vec<(usize, Vec<Real>)> = Vec::new();
    for (label, &mean) in MEANS0.iter().enumerate() {
        let blobs: Vec<Vec<Real>> = (0..120).map(|_| blob(&mut rng, mean)).collect();
        model.init_train_class(label, &blobs).unwrap();
        train_pairs.extend(blobs.into_iter().map(|x| (label, x)));
    }
    let pairs: Vec<(usize, &[Real])> = train_pairs
        .iter()
        .map(|(l, x)| (*l, x.as_slice()))
        .collect();
    let det = DetectorConfig::new(3, DIM).with_window(30);
    let pipeline = DriftPipeline::calibrate(model, det, &pairs).unwrap();
    (pipeline, rng)
}

#[test]
fn three_class_prediction_is_accurate() {
    let (mut p, mut rng) = build();
    let mut correct = 0;
    for i in 0..300 {
        let label = i % 3;
        let x = blob(&mut rng, MEANS0[label]);
        if p.process(&x).unwrap().predicted_label == Some(label) {
            correct += 1;
        }
    }
    assert!(correct > 290, "accuracy {correct}/300");
    assert!(p.events().is_empty(), "false positives: {:?}", p.events());
}

#[test]
fn three_class_drift_detected_and_recovered() {
    let (mut p, mut rng) = build();
    // Stable phase.
    for i in 0..200 {
        let x = blob(&mut rng, MEANS0[i % 3]);
        p.process(&x).unwrap();
    }
    // All three classes shift.
    let mut detected = false;
    let mut tail_correct = 0;
    let n = 2500;
    for i in 0..n {
        let label = i % 3;
        let x = blob(&mut rng, MEANS1[label]);
        let out = p.process(&x).unwrap();
        detected |= out.drift_detected;
        if i >= n - 300 && out.predicted_label == Some(label) {
            tail_correct += 1;
        }
    }
    assert!(detected, "three-class drift never detected");
    assert!(
        p.events()
            .iter()
            .any(|e| matches!(e, PipelineEvent::Reconstructed { .. })),
        "no reconstruction completed"
    );
    // Because each new concept stays nearest its own old coordinate, the
    // reconstruction should preserve label identity directly (no
    // permutation needed).
    assert!(
        tail_correct > 270,
        "post-recovery tail accuracy {tail_correct}/300"
    );
}

#[test]
fn three_class_memory_is_constant() {
    let (mut p, mut rng) = build();
    let before = p.detector_memory_scalars();
    for i in 0..1000 {
        let x = blob(&mut rng, MEANS0[i % 3]);
        p.process(&x).unwrap();
    }
    assert_eq!(p.detector_memory_scalars(), before);
    // 3 centroid sets x (3 classes x 8 dims + 3 counts) + bookkeeping.
    assert!(before < 150, "unexpectedly large detector state: {before}");
}
