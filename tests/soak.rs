//! Soak test: a long stream with *multiple* successive concept drifts.
//!
//! The paper evaluates one drift per stream; a deployed device lives
//! through many. This exercises the full detect → reconstruct → rebase →
//! detect-again cycle repeatedly and checks the system neither wedges
//! (stops detecting) nor chatters (floods false positives), and that
//! memory stays flat.

use seqdrift::core::pipeline::PipelineEvent;
use seqdrift::prelude::*;

/// Concept positions for each era of the stream (class0, class1). Each
/// era shifts both classes by 0.25 — less than half the inter-class gap,
/// so every new concept stays nearest its own previous centroid and label
/// identity is preserved through reconstruction; eras 2/3 reoccur.
const ERAS: [(f32, f32); 4] = [(0.2, 0.9), (0.45, 1.15), (0.2, 0.9), (0.45, 1.15)];
const ERA_LEN: usize = 1500;

fn build_pipeline(rng: &mut Rng) -> DriftPipeline {
    let dim = 6;
    let blob = |rng: &mut Rng, mean: Real| -> Vec<Real> {
        let mut x = vec![0.0; dim];
        rng.fill_normal(&mut x, mean, 0.05);
        x
    };
    let class0: Vec<Vec<Real>> = (0..150).map(|_| blob(rng, ERAS[0].0)).collect();
    let class1: Vec<Vec<Real>> = (0..150).map(|_| blob(rng, ERAS[0].1)).collect();
    let mut model = MultiInstanceModel::new(2, OsElmConfig::new(dim, 4).with_seed(7)).unwrap();
    model.init_train_class(0, &class0).unwrap();
    model.init_train_class(1, &class1).unwrap();
    let train: Vec<(usize, &[Real])> = class0
        .iter()
        .map(|x| (0usize, x.as_slice()))
        .chain(class1.iter().map(|x| (1usize, x.as_slice())))
        .collect();
    let det = DetectorConfig::new(2, dim).with_window(25);
    DriftPipeline::calibrate(model, det, &train).unwrap()
}

#[test]
fn survives_four_eras_of_drift() {
    let mut rng = Rng::seed_from(0x50A1);
    let mut pipeline = build_pipeline(&mut rng);
    let mem_before = pipeline.detector_memory_scalars();

    let mut per_era_detections = vec![0usize; ERAS.len()];
    for (era, &(m0, m1)) in ERAS.iter().enumerate() {
        for i in 0..ERA_LEN {
            let (mean, _label) = if i % 2 == 0 { (m0, 0) } else { (m1, 1) };
            let mut x = vec![0.0; 6];
            rng.fill_normal(&mut x, mean as Real, 0.05);
            let out = pipeline.process(&x).unwrap();
            if out.drift_detected {
                per_era_detections[era] += 1;
            }
        }
    }

    // Era 0 continues the training concept: no detection expected.
    assert_eq!(
        per_era_detections[0], 0,
        "false positives in the training era: {per_era_detections:?}"
    );
    // Every later era's concept switch must be caught (exactly once per
    // era: detect, reconstruct, stay quiet).
    for era in 1..ERAS.len() {
        assert_eq!(
            per_era_detections[era], 1,
            "era {era}: detections {per_era_detections:?}"
        );
    }

    // Each detection was followed by a completed reconstruction.
    let detections = pipeline
        .events()
        .iter()
        .filter(|e| matches!(e, PipelineEvent::DriftDetected { .. }))
        .count();
    let reconstructions = pipeline
        .events()
        .iter()
        .filter(|e| matches!(e, PipelineEvent::Reconstructed { .. }))
        .count();
    assert_eq!(detections, 3);
    assert_eq!(reconstructions, 3);

    // Memory is flat across 6000 samples and 3 reconstructions.
    assert_eq!(pipeline.detector_memory_scalars(), mem_before);
}

#[test]
fn post_era_accuracy_recovers_every_time() {
    let mut rng = Rng::seed_from(0xACC2);
    let mut pipeline = build_pipeline(&mut rng);

    for &(m0, m1) in ERAS.iter() {
        let mut correct_tail = 0;
        let tail_start = ERA_LEN - 300;
        for i in 0..ERA_LEN {
            let (mean, label) = if i % 2 == 0 { (m0, 0) } else { (m1, 1) };
            let mut x = vec![0.0; 6];
            rng.fill_normal(&mut x, mean as Real, 0.05);
            let out = pipeline.process(&x).unwrap();
            if i >= tail_start {
                // Permutation-tolerant: count agreement with either parity.
                let p = out.predicted_label.unwrap();
                if p == label {
                    correct_tail += 1;
                }
            }
        }
        // The tail of each era must be classified consistently: either
        // direct or fully swapped labels (reconstruction may permute).
        let swapped = 300 - correct_tail;
        let best = correct_tail.max(swapped);
        assert!(
            best > 270,
            "era tail accuracy only {best}/300 (direct {correct_tail})"
        );
    }
}
