//! Property-based tests for OS-ELM invariants, driven by seeded RNG loops
//! (the workspace builds offline; no proptest).

use seqdrift_linalg::{Real, Rng};
use seqdrift_oselm::{Activation, Autoencoder, MultiInstanceModel, OsElm, OsElmConfig};

const CASES: u64 = 32;

fn for_cases(f: impl Fn(&mut Rng)) {
    for case in 0..CASES {
        let mut rng = Rng::seed_from(0x33CC ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        f(&mut rng);
    }
}

fn dataset(n: usize, dim: usize, seed: u64) -> Vec<Vec<Real>> {
    let mut rng = Rng::seed_from(seed);
    (0..n)
        .map(|_| {
            let mut x = vec![0.0; dim];
            rng.fill_uniform(&mut x, 0.0, 1.0);
            x
        })
        .collect()
}

/// The OS-ELM theorem: sequential training after an initial batch gives the
/// same β as one batch solve over all data (up to f32 rounding), regardless
/// of the split point, dimensions, or data.
#[test]
fn sequential_equals_batch_anywhere() {
    for_cases(|rng| {
        let seed = rng.below(5000);
        let dim = 2 + rng.below(5) as usize;
        let hidden = 2 + rng.below(7) as usize;
        let n_init = 10 + rng.below(15) as usize;
        let n_seq = 1 + rng.below(24) as usize;
        let all = dataset(n_init + n_seq, dim, seed);
        let cfg = OsElmConfig::new(dim, hidden)
            .with_seed(seed ^ 0xABCD)
            .with_lambda(0.1);

        let mut seq = OsElm::new(cfg.clone()).unwrap();
        seq.init_train(&all[..n_init], &all[..n_init]).unwrap();
        for x in &all[n_init..] {
            seq.seq_train(x, x).unwrap();
        }
        let mut batch = OsElm::new(cfg).unwrap();
        batch.init_train(&all, &all).unwrap();

        assert!(seq.beta().approx_eq(batch.beta(), 0.08));
    });
}

/// Prediction is a pure function: same input, same output, and training
/// other samples does not corrupt scratch state.
#[test]
fn predict_is_deterministic() {
    for_cases(|rng| {
        let seed = rng.below(5000);
        let dim = 2 + rng.below(4) as usize;
        let xs = dataset(20, dim, seed);
        let mut m = OsElm::new(OsElmConfig::new(dim, 4).with_seed(seed)).unwrap();
        m.init_train(&xs, &xs).unwrap();
        let a = m.predict(&xs[0]).unwrap();
        let _ = m.predict(&xs[1]).unwrap();
        let b = m.predict(&xs[0]).unwrap();
        assert_eq!(a, b);
    });
}

/// Autoencoder scores are non-negative for any input and any metric.
#[test]
fn autoencoder_scores_nonnegative() {
    for_cases(|rng| {
        let seed = rng.below(5000);
        let mut probe = vec![0.0; 4];
        rng.fill_uniform(&mut probe, -5.0, 5.0);
        let xs = dataset(20, 4, seed);
        let mut ae = Autoencoder::new(OsElmConfig::new(4, 3).with_seed(seed)).unwrap();
        ae.init_train(&xs).unwrap();
        assert!(ae.score(&probe).unwrap() >= 0.0);
    });
}

/// The multi-instance argmin prediction always returns a valid label whose
/// score is the minimum across instances.
#[test]
fn multi_instance_argmin_invariant() {
    for_cases(|rng| {
        let seed = rng.below(5000);
        let classes = 2 + rng.below(3) as usize;
        let mut m =
            MultiInstanceModel::new(classes, OsElmConfig::new(4, 3).with_seed(seed)).unwrap();
        for c in 0..classes {
            m.init_train_class(c, &dataset(15, 4, seed + c as u64))
                .unwrap();
        }
        let probe = dataset(1, 4, seed ^ 77).remove(0);
        let mut scores = vec![0.0; classes];
        m.scores_into(&probe, &mut scores).unwrap();
        let p = m.predict(&probe).unwrap();
        assert!(p.label < classes);
        for &s in &scores {
            assert!(p.score <= s + 1e-6);
        }
    });
}

/// Persistence is lossless: serialise -> restore -> identical predictions
/// and identical continued training, for any shape and training history.
#[test]
fn persist_roundtrip_is_lossless() {
    for_cases(|rng| {
        let seed = rng.below(5000);
        let dim = 1 + rng.below(5) as usize;
        let hidden = 1 + rng.below(5) as usize;
        let n_train = 4 + rng.below(26) as usize;
        let xs = dataset(n_train, dim, seed);
        let mut m = OsElm::new(OsElmConfig::new(dim, hidden).with_seed(seed ^ 0xBEEF)).unwrap();
        m.init_train(&xs, &xs).unwrap();
        let mut restored = OsElm::from_bytes(&m.to_bytes()).unwrap();
        let probe = dataset(1, dim, seed ^ 7).remove(0);
        assert_eq!(
            m.predict(&probe).unwrap(),
            restored.predict(&probe).unwrap()
        );
        // Continued training stays in lockstep.
        m.seq_train(&probe, &probe).unwrap();
        restored.seq_train(&probe, &probe).unwrap();
        assert!(m.beta().approx_eq(restored.beta(), 0.0));
        assert!(m.p().approx_eq(restored.p(), 0.0));
    });
}

/// Truncating a serialised blob at any point is rejected, never
/// misinterpreted.
#[test]
fn persist_rejects_any_truncation() {
    for_cases(|rng| {
        let seed = rng.below(1000);
        let xs = dataset(8, 3, seed);
        let mut m = OsElm::new(OsElmConfig::new(3, 2).with_seed(seed)).unwrap();
        m.init_train(&xs, &xs).unwrap();
        let blob = m.to_bytes();
        let cut = (rng.below(200) as usize).min(blob.len().saturating_sub(1));
        assert!(OsElm::from_bytes(&blob[..cut]).is_err());
    });
}

/// Forgetting with α = 1 is exactly plain OS-ELM for any stream.
#[test]
fn alpha_one_equals_plain() {
    for_cases(|rng| {
        let seed = rng.below(5000);
        let all = dataset(30, 3, seed);
        let cfg = OsElmConfig::new(3, 4)
            .with_seed(seed)
            .with_activation(Activation::Tanh);
        let mut plain = OsElm::new(cfg.clone()).unwrap();
        let mut f1 = OsElm::new(cfg.with_forgetting(1.0)).unwrap();
        plain.init_train(&all[..15], &all[..15]).unwrap();
        f1.init_train(&all[..15], &all[..15]).unwrap();
        for x in &all[15..] {
            plain.seq_train(x, x).unwrap();
            f1.seq_train(x, x).unwrap();
        }
        assert!(plain.beta().approx_eq(f1.beta(), 1e-4));
    });
}
