//! Property-based tests for OS-ELM invariants.

use proptest::prelude::*;
use seqdrift_linalg::{Real, Rng};
use seqdrift_oselm::{Activation, Autoencoder, MultiInstanceModel, OsElm, OsElmConfig};

fn dataset(n: usize, dim: usize, seed: u64) -> Vec<Vec<Real>> {
    let mut rng = Rng::seed_from(seed);
    (0..n)
        .map(|_| {
            let mut x = vec![0.0; dim];
            rng.fill_uniform(&mut x, 0.0, 1.0);
            x
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The OS-ELM theorem: sequential training after an initial batch gives
    /// the same β as one batch solve over all data (up to f32 rounding),
    /// regardless of the split point, dimensions, or data.
    #[test]
    fn sequential_equals_batch_anywhere(
        seed in 0u64..5000,
        dim in 2usize..7,
        hidden in 2usize..9,
        n_init in 10usize..25,
        n_seq in 1usize..25,
    ) {
        let all = dataset(n_init + n_seq, dim, seed);
        let cfg = OsElmConfig::new(dim, hidden).with_seed(seed ^ 0xABCD).with_lambda(0.1);

        let mut seq = OsElm::new(cfg.clone()).unwrap();
        seq.init_train(&all[..n_init].to_vec(), &all[..n_init].to_vec()).unwrap();
        for x in &all[n_init..] {
            seq.seq_train(x, x).unwrap();
        }
        let mut batch = OsElm::new(cfg).unwrap();
        batch.init_train(&all, &all).unwrap();

        prop_assert!(seq.beta().approx_eq(batch.beta(), 0.08));
    }

    /// Prediction is a pure function: same input, same output, and training
    /// other samples does not corrupt scratch state.
    #[test]
    fn predict_is_deterministic(seed in 0u64..5000, dim in 2usize..6) {
        let xs = dataset(20, dim, seed);
        let mut m = OsElm::new(OsElmConfig::new(dim, 4).with_seed(seed)).unwrap();
        m.init_train(&xs, &xs).unwrap();
        let a = m.predict(&xs[0]).unwrap();
        let _ = m.predict(&xs[1]).unwrap();
        let b = m.predict(&xs[0]).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Autoencoder scores are non-negative for any input and any metric.
    #[test]
    fn autoencoder_scores_nonnegative(seed in 0u64..5000, probe in proptest::collection::vec(-5.0f32..5.0, 4)) {
        let xs = dataset(20, 4, seed);
        let mut ae = Autoencoder::new(OsElmConfig::new(4, 3).with_seed(seed)).unwrap();
        ae.init_train(&xs).unwrap();
        let probe: Vec<Real> = probe.into_iter().map(|x| x as Real).collect();
        prop_assert!(ae.score(&probe).unwrap() >= 0.0);
    }

    /// The multi-instance argmin prediction always returns a valid label
    /// whose score is the minimum across instances.
    #[test]
    fn multi_instance_argmin_invariant(seed in 0u64..5000, classes in 2usize..5) {
        let mut m = MultiInstanceModel::new(classes, OsElmConfig::new(4, 3).with_seed(seed)).unwrap();
        for c in 0..classes {
            m.init_train_class(c, &dataset(15, 4, seed + c as u64)).unwrap();
        }
        let probe = dataset(1, 4, seed ^ 77).remove(0);
        let mut scores = vec![0.0; classes];
        m.scores_into(&probe, &mut scores).unwrap();
        let p = m.predict(&probe).unwrap();
        prop_assert!(p.label < classes);
        for &s in &scores {
            prop_assert!(p.score <= s + 1e-6);
        }
    }

    /// Persistence is lossless: serialise -> restore -> identical
    /// predictions and identical continued training, for any shape and
    /// training history.
    #[test]
    fn persist_roundtrip_is_lossless(
        seed in 0u64..5000,
        dim in 1usize..6,
        hidden in 1usize..6,
        n_train in 4usize..30,
    ) {
        let xs = dataset(n_train, dim, seed);
        let mut m = OsElm::new(OsElmConfig::new(dim, hidden).with_seed(seed ^ 0xBEEF)).unwrap();
        m.init_train(&xs, &xs).unwrap();
        let mut restored = OsElm::from_bytes(&m.to_bytes()).unwrap();
        let probe = dataset(1, dim, seed ^ 7).remove(0);
        prop_assert_eq!(m.predict(&probe).unwrap(), restored.predict(&probe).unwrap());
        // Continued training stays in lockstep.
        m.seq_train(&probe, &probe).unwrap();
        restored.seq_train(&probe, &probe).unwrap();
        prop_assert!(m.beta().approx_eq(restored.beta(), 0.0));
        prop_assert!(m.p().approx_eq(restored.p(), 0.0));
    }

    /// Truncating a serialised blob at any point is rejected, never
    /// misinterpreted.
    #[test]
    fn persist_rejects_any_truncation(seed in 0u64..1000, cut in 0usize..200) {
        let xs = dataset(8, 3, seed);
        let mut m = OsElm::new(OsElmConfig::new(3, 2).with_seed(seed)).unwrap();
        m.init_train(&xs, &xs).unwrap();
        let blob = m.to_bytes();
        let cut = cut.min(blob.len().saturating_sub(1));
        prop_assert!(OsElm::from_bytes(&blob[..cut]).is_err());
    }

    /// Forgetting with α = 1 is exactly plain OS-ELM for any stream.
    #[test]
    fn alpha_one_equals_plain(seed in 0u64..5000) {
        let all = dataset(30, 3, seed);
        let cfg = OsElmConfig::new(3, 4).with_seed(seed).with_activation(Activation::Tanh);
        let mut plain = OsElm::new(cfg.clone()).unwrap();
        let mut f1 = OsElm::new(cfg.with_forgetting(1.0)).unwrap();
        plain.init_train(&all[..15].to_vec(), &all[..15].to_vec()).unwrap();
        f1.init_train(&all[..15].to_vec(), &all[..15].to_vec()).unwrap();
        for x in &all[15..] {
            plain.seq_train(x, x).unwrap();
            f1.seq_train(x, x).unwrap();
        }
        prop_assert!(plain.beta().approx_eq(f1.beta(), 1e-4));
    }
}
