//! Hidden-layer activation functions.

use seqdrift_linalg::Real;

/// Activation applied to the hidden layer of an OS-ELM.
///
/// ELM theory only requires the activation to be infinitely differentiable
/// (sigmoid family) or piecewise linear; the output layer is always linear
/// so the least-squares solve for `β` stays exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Activation {
    /// Logistic sigmoid `1 / (1 + e^-x)` — the choice used by ONLAD and the
    /// paper's firmware, and the default here.
    #[default]
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Rectified linear unit.
    Relu,
    /// Identity (degenerates OS-ELM to recursive linear least squares;
    /// mostly useful in tests where exactness is provable).
    Identity,
}

impl Activation {
    /// Applies the activation to a single scalar.
    #[inline]
    pub fn apply(self, x: Real) -> Real {
        match self {
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
            Activation::Relu => x.max(0.0),
            Activation::Identity => x,
        }
    }

    /// Applies the activation element-wise in place.
    #[inline]
    pub fn apply_slice(self, xs: &mut [Real]) {
        match self {
            // Match once, not per element.
            Activation::Sigmoid => {
                for x in xs {
                    *x = 1.0 / (1.0 + (-*x).exp());
                }
            }
            Activation::Tanh => {
                for x in xs {
                    *x = x.tanh();
                }
            }
            Activation::Relu => {
                for x in xs {
                    *x = x.max(0.0);
                }
            }
            Activation::Identity => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_known_points() {
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-6);
        assert!(Activation::Sigmoid.apply(10.0) > 0.999);
        assert!(Activation::Sigmoid.apply(-10.0) < 0.001);
    }

    #[test]
    fn sigmoid_is_monotone_and_bounded() {
        let mut prev = -1.0;
        for i in -50..=50 {
            let y = Activation::Sigmoid.apply(i as Real * 0.2);
            assert!(y > prev);
            assert!((0.0..=1.0).contains(&y));
            prev = y;
        }
    }

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.apply(3.0), 3.0);
    }

    #[test]
    fn tanh_is_odd() {
        let a = Activation::Tanh;
        assert!((a.apply(1.3) + a.apply(-1.3)).abs() < 1e-6);
    }

    #[test]
    fn identity_is_noop() {
        assert_eq!(Activation::Identity.apply(2.5), 2.5);
    }

    #[test]
    fn apply_slice_matches_scalar() {
        for act in [
            Activation::Sigmoid,
            Activation::Tanh,
            Activation::Relu,
            Activation::Identity,
        ] {
            let xs = [-2.0, -0.5, 0.0, 0.5, 2.0];
            let mut ys = xs;
            act.apply_slice(&mut ys);
            for (x, y) in xs.iter().zip(ys.iter()) {
                assert_eq!(act.apply(*x), *y);
            }
        }
    }

    #[test]
    fn default_is_sigmoid() {
        assert_eq!(Activation::default(), Activation::Sigmoid);
    }
}
