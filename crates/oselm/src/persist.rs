//! Model serialisation over the workspace wire format
//! ([`seqdrift_linalg::wire`]).
//!
//! The deployment story of the paper is "train/calibrate wherever, run on
//! the device": weights must move between a host and an MCU whose firmware
//! cannot link a serde stack. Blobs are little-endian, explicitly
//! versioned, and self-describing enough for a C decoder on the device.
//! Deserialisation validates every length and re-derives buffer shapes
//! from the decoded config.

use crate::activation::Activation;
use crate::autoencoder::{Autoencoder, ScoreMetric};
use crate::multi_instance::MultiInstanceModel;
use crate::oselm::{OsElm, OsElmConfig};
use crate::{ModelError, Result};
use seqdrift_linalg::wire::{Reader, WireError, Writer};

/// Payload kind tags used by this crate.
mod kind {
    /// A bare [`super::OsElm`].
    pub const OSELM: u16 = 1;
    /// An [`super::Autoencoder`].
    pub const AUTOENCODER: u16 = 2;
    /// A [`super::MultiInstanceModel`].
    pub const MULTI_INSTANCE: u16 = 3;
}

fn wire_err(e: WireError) -> ModelError {
    ModelError::InvalidConfig(match e {
        WireError::BadMagic => "persist: bad magic",
        WireError::UnsupportedVersion(_) => "persist: unsupported version",
        WireError::WrongKind { .. } => "persist: wrong payload kind",
        WireError::Truncated => "persist: truncated blob",
        WireError::Invalid(w) => w,
    })
}

fn activation_tag(a: Activation) -> u8 {
    match a {
        Activation::Sigmoid => 0,
        Activation::Tanh => 1,
        Activation::Relu => 2,
        Activation::Identity => 3,
    }
}

fn activation_from(tag: u8) -> Result<Activation> {
    Ok(match tag {
        0 => Activation::Sigmoid,
        1 => Activation::Tanh,
        2 => Activation::Relu,
        3 => Activation::Identity,
        _ => return Err(ModelError::InvalidConfig("persist: activation tag")),
    })
}

fn metric_tag(m: ScoreMetric) -> u8 {
    match m {
        ScoreMetric::MeanSquared => 0,
        ScoreMetric::MeanAbsolute => 1,
    }
}

fn metric_from(tag: u8) -> Result<ScoreMetric> {
    Ok(match tag {
        0 => ScoreMetric::MeanSquared,
        1 => ScoreMetric::MeanAbsolute,
        _ => return Err(ModelError::InvalidConfig("persist: score metric tag")),
    })
}

/// Writes the body of an OS-ELM (everything after the header).
pub fn write_oselm_body(w: &mut Writer, m: &OsElm) {
    let cfg = m.config();
    w.u64(cfg.input_dim as u64);
    w.u64(cfg.hidden_dim as u64);
    w.u64(cfg.output_dim as u64);
    w.u8(activation_tag(cfg.activation));
    w.u64(cfg.seed);
    w.real(cfg.lambda);
    match cfg.forgetting {
        None => w.u8(0),
        Some(a) => {
            w.u8(1);
            w.real(a);
        }
    }
    w.real(cfg.weight_scale);
    w.u8(u8::from(m.is_initialized()));
    w.u64(m.samples_seen());
    w.reals(m.weights().as_slice());
    w.reals(m.biases());
    w.reals(m.p().as_slice());
    w.reals(m.beta().as_slice());
}

/// Reads the body of an OS-ELM (everything after the header).
pub fn read_oselm_body(r: &mut Reader<'_>) -> Result<OsElm> {
    let input_dim = r.u64().map_err(wire_err)? as usize;
    let hidden_dim = r.u64().map_err(wire_err)? as usize;
    let output_dim = r.u64().map_err(wire_err)? as usize;
    // Cap the shape before building any buffers: a hostile blob must not
    // be able to describe a terabyte-scale network (16M-wide layers are
    // already far beyond anything this workspace trains).
    const MAX_DIM: usize = 16_777_216;
    if input_dim > MAX_DIM || hidden_dim > MAX_DIM || output_dim > MAX_DIM {
        return Err(ModelError::InvalidConfig("persist: dimension too large"));
    }
    let activation = activation_from(r.u8().map_err(wire_err)?)?;
    let seed = r.u64().map_err(wire_err)?;
    let lambda = r.real().map_err(wire_err)?;
    let forgetting = match r.u8().map_err(wire_err)? {
        0 => None,
        1 => Some(r.real().map_err(wire_err)?),
        _ => return Err(ModelError::InvalidConfig("persist: forgetting tag")),
    };
    let weight_scale = r.real().map_err(wire_err)?;
    let initialized = r.u8().map_err(wire_err)? != 0;
    let samples_seen = r.u64().map_err(wire_err)?;
    let w = r.reals().map_err(wire_err)?;
    let b = r.reals().map_err(wire_err)?;
    let p = r.reals().map_err(wire_err)?;
    let beta = r.reals().map_err(wire_err)?;

    let mut cfg = OsElmConfig::new(input_dim, hidden_dim)
        .with_output_dim(output_dim)
        .with_activation(activation)
        .with_seed(seed)
        .with_lambda(lambda);
    if let Some(a) = forgetting {
        cfg = cfg.with_forgetting(a);
    }
    cfg.weight_scale = weight_scale;
    OsElm::from_parts(cfg, w, b, p, beta, initialized, samples_seen)
}

/// Writes an autoencoder body (metric + network).
pub fn write_autoencoder_body(w: &mut Writer, ae: &Autoencoder) {
    w.u8(metric_tag(ae.metric()));
    write_oselm_body(w, ae.network());
}

/// Reads an autoencoder body (metric + network).
pub fn read_autoencoder_body(r: &mut Reader<'_>) -> Result<Autoencoder> {
    let metric = metric_from(r.u8().map_err(wire_err)?)?;
    let net = read_oselm_body(r)?;
    Autoencoder::from_network(net, metric)
}

/// Writes a multi-instance model body (class count + instances).
pub fn write_multi_instance_body(w: &mut Writer, m: &MultiInstanceModel) {
    w.u64(m.classes() as u64);
    for c in 0..m.classes() {
        write_autoencoder_body(w, m.instance(c).expect("class in range"));
    }
}

/// Reads a multi-instance model body.
pub fn read_multi_instance_body(r: &mut Reader<'_>) -> Result<MultiInstanceModel> {
    let classes = r.u64().map_err(wire_err)? as usize;
    if classes == 0 || classes > 4096 {
        return Err(ModelError::InvalidConfig("persist: class count"));
    }
    let mut instances = Vec::with_capacity(classes);
    for _ in 0..classes {
        instances.push(read_autoencoder_body(r)?);
    }
    MultiInstanceModel::from_instances(instances)
}

impl OsElm {
    /// Serialises the full model state to the versioned binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new(kind::OSELM);
        write_oselm_body(&mut w, self);
        w.into_bytes()
    }

    /// Restores a model written by [`OsElm::to_bytes`].
    pub fn from_bytes(data: &[u8]) -> Result<OsElm> {
        let mut r = Reader::new(data, kind::OSELM).map_err(wire_err)?;
        let m = read_oselm_body(&mut r)?;
        r.finish().map_err(wire_err)?;
        Ok(m)
    }
}

impl Autoencoder {
    /// Serialises the autoencoder (network + score metric).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new(kind::AUTOENCODER);
        write_autoencoder_body(&mut w, self);
        w.into_bytes()
    }

    /// Restores an autoencoder written by [`Autoencoder::to_bytes`].
    pub fn from_bytes(data: &[u8]) -> Result<Autoencoder> {
        let mut r = Reader::new(data, kind::AUTOENCODER).map_err(wire_err)?;
        let ae = read_autoencoder_body(&mut r)?;
        r.finish().map_err(wire_err)?;
        Ok(ae)
    }
}

impl MultiInstanceModel {
    /// Serialises every instance.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new(kind::MULTI_INSTANCE);
        write_multi_instance_body(&mut w, self);
        w.into_bytes()
    }

    /// Restores a model written by [`MultiInstanceModel::to_bytes`].
    pub fn from_bytes(data: &[u8]) -> Result<MultiInstanceModel> {
        let mut r = Reader::new(data, kind::MULTI_INSTANCE).map_err(wire_err)?;
        let m = read_multi_instance_body(&mut r)?;
        r.finish().map_err(wire_err)?;
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdrift_linalg::{Real, Rng};

    fn data(n: usize, dim: usize, seed: u64) -> Vec<Vec<Real>> {
        let mut rng = Rng::seed_from(seed);
        (0..n)
            .map(|_| {
                let mut x = vec![0.0; dim];
                rng.fill_uniform(&mut x, 0.0, 1.0);
                x
            })
            .collect()
    }

    #[test]
    fn oselm_roundtrip_preserves_everything() {
        let xs = data(30, 5, 1);
        let mut m = OsElm::new(
            OsElmConfig::new(5, 4)
                .with_seed(7)
                .with_forgetting(0.97)
                .with_activation(Activation::Tanh),
        )
        .unwrap();
        m.init_train(&xs, &xs).unwrap();
        let blob = m.to_bytes();
        let mut restored = OsElm::from_bytes(&blob).unwrap();
        assert_eq!(restored.config(), m.config());
        assert_eq!(restored.samples_seen(), m.samples_seen());
        // Identical predictions and identical continued training.
        let probe = &xs[0];
        assert_eq!(m.predict(probe).unwrap(), restored.predict(probe).unwrap());
        m.seq_train(probe, probe).unwrap();
        restored.seq_train(probe, probe).unwrap();
        assert!(m.beta().approx_eq(restored.beta(), 0.0));
    }

    #[test]
    fn uninitialized_model_roundtrips() {
        let m = OsElm::new(OsElmConfig::new(3, 2)).unwrap();
        let restored = OsElm::from_bytes(&m.to_bytes()).unwrap();
        assert!(!restored.is_initialized());
    }

    #[test]
    fn autoencoder_roundtrip() {
        let xs = data(25, 4, 2);
        let mut ae = Autoencoder::new(OsElmConfig::new(4, 3).with_seed(5))
            .unwrap()
            .with_metric(ScoreMetric::MeanAbsolute);
        ae.init_train(&xs).unwrap();
        let mut restored = Autoencoder::from_bytes(&ae.to_bytes()).unwrap();
        assert_eq!(restored.metric(), ScoreMetric::MeanAbsolute);
        assert_eq!(ae.score(&xs[0]).unwrap(), restored.score(&xs[0]).unwrap());
    }

    #[test]
    fn multi_instance_roundtrip() {
        let mut m = MultiInstanceModel::new(3, OsElmConfig::new(4, 3).with_seed(9)).unwrap();
        for c in 0..3 {
            m.init_train_class(c, &data(20, 4, 10 + c as u64)).unwrap();
        }
        let mut restored = MultiInstanceModel::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(restored.classes(), 3);
        let probe = data(1, 4, 99).remove(0);
        assert_eq!(
            m.predict(&probe).unwrap(),
            restored.predict(&probe).unwrap()
        );
    }

    #[test]
    fn corrupted_blobs_are_rejected() {
        let m = OsElm::new(OsElmConfig::new(3, 2)).unwrap();
        let blob = m.to_bytes();
        // Bad magic.
        let mut bad = blob.clone();
        bad[0] = b'X';
        assert!(OsElm::from_bytes(&bad).is_err());
        // Truncated.
        assert!(OsElm::from_bytes(&blob[..blob.len() - 3]).is_err());
        // Trailing bytes.
        let mut long = blob.clone();
        long.push(0);
        assert!(OsElm::from_bytes(&long).is_err());
        // Wrong kind.
        assert!(Autoencoder::from_bytes(&blob).is_err());
        // Future version.
        let mut future = blob;
        future[4] = 0xFF;
        assert!(OsElm::from_bytes(&future).is_err());
    }

    #[test]
    fn shape_mismatch_rejected() {
        let xs = data(10, 3, 3);
        let mut m = OsElm::new(OsElmConfig::new(3, 2)).unwrap();
        m.init_train(&xs, &xs).unwrap();
        let mut blob = m.to_bytes();
        // Tamper with the hidden_dim field (bytes 16..24 after header 8 +
        // input_dim 8).
        blob[16] = 99;
        assert!(OsElm::from_bytes(&blob).is_err());
    }
}
