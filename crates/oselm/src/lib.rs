#![warn(missing_docs)]

//! # seqdrift-oselm
//!
//! Online Sequential Extreme Learning Machine (OS-ELM, Liang et al. 2006)
//! and the model architecture the paper builds on it:
//!
//! * [`oselm::OsElm`] — a 3-layer network whose input weights are random and
//!   fixed; only the output weights `β` are trained. Initial training solves
//!   a regularised least-squares problem once; afterwards every new sample
//!   updates `β` with a Sherman–Morrison rank-1 step (O(H²), no inversion,
//!   no stored samples) — the property that makes on-device retraining
//!   feasible on a 264 kB MCU.
//! * [`oselm::OsElmConfig::with_forgetting`] — the ONLAD forgetting
//!   mechanism (Tsukada et al. 2020): old knowledge decays geometrically
//!   with factor `α < 1` so the model tracks non-stationary data without
//!   drift detection (the paper's passive baseline).
//! * [`autoencoder::Autoencoder`] — an OS-ELM trained to reconstruct its
//!   input; the reconstruction error is the anomaly score.
//! * [`multi_instance::MultiInstanceModel`] — one autoencoder per class
//!   label; prediction is the label of the instance with the smallest
//!   anomaly score, sequential training updates the closest instance
//!   (Section 3.1 of the paper).
//!
//! ```
//! use seqdrift_oselm::{Autoencoder, OsElmConfig};
//! use seqdrift_linalg::{Real, Rng};
//!
//! // Train an autoencoder on one "normal" pattern...
//! let mut rng = Rng::seed_from(1);
//! let normal: Vec<Vec<Real>> = (0..80).map(|_| {
//!     let mut x = vec![0.0; 8];
//!     rng.fill_normal(&mut x, 0.3, 0.05);
//!     x
//! }).collect();
//! let mut ae = Autoencoder::new(OsElmConfig::new(8, 4).with_seed(7)).unwrap();
//! ae.init_train(&normal).unwrap();
//!
//! // ...in-distribution samples score low, anomalies score high.
//! let in_dist = ae.score(&normal[0]).unwrap();
//! let anomaly = ae.score(&vec![0.9; 8]).unwrap();
//! assert!(anomaly > 10.0 * in_dist);
//!
//! // Sequential training keeps adapting, one sample at a time.
//! ae.seq_train(&normal[1]).unwrap();
//! ```

pub mod activation;
pub mod autoencoder;
pub mod multi_instance;
pub mod onlad;
pub mod oselm;
pub mod persist;

pub use activation::Activation;
pub use autoencoder::Autoencoder;
pub use multi_instance::MultiInstanceModel;
pub use onlad::Onlad;
pub use oselm::{OsElm, OsElmConfig};

use seqdrift_linalg::LinalgError;

/// Errors produced by model construction and training.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A linear-algebra kernel failed (singular Gram matrix, shape bug...).
    Linalg(LinalgError),
    /// Configuration is invalid (zero dimensions, bad forgetting factor...).
    InvalidConfig(&'static str),
    /// Input sample has the wrong dimensionality.
    DimensionMismatch {
        /// Dimension the model expects.
        expected: usize,
        /// Dimension the caller provided.
        got: usize,
    },
    /// Operation requires an initially-trained model.
    NotInitialized,
    /// A class label index is out of range.
    BadLabel {
        /// Number of classes in the model.
        classes: usize,
        /// Offending label.
        label: usize,
    },
    /// Initial training needs enough samples to keep the (regularised) Gram
    /// matrix well conditioned.
    TooFewSamples {
        /// Samples provided.
        got: usize,
        /// Minimum required.
        need: usize,
    },
    /// A sequential update produced numerically unusable state (non-finite
    /// `P`/`β` or a `P`-trace blow-up) and was rolled back; the model is
    /// unchanged and stays usable.
    RejectedUpdate(&'static str),
}

impl From<LinalgError> for ModelError {
    fn from(e: LinalgError) -> Self {
        ModelError::Linalg(e)
    }
}

impl core::fmt::Display for ModelError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ModelError::Linalg(e) => write!(f, "linalg error: {e}"),
            ModelError::InvalidConfig(what) => write!(f, "invalid config: {what}"),
            ModelError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            ModelError::NotInitialized => write!(f, "model not initially trained"),
            ModelError::BadLabel { classes, label } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
            ModelError::TooFewSamples { got, need } => {
                write!(f, "initial training needs >= {need} samples, got {got}")
            }
            ModelError::RejectedUpdate(why) => {
                write!(f, "sequential update rejected and rolled back: {why}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// Result alias for this crate.
pub type Result<T> = core::result::Result<T, ModelError>;
