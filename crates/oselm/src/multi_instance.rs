//! Per-label multi-instance discriminative model (Section 3.1).
//!
//! One autoencoder instance per class label. At test time every instance
//! scores the sample; the label whose instance reconstructs it best (lowest
//! anomaly score) is the prediction — lines 6–7 of Algorithm 1. Sequential
//! training updates only the *closest* instance, so each instance keeps
//! tracking its own normal pattern.

use crate::autoencoder::Autoencoder;
use crate::oselm::OsElmConfig;
use crate::{ModelError, Result};
use seqdrift_linalg::{vector, Real};

/// A prediction from the multi-instance model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Predicted class label (index of the best-scoring instance).
    pub label: usize,
    /// Anomaly score of the winning instance (`model[c].predict(data)` in
    /// Algorithm 1 line 7).
    pub score: Real,
}

/// One OS-ELM autoencoder per class label.
#[derive(Debug, Clone)]
pub struct MultiInstanceModel {
    instances: Vec<Autoencoder>,
    scratch_scores: Vec<Real>,
}

impl MultiInstanceModel {
    /// Builds `classes` autoencoder instances sharing `cfg` (each gets a
    /// distinct weight seed derived from `cfg.seed` so instances are not
    /// identical networks).
    pub fn new(classes: usize, cfg: OsElmConfig) -> Result<Self> {
        if classes == 0 {
            return Err(ModelError::InvalidConfig("classes must be > 0"));
        }
        let mut instances = Vec::with_capacity(classes);
        for c in 0..classes {
            let inst_cfg = cfg.clone().with_seed(cfg.seed.wrapping_add(c as u64));
            instances.push(Autoencoder::new(inst_cfg)?);
        }
        Ok(MultiInstanceModel {
            scratch_scores: vec![0.0; classes],
            instances,
        })
    }

    /// Assembles a model from pre-built instances (deserialisation). All
    /// instances must share one input dimensionality.
    pub fn from_instances(instances: Vec<Autoencoder>) -> Result<MultiInstanceModel> {
        if instances.is_empty() {
            return Err(ModelError::InvalidConfig("from_instances: no instances"));
        }
        let dim = instances[0].dim();
        if instances.iter().any(|i| i.dim() != dim) {
            return Err(ModelError::InvalidConfig(
                "from_instances: mismatched instance dimensions",
            ));
        }
        Ok(MultiInstanceModel {
            scratch_scores: vec![0.0; instances.len()],
            instances,
        })
    }

    /// Number of class labels / instances.
    pub fn classes(&self) -> usize {
        self.instances.len()
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.instances[0].dim()
    }

    /// True when every instance has been initially trained.
    pub fn is_initialized(&self) -> bool {
        self.instances.iter().all(|i| i.is_initialized())
    }

    /// Immutable access to an instance.
    pub fn instance(&self, label: usize) -> Result<&Autoencoder> {
        self.instances.get(label).ok_or(ModelError::BadLabel {
            classes: self.instances.len(),
            label,
        })
    }

    /// Mutable access to an instance.
    pub fn instance_mut(&mut self, label: usize) -> Result<&mut Autoencoder> {
        let classes = self.instances.len();
        self.instances
            .get_mut(label)
            .ok_or(ModelError::BadLabel { classes, label })
    }

    /// Initially trains the instance for `label` on that label's samples.
    pub fn init_train_class(&mut self, label: usize, xs: &[Vec<Real>]) -> Result<()> {
        self.instance_mut(label)?.init_train(xs)
    }

    /// Initially trains all instances from `(label, sample)` pairs, grouping
    /// by label internally.
    pub fn init_train_labeled(&mut self, data: &[(usize, Vec<Real>)]) -> Result<()> {
        let classes = self.classes();
        let mut buckets: Vec<Vec<Vec<Real>>> = vec![Vec::new(); classes];
        for (label, x) in data {
            if *label >= classes {
                return Err(ModelError::BadLabel {
                    classes,
                    label: *label,
                });
            }
            buckets[*label].push(x.clone());
        }
        for (label, bucket) in buckets.into_iter().enumerate() {
            if bucket.is_empty() {
                return Err(ModelError::InvalidConfig(
                    "init_train_labeled: a class has no samples",
                ));
            }
            self.init_train_class(label, &bucket)?;
        }
        Ok(())
    }

    /// Scores `x` under every instance, writing into `out` (length =
    /// `classes`).
    pub fn scores_into(&mut self, x: &[Real], out: &mut [Real]) -> Result<()> {
        if out.len() != self.instances.len() {
            return Err(ModelError::DimensionMismatch {
                expected: self.instances.len(),
                got: out.len(),
            });
        }
        for (inst, slot) in self.instances.iter_mut().zip(out.iter_mut()) {
            *slot = inst.score(x)?;
        }
        Ok(())
    }

    /// Predicts the label of `x` (argmin of instance scores) with its score.
    pub fn predict(&mut self, x: &[Real]) -> Result<Prediction> {
        let mut scores = std::mem::take(&mut self.scratch_scores);
        let result = self.scores_into(x, &mut scores).map(|()| {
            let label = vector::argmin(&scores).expect("non-empty scores");
            Prediction {
                label,
                score: scores[label],
            }
        });
        self.scratch_scores = scores;
        result
    }

    /// Sequentially trains the instance for the given `label` on `x`.
    pub fn seq_train_label(&mut self, label: usize, x: &[Real]) -> Result<()> {
        self.instance_mut(label)?.seq_train(x)
    }

    /// Sequentially trains the *closest* instance (smallest anomaly score)
    /// on `x`, returning which label was trained. This is the paper's
    /// "single model instance that outputs the smallest anomaly score trains
    /// the input data sequentially".
    pub fn seq_train_closest(&mut self, x: &[Real]) -> Result<usize> {
        let p = self.predict(x)?;
        self.seq_train_label(p.label, x)?;
        Ok(p.label)
    }

    /// Restores training plasticity on every instance (called at the start
    /// of model reconstruction; see
    /// [`crate::oselm::OsElm::reset_plasticity`]).
    pub fn reset_plasticity(&mut self) -> Result<()> {
        for inst in &mut self.instances {
            inst.reset_plasticity()?;
        }
        Ok(())
    }

    /// Total stored scalar parameters across every instance (memory
    /// accounting for Table 4).
    pub fn total_param_scalars(&self) -> usize {
        self.instances
            .iter()
            .map(|i| i.network().param_counts().total())
            .sum()
    }

    /// Federated merge across model replicas: label-by-label
    /// [`crate::oselm::OsElm::merge_with`] of this model with
    /// `contributors` trained from the same reference. All models must
    /// have the same class count; each per-label instance inherits its
    /// base's score metric. Fails atomically — any per-instance rejection
    /// (incompatible hidden layer, non-PD statistics, divergent merged
    /// state) discards the whole merge and leaves every input untouched.
    pub fn merge_with(&self, contributors: &[&MultiInstanceModel]) -> Result<MultiInstanceModel> {
        if contributors.is_empty() {
            return Err(ModelError::InvalidConfig("merge_with: no contributors"));
        }
        if let Some(c) = contributors.iter().find(|c| c.classes() != self.classes()) {
            return Err(ModelError::BadLabel {
                classes: self.classes(),
                label: c.classes(),
            });
        }
        let mut merged = Vec::with_capacity(self.instances.len());
        for (label, inst) in self.instances.iter().enumerate() {
            let nets: Vec<&crate::oselm::OsElm> = contributors
                .iter()
                .map(|c| c.instances[label].network())
                .collect();
            let net = inst.network().merge_with(&nets)?;
            merged.push(Autoencoder::from_network(net, inst.metric())?);
        }
        MultiInstanceModel::from_instances(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdrift_linalg::Rng;

    fn blob(n: usize, dim: usize, mean: Real, seed: u64) -> Vec<Vec<Real>> {
        let mut rng = Rng::seed_from(seed);
        (0..n)
            .map(|_| {
                let mut x = vec![0.0; dim];
                rng.fill_normal(&mut x, mean, 0.05);
                x
            })
            .collect()
    }

    fn trained_two_class() -> MultiInstanceModel {
        let mut m = MultiInstanceModel::new(2, OsElmConfig::new(6, 4).with_seed(42)).unwrap();
        m.init_train_class(0, &blob(80, 6, 0.2, 1)).unwrap();
        m.init_train_class(1, &blob(80, 6, 0.8, 2)).unwrap();
        m
    }

    #[test]
    fn zero_classes_rejected() {
        assert!(MultiInstanceModel::new(0, OsElmConfig::new(4, 2)).is_err());
    }

    #[test]
    fn instances_have_distinct_weights() {
        let m = MultiInstanceModel::new(3, OsElmConfig::new(4, 2).with_seed(5)).unwrap();
        // Score-before-init errors are identical, but the underlying nets
        // must differ: check via param seeds by training identically and
        // comparing betas.
        let xs = blob(30, 4, 0.5, 9);
        let mut m = m;
        for c in 0..3 {
            m.init_train_class(c, &xs).unwrap();
        }
        let b0 = m.instance(0).unwrap().network().beta().clone();
        let b1 = m.instance(1).unwrap().network().beta().clone();
        assert!(!b0.approx_eq(&b1, 1e-9));
    }

    #[test]
    fn predicts_correct_class_for_separated_blobs() {
        let mut m = trained_two_class();
        let test0 = blob(30, 6, 0.2, 3);
        let test1 = blob(30, 6, 0.8, 4);
        let acc0 = test0
            .iter()
            .filter(|x| m.predict(x).unwrap().label == 0)
            .count();
        let acc1 = test1
            .iter()
            .filter(|x| m.predict(x).unwrap().label == 1)
            .count();
        assert!(acc0 >= 28, "class 0 accuracy {acc0}/30");
        assert!(acc1 >= 28, "class 1 accuracy {acc1}/30");
    }

    #[test]
    fn prediction_score_is_min_of_instance_scores() {
        let mut m = trained_two_class();
        let x = blob(1, 6, 0.5, 7).remove(0);
        let mut scores = vec![0.0; 2];
        m.scores_into(&x, &mut scores).unwrap();
        let p = m.predict(&x).unwrap();
        assert_eq!(p.score, scores[p.label]);
        assert!(p.score <= scores[0] && p.score <= scores[1]);
    }

    #[test]
    fn seq_train_closest_updates_winner_only() {
        let mut m = trained_two_class();
        let x = blob(1, 6, 0.2, 8).remove(0);
        let seen_before_0 = m.instance(0).unwrap().samples_seen();
        let seen_before_1 = m.instance(1).unwrap().samples_seen();
        let trained = m.seq_train_closest(&x).unwrap();
        assert_eq!(trained, 0);
        assert_eq!(m.instance(0).unwrap().samples_seen(), seen_before_0 + 1);
        assert_eq!(m.instance(1).unwrap().samples_seen(), seen_before_1);
    }

    #[test]
    fn bad_label_rejected() {
        let mut m = trained_two_class();
        assert!(matches!(
            m.seq_train_label(5, &[0.0; 6]),
            Err(ModelError::BadLabel { .. })
        ));
        assert!(matches!(m.instance(9), Err(ModelError::BadLabel { .. })));
    }

    #[test]
    fn init_train_labeled_groups_by_label() {
        let mut m = MultiInstanceModel::new(2, OsElmConfig::new(4, 3).with_seed(11)).unwrap();
        let mut data: Vec<(usize, Vec<Real>)> = Vec::new();
        for x in blob(40, 4, 0.2, 12) {
            data.push((0, x));
        }
        for x in blob(40, 4, 0.8, 13) {
            data.push((1, x));
        }
        m.init_train_labeled(&data).unwrap();
        assert!(m.is_initialized());
        let p = m.predict(&blob(1, 4, 0.8, 14)[0]).unwrap();
        assert_eq!(p.label, 1);
    }

    #[test]
    fn init_train_labeled_rejects_missing_class() {
        let mut m = MultiInstanceModel::new(2, OsElmConfig::new(4, 3)).unwrap();
        let data: Vec<(usize, Vec<Real>)> =
            blob(10, 4, 0.5, 15).into_iter().map(|x| (0, x)).collect();
        assert!(m.init_train_labeled(&data).is_err());
    }

    #[test]
    fn init_train_labeled_rejects_out_of_range_label() {
        let mut m = MultiInstanceModel::new(2, OsElmConfig::new(4, 3)).unwrap();
        let data = vec![(2usize, vec![0.0; 4])];
        assert!(matches!(
            m.init_train_labeled(&data),
            Err(ModelError::BadLabel { .. })
        ));
    }

    #[test]
    fn total_param_scalars_scales_with_classes() {
        let one = MultiInstanceModel::new(1, OsElmConfig::new(10, 4)).unwrap();
        let three = MultiInstanceModel::new(3, OsElmConfig::new(10, 4)).unwrap();
        assert_eq!(3 * one.total_param_scalars(), three.total_param_scalars());
    }

    #[test]
    fn merge_with_fuses_per_label_instances() {
        let base = trained_two_class();
        // Two replicas of the same reference, each adapted to a shifted
        // class-0 concept; class 1 untouched on both.
        let shift = blob(100, 6, 0.5, 21);
        let mut a = base.clone();
        let mut b = base.clone();
        for x in &shift {
            a.seq_train_label(0, x).unwrap();
            b.seq_train_label(0, x).unwrap();
        }
        let mut merged = base.merge_with(&[&a, &b]).unwrap();
        assert_eq!(merged.classes(), 2);
        assert!(merged.is_initialized());
        // The merged class-0 instance absorbed the replicas' adaptation:
        // it scores the shifted concept better than the stale base does.
        let probe = blob(20, 6, 0.5, 22);
        let mut stale = base.clone();
        let merged_mean: Real = probe
            .iter()
            .map(|x| merged.instance_mut(0).unwrap().score(x).unwrap())
            .sum::<Real>()
            / probe.len() as Real;
        let stale_mean: Real = probe
            .iter()
            .map(|x| stale.instance_mut(0).unwrap().score(x).unwrap())
            .sum::<Real>()
            / probe.len() as Real;
        assert!(
            merged_mean < stale_mean,
            "merged {merged_mean} vs stale {stale_mean}"
        );
    }

    #[test]
    fn merge_with_rejects_class_count_mismatch() {
        let base = trained_two_class();
        let mut other = MultiInstanceModel::new(1, OsElmConfig::new(6, 4).with_seed(42)).unwrap();
        other.init_train_class(0, &blob(80, 6, 0.2, 1)).unwrap();
        assert!(matches!(
            base.merge_with(&[&other]),
            Err(ModelError::BadLabel { .. })
        ));
        assert!(base.merge_with(&[]).is_err());
    }
}
