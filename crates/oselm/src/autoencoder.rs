//! OS-ELM autoencoder for unsupervised anomaly scoring.
//!
//! Following Hinton & Salakhutdinov (2006) and ONLAD, the network is trained
//! to reproduce its input through a narrower hidden layer; inputs far from
//! the training distribution reconstruct poorly, so the reconstruction error
//! serves as an anomaly score (Section 3.1 of the paper).

use crate::oselm::{OsElm, OsElmConfig};
use crate::{ModelError, Result};
use seqdrift_linalg::{vector, Real};

/// How reconstruction error is reduced to a scalar anomaly score.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScoreMetric {
    /// Mean squared error (default; what ONLAD reports).
    #[default]
    MeanSquared,
    /// Mean absolute error — cheaper on an FPU-less MCU, provided for the
    /// firmware-parity configuration.
    MeanAbsolute,
}

/// An OS-ELM autoencoder: reconstruction target = input.
#[derive(Debug, Clone)]
pub struct Autoencoder {
    net: OsElm,
    metric: ScoreMetric,
    scratch_recon: Vec<Real>,
}

impl Autoencoder {
    /// Builds an autoencoder. `cfg.output_dim` is forced to `cfg.input_dim`.
    pub fn new(mut cfg: OsElmConfig) -> Result<Self> {
        cfg.output_dim = cfg.input_dim;
        let net = OsElm::new(cfg)?;
        let scratch_recon = vec![0.0; net.output_dim()];
        Ok(Autoencoder {
            net,
            metric: ScoreMetric::default(),
            scratch_recon,
        })
    }

    /// Overrides the score metric.
    pub fn with_metric(mut self, metric: ScoreMetric) -> Self {
        self.metric = metric;
        self
    }

    /// Input/output dimensionality.
    pub fn dim(&self) -> usize {
        self.net.input_dim()
    }

    /// Whether initial training has run.
    pub fn is_initialized(&self) -> bool {
        self.net.is_initialized()
    }

    /// Total samples consumed.
    pub fn samples_seen(&self) -> u64 {
        self.net.samples_seen()
    }

    /// Access to the underlying network (memory accounting, tests).
    pub fn network(&self) -> &OsElm {
        &self.net
    }

    /// The configured score metric.
    pub fn metric(&self) -> ScoreMetric {
        self.metric
    }

    /// Wraps an existing network as an autoencoder (deserialisation).
    /// The network must be autoencoder-shaped (`output_dim == input_dim`).
    pub fn from_network(net: OsElm, metric: ScoreMetric) -> Result<Autoencoder> {
        if net.output_dim() != net.input_dim() {
            return Err(ModelError::InvalidConfig(
                "from_network: not autoencoder-shaped",
            ));
        }
        let scratch_recon = vec![0.0; net.output_dim()];
        Ok(Autoencoder {
            net,
            metric,
            scratch_recon,
        })
    }

    /// Initial batch training on `xs` (targets are the inputs themselves).
    pub fn init_train(&mut self, xs: &[Vec<Real>]) -> Result<()> {
        self.net.init_train(xs, xs)
    }

    /// One sequential training step on `x`.
    pub fn seq_train(&mut self, x: &[Real]) -> Result<()> {
        if x.len() != self.net.input_dim() {
            return Err(ModelError::DimensionMismatch {
                expected: self.net.input_dim(),
                got: x.len(),
            });
        }
        self.net.seq_train(x, x)
    }

    /// Restores training plasticity (see [`OsElm::reset_plasticity`]).
    pub fn reset_plasticity(&mut self) -> Result<()> {
        self.net.reset_plasticity()
    }

    /// Anomaly score of `x`: reconstruction error under the chosen metric.
    pub fn score(&mut self, x: &[Real]) -> Result<Real> {
        let mut recon = std::mem::take(&mut self.scratch_recon);
        let result = self.net.predict_into(x, &mut recon).map(|()| {
            let d = x.len() as Real;
            match self.metric {
                ScoreMetric::MeanSquared => vector::dist_l2_sq(&recon, x) / d,
                ScoreMetric::MeanAbsolute => vector::dist_l1(&recon, x) / d,
            }
        });
        self.scratch_recon = recon;
        result
    }

    /// Reconstructs `x` into `out` (diagnostics and examples).
    pub fn reconstruct_into(&mut self, x: &[Real], out: &mut [Real]) -> Result<()> {
        self.net.predict_into(x, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdrift_linalg::Rng;

    fn blob(n: usize, dim: usize, mean: Real, seed: u64) -> Vec<Vec<Real>> {
        let mut rng = Rng::seed_from(seed);
        (0..n)
            .map(|_| {
                let mut x = vec![0.0; dim];
                rng.fill_normal(&mut x, mean, 0.05);
                x
            })
            .collect()
    }

    #[test]
    fn output_dim_forced_to_input_dim() {
        let ae = Autoencoder::new(OsElmConfig::new(6, 3).with_output_dim(9)).unwrap();
        assert_eq!(ae.network().output_dim(), 6);
        assert_eq!(ae.dim(), 6);
    }

    #[test]
    fn in_distribution_scores_lower_than_out_of_distribution() {
        let train = blob(100, 8, 0.3, 1);
        let mut ae = Autoencoder::new(OsElmConfig::new(8, 5).with_seed(3)).unwrap();
        ae.init_train(&train).unwrap();

        let in_dist = blob(20, 8, 0.3, 2);
        let out_dist = blob(20, 8, 0.9, 3);
        let mean_in: Real = in_dist.iter().map(|x| ae.score(x).unwrap()).sum::<Real>() / 20.0;
        let mean_out: Real = out_dist.iter().map(|x| ae.score(x).unwrap()).sum::<Real>() / 20.0;
        assert!(mean_out > mean_in * 2.0, "in {mean_in} vs out {mean_out}");
    }

    #[test]
    fn score_is_nonnegative() {
        let train = blob(50, 4, 0.5, 5);
        for metric in [ScoreMetric::MeanSquared, ScoreMetric::MeanAbsolute] {
            let mut ae = Autoencoder::new(OsElmConfig::new(4, 3))
                .unwrap()
                .with_metric(metric);
            ae.init_train(&train).unwrap();
            let mut rng = Rng::seed_from(8);
            for _ in 0..50 {
                let mut x = vec![0.0; 4];
                rng.fill_uniform(&mut x, -1.0, 2.0);
                assert!(ae.score(&x).unwrap() >= 0.0);
            }
        }
    }

    #[test]
    fn sequential_training_adapts_to_new_concept() {
        let train = blob(80, 6, 0.2, 11);
        let mut ae = Autoencoder::new(OsElmConfig::new(6, 4).with_seed(7)).unwrap();
        ae.init_train(&train).unwrap();

        let new_concept = blob(300, 6, 0.8, 12);
        let before = ae.score(&new_concept[0]).unwrap();
        for x in &new_concept {
            ae.seq_train(x).unwrap();
        }
        let after = ae.score(&new_concept[0]).unwrap();
        assert!(after < before, "before {before}, after {after}");
    }

    #[test]
    fn untrained_autoencoder_rejects_scoring() {
        let mut ae = Autoencoder::new(OsElmConfig::new(4, 2)).unwrap();
        assert!(matches!(
            ae.score(&[0.0; 4]),
            Err(ModelError::NotInitialized)
        ));
    }

    #[test]
    fn wrong_dimension_rejected() {
        let train = blob(30, 4, 0.5, 13);
        let mut ae = Autoencoder::new(OsElmConfig::new(4, 2)).unwrap();
        ae.init_train(&train).unwrap();
        assert!(matches!(
            ae.seq_train(&[0.0; 5]),
            Err(ModelError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            ae.score(&[0.0; 3]),
            Err(ModelError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn mae_and_mse_agree_on_ordering() {
        let train = blob(60, 5, 0.3, 17);
        let mut mse = Autoencoder::new(OsElmConfig::new(5, 3).with_seed(19)).unwrap();
        let mut mae = Autoencoder::new(OsElmConfig::new(5, 3).with_seed(19))
            .unwrap()
            .with_metric(ScoreMetric::MeanAbsolute);
        mse.init_train(&train).unwrap();
        mae.init_train(&train).unwrap();
        let near = blob(1, 5, 0.3, 20).remove(0);
        let far = blob(1, 5, 1.5, 21).remove(0);
        assert!(mse.score(&far).unwrap() > mse.score(&near).unwrap());
        assert!(mae.score(&far).unwrap() > mae.score(&near).unwrap());
    }
}
