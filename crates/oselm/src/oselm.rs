//! Core OS-ELM implementation.
//!
//! An ELM is a single-hidden-layer network `x -> g(W x + b) -> β` where
//! `W, b` are random and frozen; training fits only `β` by least squares.
//! OS-ELM (Liang et al. 2006) maintains the regularised normal-equation
//! inverse `P = (Hᵀ H + λI)⁻¹` recursively so new samples update `β`
//! without revisiting old data:
//!
//! ```text
//! P    <- P - (P hᵀ)(h P) / (1 + h P hᵀ)          (batch size 1)
//! β    <- β + (P hᵀ)(t - h β)
//! ```
//!
//! With the ONLAD forgetting factor `α ∈ (0, 1]` the update becomes
//!
//! ```text
//! P    <- (1/α) · [ P - (P hᵀ)(h P) / (α + h P hᵀ) ]
//! β    <- β + (P hᵀ)(t - h β)
//! ```
//!
//! which geometrically down-weights old samples (α = 1 recovers plain
//! OS-ELM). Both paths are allocation-free per sample: all scratch lives in
//! the struct.

use crate::{Activation, ModelError, Result};
use seqdrift_linalg::{cholesky, vector, Matrix, Real};

/// Configuration for an [`OsElm`] network.
#[derive(Debug, Clone, PartialEq)]
pub struct OsElmConfig {
    /// Input dimensionality (number of input-layer nodes).
    pub input_dim: usize,
    /// Hidden-layer width.
    pub hidden_dim: usize,
    /// Output dimensionality. Defaults to `input_dim` (autoencoder shape,
    /// which is how the paper uses OS-ELM throughout).
    pub output_dim: usize,
    /// Hidden activation.
    pub activation: Activation,
    /// Seed for the random (frozen) input weights.
    pub seed: u64,
    /// Tikhonov regularisation added to the initial Gram matrix. Keeps the
    /// initial solve well-posed even when the initial batch is small, at the
    /// cost of a tiny bias; the MCU firmware needs this because it cannot
    /// afford a large initial batch.
    pub lambda: Real,
    /// ONLAD forgetting factor `α ∈ (0, 1]`; `None` means plain OS-ELM.
    pub forgetting: Option<Real>,
    /// Input weights and biases are drawn uniformly from
    /// `[-weight_scale, weight_scale]`.
    pub weight_scale: Real,
}

impl OsElmConfig {
    /// Autoencoder-shaped config: `output_dim == input_dim`.
    pub fn new(input_dim: usize, hidden_dim: usize) -> Self {
        OsElmConfig {
            input_dim,
            hidden_dim,
            output_dim: input_dim,
            activation: Activation::Sigmoid,
            seed: 0xE1A0_5EED,
            lambda: 0.05,
            forgetting: None,
            weight_scale: 1.0,
        }
    }

    /// Overrides the output dimensionality (non-autoencoder use).
    pub fn with_output_dim(mut self, output_dim: usize) -> Self {
        self.output_dim = output_dim;
        self
    }

    /// Overrides the hidden activation.
    pub fn with_activation(mut self, activation: Activation) -> Self {
        self.activation = activation;
        self
    }

    /// Overrides the weight seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the regularisation strength.
    pub fn with_lambda(mut self, lambda: Real) -> Self {
        self.lambda = lambda;
        self
    }

    /// Enables the ONLAD forgetting mechanism with factor `alpha`.
    pub fn with_forgetting(mut self, alpha: Real) -> Self {
        self.forgetting = Some(alpha);
        self
    }

    fn validate(&self) -> Result<()> {
        if self.input_dim == 0 || self.hidden_dim == 0 || self.output_dim == 0 {
            return Err(ModelError::InvalidConfig("zero layer dimension"));
        }
        if self.lambda.is_nan() || self.lambda < 0.0 {
            return Err(ModelError::InvalidConfig("lambda must be >= 0"));
        }
        if let Some(a) = self.forgetting {
            if a.is_nan() || a <= 0.0 || a > 1.0 {
                return Err(ModelError::InvalidConfig(
                    "forgetting factor must be in (0, 1]",
                ));
            }
        }
        if self.weight_scale.is_nan() || self.weight_scale <= 0.0 {
            return Err(ModelError::InvalidConfig("weight_scale must be > 0"));
        }
        Ok(())
    }
}

/// An OS-ELM network with frozen random input weights.
#[derive(Debug, Clone)]
pub struct OsElm {
    cfg: OsElmConfig,
    /// Input weights, `hidden_dim x input_dim`.
    w: Matrix,
    /// Hidden biases, length `hidden_dim`.
    b: Vec<Real>,
    /// Recursive inverse Gram matrix `P`, `hidden_dim x hidden_dim`.
    p: Matrix,
    /// Output weights `β`, `hidden_dim x output_dim`.
    beta: Matrix,
    initialized: bool,
    samples_seen: u64,
    // Per-sample scratch (never reallocated after construction).
    scratch_h: Vec<Real>,
    scratch_ph: Vec<Real>,
    scratch_hp: Vec<Real>,
    scratch_err: Vec<Real>,
    scratch_out: Vec<Real>,
    // Transactional-update state (runtime only, never persisted): pre-update
    // copies of P/β for rollback, and the consecutive-rejection counter that
    // triggers plasticity re-seeding.
    backup_p: Vec<Real>,
    backup_beta: Vec<Real>,
    rejected_updates: u32,
}

impl OsElm {
    /// Builds a network with freshly drawn random input weights.
    pub fn new(cfg: OsElmConfig) -> Result<Self> {
        cfg.validate()?;
        let mut rng = seqdrift_linalg::Rng::seed_from(cfg.seed);
        let mut w = Matrix::zeros(cfg.hidden_dim, cfg.input_dim);
        let s = cfg.weight_scale;
        for v in w.as_mut_slice() {
            *v = rng.uniform_range(-s, s);
        }
        let mut b = vec![0.0; cfg.hidden_dim];
        rng.fill_uniform(&mut b, -s, s);
        Ok(OsElm {
            p: Matrix::zeros(cfg.hidden_dim, cfg.hidden_dim),
            beta: Matrix::zeros(cfg.hidden_dim, cfg.output_dim),
            w,
            b,
            initialized: false,
            samples_seen: 0,
            scratch_h: vec![0.0; cfg.hidden_dim],
            scratch_ph: vec![0.0; cfg.hidden_dim],
            scratch_hp: vec![0.0; cfg.hidden_dim],
            scratch_err: vec![0.0; cfg.output_dim],
            scratch_out: vec![0.0; cfg.output_dim],
            backup_p: vec![0.0; cfg.hidden_dim * cfg.hidden_dim],
            backup_beta: vec![0.0; cfg.hidden_dim * cfg.output_dim],
            rejected_updates: 0,
            cfg,
        })
    }

    /// Hard ceiling on `trace(P)` after a sequential update. A fresh
    /// regularised `P = I/λ` with the workspace's defaults has trace
    /// `H/λ ≈ 10³`; a healthy recursive update only *contracts* `P`, so a
    /// trace beyond this bound means the rank-1 step has diverged.
    pub const P_TRACE_BOUND: Real = 1e8;

    /// Consecutive rejected sequential updates after which [`OsElm`] gives
    /// up on the current `P` and re-seeds it via
    /// [`OsElm::reset_plasticity`] (β keeps its warm start).
    pub const MAX_REJECTED_UPDATES: u32 = 3;

    /// The configuration this network was built with.
    pub fn config(&self) -> &OsElmConfig {
        &self.cfg
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.cfg.input_dim
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        self.cfg.output_dim
    }

    /// Hidden-layer width.
    pub fn hidden_dim(&self) -> usize {
        self.cfg.hidden_dim
    }

    /// Whether [`OsElm::init_train`] has run.
    pub fn is_initialized(&self) -> bool {
        self.initialized
    }

    /// Total samples consumed (initial + sequential).
    pub fn samples_seen(&self) -> u64 {
        self.samples_seen
    }

    /// Computes the hidden activation `h = g(W x + b)` into `out`.
    pub fn hidden_into(&self, x: &[Real], out: &mut [Real]) -> Result<()> {
        if x.len() != self.cfg.input_dim {
            return Err(ModelError::DimensionMismatch {
                expected: self.cfg.input_dim,
                got: x.len(),
            });
        }
        self.w.matvec_into(x, out)?;
        for (h, &bi) in out.iter_mut().zip(self.b.iter()) {
            *h += bi;
        }
        self.cfg.activation.apply_slice(out);
        Ok(())
    }

    /// Initial (batch) training on `xs` with targets `ts`.
    ///
    /// Solves `β = (H₀ᵀH₀ + λI)⁻¹ H₀ᵀ T₀` once via Cholesky and stores the
    /// inverse `P` for subsequent sequential updates. Replaces any previous
    /// training state (this is exactly what the paper's model
    /// *reconstruction* relies on — see `seqdrift-core`).
    pub fn init_train(&mut self, xs: &[Vec<Real>], ts: &[Vec<Real>]) -> Result<()> {
        if xs.is_empty() || xs.len() != ts.len() {
            return Err(ModelError::InvalidConfig(
                "init_train: empty input or mismatched target count",
            ));
        }
        let need = if self.cfg.lambda > 0.0 {
            1
        } else {
            self.cfg.hidden_dim
        };
        if xs.len() < need {
            return Err(ModelError::TooFewSamples {
                got: xs.len(),
                need,
            });
        }
        let n = xs.len();
        let hdim = self.cfg.hidden_dim;
        // H: n x hidden.
        let mut h = Matrix::zeros(n, hdim);
        for (i, x) in xs.iter().enumerate() {
            let row = h.row_mut(i);
            // Cannot call self.hidden_into while h is mutably borrowed from
            // self-owned scratch, so inline the same computation.
            if x.len() != self.cfg.input_dim {
                return Err(ModelError::DimensionMismatch {
                    expected: self.cfg.input_dim,
                    got: x.len(),
                });
            }
            self.w.matvec_into(x, row)?;
            for (hv, &bi) in row.iter_mut().zip(self.b.iter()) {
                *hv += bi;
            }
            self.cfg.activation.apply_slice(row);
        }
        // T: n x output.
        let mut t = Matrix::zeros(n, self.cfg.output_dim);
        for (i, ti) in ts.iter().enumerate() {
            if ti.len() != self.cfg.output_dim {
                return Err(ModelError::DimensionMismatch {
                    expected: self.cfg.output_dim,
                    got: ti.len(),
                });
            }
            t.row_mut(i).copy_from_slice(ti);
        }
        // Gram = HᵀH + λI.
        let mut gram = Matrix::zeros(hdim, hdim);
        h.tr_matmul_into(&h, &mut gram)?;
        for i in 0..hdim {
            gram.set(i, i, gram.get(i, i) + self.cfg.lambda);
        }
        // P = Gram⁻¹ (Cholesky; LU fallback for the λ=0 edge where rounding
        // can nudge an eigenvalue below zero).
        self.p = match seqdrift_linalg::cholesky::spd_inverse(&gram) {
            Ok(p) => p,
            Err(_) => seqdrift_linalg::solve::inverse(&gram)?,
        };
        // β = P Hᵀ T.
        let mut ht_t = Matrix::zeros(hdim, self.cfg.output_dim);
        h.tr_matmul_into(&t, &mut ht_t)?;
        self.p.matmul_into(&ht_t, &mut self.beta)?;
        self.initialized = true;
        self.samples_seen = n as u64;
        Ok(())
    }

    /// One sequential training step on `(x, t)` with batch size 1.
    ///
    /// Allocation-free; errors if the model has not been initially trained.
    ///
    /// The update is *transactional*: after the rank-1 step the new `P`/`β`
    /// are validated (every entry finite, `trace(P)` within
    /// [`OsElm::P_TRACE_BOUND`]). An update that fails validation — or whose
    /// gain denominator was not positive-finite — is rolled back so the
    /// model is bit-identical to its pre-call state, and
    /// [`ModelError::RejectedUpdate`] is returned. After
    /// [`OsElm::MAX_REJECTED_UPDATES`] *consecutive* rejections `P` is
    /// re-seeded to `I/λ` (β keeps its warm start) so an ill-conditioned
    /// inverse-Gram state cannot freeze the model forever.
    pub fn seq_train(&mut self, x: &[Real], t: &[Real]) -> Result<()> {
        if !self.initialized {
            return Err(ModelError::NotInitialized);
        }
        if t.len() != self.cfg.output_dim {
            return Err(ModelError::DimensionMismatch {
                expected: self.cfg.output_dim,
                got: t.len(),
            });
        }
        // Snapshot for rollback (plain copies into pre-sized buffers; no
        // allocation on the hot path).
        let mut backup_p = std::mem::take(&mut self.backup_p);
        let mut backup_beta = std::mem::take(&mut self.backup_beta);
        backup_p.copy_from_slice(self.p.as_slice());
        backup_beta.copy_from_slice(self.beta.as_slice());
        let seen_before = self.samples_seen;
        // Split scratch out of self so we can borrow immutably alongside.
        let mut h = std::mem::take(&mut self.scratch_h);
        let mut ph = std::mem::take(&mut self.scratch_ph);
        let mut hp = std::mem::take(&mut self.scratch_hp);
        let mut err = std::mem::take(&mut self.scratch_err);

        let result = (|| -> Result<()> {
            self.hidden_into(x, &mut h)?;
            // err = t - h β   (computed with the *old* β).
            self.beta.tr_matvec_into(&h, &mut err)?;
            for (e, &ti) in err.iter_mut().zip(t.iter()) {
                *e = ti - *e;
            }
            // P update (plain or forgetting).
            self.p.matvec_into(&h, &mut ph)?;
            self.p.tr_matvec_into(&h, &mut hp)?;
            match self.cfg.forgetting {
                None => {
                    let denom = 1.0 + vector::dot(&h, &ph);
                    if denom <= 0.0 || !denom.is_finite() {
                        return Err(ModelError::Linalg(
                            seqdrift_linalg::LinalgError::NotPositiveDefinite,
                        ));
                    }
                    self.p.add_outer(-1.0 / denom, &ph, &hp)?;
                }
                Some(alpha) => {
                    let denom = alpha + vector::dot(&h, &ph);
                    if denom <= 0.0 || !denom.is_finite() {
                        return Err(ModelError::Linalg(
                            seqdrift_linalg::LinalgError::NotPositiveDefinite,
                        ));
                    }
                    self.p.add_outer(-1.0 / denom, &ph, &hp)?;
                    self.p.scale(1.0 / alpha);
                }
            }
            // β += (P_new hᵀ) ⊗ err.
            self.p.matvec_into(&h, &mut ph)?;
            self.beta.add_outer(1.0, &ph, &err)?;
            self.samples_seen += 1;
            Ok(())
        })();

        self.scratch_h = h;
        self.scratch_ph = ph;
        self.scratch_hp = hp;
        self.scratch_err = err;
        let result = match result {
            Ok(()) => {
                if self.state_is_sane() {
                    self.rejected_updates = 0;
                    Ok(())
                } else {
                    self.reject_update(
                        &backup_p,
                        &backup_beta,
                        seen_before,
                        "update produced non-finite or divergent P/beta",
                    )
                }
            }
            Err(ModelError::Linalg(seqdrift_linalg::LinalgError::NotPositiveDefinite)) => self
                .reject_update(
                    &backup_p,
                    &backup_beta,
                    seen_before,
                    "gain denominator not positive-finite",
                ),
            Err(ModelError::Linalg(seqdrift_linalg::LinalgError::NonFiniteResult)) => self
                .reject_update(
                    &backup_p,
                    &backup_beta,
                    seen_before,
                    "rank-1 kernel produced a non-finite entry",
                ),
            Err(e) => Err(e),
        };
        self.backup_p = backup_p;
        self.backup_beta = backup_beta;
        result
    }

    /// Whether the committed `P`/`β` state is numerically usable: every
    /// entry finite and `trace(P)` finite within [`OsElm::P_TRACE_BOUND`].
    fn state_is_sane(&self) -> bool {
        let trace: Real = (0..self.cfg.hidden_dim).map(|i| self.p.get(i, i)).sum();
        trace.is_finite()
            && trace <= Self::P_TRACE_BOUND
            && self.p.as_slice().iter().all(|v| v.is_finite())
            && self.beta.as_slice().iter().all(|v| v.is_finite())
    }

    /// Rolls `P`/`β`/`samples_seen` back to their pre-update snapshot,
    /// bumps the consecutive-rejection counter (re-seeding `P = I/λ` once
    /// it reaches [`OsElm::MAX_REJECTED_UPDATES`]) and reports the
    /// rejection.
    fn reject_update(
        &mut self,
        backup_p: &[Real],
        backup_beta: &[Real],
        seen_before: u64,
        why: &'static str,
    ) -> Result<()> {
        self.p.as_mut_slice().copy_from_slice(backup_p);
        self.beta.as_mut_slice().copy_from_slice(backup_beta);
        self.samples_seen = seen_before;
        self.rejected_updates += 1;
        if self.rejected_updates >= Self::MAX_REJECTED_UPDATES {
            self.rejected_updates = 0;
            self.reset_plasticity()?;
        }
        Err(ModelError::RejectedUpdate(why))
    }

    /// Consecutive sequential updates rejected since the last committed
    /// update (resets to zero on commit or on plasticity re-seeding).
    pub fn rejected_updates(&self) -> u32 {
        self.rejected_updates
    }

    /// Sequential training on a *chunk* of `k` samples (Liang et al.'s
    /// general update; the paper's firmware fixes `k = 1` to avoid the
    /// `k x k` inversion, but host-side calibration benefits from chunks):
    ///
    /// ```text
    /// P <- P - P Hᵀ (I + H P Hᵀ)⁻¹ H P
    /// β <- β + P Hᵀ (T - H β)
    /// ```
    ///
    /// Equivalent to `k` successive [`OsElm::seq_train`] calls in exact
    /// arithmetic. Allocates O(k² + k·H) temporaries — host-side use only.
    pub fn seq_train_chunk(&mut self, xs: &[Vec<Real>], ts: &[Vec<Real>]) -> Result<()> {
        if !self.initialized {
            return Err(ModelError::NotInitialized);
        }
        if xs.is_empty() || xs.len() != ts.len() {
            return Err(ModelError::InvalidConfig(
                "seq_train_chunk: empty chunk or mismatched target count",
            ));
        }
        if self.cfg.forgetting.is_some() {
            // The forgetting recursion discounts *per sample*; a chunk
            // update would apply one discount to k samples and silently
            // change the model. Keep the semantics honest instead.
            return Err(ModelError::InvalidConfig(
                "seq_train_chunk does not support forgetting; use seq_train",
            ));
        }
        let k = xs.len();
        let hdim = self.cfg.hidden_dim;
        // H: k x hidden.
        let mut h = Matrix::zeros(k, hdim);
        for (i, x) in xs.iter().enumerate() {
            let row = h.row_mut(i);
            if x.len() != self.cfg.input_dim {
                return Err(ModelError::DimensionMismatch {
                    expected: self.cfg.input_dim,
                    got: x.len(),
                });
            }
            self.w.matvec_into(x, row)?;
            for (hv, &bi) in row.iter_mut().zip(self.b.iter()) {
                *hv += bi;
            }
            self.cfg.activation.apply_slice(row);
        }
        // T - H β  (k x output).
        let mut resid = Matrix::zeros(k, self.cfg.output_dim);
        h.matmul_into(&self.beta, &mut resid)?;
        for (i, t) in ts.iter().enumerate() {
            if t.len() != self.cfg.output_dim {
                return Err(ModelError::DimensionMismatch {
                    expected: self.cfg.output_dim,
                    got: t.len(),
                });
            }
            for (r, &tv) in resid.row_mut(i).iter_mut().zip(t.iter()) {
                *r = tv - *r;
            }
        }
        // G = I + H P Hᵀ  (k x k), via PHt = P Hᵀ (hidden x k).
        let ht = h.transpose();
        let mut pht = Matrix::zeros(hdim, k);
        self.p.matmul_into(&ht, &mut pht)?;
        let mut g = Matrix::zeros(k, k);
        h.matmul_into(&pht, &mut g)?;
        for i in 0..k {
            g.set(i, i, g.get(i, i) + 1.0);
        }
        let g_inv = seqdrift_linalg::solve::inverse(&g)?;
        // Gain = P Hᵀ G⁻¹  (hidden x k).
        let mut gain = Matrix::zeros(hdim, k);
        pht.matmul_into(&g_inv, &mut gain)?;
        // P <- P - Gain (H P). H P = (P Hᵀ)ᵀ because P is symmetric.
        let mut hp = Matrix::zeros(k, hdim);
        pht.transpose_into(&mut hp)?;
        let mut delta_p = Matrix::zeros(hdim, hdim);
        gain.matmul_into(&hp, &mut delta_p)?;
        self.p.sub_assign(&delta_p)?;
        // β <- β + P_new Hᵀ resid. Recompute P Hᵀ with the updated P.
        self.p.matmul_into(&ht, &mut pht)?;
        let mut delta_beta = Matrix::zeros(hdim, self.cfg.output_dim);
        pht.matmul_into(&resid, &mut delta_beta)?;
        self.beta.add_assign(&delta_beta)?;
        self.samples_seen += k as u64;
        Ok(())
    }

    /// Predicts the output for `x` into `out` (allocation-free).
    pub fn predict_into(&mut self, x: &[Real], out: &mut [Real]) -> Result<()> {
        if !self.initialized {
            return Err(ModelError::NotInitialized);
        }
        if out.len() != self.cfg.output_dim {
            return Err(ModelError::DimensionMismatch {
                expected: self.cfg.output_dim,
                got: out.len(),
            });
        }
        let mut h = std::mem::take(&mut self.scratch_h);
        let result = self
            .hidden_into(x, &mut h)
            .and_then(|()| self.beta.tr_matvec_into(&h, out).map_err(Into::into));
        self.scratch_h = h;
        result
    }

    /// Predicts the output for `x`, allocating the result.
    pub fn predict(&mut self, x: &[Real]) -> Result<Vec<Real>> {
        let mut out = vec![0.0; self.cfg.output_dim];
        self.predict_into(x, &mut out)?;
        Ok(out)
    }

    /// Mean-squared error between the prediction for `x` and target `t`.
    pub fn prediction_error(&mut self, x: &[Real], t: &[Real]) -> Result<Real> {
        if t.len() != self.cfg.output_dim {
            return Err(ModelError::DimensionMismatch {
                expected: self.cfg.output_dim,
                got: t.len(),
            });
        }
        let mut out = std::mem::take(&mut self.scratch_out);
        let result = self
            .predict_into(x, &mut out)
            .map(|()| vector::dist_l2_sq(&out, t) / t.len() as Real);
        self.scratch_out = out;
        result
    }

    /// Restores training plasticity without touching the learned weights:
    /// `P` is reset to its regularised fresh state `(1/λ)·I` while `β`
    /// stays as a warm start.
    ///
    /// After thousands of sequential updates `P` contracts toward zero and
    /// the per-sample gain `P hᵀ` becomes negligible — the model is
    /// effectively frozen. Model *reconstruction* (Algorithm 2 of the
    /// paper) needs the instance to re-learn a new concept sequentially, so
    /// the pipeline calls this when reconstruction starts.
    pub fn reset_plasticity(&mut self) -> Result<()> {
        if !self.initialized {
            return Err(ModelError::NotInitialized);
        }
        let lambda = if self.cfg.lambda > 0.0 {
            self.cfg.lambda
        } else {
            1.0
        };
        self.p.fill_zero();
        for i in 0..self.cfg.hidden_dim {
            self.p.set(i, i, 1.0 / lambda);
        }
        Ok(())
    }

    /// Number of trainable/stored scalar parameters, broken down by buffer.
    /// Used by `seqdrift-edgesim` for the Table 4 memory accounting.
    pub fn param_counts(&self) -> OsElmParamCounts {
        OsElmParamCounts {
            w: self.w.len(),
            b: self.b.len(),
            p: self.p.len(),
            beta: self.beta.len(),
        }
    }

    /// Direct read access to `β` (testing / serialisation).
    pub fn beta(&self) -> &Matrix {
        &self.beta
    }

    /// Direct read access to `P` (testing / serialisation).
    pub fn p(&self) -> &Matrix {
        &self.p
    }

    /// Direct read access to the frozen input weights (serialisation).
    pub fn weights(&self) -> &Matrix {
        &self.w
    }

    /// Direct read access to the hidden biases (serialisation).
    pub fn biases(&self) -> &[Real] {
        &self.b
    }

    /// Reassembles a model from raw state (deserialisation). Every buffer
    /// length is validated against the config before construction.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        cfg: OsElmConfig,
        w: Vec<Real>,
        b: Vec<Real>,
        p: Vec<Real>,
        beta: Vec<Real>,
        initialized: bool,
        samples_seen: u64,
    ) -> Result<OsElm> {
        cfg.validate()?;
        let (hd, id, od) = (cfg.hidden_dim, cfg.input_dim, cfg.output_dim);
        // Checked arithmetic: dims may come from an untrusted blob, and a
        // wrapping product could make a mismatched buffer look right.
        let (Some(w_len), Some(p_len), Some(beta_len)) =
            (hd.checked_mul(id), hd.checked_mul(hd), hd.checked_mul(od))
        else {
            return Err(ModelError::InvalidConfig(
                "from_parts: dimension product overflows",
            ));
        };
        if w.len() != w_len || b.len() != hd || p.len() != p_len || beta.len() != beta_len {
            return Err(ModelError::InvalidConfig(
                "from_parts: buffer length does not match config",
            ));
        }
        let w = Matrix::from_vec(hd, id, w).expect("length checked");
        let p = Matrix::from_vec(hd, hd, p).expect("length checked");
        let beta = Matrix::from_vec(hd, od, beta).expect("length checked");
        Ok(OsElm {
            w,
            b,
            p,
            beta,
            initialized,
            samples_seen,
            scratch_h: vec![0.0; hd],
            scratch_ph: vec![0.0; hd],
            scratch_hp: vec![0.0; hd],
            scratch_err: vec![0.0; od],
            scratch_out: vec![0.0; od],
            backup_p: vec![0.0; p_len],
            backup_beta: vec![0.0; beta_len],
            rejected_updates: 0,
            cfg,
        })
    }

    /// Closed-form federated merge (Ito et al., arXiv 2002.12301, applied
    /// to the recursive form the paper uses): fuses this network with
    /// `contributors` trained from the *same* frozen hidden layer by
    /// combining their sufficient statistics rather than their weights.
    ///
    /// For each network, `U = P⁻¹ = HᵀH + λI` is the regularised Gram
    /// matrix of everything it has seen and `c = U β = HᵀT` the matching
    /// normal-equation right-hand side. Both are additive across sample
    /// sets, so the merge solves the pooled normal equations
    /// `β* = (Σ U)⁻¹ (Σ c)` over base + contributors. Statistics the
    /// participants share (the common reference they all started from)
    /// are counted once per participant, which anchors the blend toward
    /// the reference model — deliberate conservatism for a fleet merge,
    /// where one eccentric contributor should pull, not teleport, the
    /// merged model. The merged state stores the *mean* of the `U`s (and
    /// of the `c`s) instead of the sum — `β*` is unchanged, but the
    /// merged `P` keeps the same magnitude scale as its inputs, so
    /// repeated merge rounds cannot drive `trace(P)` toward the
    /// [`OsElm::P_TRACE_BOUND`] divergence guard from above or freeze the
    /// model's plasticity from below.
    ///
    /// Validation mirrors `seq_train`'s transactional path: every `U_i`
    /// must factor positive-definite, the merged Gram must factor
    /// positive-definite, and the resulting `P`/`β` must be entirely
    /// finite with `trace(P)` within [`OsElm::P_TRACE_BOUND`] — otherwise
    /// the merge returns [`ModelError::RejectedUpdate`] and `self` is
    /// untouched (the merge never mutates, it returns a new network).
    ///
    /// Requirements: all networks initialised, configs identical, and
    /// bit-identical `W`/`b` (the statistics only compose against one
    /// shared random hidden layer).
    pub fn merge_with(&self, contributors: &[&OsElm]) -> Result<OsElm> {
        if contributors.is_empty() {
            return Err(ModelError::InvalidConfig("merge_with: no contributors"));
        }
        if !self.initialized {
            return Err(ModelError::NotInitialized);
        }
        for c in contributors {
            if !c.initialized {
                return Err(ModelError::NotInitialized);
            }
            if c.cfg != self.cfg {
                return Err(ModelError::InvalidConfig(
                    "merge_with: contributor config differs from base",
                ));
            }
            if c.w.as_slice() != self.w.as_slice() || c.b != self.b {
                return Err(ModelError::InvalidConfig(
                    "merge_with: contributor hidden layer differs from base",
                ));
            }
        }
        let (hd, od) = (self.cfg.hidden_dim, self.cfg.output_dim);
        // U_i = P_i⁻¹ and c_i = U_i β_i for the base and every contributor.
        // spd_inverse validates each P_i positive-definite on the way.
        let mut grams: Vec<Matrix> = Vec::with_capacity(contributors.len() + 1);
        let mut rhs_mean = Matrix::zeros(hd, od);
        let scale = 1.0 / (contributors.len() + 1) as Real;
        for net in std::iter::once(&self).chain(contributors.iter()) {
            let u = cholesky::spd_inverse(&net.p)?;
            let c = u.matmul(&net.beta)?;
            for (acc, &v) in rhs_mean.as_mut_slice().iter_mut().zip(c.as_slice()) {
                *acc += v * scale;
            }
            grams.push(u);
        }
        let gram_refs: Vec<&Matrix> = grams.iter().collect();
        let u_merged = cholesky::spd_mean(&gram_refs)?;
        let p = cholesky::spd_inverse(&u_merged)?;
        let beta = p.matmul(&rhs_mean)?;
        // Commit gate, exactly as seq_train's post-update validation.
        let trace: Real = (0..hd).map(|i| p.get(i, i)).sum();
        let sane = trace.is_finite()
            && trace <= Self::P_TRACE_BOUND
            && p.as_slice().iter().all(|v| v.is_finite())
            && beta.as_slice().iter().all(|v| v.is_finite());
        if !sane {
            return Err(ModelError::RejectedUpdate(
                "merge produced non-finite or divergent P/beta",
            ));
        }
        let samples_seen = std::iter::once(self.samples_seen)
            .chain(contributors.iter().map(|c| c.samples_seen))
            .max()
            .unwrap_or(self.samples_seen);
        OsElm::from_parts(
            self.cfg.clone(),
            self.w.as_slice().to_vec(),
            self.b.clone(),
            p.as_slice().to_vec(),
            beta.as_slice().to_vec(),
            true,
            samples_seen,
        )
    }
}

/// Scalar-count breakdown of an OS-ELM's buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OsElmParamCounts {
    /// Input weight count (`hidden x input`).
    pub w: usize,
    /// Bias count (`hidden`).
    pub b: usize,
    /// Inverse-Gram count (`hidden x hidden`).
    pub p: usize,
    /// Output weight count (`hidden x output`).
    pub beta: usize,
}

impl OsElmParamCounts {
    /// Total scalars.
    pub fn total(&self) -> usize {
        self.w + self.b + self.p + self.beta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdrift_linalg::Rng;

    fn toy_data(n: usize, dim: usize, seed: u64) -> Vec<Vec<Real>> {
        let mut rng = Rng::seed_from(seed);
        (0..n)
            .map(|_| {
                let mut x = vec![0.0; dim];
                rng.fill_uniform(&mut x, 0.0, 1.0);
                x
            })
            .collect()
    }

    #[test]
    fn config_validation() {
        assert!(OsElm::new(OsElmConfig::new(0, 4)).is_err());
        assert!(OsElm::new(OsElmConfig::new(4, 0)).is_err());
        assert!(OsElm::new(OsElmConfig::new(4, 2).with_forgetting(0.0)).is_err());
        assert!(OsElm::new(OsElmConfig::new(4, 2).with_forgetting(1.5)).is_err());
        assert!(OsElm::new(OsElmConfig::new(4, 2).with_forgetting(1.0)).is_ok());
        assert!(OsElm::new(OsElmConfig::new(4, 2).with_lambda(-1.0)).is_err());
    }

    #[test]
    fn untrained_model_rejects_use() {
        let mut m = OsElm::new(OsElmConfig::new(3, 2)).unwrap();
        assert!(!m.is_initialized());
        assert_eq!(
            m.predict(&[0.0; 3]).unwrap_err(),
            ModelError::NotInitialized
        );
        assert_eq!(
            m.seq_train(&[0.0; 3], &[0.0; 3]).unwrap_err(),
            ModelError::NotInitialized
        );
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut m = OsElm::new(OsElmConfig::new(3, 2)).unwrap();
        let xs = toy_data(10, 3, 1);
        m.init_train(&xs, &xs).unwrap();
        assert!(matches!(
            m.predict(&[0.0; 4]),
            Err(ModelError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            m.seq_train(&[0.0; 3], &[0.0; 4]),
            Err(ModelError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn same_seed_same_weights() {
        let a = OsElm::new(OsElmConfig::new(5, 3).with_seed(9)).unwrap();
        let b = OsElm::new(OsElmConfig::new(5, 3).with_seed(9)).unwrap();
        assert_eq!(a.w, b.w);
        assert_eq!(a.b, b.b);
        let c = OsElm::new(OsElmConfig::new(5, 3).with_seed(10)).unwrap();
        assert_ne!(a.w, c.w);
    }

    #[test]
    fn init_train_fits_training_data() {
        // An autoencoder with ample hidden capacity should reconstruct its
        // own (few) training points well.
        let xs = toy_data(8, 4, 2);
        let mut m = OsElm::new(OsElmConfig::new(4, 16).with_lambda(1e-4)).unwrap();
        m.init_train(&xs, &xs).unwrap();
        for x in &xs {
            let err = m.prediction_error(x, x).unwrap();
            assert!(err < 1e-3, "reconstruction error {err}");
        }
    }

    #[test]
    fn sequential_equals_batch_training() {
        // Core OS-ELM theorem: init on A then seq over B gives the same β as
        // init on A ∪ B (identical λ). Verified to f32 tolerance.
        let all = toy_data(60, 5, 3);
        let (a, b) = all.split_at(30);

        let cfg = OsElmConfig::new(5, 8).with_seed(11).with_lambda(0.1);
        let mut seq = OsElm::new(cfg.clone()).unwrap();
        seq.init_train(a, a).unwrap();
        for x in b {
            seq.seq_train(x, x).unwrap();
        }

        let mut batch = OsElm::new(cfg).unwrap();
        batch.init_train(&all, &all).unwrap();

        assert!(seq.beta().approx_eq(batch.beta(), 5e-2), "max diff {}", {
            let mut d = seq.beta().clone();
            d.sub_assign(batch.beta()).unwrap();
            d.max_abs()
        });
    }

    #[test]
    fn seq_training_reduces_error_on_new_concept() {
        // Train on one blob, then stream a different blob: error on the new
        // blob must drop as the model adapts.
        let old = toy_data(40, 4, 4);
        let mut m = OsElm::new(OsElmConfig::new(4, 10).with_seed(5)).unwrap();
        m.init_train(&old, &old).unwrap();

        let mut rng = Rng::seed_from(99);
        let make_new = |rng: &mut Rng| {
            let mut x = vec![0.0; 4];
            rng.fill_normal(&mut x, 3.0, 0.1);
            x
        };
        let probe = make_new(&mut rng);
        let before = m.prediction_error(&probe, &probe).unwrap();
        for _ in 0..200 {
            let x = make_new(&mut rng);
            m.seq_train(&x, &x).unwrap();
        }
        let after = m.prediction_error(&probe, &probe).unwrap();
        assert!(
            after < before * 0.5,
            "error did not drop: before {before}, after {after}"
        );
    }

    #[test]
    fn forgetting_adapts_faster_than_plain() {
        // After a concept switch, α < 1 should reach low error on the new
        // concept in fewer updates than plain OS-ELM trained identically.
        let old = toy_data(50, 3, 6);
        let cfg = OsElmConfig::new(3, 8).with_seed(21);
        let mut plain = OsElm::new(cfg.clone()).unwrap();
        let mut forget = OsElm::new(cfg.with_forgetting(0.9)).unwrap();
        plain.init_train(&old, &old).unwrap();
        forget.init_train(&old, &old).unwrap();

        let mut rng = Rng::seed_from(7);
        let mut probe_sum_plain = 0.0;
        let mut probe_sum_forget = 0.0;
        for _ in 0..60 {
            let mut x = vec![0.0; 3];
            rng.fill_normal(&mut x, 2.0, 0.05);
            plain.seq_train(&x, &x).unwrap();
            forget.seq_train(&x, &x).unwrap();
            probe_sum_plain += plain.prediction_error(&x, &x).unwrap();
            probe_sum_forget += forget.prediction_error(&x, &x).unwrap();
        }
        assert!(
            probe_sum_forget < probe_sum_plain,
            "forgetting {probe_sum_forget} vs plain {probe_sum_plain}"
        );
    }

    #[test]
    fn forgetting_alpha_one_matches_plain_oselm() {
        let data = toy_data(30, 4, 8);
        let (a, b) = data.split_at(15);
        let cfg = OsElmConfig::new(4, 6).with_seed(13);
        let mut plain = OsElm::new(cfg.clone()).unwrap();
        let mut alpha1 = OsElm::new(cfg.with_forgetting(1.0)).unwrap();
        plain.init_train(a, a).unwrap();
        alpha1.init_train(a, a).unwrap();
        for x in b {
            plain.seq_train(x, x).unwrap();
            alpha1.seq_train(x, x).unwrap();
        }
        assert!(plain.beta().approx_eq(alpha1.beta(), 1e-4));
    }

    #[test]
    fn init_train_resets_previous_state() {
        let xs1 = toy_data(20, 3, 10);
        let xs2 = toy_data(20, 3, 20);
        let cfg = OsElmConfig::new(3, 5).with_seed(1);
        let mut twice = OsElm::new(cfg.clone()).unwrap();
        twice.init_train(&xs1, &xs1).unwrap();
        twice.init_train(&xs2, &xs2).unwrap();
        let mut once = OsElm::new(cfg).unwrap();
        once.init_train(&xs2, &xs2).unwrap();
        assert!(twice.beta().approx_eq(once.beta(), 1e-5));
        assert_eq!(twice.samples_seen(), 20);
    }

    #[test]
    fn param_counts_match_shapes() {
        let m = OsElm::new(OsElmConfig::new(38, 22)).unwrap();
        let pc = m.param_counts();
        assert_eq!(pc.w, 22 * 38);
        assert_eq!(pc.b, 22);
        assert_eq!(pc.p, 22 * 22);
        assert_eq!(pc.beta, 22 * 38);
        assert_eq!(pc.total(), 22 * 38 * 2 + 22 + 484);
    }

    #[test]
    fn identity_activation_solves_linear_regression() {
        // With identity activation OS-ELM is recursive ridge regression on
        // the random feature z = Wx + b; fitting a linear target must give
        // near-zero residual once hidden_dim >= input_dim.
        let xs = toy_data(50, 3, 30);
        let ts: Vec<Vec<Real>> = xs
            .iter()
            .map(|x| vec![2.0 * x[0] - x[1] + 0.5 * x[2]])
            .collect();
        let cfg = OsElmConfig::new(3, 6)
            .with_output_dim(1)
            .with_activation(Activation::Identity)
            .with_lambda(1e-5)
            .with_seed(77);
        let mut m = OsElm::new(cfg).unwrap();
        m.init_train(&xs, &ts).unwrap();
        for (x, t) in xs.iter().zip(ts.iter()) {
            let err = m.prediction_error(x, t).unwrap();
            // f32 Cholesky on a near-collinear random-feature Gram matrix
            // leaves a small residual; exactness holds only in f64.
            assert!(err < 0.05, "residual {err}");
        }
    }

    #[test]
    fn chunk_training_matches_per_sample_training() {
        let all = toy_data(60, 4, 60);
        let (init, rest) = all.split_at(30);
        let cfg = OsElmConfig::new(4, 6).with_seed(3).with_lambda(0.1);

        let mut per_sample = OsElm::new(cfg.clone()).unwrap();
        per_sample.init_train(init, init).unwrap();
        for x in rest {
            per_sample.seq_train(x, x).unwrap();
        }

        let mut chunked = OsElm::new(cfg).unwrap();
        chunked.init_train(init, init).unwrap();
        // Two chunks of 15.
        chunked.seq_train_chunk(&rest[..15], &rest[..15]).unwrap();
        chunked.seq_train_chunk(&rest[15..], &rest[15..]).unwrap();

        assert!(
            per_sample.beta().approx_eq(chunked.beta(), 5e-2),
            "chunk vs per-sample beta diverged"
        );
        assert_eq!(per_sample.samples_seen(), chunked.samples_seen());
    }

    #[test]
    fn chunk_training_rejects_forgetting_and_bad_input() {
        let xs = toy_data(20, 3, 61);
        let mut forget = OsElm::new(OsElmConfig::new(3, 4).with_forgetting(0.95)).unwrap();
        forget.init_train(&xs, &xs).unwrap();
        assert!(forget.seq_train_chunk(&xs, &xs).is_err());

        let mut plain = OsElm::new(OsElmConfig::new(3, 4)).unwrap();
        plain.init_train(&xs, &xs).unwrap();
        assert!(plain.seq_train_chunk(&[], &[]).is_err());
        assert!(plain.seq_train_chunk(&xs[..2], &xs[..1]).is_err());
        let wrong_dim = vec![vec![0.0; 4]];
        assert!(plain.seq_train_chunk(&wrong_dim, &wrong_dim).is_err());
    }

    #[test]
    fn too_few_samples_without_regularisation() {
        let xs = toy_data(3, 4, 40);
        let mut m = OsElm::new(OsElmConfig::new(4, 8).with_lambda(0.0)).unwrap();
        assert!(matches!(
            m.init_train(&xs, &xs),
            Err(ModelError::TooFewSamples { .. })
        ));
    }

    #[test]
    fn predict_into_is_allocation_free_shape_checked() {
        let xs = toy_data(10, 3, 50);
        let mut m = OsElm::new(OsElmConfig::new(3, 4)).unwrap();
        m.init_train(&xs, &xs).unwrap();
        let mut out = vec![0.0; 2];
        assert!(matches!(
            m.predict_into(&xs[0], &mut out),
            Err(ModelError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn rejected_update_rolls_back_bit_identically() {
        let xs = toy_data(30, 3, 60);
        let mut m = OsElm::new(OsElmConfig::new(3, 4).with_seed(9)).unwrap();
        m.init_train(&xs, &xs).unwrap();
        let p_before = m.p().as_slice().to_vec();
        let beta_before = m.beta().as_slice().to_vec();
        let seen_before = m.samples_seen();
        // A NaN input poisons h, err and the denominator; the transactional
        // layer must reject and leave the model untouched.
        let bad = vec![Real::NAN; 3];
        let res = m.seq_train(&bad, &bad);
        assert!(matches!(res, Err(ModelError::RejectedUpdate(_))), "{res:?}");
        assert_eq!(m.p().as_slice(), &p_before[..]);
        assert_eq!(m.beta().as_slice(), &beta_before[..]);
        assert_eq!(m.samples_seen(), seen_before);
        assert_eq!(m.rejected_updates(), 1);
        // A clean sample afterwards trains normally and clears the counter.
        m.seq_train(&xs[0], &xs[0]).unwrap();
        assert_eq!(m.rejected_updates(), 0);
        assert_eq!(m.samples_seen(), seen_before + 1);
    }

    #[test]
    fn consecutive_rejections_reseed_plasticity() {
        let xs = toy_data(30, 3, 61);
        let mut m = OsElm::new(OsElmConfig::new(3, 4).with_seed(9)).unwrap();
        m.init_train(&xs, &xs).unwrap();
        let bad = vec![Real::INFINITY; 3];
        for _ in 0..OsElm::MAX_REJECTED_UPDATES {
            assert!(matches!(
                m.seq_train(&bad, &bad),
                Err(ModelError::RejectedUpdate(_))
            ));
        }
        // The counter wrapped and P was re-seeded to I/λ.
        assert_eq!(m.rejected_updates(), 0);
        let lambda = m.config().lambda;
        for i in 0..m.hidden_dim() {
            for j in 0..m.hidden_dim() {
                let expect = if i == j { 1.0 / lambda } else { 0.0 };
                assert_eq!(m.p().get(i, j), expect);
            }
        }
        // Still trainable after the re-seed.
        m.seq_train(&xs[1], &xs[1]).unwrap();
        assert!(m.p().as_slice().iter().all(|v| v.is_finite()));
    }

    /// Builds sibling networks from one initial batch, then trains each
    /// sibling sequentially on its own shard.
    fn federated_siblings(shards: &[Vec<Vec<Real>>]) -> Vec<OsElm> {
        let init = toy_data(40, 3, 70);
        let base = {
            let mut m = OsElm::new(OsElmConfig::new(3, 5).with_seed(11)).unwrap();
            m.init_train(&init, &init).unwrap();
            m
        };
        shards
            .iter()
            .map(|shard| {
                let mut m = base.clone();
                for x in shard {
                    m.seq_train(x, x).unwrap();
                }
                m
            })
            .collect()
    }

    #[test]
    fn merge_recovers_joint_training_solution() {
        // Two siblings each see half the extra data; merging them must
        // approximate one network that saw all of it sequentially.
        let shard_a = toy_data(60, 3, 71);
        let shard_b = toy_data(60, 3, 72);
        let nets = federated_siblings(&[shard_a.clone(), shard_b.clone(), vec![]]);
        let (a, b, base) = (&nets[0], &nets[1], &nets[2]);

        let merged = base.merge_with(&[a, b]).unwrap();
        assert!(merged.is_initialized());
        assert_eq!(merged.samples_seen(), a.samples_seen());
        assert_eq!(merged.weights().as_slice(), base.weights().as_slice());

        let mut joint = base.clone();
        for x in shard_a.iter().chain(shard_b.iter()) {
            joint.seq_train(x, x).unwrap();
        }
        // The pooled normal equations count the shared initial batch once
        // per participant, so the merge is an anchored blend rather than
        // the exact joint solution — but it must land far closer to the
        // joint solution than the stale base does.
        let dist = |a: &OsElm, b: &OsElm| -> Real {
            a.beta()
                .as_slice()
                .iter()
                .zip(b.beta().as_slice())
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<Real>()
                .sqrt()
        };
        let merged_err = dist(&merged, &joint);
        let base_err = dist(base, &joint);
        assert!(
            merged_err < base_err * 0.5,
            "merged {merged_err} vs base {base_err}"
        );
        // Averaged Gram fusion: the merged P stays on the inputs' scale.
        let trace = |n: &OsElm| (0..n.hidden_dim()).map(|i| n.p().get(i, i)).sum::<Real>();
        assert!(trace(&merged) <= trace(base) * 1.5 + 1.0);
    }

    #[test]
    fn merge_is_deterministic_and_does_not_mutate_base() {
        let nets = federated_siblings(&[toy_data(30, 3, 73), toy_data(30, 3, 74)]);
        let (a, b) = (&nets[0], &nets[1]);
        let a_p = a.p().as_slice().to_vec();
        let m1 = a.merge_with(&[b]).unwrap();
        let m2 = a.merge_with(&[b]).unwrap();
        assert_eq!(m1.p().as_slice(), m2.p().as_slice());
        assert_eq!(m1.beta().as_slice(), m2.beta().as_slice());
        assert_eq!(a.p().as_slice(), &a_p[..]);
    }

    #[test]
    fn merge_rejects_incompatible_contributors() {
        let nets = federated_siblings(&[toy_data(20, 3, 75)]);
        let base = &nets[0];
        assert!(matches!(
            base.merge_with(&[]),
            Err(ModelError::InvalidConfig(_))
        ));
        // Different seed => different frozen hidden layer.
        let xs = toy_data(40, 3, 76);
        let mut other_layer = OsElm::new(OsElmConfig::new(3, 5).with_seed(12)).unwrap();
        other_layer.init_train(&xs, &xs).unwrap();
        assert!(matches!(
            base.merge_with(&[&other_layer]),
            Err(ModelError::InvalidConfig(_))
        ));
        // Uninitialised contributor.
        let raw = OsElm::new(OsElmConfig::new(3, 5).with_seed(11)).unwrap();
        assert!(matches!(
            base.merge_with(&[&raw]),
            Err(ModelError::NotInitialized)
        ));
    }

    #[test]
    fn merge_rejects_poisoned_contributor_statistics() {
        let nets = federated_siblings(&[toy_data(20, 3, 77), toy_data(20, 3, 78)]);
        let (base, clean) = (&nets[0], &nets[1]);
        // Forge a contributor whose P carries a NaN: the PD validation in
        // the Gram inversion must reject the merge outright.
        let mut p = clean.p().as_slice().to_vec();
        p[0] = Real::NAN;
        let poisoned = OsElm::from_parts(
            clean.config().clone(),
            clean.weights().as_slice().to_vec(),
            clean.biases().to_vec(),
            p,
            clean.beta().as_slice().to_vec(),
            true,
            clean.samples_seen(),
        )
        .unwrap();
        assert!(matches!(
            base.merge_with(&[&poisoned]),
            Err(ModelError::Linalg(_))
        ));
    }
}
