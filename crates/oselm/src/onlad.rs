//! ONLAD — the paper's passive-approach baseline (method 5 in §4.2).
//!
//! ONLAD (Tsukada, Kondo & Matsutani, 2020) is OS-ELM with a forgetting
//! mechanism, retraining on *every* incoming sample with no drift detector
//! at all. The forgetting factor `α` geometrically discounts old data so the
//! model follows concept changes — but, as the paper's Figure 4 shows, the
//! factor is hard to tune: too small and the model forgets the concept it is
//! still living in; too large and it cannot keep up with the drift.

use crate::multi_instance::{MultiInstanceModel, Prediction};
use crate::oselm::OsElmConfig;
use crate::Result;
use seqdrift_linalg::Real;

/// Passive online anomaly detector: multi-instance OS-ELM with forgetting,
/// trained on every sample it sees.
#[derive(Debug, Clone)]
pub struct Onlad {
    model: MultiInstanceModel,
    forgetting_rate: Real,
}

impl Onlad {
    /// Builds an ONLAD with `classes` instances. The forgetting factor is
    /// applied on top of `cfg` (paper: 0.97 for NSL-KDD, 0.99 for the fan
    /// dataset).
    pub fn new(classes: usize, cfg: OsElmConfig, forgetting_rate: Real) -> Result<Self> {
        let cfg = cfg.with_forgetting(forgetting_rate);
        Ok(Onlad {
            model: MultiInstanceModel::new(classes, cfg)?,
            forgetting_rate,
        })
    }

    /// The configured forgetting factor.
    pub fn forgetting_rate(&self) -> Real {
        self.forgetting_rate
    }

    /// Underlying multi-instance model.
    pub fn model(&self) -> &MultiInstanceModel {
        &self.model
    }

    /// Mutable access to the underlying model (prediction needs `&mut`
    /// for its internal scratch buffers).
    pub fn model_mut(&mut self) -> &mut MultiInstanceModel {
        &mut self.model
    }

    /// Initially trains the per-class instances.
    pub fn init_train_class(&mut self, label: usize, xs: &[Vec<Real>]) -> Result<()> {
        self.model.init_train_class(label, xs)
    }

    /// Processes one sample: predicts its label, then immediately retrains
    /// the winning instance (the passive approach — "retrained whenever a
    /// new data arrives").
    pub fn process(&mut self, x: &[Real]) -> Result<Prediction> {
        let p = self.model.predict(x)?;
        self.model.seq_train_label(p.label, x)?;
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdrift_linalg::Rng;

    fn blob(n: usize, dim: usize, mean: Real, seed: u64) -> Vec<Vec<Real>> {
        let mut rng = Rng::seed_from(seed);
        (0..n)
            .map(|_| {
                let mut x = vec![0.0; dim];
                rng.fill_normal(&mut x, mean, 0.05);
                x
            })
            .collect()
    }

    fn trained(alpha: Real) -> Onlad {
        let mut o = Onlad::new(2, OsElmConfig::new(5, 4).with_seed(31), alpha).unwrap();
        o.init_train_class(0, &blob(60, 5, 0.2, 1)).unwrap();
        o.init_train_class(1, &blob(60, 5, 0.8, 2)).unwrap();
        o
    }

    #[test]
    fn processes_and_trains_every_sample() {
        let mut o = trained(0.97);
        let before: u64 = (0..2)
            .map(|c| o.model().instance(c).unwrap().samples_seen())
            .sum();
        for x in blob(20, 5, 0.2, 3) {
            o.process(&x).unwrap();
        }
        let after: u64 = (0..2)
            .map(|c| o.model().instance(c).unwrap().samples_seen())
            .sum();
        assert_eq!(after - before, 20);
    }

    #[test]
    fn tracks_drifting_concept_without_detector() {
        // Slide class-0's blob from 0.2 to 0.5; ONLAD should keep labelling
        // it as class 0 because the instance follows the moving data.
        let mut o = trained(0.95);
        let mut rng = Rng::seed_from(77);
        let mut correct = 0;
        let steps = 400;
        for i in 0..steps {
            let mean = 0.2 + 0.3 * (i as Real / steps as Real);
            let mut x = vec![0.0; 5];
            rng.fill_normal(&mut x, mean, 0.03);
            if o.process(&x).unwrap().label == 0 {
                correct += 1;
            }
        }
        assert!(
            correct as f64 / steps as f64 > 0.9,
            "tracking accuracy {correct}/{steps}"
        );
    }

    #[test]
    fn forgetting_rate_accessor() {
        let o = trained(0.97);
        assert!((o.forgetting_rate() - 0.97).abs() < 1e-6);
    }

    #[test]
    fn aggressive_forgetting_degrades_on_stationary_data() {
        // The paper's observation: a mistuned (too small) α hurts accuracy
        // even before any drift. Compare stationary-stream accuracy.
        let run = |alpha: Real| -> f64 {
            let mut o = trained(alpha);
            let mut rng = Rng::seed_from(99);
            let mut correct = 0;
            for i in 0..300 {
                let (mean, label) = if i % 2 == 0 { (0.2, 0) } else { (0.8, 1) };
                let mut x = vec![0.0; 5];
                rng.fill_normal(&mut x, mean, 0.05);
                if o.process(&x).unwrap().label == label {
                    correct += 1;
                }
            }
            correct as f64 / 300.0
        };
        let gentle = run(0.999);
        let harsh = run(0.55);
        assert!(
            gentle >= harsh,
            "gentle {gentle} should be >= harsh {harsh}"
        );
    }
}
