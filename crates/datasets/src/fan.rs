//! Synthetic cooling-fan vibration spectra.
//!
//! The paper's cooling-fan dataset [16] contains 511-bin frequency spectra
//! (1–511 Hz) of healthy and damaged fans measured by an industrial
//! accelerometer in silent and noisy environments. This module synthesises
//! physically-plausible equivalents:
//!
//! * a healthy fan is a harmonic series of its rotation fundamental with a
//!   broadband noise floor;
//! * **hole damage** unbalances the rotor: a strong 1x amplitude boost, a
//!   half-order sub-harmonic, and a raised floor;
//! * **chip damage** (one blade edge chipped) is milder: a moderate 1x
//!   boost with asymmetric sidebands around the fundamental;
//! * a **noisy environment** adds a ventilation-fan interference band.
//!
//! The three test scenarios follow §4.1.2 exactly: sudden (hole damage from
//! sample 120), gradual (chip damage mixing in over samples 120–600), and
//! reoccurring (chip damage only during samples 120–170). Training data is
//! a healthy fan in a silent environment. The discriminative model for this
//! dataset has a single class (anomaly detection against one normal
//! pattern), so every sample is labelled 0 and ground truth lives in the
//! drift indices.

use crate::drift::DriftSchedule;
use crate::stream::{DriftDataset, Sample};
use seqdrift_linalg::{Real, Rng};

/// Number of spectrum bins (1 Hz .. 511 Hz).
pub const SPECTRUM_BINS: usize = 511;

/// Mechanical condition of the fan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FanCondition {
    /// Healthy fan.
    Normal,
    /// Holes drilled in a blade (strong radial unbalance).
    HoleDamage,
    /// Chipped blade edge (mild unbalance).
    ChipDamage,
}

/// Acoustic environment of the measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Environment {
    /// Silent room.
    Silent,
    /// Near a ventilation fan (interference band).
    Noisy,
}

/// Configuration for the fan-spectrum generator.
#[derive(Debug, Clone)]
pub struct FanConfig {
    /// Rotation fundamental in Hz (= bin index).
    pub fundamental_hz: Real,
    /// Number of harmonics in the series.
    pub harmonics: usize,
    /// Base peak amplitude.
    pub base_amplitude: Real,
    /// Per-harmonic geometric decay.
    pub harmonic_decay: Real,
    /// Broadband noise-floor level.
    pub noise_floor: Real,
    /// Number of training samples (healthy, silent).
    pub n_train: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for FanConfig {
    fn default() -> Self {
        FanConfig {
            fundamental_hz: 43.0,
            harmonics: 10,
            base_amplitude: 0.35,
            harmonic_decay: 0.62,
            noise_floor: 0.02,
            // The paper does not state its fan training-set size; 60
            // healthy spectra reproduce the delay dynamics of Table 3
            // (the running-mean weight `num` must be small enough that a
            // 50-sample damage burst can move the test centroid past the
            // Eq. 1 threshold).
            n_train: 60,
            seed: 0xFA_2025,
        }
    }
}

/// Draws one spectrum for the given condition/environment.
pub fn spectrum(
    cfg: &FanConfig,
    condition: FanCondition,
    environment: Environment,
    rng: &mut Rng,
) -> Vec<Real> {
    let mut s = vec![0.0; SPECTRUM_BINS];
    // Broadband noise floor (rectified Gaussian), raised for hole damage.
    let floor = match condition {
        FanCondition::HoleDamage => cfg.noise_floor * 2.0,
        _ => cfg.noise_floor,
    };
    for v in &mut s {
        *v = (rng.normal(floor, floor * 0.3)).abs();
    }
    // Small run-to-run speed wobble shifts every peak coherently.
    let f0 = cfg.fundamental_hz + rng.normal(0.0, 0.15);
    let amp_jitter = 1.0 + rng.normal(0.0, 0.05);

    // 1x amplitude multiplier encodes the unbalance severity.
    let one_x_boost = match condition {
        FanCondition::Normal => 1.0,
        FanCondition::ChipDamage => 2.4,
        FanCondition::HoleDamage => 3.2,
    };

    for k in 1..=cfg.harmonics {
        let freq = f0 * k as Real;
        if freq >= SPECTRUM_BINS as Real {
            break;
        }
        let mut amp = cfg.base_amplitude * cfg.harmonic_decay.powi(k as i32 - 1) * amp_jitter;
        if k == 1 {
            amp *= one_x_boost;
        }
        // Damaged blades redistribute energy: higher harmonics weaken.
        if condition != FanCondition::Normal && k >= 3 {
            amp *= 0.7;
        }
        add_peak(&mut s, freq, amp, 1.6);
    }

    match condition {
        FanCondition::HoleDamage => {
            // Half-order sub-harmonic from looseness/unbalance interplay,
            // plus 2x sidebands — the severe damage signature.
            add_peak(&mut s, f0 * 0.5, cfg.base_amplitude * 1.5, 2.0);
            add_peak(&mut s, f0 * 2.0 - 4.0, cfg.base_amplitude * 0.9, 1.6);
            add_peak(&mut s, f0 * 2.0 + 4.0, cfg.base_amplitude * 0.7, 1.6);
        }
        FanCondition::ChipDamage => {
            // Asymmetric sidebands around the fundamental plus a broadband
            // turbulence band from the disturbed airflow over the chipped
            // edge.
            add_peak(&mut s, f0 - 5.0, cfg.base_amplitude * 1.9, 1.4);
            add_peak(&mut s, f0 + 5.0, cfg.base_amplitude * 1.3, 1.4);
            for v in s.iter_mut().skip(150).take(150) {
                *v += 0.035;
            }
        }
        FanCondition::Normal => {}
    }

    if environment == Environment::Noisy {
        // Ventilation-fan interference band around 290–340 Hz.
        add_peak(&mut s, 295.0 + rng.normal(0.0, 1.0), 0.30, 4.0);
        add_peak(&mut s, 333.0 + rng.normal(0.0, 1.0), 0.22, 4.0);
        for v in s.iter_mut().skip(250).take(120) {
            *v += 0.02;
        }
    }

    // Clamp into [0, 1] like a normalised accelerometer FFT.
    for v in &mut s {
        *v = v.clamp(0.0, 1.0);
    }
    s
}

/// Adds a Gaussian-shaped peak centred at `freq` (Hz == bin).
fn add_peak(s: &mut [Real], freq: Real, amp: Real, width: Real) {
    if freq < 0.0 {
        return;
    }
    let lo = ((freq - 4.0 * width).floor().max(0.0)) as usize;
    let hi = (((freq + 4.0 * width).ceil()) as usize).min(s.len().saturating_sub(1));
    for (i, v) in s.iter_mut().enumerate().take(hi + 1).skip(lo) {
        let d = (i as Real - freq) / width;
        *v += amp * (-0.5 * d * d).exp();
    }
}

/// Which of the paper's three fan test scenarios to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FanScenario {
    /// Hole damage appears suddenly at sample 120 (silent environment).
    Sudden,
    /// Chip damage mixes in gradually over samples 120–600.
    Gradual,
    /// Chip damage appears during samples 120–170, then the healthy
    /// pattern reoccurs.
    Reoccurring,
}

impl FanScenario {
    /// The drift schedule of this scenario over a 700-sample stream.
    pub fn schedule(self) -> DriftSchedule {
        match self {
            FanScenario::Sudden => DriftSchedule::sudden(120),
            FanScenario::Gradual => DriftSchedule::gradual(120, 600),
            FanScenario::Reoccurring => DriftSchedule::reoccurring(120, 170),
        }
    }

    /// The damaged condition used after the drift.
    pub fn damaged_condition(self) -> FanCondition {
        match self {
            FanScenario::Sudden => FanCondition::HoleDamage,
            _ => FanCondition::ChipDamage,
        }
    }
}

/// Test-stream length for all fan scenarios (Table 5: 700 samples).
pub const FAN_TEST_LEN: usize = 700;

/// Generates a full fan dataset for one scenario.
pub fn generate(cfg: &FanConfig, scenario: FanScenario, environment: Environment) -> DriftDataset {
    let mut rng = Rng::seed_from(cfg.seed);
    let mut train = Vec::with_capacity(cfg.n_train);
    for _ in 0..cfg.n_train {
        train.push(Sample::new(
            spectrum(cfg, FanCondition::Normal, Environment::Silent, &mut rng),
            0,
        ));
    }

    let schedule = scenario.schedule();
    let damaged = scenario.damaged_condition();
    let mut test = Vec::with_capacity(FAN_TEST_LEN);
    for t in 0..FAN_TEST_LEN {
        let (use_new, morph) = schedule.resolve(t, &mut rng);
        debug_assert!(morph.is_none(), "fan scenarios never morph");
        let condition = if use_new {
            damaged
        } else {
            FanCondition::Normal
        };
        test.push(Sample::new(
            spectrum(cfg, condition, environment, &mut rng),
            0,
        ));
    }

    let name = match scenario {
        FanScenario::Sudden => "fan-sudden",
        FanScenario::Gradual => "fan-gradual",
        FanScenario::Reoccurring => "fan-reoccurring",
    };
    DriftDataset {
        name: name.into(),
        train,
        test,
        drift_start: schedule.start,
        drift_end: if schedule.end > schedule.start {
            Some(schedule.end)
        } else {
            None
        },
        classes: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdrift_linalg::vector;

    fn mean_spectrum(cfg: &FanConfig, c: FanCondition, e: Environment, n: usize) -> Vec<Real> {
        let mut rng = Rng::seed_from(9);
        let mut m = vec![0.0; SPECTRUM_BINS];
        for _ in 0..n {
            let s = spectrum(cfg, c, e, &mut rng);
            vector::axpy(1.0, &s, &mut m);
        }
        vector::scale(1.0 / n as Real, &mut m);
        m
    }

    #[test]
    fn spectrum_has_correct_bins_and_range() {
        let cfg = FanConfig::default();
        let mut rng = Rng::seed_from(1);
        let s = spectrum(&cfg, FanCondition::Normal, Environment::Silent, &mut rng);
        assert_eq!(s.len(), 511);
        assert!(s.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn healthy_spectrum_peaks_at_harmonics() {
        let cfg = FanConfig::default();
        let m = mean_spectrum(&cfg, FanCondition::Normal, Environment::Silent, 40);
        // Fundamental bin (43) should dominate its neighbourhood baseline.
        let peak = m[43];
        let baseline = m[100]; // between harmonics 2 and 3
        assert!(peak > 5.0 * baseline, "peak {peak} vs baseline {baseline}");
        // Second harmonic present.
        assert!(m[86] > 3.0 * baseline);
    }

    #[test]
    fn hole_damage_boosts_fundamental_and_subharmonic() {
        let cfg = FanConfig::default();
        let healthy = mean_spectrum(&cfg, FanCondition::Normal, Environment::Silent, 40);
        let damaged = mean_spectrum(&cfg, FanCondition::HoleDamage, Environment::Silent, 40);
        assert!(damaged[43] > 1.5 * healthy[43], "1x not boosted");
        // Sub-harmonic at ~21 Hz appears only for hole damage.
        assert!(damaged[21] > healthy[21] + 0.2, "sub-harmonic missing");
    }

    #[test]
    fn chip_damage_is_milder_than_hole_damage() {
        let cfg = FanConfig::default();
        let healthy = mean_spectrum(&cfg, FanCondition::Normal, Environment::Silent, 40);
        let chip = mean_spectrum(&cfg, FanCondition::ChipDamage, Environment::Silent, 40);
        let hole = mean_spectrum(&cfg, FanCondition::HoleDamage, Environment::Silent, 40);
        let dist_chip = vector::dist_l2(&chip, &healthy);
        let dist_hole = vector::dist_l2(&hole, &healthy);
        assert!(
            dist_hole > dist_chip,
            "hole {dist_hole} should move further than chip {dist_chip}"
        );
        assert!(dist_chip > 0.1, "chip damage indistinguishable");
    }

    #[test]
    fn noisy_environment_adds_interference_band() {
        let cfg = FanConfig::default();
        let silent = mean_spectrum(&cfg, FanCondition::Normal, Environment::Silent, 40);
        let noisy = mean_spectrum(&cfg, FanCondition::Normal, Environment::Noisy, 40);
        assert!(noisy[295] > silent[295] + 0.1);
        assert!(noisy[333] > silent[333] + 0.05);
        // Low-frequency region unaffected.
        assert!((noisy[43] - silent[43]).abs() < 0.1);
    }

    #[test]
    fn sudden_scenario_shape() {
        let cfg = FanConfig {
            n_train: 50,
            ..FanConfig::default()
        };
        let d = generate(&cfg, FanScenario::Sudden, Environment::Silent);
        d.validate().unwrap();
        assert_eq!(d.test.len(), 700);
        assert_eq!(d.drift_start, 120);
        assert_eq!(d.drift_end, None);
        assert_eq!(d.classes, 1);
        // Post-drift samples differ strongly from pre-drift ones.
        let pre = &d.test[60].x;
        let post = &d.test[400].x;
        assert!(vector::dist_l2(pre, post) > 0.3);
    }

    #[test]
    fn gradual_scenario_mixes_during_transition() {
        let cfg = FanConfig {
            n_train: 50,
            ..FanConfig::default()
        };
        let d = generate(&cfg, FanScenario::Gradual, Environment::Silent);
        assert_eq!(d.drift_start, 120);
        assert_eq!(d.drift_end, Some(600));
        // Early transition mostly healthy, late mostly damaged: compare the
        // fundamental-bin mean (damage boosts it).
        let avg_f0 = |range: std::ops::Range<usize>| -> Real {
            let n = range.len() as Real;
            d.test[range].iter().map(|s| s.x[43]).sum::<Real>() / n
        };
        let early = avg_f0(120..220);
        let late = avg_f0(500..600);
        assert!(late > early, "late {late} <= early {early}");
    }

    #[test]
    fn reoccurring_scenario_returns_to_normal() {
        let cfg = FanConfig {
            n_train: 50,
            ..FanConfig::default()
        };
        let d = generate(&cfg, FanScenario::Reoccurring, Environment::Silent);
        assert_eq!(d.drift_start, 120);
        assert_eq!(d.drift_end, Some(170));
        let avg_f0 = |range: std::ops::Range<usize>| -> Real {
            let n = range.len() as Real;
            d.test[range].iter().map(|s| s.x[43]).sum::<Real>() / n
        };
        let before = avg_f0(0..120);
        let during = avg_f0(120..170);
        let after = avg_f0(200..700);
        assert!(during > before + 0.1, "during {during} vs before {before}");
        assert!(
            (after - before).abs() < 0.1,
            "after {after} vs before {before}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = FanConfig {
            n_train: 20,
            ..FanConfig::default()
        };
        let a = generate(&cfg, FanScenario::Sudden, Environment::Silent);
        let b = generate(&cfg, FanScenario::Sudden, Environment::Silent);
        assert_eq!(a.test, b.test);
    }
}
