//! CSV loading for real datasets.
//!
//! Lets users drop in the actual NSL-KDD export or cooling-fan spectra in
//! place of the synthetic equivalents: numeric CSV, one sample per row,
//! optional final label column (mapped to dense `usize` labels in order of
//! first appearance).

use crate::stream::Sample;
use seqdrift_linalg::Real;
use std::collections::HashMap;
use std::io::BufRead;
use std::path::Path;

/// Errors produced while loading.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A cell failed to parse as a number (row, column, content).
    Parse {
        /// 0-based row.
        row: usize,
        /// 0-based column.
        col: usize,
        /// Offending cell text.
        cell: String,
    },
    /// A cell parsed as a number but is NaN or infinite. Such values are
    /// rejected at the boundary so downstream consumers (training,
    /// calibration) never see them; hostile *streams* are handled by the
    /// pipeline's sample guard instead.
    NonFinite {
        /// 0-based row.
        row: usize,
        /// 0-based column.
        col: usize,
        /// Offending cell text.
        cell: String,
    },
    /// Rows have inconsistent widths.
    Ragged {
        /// 0-based row.
        row: usize,
        /// Width found.
        got: usize,
        /// Width expected.
        expected: usize,
    },
    /// The file contained no data rows.
    Empty,
}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "io error: {e}"),
            LoadError::Parse { row, col, cell } => {
                write!(f, "row {row} col {col}: cannot parse {cell:?}")
            }
            LoadError::NonFinite { row, col, cell } => {
                write!(f, "row {row} col {col}: non-finite value {cell:?}")
            }
            LoadError::Ragged { row, got, expected } => {
                write!(f, "row {row}: {got} columns, expected {expected}")
            }
            LoadError::Empty => write!(f, "no data rows"),
        }
    }
}

impl std::error::Error for LoadError {}

/// Parses CSV text into labelled samples.
///
/// * `has_header` skips the first line;
/// * `label_last_column` treats the final column as a class label (any
///   string; mapped densely by first appearance) — otherwise every column
///   is a feature and all labels are 0.
pub fn parse_csv(
    text: &str,
    has_header: bool,
    label_last_column: bool,
) -> Result<Vec<Sample>, LoadError> {
    let mut samples = Vec::new();
    let mut label_map: HashMap<String, usize> = HashMap::new();
    let mut expected_width: Option<usize> = None;

    for (row, line) in text.lines().enumerate() {
        if row == 0 && has_header {
            continue;
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').map(str::trim).collect();
        if let Some(w) = expected_width {
            if cells.len() != w {
                return Err(LoadError::Ragged {
                    row,
                    got: cells.len(),
                    expected: w,
                });
            }
        } else {
            expected_width = Some(cells.len());
        }
        let (feature_cells, label) = if label_last_column {
            let (feats, lab) = cells.split_at(cells.len() - 1);
            let next = label_map.len();
            let id = *label_map.entry(lab[0].to_string()).or_insert(next);
            (feats, id)
        } else {
            (&cells[..], 0)
        };
        let mut x = Vec::with_capacity(feature_cells.len());
        for (col, cell) in feature_cells.iter().enumerate() {
            let v: f64 = cell.parse().map_err(|_| LoadError::Parse {
                row,
                col,
                cell: (*cell).to_string(),
            })?;
            if !v.is_finite() {
                return Err(LoadError::NonFinite {
                    row,
                    col,
                    cell: (*cell).to_string(),
                });
            }
            x.push(v as Real);
        }
        samples.push(Sample::new(x, label));
    }
    if samples.is_empty() {
        return Err(LoadError::Empty);
    }
    Ok(samples)
}

/// Loads a CSV file from disk (see [`parse_csv`]).
pub fn load_csv(
    path: &Path,
    has_header: bool,
    label_last_column: bool,
) -> Result<Vec<Sample>, LoadError> {
    let file = std::fs::File::open(path)?;
    let mut text = String::new();
    let mut reader = std::io::BufReader::new(file);
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        text.push_str(&line);
    }
    parse_csv(&text, has_header, label_last_column)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_numeric_csv() {
        let s = parse_csv("1.0,2.0\n3.0,4.0\n", false, false).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].x, vec![1.0, 2.0]);
        assert_eq!(s[0].label, 0);
    }

    #[test]
    fn parses_labelled_csv_with_header() {
        let text = "a,b,class\n1,2,normal\n3,4,neptune\n5,6,normal\n";
        let s = parse_csv(text, true, true).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s[0].label, 0);
        assert_eq!(s[1].label, 1);
        assert_eq!(s[2].label, 0);
        assert_eq!(s[1].x, vec![3.0, 4.0]);
    }

    #[test]
    fn skips_blank_lines() {
        let s = parse_csv("1,2\n\n3,4\n\n", false, false).unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn rejects_ragged_rows() {
        assert!(matches!(
            parse_csv("1,2\n3\n", false, false),
            Err(LoadError::Ragged { row: 1, .. })
        ));
    }

    #[test]
    fn rejects_non_numeric_feature() {
        assert!(matches!(
            parse_csv("1,abc\n", false, false),
            Err(LoadError::Parse { col: 1, .. })
        ));
    }

    #[test]
    fn rejects_non_finite_values_with_position() {
        for bad in ["NaN", "inf", "-inf", "1e999"] {
            let text = format!("1,2\n3,{bad}\n");
            match parse_csv(&text, false, false) {
                Err(LoadError::NonFinite { row, col, cell }) => {
                    assert_eq!((row, col), (1, 1), "{bad}");
                    assert_eq!(cell, bad);
                }
                other => panic!("{bad}: expected NonFinite, got {other:?}"),
            }
        }
    }

    #[test]
    fn rejects_empty_input() {
        assert!(matches!(parse_csv("", false, false), Err(LoadError::Empty)));
        assert!(matches!(
            parse_csv("h1,h2\n", true, false),
            Err(LoadError::Empty)
        ));
    }

    #[test]
    fn loads_from_disk() {
        let dir = std::env::temp_dir().join("seqdrift-loader-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.csv");
        std::fs::write(&path, "0.5,1.5,x\n2.5,3.5,y\n").unwrap();
        let s = load_csv(&path, false, true).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s[1].label, 1);
        std::fs::remove_file(&path).ok();
    }
}
