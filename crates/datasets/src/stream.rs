//! Core dataset/stream types shared by every generator and the eval harness.

use seqdrift_linalg::Real;

/// One labelled observation.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Feature vector.
    pub x: Vec<Real>,
    /// Ground-truth class label (used for *evaluation only* — the methods
    /// under test never see test labels).
    pub label: usize,
}

impl Sample {
    /// Convenience constructor.
    pub fn new(x: Vec<Real>, label: usize) -> Self {
        Sample { x, label }
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.x.len()
    }
}

/// A complete experiment dataset: initial training data plus a test stream
/// with known drift ground truth.
#[derive(Debug, Clone)]
pub struct DriftDataset {
    /// Human-readable name ("nsl-kdd-synth", "fan-sudden", ...).
    pub name: String,
    /// Initial training samples (labelled).
    pub train: Vec<Sample>,
    /// Test stream in arrival order.
    pub test: Vec<Sample>,
    /// Index in `test` where the concept drift begins.
    pub drift_start: usize,
    /// Index where the drift transition completes (`None` for sudden drifts,
    /// where start == end; for reoccurring drifts, the index where the old
    /// concept returns).
    pub drift_end: Option<usize>,
    /// Number of class labels.
    pub classes: usize,
}

impl DriftDataset {
    /// Feature dimensionality (from the first training sample).
    pub fn dim(&self) -> usize {
        self.train[0].dim()
    }

    /// Training samples grouped per class label.
    pub fn train_by_class(&self) -> Vec<Vec<Vec<Real>>> {
        let mut buckets = vec![Vec::new(); self.classes];
        for s in &self.train {
            buckets[s.label].push(s.x.clone());
        }
        buckets
    }

    /// Training data as `(label, features)` pairs.
    pub fn train_pairs(&self) -> Vec<(usize, Vec<Real>)> {
        self.train.iter().map(|s| (s.label, s.x.clone())).collect()
    }

    /// Basic integrity check used by tests and the harness: non-empty
    /// splits, consistent dimensionality, labels in range, drift index in
    /// range.
    pub fn validate(&self) -> Result<(), String> {
        if self.train.is_empty() || self.test.is_empty() {
            return Err("empty train or test split".into());
        }
        let dim = self.dim();
        for (i, s) in self.train.iter().chain(self.test.iter()).enumerate() {
            if s.dim() != dim {
                return Err(format!("sample {i} has dim {} != {dim}", s.dim()));
            }
            if s.label >= self.classes {
                return Err(format!("sample {i} label {} out of range", s.label));
            }
        }
        if self.drift_start >= self.test.len() {
            return Err(format!(
                "drift_start {} outside test stream of len {}",
                self.drift_start,
                self.test.len()
            ));
        }
        if let Some(end) = self.drift_end {
            if end <= self.drift_start || end > self.test.len() {
                return Err(format!("bad drift_end {end}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> DriftDataset {
        DriftDataset {
            name: "tiny".into(),
            train: vec![
                Sample::new(vec![0.0, 1.0], 0),
                Sample::new(vec![1.0, 0.0], 1),
            ],
            test: vec![Sample::new(vec![0.5, 0.5], 0); 10],
            drift_start: 5,
            drift_end: None,
            classes: 2,
        }
    }

    #[test]
    fn validate_accepts_wellformed() {
        assert!(tiny().validate().is_ok());
    }

    #[test]
    fn validate_rejects_dim_mismatch() {
        let mut d = tiny();
        d.test.push(Sample::new(vec![1.0], 0));
        assert!(d.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_label() {
        let mut d = tiny();
        d.train[0].label = 7;
        assert!(d.validate().is_err());
    }

    #[test]
    fn validate_rejects_out_of_range_drift() {
        let mut d = tiny();
        d.drift_start = 100;
        assert!(d.validate().is_err());
        let mut d2 = tiny();
        d2.drift_end = Some(3); // before drift_start
        assert!(d2.validate().is_err());
    }

    #[test]
    fn train_by_class_partitions() {
        let d = tiny();
        let buckets = d.train_by_class();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].len(), 1);
        assert_eq!(buckets[1].len(), 1);
    }

    #[test]
    fn train_pairs_preserves_labels() {
        let d = tiny();
        let pairs = d.train_pairs();
        assert_eq!(pairs[0].0, 0);
        assert_eq!(pairs[1].0, 1);
    }
}
