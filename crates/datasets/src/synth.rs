//! Gaussian class-pattern generators underlying the synthetic datasets.
//!
//! Each class is a Gaussian blob around a *pattern vector*; concept drift is
//! expressed as a change of pattern. Pattern vectors are themselves drawn
//! reproducibly so every dataset is a pure function of its seed.

use seqdrift_linalg::{Real, Rng};

/// A Gaussian generator for one class concept.
#[derive(Debug, Clone)]
pub struct ClassConcept {
    /// Mean pattern vector.
    pub mean: Vec<Real>,
    /// Per-dimension standard deviation.
    pub std: Vec<Real>,
}

impl ClassConcept {
    /// Concept with a shared isotropic std.
    pub fn isotropic(mean: Vec<Real>, std: Real) -> Self {
        let std = vec![std; mean.len()];
        ClassConcept { mean, std }
    }

    /// Draws a reproducible random pattern: each dimension uniform in
    /// `[lo, hi]`, isotropic noise `std`.
    pub fn random_pattern(dim: usize, lo: Real, hi: Real, std: Real, rng: &mut Rng) -> Self {
        let mut mean = vec![0.0; dim];
        rng.fill_uniform(&mut mean, lo, hi);
        ClassConcept::isotropic(mean, std)
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Samples one observation into `out`.
    pub fn sample_into(&self, rng: &mut Rng, out: &mut [Real]) {
        debug_assert_eq!(out.len(), self.dim());
        for ((o, &m), &s) in out.iter_mut().zip(self.mean.iter()).zip(self.std.iter()) {
            *o = rng.normal(m, s);
        }
    }

    /// Samples one observation, allocating.
    pub fn sample(&self, rng: &mut Rng) -> Vec<Real> {
        let mut out = vec![0.0; self.dim()];
        self.sample_into(rng, &mut out);
        out
    }

    /// Returns a concept shifted by `delta` in every dimension of `dims`
    /// (used to build post-drift variants of a class).
    pub fn shifted(&self, dims: &[usize], delta: Real) -> ClassConcept {
        let mut mean = self.mean.clone();
        for &d in dims {
            mean[d] += delta;
        }
        ClassConcept {
            mean,
            std: self.std.clone(),
        }
    }

    /// Linear interpolation between two concepts (incremental drift).
    pub fn lerp(a: &ClassConcept, b: &ClassConcept, t: Real) -> ClassConcept {
        debug_assert_eq!(a.dim(), b.dim());
        let mean = a
            .mean
            .iter()
            .zip(b.mean.iter())
            .map(|(&x, &y)| x + (y - x) * t)
            .collect();
        let std = a
            .std
            .iter()
            .zip(b.std.iter())
            .map(|(&x, &y)| x + (y - x) * t)
            .collect();
        ClassConcept { mean, std }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_concentrate_around_mean() {
        let c = ClassConcept::isotropic(vec![1.0, -2.0, 3.0], 0.1);
        let mut rng = Rng::seed_from(1);
        let mut acc = [0.0f64; 3];
        let n = 5000;
        for _ in 0..n {
            let s = c.sample(&mut rng);
            for (a, v) in acc.iter_mut().zip(s.iter()) {
                *a += *v as f64;
            }
        }
        for (a, &m) in acc.iter().zip(c.mean.iter()) {
            assert!((a / n as f64 - m as f64).abs() < 0.02);
        }
    }

    #[test]
    fn random_pattern_in_bounds() {
        let mut rng = Rng::seed_from(2);
        let c = ClassConcept::random_pattern(20, 0.2, 0.8, 0.05, &mut rng);
        assert!(c.mean.iter().all(|&m| (0.2..0.8).contains(&m)));
        assert_eq!(c.dim(), 20);
    }

    #[test]
    fn shifted_moves_only_selected_dims() {
        let c = ClassConcept::isotropic(vec![0.0; 5], 0.1);
        let s = c.shifted(&[1, 3], 2.0);
        assert_eq!(s.mean, vec![0.0, 2.0, 0.0, 2.0, 0.0]);
        assert_eq!(s.std, c.std);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = ClassConcept::isotropic(vec![0.0, 0.0], 0.1);
        let b = ClassConcept::isotropic(vec![2.0, 4.0], 0.3);
        assert_eq!(ClassConcept::lerp(&a, &b, 0.0).mean, a.mean);
        assert_eq!(ClassConcept::lerp(&a, &b, 1.0).mean, b.mean);
        let mid = ClassConcept::lerp(&a, &b, 0.5);
        assert_eq!(mid.mean, vec![1.0, 2.0]);
        assert!((mid.std[0] - 0.2).abs() < 1e-6);
    }

    #[test]
    fn deterministic_given_seed() {
        let c = ClassConcept::isotropic(vec![0.5; 4], 0.2);
        let a = c.sample(&mut Rng::seed_from(7));
        let b = c.sample(&mut Rng::seed_from(7));
        assert_eq!(a, b);
    }
}
