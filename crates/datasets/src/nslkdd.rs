//! Synthetic NSL-KDD-like network-intrusion stream.
//!
//! The paper selects the two largest NSL-KDD labels ("normal" and
//! "neptune"), takes 2522 samples for initial training and 22701 for the
//! test stream, and identifies a concept drift at the 8333rd test sample
//! (the train→test distribution shift of NSL-KDD). This module reproduces
//! that *shape* synthetically (see DESIGN.md §3):
//!
//! * 38 numeric features in `[0, 1]` (the paper's OS-ELM uses 38 input
//!   nodes — NSL-KDD's numeric columns after preprocessing);
//! * before the drift, both classes match their training distributions;
//! * at the drift, the attack concept shifts *toward the trained normal
//!   pattern* (an evolved attack evading the old signature) while keeping a
//!   new signature of its own — this is what makes a frozen model
//!   misclassify post-drift traffic and gives drift detection its value,
//!   mirroring Figure 4;
//! * the normal concept also shifts slightly (environmental change).
//!
//! Real NSL-KDD CSVs can be substituted via [`crate::loader`].

use crate::stream::{DriftDataset, Sample};
use crate::synth::ClassConcept;
use seqdrift_linalg::{Real, Rng};

/// Configuration for the synthetic NSL-KDD-like dataset.
#[derive(Debug, Clone)]
pub struct NslKddConfig {
    /// Feature dimensionality (paper: 38).
    pub dim: usize,
    /// Initial training samples (paper: 2522).
    pub n_train: usize,
    /// Test-stream length (paper: 22701).
    pub n_test: usize,
    /// Test index where the concept drift occurs (paper: 8333).
    pub drift_point: usize,
    /// Fraction of "normal" samples in both splits.
    pub normal_fraction: Real,
    /// Per-class observation noise.
    pub noise_std: Real,
    /// Master seed.
    pub seed: u64,
}

impl Default for NslKddConfig {
    fn default() -> Self {
        NslKddConfig {
            dim: 38,
            n_train: 2522,
            n_test: 22701,
            drift_point: 8333,
            normal_fraction: 0.65,
            noise_std: 0.06,
            seed: 0x05E1_4D0D,
        }
    }
}

/// Class label of normal traffic.
pub const LABEL_NORMAL: usize = 0;
/// Class label of the attack ("neptune") traffic.
pub const LABEL_NEPTUNE: usize = 1;

/// Number of feature dimensions carrying the attack signature.
const SIGNATURE_DIMS: usize = 20;
/// Dimensions carrying the post-drift attack's *new* signature.
const NEW_SIGNATURE_DIMS: usize = 12;
/// Dimensions (inside the signature region) where the attack's two
/// sub-patterns differ.
const SUB_DIMS: std::ops::Range<usize> = 8..16;
/// Sub-pattern offset magnitude.
const SUB_SHIFT: Real = 0.50;
/// Stream-block length of each sub-pattern burst.
const SUB_BLOCK: usize = 250;

/// Generates the dataset.
pub fn generate(cfg: &NslKddConfig) -> DriftDataset {
    assert!(cfg.dim > NEW_SIGNATURE_DIMS + SIGNATURE_DIMS / 2);
    assert!(cfg.drift_point < cfg.n_test);
    let mut rng = Rng::seed_from(cfg.seed);

    // Pre-drift concepts. The attack differs from normal in the first
    // SIGNATURE_DIMS dimensions and alternates between two sub-patterns in
    // bursts (real attack traffic is multi-modal over time — e.g. bursts
    // from different botnet configurations). The sub-pattern alternation is
    // what exposes ONLAD's forgetting mistuning in Figure 4: with an
    // effective memory of ~1/(1-α) samples, the passive model forgets
    // whichever sub-pattern is currently absent.
    let normal0 = ClassConcept::random_pattern(cfg.dim, 0.25, 0.45, cfg.noise_std, &mut rng);
    let sig_dims: Vec<usize> = (0..SIGNATURE_DIMS).collect();
    let sub_dims: Vec<usize> = SUB_DIMS.collect();
    let neptune0 = normal0.shifted(&sig_dims, 0.30);
    let neptune0b = neptune0.shifted(&sub_dims, SUB_SHIFT);

    // Post-drift concepts: the attack evolves to evade the old signature
    // (collapses most of the way back toward the trained normal pattern in
    // the old signature dimensions) while opening a new, disjoint signature;
    // the normal traffic shifts mildly with the environment.
    let collapse: Vec<usize> = (0..SIGNATURE_DIMS).collect();
    let new_sig: Vec<usize> = (cfg.dim - NEW_SIGNATURE_DIMS..cfg.dim).collect();
    let neptune1 = neptune0.shifted(&collapse, -0.26).shifted(&new_sig, 0.70);
    let env_dims: Vec<usize> = (SIGNATURE_DIMS..SIGNATURE_DIMS + 6).collect();
    let normal1 = normal0.shifted(&env_dims, 0.35);

    let mut label_rng = rng.split();
    // concepts = (normal, attack sub-pattern A, attack sub-pattern B);
    // `idx` is the global stream position driving the sub-pattern bursts.
    let draw = |concepts: (&ClassConcept, &ClassConcept, &ClassConcept),
                idx: usize,
                rng: &mut Rng,
                lr: &mut Rng| {
        let is_normal = lr.uniform() < cfg.normal_fraction;
        let (concept, label) = if is_normal {
            (concepts.0, LABEL_NORMAL)
        } else if (idx / SUB_BLOCK).is_multiple_of(2) {
            (concepts.1, LABEL_NEPTUNE)
        } else {
            (concepts.2, LABEL_NEPTUNE)
        };
        Sample::new(concept.sample(rng), label)
    };

    let mut train = Vec::with_capacity(cfg.n_train);
    for i in 0..cfg.n_train {
        train.push(draw(
            (&normal0, &neptune0, &neptune0b),
            i,
            &mut rng,
            &mut label_rng,
        ));
    }
    // Guarantee both classes appear in training (tiny configs in tests).
    if !train.iter().any(|s| s.label == LABEL_NEPTUNE) {
        train.push(Sample::new(neptune0.sample(&mut rng), LABEL_NEPTUNE));
    }
    if !train.iter().any(|s| s.label == LABEL_NORMAL) {
        train.push(Sample::new(normal0.sample(&mut rng), LABEL_NORMAL));
    }

    let mut test = Vec::with_capacity(cfg.n_test);
    for t in 0..cfg.n_test {
        // After the drift the evolved attack is unimodal — the old botnet
        // variants are gone.
        let concepts = if t < cfg.drift_point {
            (&normal0, &neptune0, &neptune0b)
        } else {
            (&normal1, &neptune1, &neptune1)
        };
        test.push(draw(concepts, cfg.n_train + t, &mut rng, &mut label_rng));
    }

    DriftDataset {
        name: "nsl-kdd-synth".into(),
        train,
        test,
        drift_start: cfg.drift_point,
        drift_end: None,
        classes: 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdrift_linalg::vector;

    fn small() -> NslKddConfig {
        NslKddConfig {
            n_train: 300,
            n_test: 2000,
            drift_point: 800,
            ..NslKddConfig::default()
        }
    }

    fn class_mean(samples: &[&Sample]) -> Vec<Real> {
        let dim = samples[0].x.len();
        let mut m = vec![0.0; dim];
        for s in samples {
            vector::axpy(1.0, &s.x, &mut m);
        }
        vector::scale(1.0 / samples.len() as Real, &mut m);
        m
    }

    #[test]
    fn paper_shape_defaults() {
        let cfg = NslKddConfig::default();
        assert_eq!(cfg.dim, 38);
        assert_eq!(cfg.n_train, 2522);
        assert_eq!(cfg.n_test, 22701);
        assert_eq!(cfg.drift_point, 8333);
    }

    #[test]
    fn generated_dataset_validates() {
        let d = generate(&small());
        d.validate().unwrap();
        assert_eq!(d.train.len(), 300);
        assert_eq!(d.test.len(), 2000);
        assert_eq!(d.dim(), 38);
        assert_eq!(d.classes, 2);
    }

    #[test]
    fn both_classes_present_in_train() {
        let d = generate(&small());
        let normals = d.train.iter().filter(|s| s.label == LABEL_NORMAL).count();
        let attacks = d.train.iter().filter(|s| s.label == LABEL_NEPTUNE).count();
        assert!(normals > 0 && attacks > 0);
        // Mix roughly follows normal_fraction.
        let frac = normals as f64 / d.train.len() as f64;
        assert!((frac - 0.65).abs() < 0.1, "normal fraction {frac}");
    }

    #[test]
    fn pre_drift_test_matches_training_distribution() {
        let d = generate(&small());
        let train_norm: Vec<&Sample> = d.train.iter().filter(|s| s.label == 0).collect();
        let pre_norm: Vec<&Sample> = d.test[..800].iter().filter(|s| s.label == 0).collect();
        let dist = vector::dist_l2(&class_mean(&train_norm), &class_mean(&pre_norm));
        assert!(dist < 0.1, "pre-drift normal mean moved by {dist}");
    }

    #[test]
    fn drift_moves_the_attack_concept() {
        let d = generate(&small());
        let pre: Vec<&Sample> = d.test[..800].iter().filter(|s| s.label == 1).collect();
        let post: Vec<&Sample> = d.test[800..].iter().filter(|s| s.label == 1).collect();
        let dist = vector::dist_l2(&class_mean(&pre), &class_mean(&post));
        assert!(dist > 0.5, "attack concept only moved {dist}");
    }

    #[test]
    fn post_drift_attack_is_closer_to_trained_normal_than_old_attack_in_signature() {
        // The evasion property that degrades a frozen model: in the original
        // signature dimensions the evolved attack looks like normal traffic.
        let d = generate(&small());
        let train_norm: Vec<&Sample> = d.train.iter().filter(|s| s.label == 0).collect();
        let train_att: Vec<&Sample> = d.train.iter().filter(|s| s.label == 1).collect();
        let post_att: Vec<&Sample> = d.test[800..].iter().filter(|s| s.label == 1).collect();
        let mn = class_mean(&train_norm);
        let ma = class_mean(&train_att);
        let mp = class_mean(&post_att);
        let sig = &mp[..SIGNATURE_DIMS];
        let d_to_normal = vector::dist_l2(sig, &mn[..SIGNATURE_DIMS]);
        let d_to_old_attack = vector::dist_l2(sig, &ma[..SIGNATURE_DIMS]);
        assert!(
            d_to_normal < d_to_old_attack,
            "evolved attack signature: to-normal {d_to_normal} vs to-old {d_to_old_attack}"
        );
    }

    #[test]
    fn features_stay_bounded() {
        // Patterns in [0.25, 0.45] plus stacked shifts (signature 0.30,
        // sub-pattern 0.50) and Gaussian noise: everything must stay within
        // a sane bounded envelope for the sigmoid OS-ELM.
        let d = generate(&small());
        for s in d.train.iter().chain(d.test.iter()) {
            for &v in &s.x {
                assert!((-0.5..1.75).contains(&v), "feature {v} far out of range");
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&small());
        let b = generate(&small());
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
        let mut cfg = small();
        cfg.seed += 1;
        let c = generate(&cfg);
        assert_ne!(a.test[0], c.test[0]);
    }
}
