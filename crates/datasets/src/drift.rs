//! The four concept-drift types of Figure 1 as composable stream schedules.
//!
//! A [`DriftSchedule`] maps a test-stream index to a *mixing state*: which
//! concept (old/new) a sample should come from, or — for incremental drift —
//! how far the concept has morphed. Generators use it to build test streams
//! with exactly the paper's drift semantics:
//!
//! * **Sudden** — old before `start`, new from `start` on; the old
//!   distribution never reappears.
//! * **Gradual** — between `start` and `end`, each sample is drawn from the
//!   new concept with linearly increasing probability; both distributions
//!   appear during the transition.
//! * **Incremental** — the distribution itself morphs continuously from old
//!   to new between `start` and `end`.
//! * **Reoccurring** — new in `[start, end)`, then the old concept returns.

use seqdrift_linalg::{Real, Rng};

/// Drift type selector (Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftType {
    /// Instant switch at `start`.
    Sudden,
    /// Probabilistic mixture ramping over `[start, end)`.
    Gradual,
    /// Continuous morphing over `[start, end)`.
    Incremental,
    /// New concept only within `[start, end)`, old returns afterwards.
    Reoccurring,
}

/// What a schedule says about one stream position.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MixState {
    /// Draw from the old concept.
    Old,
    /// Draw from the new concept.
    New,
    /// Draw from the old concept with probability `1 - p`, new with `p`
    /// (gradual drift interior).
    Mixture(Real),
    /// Draw from a concept morphed `t` of the way from old to new
    /// (incremental drift interior).
    Morph(Real),
}

/// A drift schedule over a test stream.
#[derive(Debug, Clone, Copy)]
pub struct DriftSchedule {
    /// Drift type.
    pub kind: DriftType,
    /// First affected sample index.
    pub start: usize,
    /// End of the transition (exclusive). Ignored for `Sudden`; for
    /// `Reoccurring` this is where the old concept returns.
    pub end: usize,
}

impl DriftSchedule {
    /// Sudden drift at `start`.
    pub fn sudden(start: usize) -> Self {
        DriftSchedule {
            kind: DriftType::Sudden,
            start,
            end: start,
        }
    }

    /// Gradual drift over `[start, end)`.
    pub fn gradual(start: usize, end: usize) -> Self {
        assert!(end > start, "gradual drift needs end > start");
        DriftSchedule {
            kind: DriftType::Gradual,
            start,
            end,
        }
    }

    /// Incremental drift over `[start, end)`.
    pub fn incremental(start: usize, end: usize) -> Self {
        assert!(end > start, "incremental drift needs end > start");
        DriftSchedule {
            kind: DriftType::Incremental,
            start,
            end,
        }
    }

    /// Reoccurring drift: new concept in `[start, end)`.
    pub fn reoccurring(start: usize, end: usize) -> Self {
        assert!(end > start, "reoccurring drift needs end > start");
        DriftSchedule {
            kind: DriftType::Reoccurring,
            start,
            end,
        }
    }

    /// Mixing state at stream index `t`.
    pub fn state_at(&self, t: usize) -> MixState {
        match self.kind {
            DriftType::Sudden => {
                if t < self.start {
                    MixState::Old
                } else {
                    MixState::New
                }
            }
            DriftType::Gradual => {
                if t < self.start {
                    MixState::Old
                } else if t >= self.end {
                    MixState::New
                } else {
                    let p = (t - self.start) as Real / (self.end - self.start) as Real;
                    MixState::Mixture(p)
                }
            }
            DriftType::Incremental => {
                if t < self.start {
                    MixState::Old
                } else if t >= self.end {
                    MixState::New
                } else {
                    let p = (t - self.start) as Real / (self.end - self.start) as Real;
                    MixState::Morph(p)
                }
            }
            DriftType::Reoccurring => {
                if t >= self.start && t < self.end {
                    MixState::New
                } else {
                    MixState::Old
                }
            }
        }
    }

    /// Resolves the state at `t` to a concrete draw decision:
    /// `(use_new, morph_t)` where `morph_t` is `Some` only for incremental
    /// interiors.
    pub fn resolve(&self, t: usize, rng: &mut Rng) -> (bool, Option<Real>) {
        match self.state_at(t) {
            MixState::Old => (false, None),
            MixState::New => (true, None),
            MixState::Mixture(p) => (rng.uniform() < p, None),
            MixState::Morph(p) => (false, Some(p)),
        }
    }

    /// Ground-truth "is the stream currently in the new concept" indicator
    /// used by delay metrics: the first index at which new-concept data can
    /// appear.
    pub fn onset(&self) -> usize {
        self.start
    }
}

/// Composes a single-class drift dataset from two concepts and a schedule:
/// training data comes from `old`; the test stream follows the schedule
/// (mixing for gradual, morphing for incremental). This is the generic
/// builder behind the Figure 1 streams and the incremental-drift ablation.
pub fn compose_single_class(
    old: &crate::synth::ClassConcept,
    new: &crate::synth::ClassConcept,
    schedule: DriftSchedule,
    n_train: usize,
    n_test: usize,
    seed: u64,
) -> crate::stream::DriftDataset {
    assert_eq!(old.dim(), new.dim(), "concept dimensionality mismatch");
    let mut rng = Rng::seed_from(seed);
    let train = (0..n_train)
        .map(|_| crate::stream::Sample::new(old.sample(&mut rng), 0))
        .collect();
    let mut test = Vec::with_capacity(n_test);
    for t in 0..n_test {
        let (use_new, morph) = schedule.resolve(t, &mut rng);
        let x = match morph {
            Some(m) => crate::synth::ClassConcept::lerp(old, new, m).sample(&mut rng),
            None if use_new => new.sample(&mut rng),
            None => old.sample(&mut rng),
        };
        test.push(crate::stream::Sample::new(x, 0));
    }
    crate::stream::DriftDataset {
        name: format!("composed-{:?}", schedule.kind).to_lowercase(),
        train,
        test,
        drift_start: schedule.start,
        drift_end: if schedule.end > schedule.start {
            Some(schedule.end)
        } else {
            None
        },
        classes: 1,
    }
}

/// Composes a *labelled multi-class* drift dataset: one (old, new) concept
/// pair per class, a shared schedule, and a per-class mixing ratio.
/// Training data is drawn from the old concepts; each test sample first
/// draws its class (uniform over `concepts.len()`), then follows the
/// schedule within that class. Used by multi-class integration tests and
/// available to downstream users building custom scenarios.
pub fn compose_labeled(
    concepts: &[(crate::synth::ClassConcept, crate::synth::ClassConcept)],
    schedule: DriftSchedule,
    n_train_per_class: usize,
    n_test: usize,
    seed: u64,
) -> crate::stream::DriftDataset {
    assert!(!concepts.is_empty(), "need at least one class");
    let dim = concepts[0].0.dim();
    for (old, new) in concepts {
        assert_eq!(old.dim(), dim, "concept dimensionality mismatch");
        assert_eq!(new.dim(), dim, "concept dimensionality mismatch");
    }
    let mut rng = Rng::seed_from(seed);
    let mut train = Vec::with_capacity(n_train_per_class * concepts.len());
    for (label, (old, _)) in concepts.iter().enumerate() {
        for _ in 0..n_train_per_class {
            train.push(crate::stream::Sample::new(old.sample(&mut rng), label));
        }
    }
    let mut test = Vec::with_capacity(n_test);
    for t in 0..n_test {
        let label = rng.below(concepts.len() as u64) as usize;
        let (old, new) = &concepts[label];
        let (use_new, morph) = schedule.resolve(t, &mut rng);
        let x = match morph {
            Some(m) => crate::synth::ClassConcept::lerp(old, new, m).sample(&mut rng),
            None if use_new => new.sample(&mut rng),
            None => old.sample(&mut rng),
        };
        test.push(crate::stream::Sample::new(x, label));
    }
    crate::stream::DriftDataset {
        name: format!("composed-{}c-{:?}", concepts.len(), schedule.kind).to_lowercase(),
        train,
        test,
        drift_start: schedule.start,
        drift_end: if schedule.end > schedule.start {
            Some(schedule.end)
        } else {
            None
        },
        classes: concepts.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::ClassConcept;

    #[test]
    fn sudden_switches_once_and_stays() {
        let s = DriftSchedule::sudden(100);
        assert_eq!(s.state_at(99), MixState::Old);
        assert_eq!(s.state_at(100), MixState::New);
        assert_eq!(s.state_at(10_000), MixState::New);
    }

    #[test]
    fn gradual_ramps_probability() {
        let s = DriftSchedule::gradual(100, 200);
        assert_eq!(s.state_at(99), MixState::Old);
        assert_eq!(s.state_at(200), MixState::New);
        match s.state_at(150) {
            MixState::Mixture(p) => assert!((p - 0.5).abs() < 1e-6),
            other => panic!("expected mixture, got {other:?}"),
        }
        match s.state_at(100) {
            MixState::Mixture(p) => assert_eq!(p, 0.0),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn incremental_morphs() {
        let s = DriftSchedule::incremental(0, 10);
        match s.state_at(5) {
            MixState::Morph(t) => assert!((t - 0.5).abs() < 1e-6),
            other => panic!("{other:?}"),
        }
        assert_eq!(s.state_at(10), MixState::New);
    }

    #[test]
    fn reoccurring_returns_to_old() {
        let s = DriftSchedule::reoccurring(120, 170);
        assert_eq!(s.state_at(119), MixState::Old);
        assert_eq!(s.state_at(120), MixState::New);
        assert_eq!(s.state_at(169), MixState::New);
        assert_eq!(s.state_at(170), MixState::Old);
        assert_eq!(s.state_at(500), MixState::Old);
    }

    #[test]
    fn gradual_mixture_frequencies_follow_ramp() {
        let s = DriftSchedule::gradual(0, 1000);
        let mut rng = Rng::seed_from(1);
        // In the last decile the new concept should dominate; in the first,
        // the old one.
        let count_new = |range: std::ops::Range<usize>, rng: &mut Rng| {
            range.filter(|&t| s.resolve(t, rng).0).count()
        };
        let early = count_new(0..100, &mut rng);
        let late = count_new(900..1000, &mut rng);
        assert!(early < 20, "early new-count {early}");
        assert!(late > 80, "late new-count {late}");
    }

    #[test]
    #[should_panic(expected = "end > start")]
    fn gradual_rejects_empty_window() {
        DriftSchedule::gradual(10, 10);
    }

    #[test]
    fn compose_single_class_shapes() {
        let old = ClassConcept::isotropic(vec![0.0; 3], 0.05);
        let new = ClassConcept::isotropic(vec![1.0; 3], 0.05);
        let d = compose_single_class(&old, &new, DriftSchedule::sudden(50), 30, 200, 1);
        d.validate().unwrap();
        assert_eq!(d.train.len(), 30);
        assert_eq!(d.test.len(), 200);
        assert_eq!(d.drift_start, 50);
        assert_eq!(d.classes, 1);
        // Post-drift samples come from the new concept.
        assert!(d.test[100].x[0] > 0.5);
        assert!(d.test[10].x[0] < 0.5);
    }

    #[test]
    fn compose_incremental_morphs_through_midpoint() {
        let old = ClassConcept::isotropic(vec![0.0], 0.01);
        let new = ClassConcept::isotropic(vec![1.0], 0.01);
        let d = compose_single_class(&old, &new, DriftSchedule::incremental(0, 100), 10, 100, 2);
        // Sample 50 sits near the morph midpoint.
        assert!(
            (d.test[50].x[0] - 0.5).abs() < 0.15,
            "x = {}",
            d.test[50].x[0]
        );
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn compose_rejects_dim_mismatch() {
        let old = ClassConcept::isotropic(vec![0.0; 2], 0.05);
        let new = ClassConcept::isotropic(vec![1.0; 3], 0.05);
        compose_single_class(&old, &new, DriftSchedule::sudden(5), 5, 10, 3);
    }

    #[test]
    fn compose_labeled_builds_multiclass_dataset() {
        let concepts = vec![
            (
                ClassConcept::isotropic(vec![0.0; 2], 0.02),
                ClassConcept::isotropic(vec![0.3; 2], 0.02),
            ),
            (
                ClassConcept::isotropic(vec![1.0; 2], 0.02),
                ClassConcept::isotropic(vec![1.3; 2], 0.02),
            ),
            (
                ClassConcept::isotropic(vec![2.0; 2], 0.02),
                ClassConcept::isotropic(vec![2.3; 2], 0.02),
            ),
        ];
        let d = compose_labeled(&concepts, DriftSchedule::sudden(100), 40, 400, 9);
        d.validate().unwrap();
        assert_eq!(d.classes, 3);
        assert_eq!(d.train.len(), 120);
        // Every class appears in both eras.
        for label in 0..3 {
            assert!(d.test[..100].iter().any(|s| s.label == label));
            assert!(d.test[100..].iter().any(|s| s.label == label));
        }
        // Post-drift class-0 samples sit near the new concept (0.3).
        let post0 = d.test[100..].iter().find(|s| s.label == 0).unwrap();
        assert!((post0.x[0] - 0.3).abs() < 0.15, "x = {}", post0.x[0]);
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn compose_labeled_rejects_empty() {
        compose_labeled(&[], DriftSchedule::sudden(5), 5, 10, 3);
    }
}
