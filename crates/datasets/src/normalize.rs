//! Feature normalisation.
//!
//! OS-ELM with sigmoid activations wants inputs in a bounded range; NSL-KDD
//! preprocessing conventionally min-max normalises each numeric column. The
//! fit-on-train / apply-to-stream split matters: normalising with test
//! statistics would leak the drift itself.

use seqdrift_linalg::{stats::Welford, Real};

/// Per-dimension min-max scaler fit on training data, mapping the training
/// range to `[0, 1]` (test values outside the range extrapolate linearly
/// and are *not* clamped — clamping would silently erase drift).
#[derive(Debug, Clone)]
pub struct MinMaxNormalizer {
    mins: Vec<Real>,
    scales: Vec<Real>,
}

impl MinMaxNormalizer {
    /// Fits on training rows. Constant dimensions get scale 1 (pass
    /// through shifted to 0).
    pub fn fit(rows: &[Vec<Real>]) -> Self {
        assert!(!rows.is_empty(), "normalizer: empty training data");
        let dim = rows[0].len();
        let mut mins = vec![Real::INFINITY; dim];
        let mut maxs = vec![Real::NEG_INFINITY; dim];
        for r in rows {
            for ((mn, mx), &v) in mins.iter_mut().zip(maxs.iter_mut()).zip(r.iter()) {
                *mn = mn.min(v);
                *mx = mx.max(v);
            }
        }
        let scales = mins
            .iter()
            .zip(maxs.iter())
            .map(|(&mn, &mx)| {
                let range = mx - mn;
                if range > 1e-12 {
                    1.0 / range
                } else {
                    1.0
                }
            })
            .collect();
        MinMaxNormalizer { mins, scales }
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.mins.len()
    }

    /// Normalises in place.
    pub fn apply_inplace(&self, x: &mut [Real]) {
        debug_assert_eq!(x.len(), self.dim());
        for ((v, &mn), &s) in x.iter_mut().zip(self.mins.iter()).zip(self.scales.iter()) {
            *v = (*v - mn) * s;
        }
    }

    /// Normalises a copy.
    pub fn apply(&self, x: &[Real]) -> Vec<Real> {
        let mut out = x.to_vec();
        self.apply_inplace(&mut out);
        out
    }
}

/// Streaming z-score normaliser: statistics update online (Welford per
/// dimension). Useful for open-ended deployments where no training range
/// exists; statistics can be frozen once warmed up.
#[derive(Debug, Clone)]
pub struct OnlineNormalizer {
    stats: Vec<Welford>,
    frozen: bool,
}

impl OnlineNormalizer {
    /// Creates a normaliser for `dim` features.
    pub fn new(dim: usize) -> Self {
        OnlineNormalizer {
            stats: vec![Welford::new(); dim],
            frozen: false,
        }
    }

    /// Stops updating statistics; subsequent `normalize` calls use the
    /// frozen mean/std.
    pub fn freeze(&mut self) {
        self.frozen = true;
    }

    /// Whether statistics are frozen.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Observes `x` (unless frozen) and z-scores it in place.
    pub fn normalize_inplace(&mut self, x: &mut [Real]) {
        debug_assert_eq!(x.len(), self.stats.len());
        for (v, w) in x.iter_mut().zip(self.stats.iter_mut()) {
            if !self.frozen {
                w.push(*v);
            }
            let std = w.std();
            *v = if std > 1e-12 {
                (*v - w.mean()) / std
            } else {
                0.0
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minmax_maps_train_to_unit_interval() {
        let rows = vec![vec![0.0, 10.0], vec![5.0, 20.0], vec![10.0, 30.0]];
        let n = MinMaxNormalizer::fit(&rows);
        assert_eq!(n.apply(&rows[0]), vec![0.0, 0.0]);
        assert_eq!(n.apply(&rows[2]), vec![1.0, 1.0]);
        assert_eq!(n.apply(&rows[1]), vec![0.5, 0.5]);
    }

    #[test]
    fn minmax_extrapolates_outside_training_range() {
        let rows = vec![vec![0.0], vec![10.0]];
        let n = MinMaxNormalizer::fit(&rows);
        assert_eq!(n.apply(&[20.0]), vec![2.0]);
        assert_eq!(n.apply(&[-10.0]), vec![-1.0]);
    }

    #[test]
    fn minmax_constant_dimension_passes_through() {
        let rows = vec![vec![7.0, 1.0], vec![7.0, 2.0]];
        let n = MinMaxNormalizer::fit(&rows);
        let out = n.apply(&[7.0, 1.5]);
        assert_eq!(out[0], 0.0);
        assert_eq!(out[1], 0.5);
    }

    #[test]
    fn online_normalizer_zero_scores_converge() {
        let mut n = OnlineNormalizer::new(1);
        let mut rng = seqdrift_linalg::Rng::seed_from(1);
        let mut last = 0.0;
        for _ in 0..5000 {
            let mut x = [rng.normal(5.0, 2.0)];
            n.normalize_inplace(&mut x);
            last = x[0];
        }
        // After convergence, values look standard-normal: occasionally large
        // but not systematically offset.
        assert!(last.abs() < 5.0);
        let mut probe = [5.0];
        n.freeze();
        n.normalize_inplace(&mut probe);
        assert!(probe[0].abs() < 0.1, "mean sample should z-score near 0");
    }

    #[test]
    fn frozen_normalizer_stops_updating() {
        let mut n = OnlineNormalizer::new(1);
        for i in 0..100 {
            n.normalize_inplace(&mut [i as Real]);
        }
        n.freeze();
        let mut a = [50.0];
        n.normalize_inplace(&mut a);
        // Feeding extreme values must not move the statistics now.
        for _ in 0..100 {
            n.normalize_inplace(&mut [1e6]);
        }
        let mut b = [50.0];
        n.normalize_inplace(&mut b);
        assert_eq!(a, b);
    }
}
