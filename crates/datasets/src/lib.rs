#![warn(missing_docs)]

//! # seqdrift-datasets
//!
//! Streams and datasets for the paper's experiments.
//!
//! The paper evaluates on (a) NSL-KDD (network intrusion records whose
//! train→test distribution shift acts as a concept drift) and (b) a
//! cooling-fan vibration dataset (511-bin frequency spectra of healthy and
//! damaged fans). Neither artefact ships with this repository, so this crate
//! provides *synthetic equivalents with the paper's exact shapes and drift
//! schedules* (see DESIGN.md §3 for the substitution argument) plus a CSV
//! loader so the real data can be dropped in:
//!
//! * [`nslkdd`] — 38-feature, two-class (normal / neptune) stream: 2522
//!   initial-training samples, 22701 test samples, drift at sample 8333;
//! * [`fan`] — 511-bin spectrum synthesiser with hole-damage, chip-damage
//!   and noisy-environment variants, and the paper's three test scenarios
//!   (sudden @120, gradual 120–600, reoccurring 120–170);
//! * [`drift`] — generic composition of the four drift types of Figure 1
//!   (sudden, gradual, incremental, reoccurring) over any two generators;
//! * [`synth`] — Gaussian-blob class generators the above build on;
//! * [`normalize`] — min-max and z-score normalisation (fit on train, apply
//!   to stream);
//! * [`loader`] — CSV import for real datasets.
//!
//! ```
//! use seqdrift_datasets::nslkdd::{self, NslKddConfig};
//!
//! let dataset = nslkdd::generate(&NslKddConfig {
//!     n_train: 100, n_test: 500, drift_point: 200,
//!     ..NslKddConfig::default()
//! });
//! dataset.validate().unwrap();
//! assert_eq!(dataset.dim(), 38);
//! assert_eq!(dataset.drift_start, 200);
//! // Deterministic: the same config always yields the same stream.
//! assert_eq!(dataset.test[0], nslkdd::generate(&NslKddConfig {
//!     n_train: 100, n_test: 500, drift_point: 200,
//!     ..NslKddConfig::default()
//! }).test[0]);
//! ```

pub mod drift;
pub mod fan;
pub mod loader;
pub mod normalize;
pub mod nslkdd;
pub mod stream;
pub mod synth;

pub use drift::{DriftSchedule, DriftType};
pub use stream::{DriftDataset, Sample};
