//! Session supervision: panic isolation, rolling checkpoints, bounded
//! restart budgets, and the shard worker loop that enforces them.
//!
//! The contract the fleet's north-star demands is *blast-radius one*: a
//! panicking session may lose itself (briefly), never its neighbours.
//! Three mechanisms deliver it:
//!
//! 1. **Panic isolation** — every pipeline step runs inside
//!    `catch_unwind`; a panic discards only that session's live pipeline
//!    while the shard keeps draining its queue.
//! 2. **Rolling checkpoints** — each session serialises its quiescent
//!    state through `seqdrift_core::persist` every
//!    `FleetConfig::checkpoint_interval` processed samples into a shared
//!    [`CheckpointStore`]; a panicked session is restored from its last
//!    blob (losing at most one checkpoint interval of samples).
//! 3. **Bounded restart budget** — at most `max_restarts` restores per
//!    `restart_window` delivered samples; past the budget (or with no
//!    usable checkpoint) the session is *permanently quarantined* and
//!    surfaced to the caller instead of silently retried forever.
//!
//! All bookkeeping that must survive a dying worker thread (checkpoints,
//! restart history, session status) lives in shared structures owned by
//! the engine, so a respawned worker can re-home its shard's sessions.

use crate::durability::{DurabilityMonitor, LedgerOp};
use crate::engine::{SessionId, ShardMsg};
use crate::fault::FaultInjector;
use crate::metrics::{FleetMetrics, QueueDepth};
use seqdrift_core::pipeline::PipelineEvent;
use seqdrift_core::DriftPipeline;
use seqdrift_store::{LedgerEntry, Store};
use std::collections::{HashMap, VecDeque};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::Ordering;
use std::sync::mpsc::Receiver;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Why a session was taken out of service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuarantineReason {
    /// The session panicked before any checkpoint could be taken.
    NoCheckpoint,
    /// The restart budget (`max_restarts` per `restart_window` delivered
    /// samples) was exhausted.
    RestartBudgetExhausted,
    /// The last checkpoint blob failed to decode (e.g. corrupted bytes).
    CorruptCheckpoint,
}

impl QuarantineReason {
    /// Stable on-disk code for the durable quarantine ledger. New variants
    /// append new codes; existing codes never change meaning.
    pub(crate) fn code(self) -> u8 {
        match self {
            QuarantineReason::NoCheckpoint => 1,
            QuarantineReason::RestartBudgetExhausted => 2,
            QuarantineReason::CorruptCheckpoint => 3,
        }
    }

    /// Decodes a ledger code. Unknown codes (written by a newer fleet)
    /// conservatively read as `CorruptCheckpoint`: the session stays
    /// quarantined either way, which is the safe direction.
    pub(crate) fn from_code(code: u8) -> QuarantineReason {
        match code {
            1 => QuarantineReason::NoCheckpoint,
            2 => QuarantineReason::RestartBudgetExhausted,
            _ => QuarantineReason::CorruptCheckpoint,
        }
    }
}

impl std::fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuarantineReason::NoCheckpoint => write!(f, "panicked with no checkpoint"),
            QuarantineReason::RestartBudgetExhausted => write!(f, "restart budget exhausted"),
            QuarantineReason::CorruptCheckpoint => write!(f, "checkpoint failed to decode"),
        }
    }
}

/// Lifecycle status of a registered session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStatus {
    /// Live: feeding, snapshotting and evicting all work.
    Active,
    /// Permanently out of service; only visible through the registry,
    /// [`crate::FleetEngine::last_checkpoint`] and the shutdown report.
    Quarantined(QuarantineReason),
}

/// One entry of the fleet's event log. Pipeline events are wrapped;
/// supervision adds its own lifecycle entries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FleetEvent {
    /// A drift detection or reconstruction completion inside a session.
    Pipeline {
        /// Originating session.
        id: SessionId,
        /// The pipeline's own event.
        event: PipelineEvent,
    },
    /// A session's pipeline step panicked (caught; shard unaffected).
    SessionPanicked {
        /// The panicking session.
        id: SessionId,
        /// Delivery index (samples handed to the session so far) at the
        /// panic.
        at_delivery: u64,
    },
    /// A panicked session was restored from its rolling checkpoint.
    SessionRestored {
        /// The restored session.
        id: SessionId,
        /// `samples_processed` of the checkpoint it resumed from.
        resumed_at_sample: u64,
        /// Restarts consumed inside the current sliding window, this one
        /// included.
        restarts_in_window: u32,
    },
    /// A session was permanently quarantined.
    SessionQuarantined {
        /// The quarantined session.
        id: SessionId,
        /// Why it will not come back.
        reason: QuarantineReason,
    },
    /// A dead worker thread was replaced and its shard re-homed.
    WorkerRespawned {
        /// Shard index of the replaced worker.
        shard: usize,
        /// Sessions restored onto the new worker from checkpoints.
        recovered: u32,
        /// Sessions quarantined because no usable checkpoint existed.
        lost: u32,
    },
    /// A durable write failed and the fleet entered degraded durability:
    /// checkpoints buffer in memory while a background retry loop
    /// re-attempts the disk.
    DurabilityDegraded {
        /// The write that first failed.
        reason: crate::durability::DegradedReason,
    },
    /// The disk healed: every buffered write drained and the fleet is
    /// durable again.
    DurabilityRestored {
        /// Buffered checkpoints flushed during the degraded episode.
        flushed_checkpoints: u32,
        /// Buffered quarantine-ledger writes drained during the episode.
        drained_ledger_writes: u32,
    },
    /// A federation merge round was rejected wholesale: candidates were
    /// gathered but no merged model was produced, and the baseline was
    /// left untouched. Without this event a poisoned or flaky fleet fails
    /// silently into the next interval.
    MergeRoundRejected {
        /// Contributor snapshots considered this round.
        candidates: u64,
        /// Why the round produced nothing.
        reason: MergeRejectReason,
    },
    /// A session's federation reputation fell below the trust floor; its
    /// contributions are excluded from merges until trust recovers. The
    /// learning-layer sibling of `SessionQuarantined`.
    SessionExcludedLowTrust {
        /// The distrusted session.
        id: SessionId,
        /// Its trust score at round time.
        trust: seqdrift_linalg::Real,
    },
}

/// Why a federation merge round was rejected wholesale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeRejectReason {
    /// Fewer contributors than `FederationConfig::min_contributors`
    /// survived gating.
    TooFewContributors,
    /// The merge computed but failed transactional validation
    /// (non-finite or non-positive-definite combined statistics).
    FailedValidation,
}

impl std::fmt::Display for MergeRejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeRejectReason::TooFewContributors => write!(f, "too few contributors"),
            MergeRejectReason::FailedValidation => write!(f, "merge failed validation"),
        }
    }
}

/// A session lost with its worker at shutdown (the worker died and its
/// final state could not be collected).
#[derive(Debug)]
pub struct LostSession {
    /// The lost session.
    pub id: SessionId,
    /// Its last rolling checkpoint, when one was taken — the caller can
    /// restore from it (`FleetEngine::create_from_bytes`) elsewhere.
    pub checkpoint: Option<Vec<u8>>,
}

/// Per-session durable state: the rolling checkpoint plus restart history.
/// Lives engine-side so it survives worker-thread death.
#[derive(Debug)]
pub(crate) struct CheckpointEntry {
    /// Last good serialised state.
    pub blob: Vec<u8>,
    /// Delivery counter at checkpoint time (restores resume counting from
    /// the live counter, not this one; kept for worker re-homing).
    pub delivered: u64,
    /// `DriftPipeline::samples_processed` captured in `blob`.
    pub checkpoint_sample: u64,
    /// Snapshots taken so far (fault-injection ordinal).
    pub snapshots_taken: u64,
    /// Delivery indices at which the session was restarted (pruned to the
    /// sliding window on every decision).
    pub restarts: VecDeque<u64>,
}

/// Shared checkpoint + restart-history table.
#[derive(Debug, Default)]
pub(crate) struct CheckpointStore {
    inner: Mutex<HashMap<u64, CheckpointEntry>>,
}

impl CheckpointStore {
    pub fn lock(&self) -> MutexGuard<'_, HashMap<u64, CheckpointEntry>> {
        // Poison tolerance: a panic inside another holder leaves plain
        // data (no invariants span the lock), so recover the guard.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Clones the last checkpoint blob of a session, if any.
    pub fn blob_of(&self, id: u64) -> Option<Vec<u8>> {
        self.lock().get(&id).map(|e| e.blob.clone())
    }

    pub fn remove(&self, id: u64) {
        self.lock().remove(&id);
    }
}

/// Poison-tolerant lock helpers: every engine/worker lock holds plain
/// data whose invariants never span a panic window, so a poisoned lock is
/// recovered rather than propagated — one panicking thread must not turn
/// every later lock access into a second panic.
pub(crate) fn read_lock<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

pub(crate) fn write_lock<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

pub(crate) fn mutex_lock<T>(l: &Mutex<T>) -> MutexGuard<'_, T> {
    l.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Supervision parameters, copied out of `FleetConfig` for the workers.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SupervisionPolicy {
    /// Checkpoint every this many processed samples.
    pub checkpoint_interval: u64,
    /// Restarts allowed inside one sliding window.
    pub max_restarts: u32,
    /// Sliding-window width, in delivered samples.
    pub restart_window: u64,
}

/// Everything a worker thread shares with the engine and its siblings.
pub(crate) struct WorkerCtx {
    pub depth: Arc<QueueDepth>,
    pub metrics: Arc<FleetMetrics>,
    pub events: Arc<Mutex<Vec<FleetEvent>>>,
    pub registry: Arc<RwLock<HashMap<u64, SessionStatus>>>,
    pub store: Arc<CheckpointStore>,
    /// Crash-safe on-disk store behind `FleetConfig::state_dir`; `None`
    /// runs the fleet memory-only as before.
    pub durable: Option<Arc<Store>>,
    /// Durability health machine paired with `durable`: flush failures
    /// degrade the fleet, buffered writes drain in the background.
    pub monitor: Option<Arc<DurabilityMonitor>>,
    pub injector: Option<Arc<FaultInjector>>,
    pub policy: SupervisionPolicy,
}

impl WorkerCtx {
    fn log(&self, event: FleetEvent) {
        mutex_lock(&self.events).push(event);
    }
}

/// A worker's live view of one session.
pub(crate) struct SessionSlot {
    pub pipeline: DriftPipeline,
    /// Samples handed to this session (monotonic across restores; resets
    /// only to the checkpointed value when a whole worker is re-homed).
    pub delivered: u64,
    /// Samples processed since the last checkpoint attempt succeeded.
    pub since_checkpoint: u64,
}

/// Takes (or refreshes) a session's rolling checkpoint. Quiet failures
/// are fine: mid-reconstruction states refuse to serialise and simply
/// retry on a later sample.
fn take_checkpoint(ctx: &WorkerCtx, id: u64, slot: &mut SessionSlot) {
    if slot.pipeline.is_reconstructing() {
        return;
    }
    // to_bytes on a live pipeline should never panic, but a checkpointing
    // crash must not take the shard down either.
    let bytes = std::panic::catch_unwind(AssertUnwindSafe(|| slot.pipeline.to_bytes()));
    let Ok(Ok(mut blob)) = bytes else {
        return;
    };
    let mut store = ctx.store.lock();
    let entry = store.entry(id).or_insert_with(|| CheckpointEntry {
        blob: Vec::new(),
        delivered: 0,
        checkpoint_sample: 0,
        snapshots_taken: 0,
        restarts: VecDeque::new(),
    });
    if let Some(injector) = &ctx.injector {
        if injector.corrupt_checkpoint(id, entry.snapshots_taken, &mut blob) {
            ctx.metrics
                .checkpoints_corrupted
                .fetch_add(1, Ordering::Relaxed);
        }
    }
    entry.checkpoint_sample = slot.pipeline.samples_processed();
    entry.delivered = slot.delivered;
    entry.snapshots_taken += 1;
    entry.blob = blob.clone();
    slot.since_checkpoint = 0;
    // Flush to disk OUTSIDE the checkpoint-table lock: fsync latency must
    // not serialise every other shard's checkpointing.
    drop(store);
    if let Some(durable) = &ctx.durable {
        // While degraded, the retry thread owns the disk: buffer the
        // newest blob and let it drain in the background instead of
        // hammering a failing device from every shard.
        if ctx
            .monitor
            .as_ref()
            .is_some_and(|m| m.buffer_checkpoint_if_degraded(id, &blob))
        {
            return;
        }
        match durable.put(id, &blob) {
            Ok(_) => {
                ctx.metrics.durable_flushes.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                // A failing disk must never take the session down; the
                // in-memory checkpoint still protects against panics, the
                // failure is visible in the metrics, and the health
                // machine keeps the blob for the background retry loop.
                ctx.metrics
                    .durable_flush_failures
                    .fetch_add(1, Ordering::Relaxed);
                if let Some(monitor) = &ctx.monitor {
                    monitor.checkpoint_failed(id, blob);
                }
            }
        }
    }
}

/// Restore-or-quarantine decision for a panicked session.
pub(crate) enum Recovery {
    Restore {
        pipeline: Box<DriftPipeline>,
        resumed_at_sample: u64,
        restarts_in_window: u32,
    },
    Quarantine(QuarantineReason),
}

/// Applies the restart budget and attempts a checkpoint restore. Also
/// used by the engine when re-homing a dead worker's shard.
pub(crate) fn decide_recovery(ctx: &WorkerCtx, id: u64, delivered: u64) -> Recovery {
    let mut store = ctx.store.lock();
    let Some(entry) = store.get_mut(&id) else {
        return Recovery::Quarantine(QuarantineReason::NoCheckpoint);
    };
    let window_start = delivered.saturating_sub(ctx.policy.restart_window);
    while entry.restarts.front().is_some_and(|&t| t < window_start) {
        entry.restarts.pop_front();
    }
    if entry.restarts.len() as u32 >= ctx.policy.max_restarts {
        return Recovery::Quarantine(QuarantineReason::RestartBudgetExhausted);
    }
    match DriftPipeline::from_bytes(&entry.blob) {
        Ok(pipeline) => {
            entry.restarts.push_back(delivered);
            Recovery::Restore {
                pipeline: Box::new(pipeline),
                resumed_at_sample: entry.checkpoint_sample,
                restarts_in_window: entry.restarts.len() as u32,
            }
        }
        Err(_) => Recovery::Quarantine(QuarantineReason::CorruptCheckpoint),
    }
}

/// Handles a caught panic in `id`'s pipeline step: restore from the last
/// checkpoint within budget, else permanently quarantine. The broken
/// pipeline was already removed from `slots` by the caller.
fn supervise_panic(
    ctx: &WorkerCtx,
    slots: &mut HashMap<u64, SessionSlot>,
    id: u64,
    delivered: u64,
) {
    ctx.metrics.panics_caught.fetch_add(1, Ordering::Relaxed);
    ctx.log(FleetEvent::SessionPanicked {
        id: SessionId(id),
        at_delivery: delivered,
    });
    match decide_recovery(ctx, id, delivered) {
        Recovery::Restore {
            pipeline,
            resumed_at_sample,
            restarts_in_window,
        } => {
            slots.insert(
                id,
                SessionSlot {
                    pipeline: *pipeline,
                    delivered,
                    since_checkpoint: 0,
                },
            );
            ctx.metrics
                .sessions_restored
                .fetch_add(1, Ordering::Relaxed);
            ctx.log(FleetEvent::SessionRestored {
                id: SessionId(id),
                resumed_at_sample,
                restarts_in_window,
            });
        }
        Recovery::Quarantine(reason) => quarantine(ctx, id, reason),
    }
}

/// Marks a session permanently quarantined in the shared registry and
/// logs it. The caller removes (or never inserts) the live slot.
pub(crate) fn quarantine(ctx: &WorkerCtx, id: u64, reason: QuarantineReason) {
    write_lock(&ctx.registry).insert(id, SessionStatus::Quarantined(reason));
    ctx.metrics
        .sessions_quarantined
        .fetch_add(1, Ordering::Relaxed);
    ctx.metrics.sessions.fetch_sub(1, Ordering::Relaxed);
    // Persist the decision so a process restart cannot resurrect a
    // poisoned session: quarantine is a durability fact, not a runtime
    // mood. Failures degrade to in-memory-only quarantine (and count).
    if let Some(durable) = &ctx.durable {
        let restarts_spent = ctx
            .store
            .lock()
            .get(&id)
            .map_or(0, |e| e.restarts.len() as u64);
        let entry = LedgerEntry {
            reason_code: reason.code(),
            restarts_spent,
        };
        if ctx
            .monitor
            .as_ref()
            .is_some_and(|m| m.buffer_ledger_if_degraded(LedgerOp::Set(id, entry)))
        {
            // Buffered: the retry loop will persist the verdict when the
            // disk heals. Until then it holds in memory, exactly like
            // the pre-durable fleet.
        } else if durable.set_quarantined(id, entry).is_err() {
            ctx.metrics
                .durable_flush_failures
                .fetch_add(1, Ordering::Relaxed);
            if let Some(monitor) = &ctx.monitor {
                monitor.ledger_failed(LedgerOp::Set(id, entry));
            }
        }
    }
    ctx.log(FleetEvent::SessionQuarantined {
        id: SessionId(id),
        reason,
    });
}

/// One shard's event loop. Starts from `initial` sessions (empty on first
/// spawn; the re-homed set after a respawn) and exits — after draining the
/// queue — when the engine drops the sending side.
/// Tallies freshly drained pipeline events into the fleet metrics and
/// appends them to the shared event log.
fn forward_pipeline_events(ctx: &WorkerCtx, id: u64, fresh: Vec<PipelineEvent>) {
    if fresh.is_empty() {
        return;
    }
    for e in &fresh {
        match e {
            PipelineEvent::DriftDetected { .. } => {
                ctx.metrics.drifts_flagged.fetch_add(1, Ordering::Relaxed);
            }
            PipelineEvent::Reconstructed { .. } => {
                ctx.metrics
                    .reconstructions_completed
                    .fetch_add(1, Ordering::Relaxed);
            }
            PipelineEvent::Degraded { .. } => {
                ctx.metrics
                    .sessions_degraded
                    .fetch_add(1, Ordering::Relaxed);
            }
            PipelineEvent::Recovered { .. } => {
                ctx.metrics
                    .sessions_recovered
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    let mut log = mutex_lock(&ctx.events);
    log.extend(fresh.into_iter().map(|event| FleetEvent::Pipeline {
        id: SessionId(id),
        event,
    }));
}

pub(crate) fn worker_loop(
    rx: Receiver<ShardMsg>,
    initial: Vec<(u64, SessionSlot)>,
    ctx: WorkerCtx,
) -> Vec<(SessionId, DriftPipeline)> {
    let mut slots: HashMap<u64, SessionSlot> = initial.into_iter().collect();
    while let Ok(msg) = rx.recv() {
        ctx.depth.dec();
        match msg {
            ShardMsg::Create {
                id,
                pipeline,
                reply,
            } => {
                let result = if let std::collections::hash_map::Entry::Vacant(e) = slots.entry(id) {
                    let mut slot = SessionSlot {
                        pipeline: *pipeline,
                        delivered: 0,
                        since_checkpoint: 0,
                    };
                    slot.pipeline.drain_events();
                    // Seed the rolling checkpoint immediately so a panic
                    // on the very first samples is already recoverable.
                    take_checkpoint(&ctx, id, &mut slot);
                    e.insert(slot);
                    ctx.metrics.sessions.fetch_add(1, Ordering::Relaxed);
                    Ok(())
                } else {
                    Err(crate::engine::FleetError::DuplicateSession(SessionId(id)))
                };
                let _ = reply.send(result);
            }
            ShardMsg::Feed { id, mut sample } => {
                let Some(slot) = slots.get_mut(&id) else {
                    ctx.metrics.samples_dropped.fetch_add(1, Ordering::Relaxed);
                    continue;
                };
                let delivered = slot.delivered;
                slot.delivered += 1;
                if let Some(injector) = &ctx.injector {
                    if injector.should_kill_worker(id, delivered) {
                        // Deliberately OUTSIDE the supervision wrapper:
                        // models a worker-fatal bug, exercised by the
                        // respawn/re-homing path.
                        panic!("injected fault: killing worker for session {id}");
                    }
                }
                let stepped = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    if let Some(injector) = &ctx.injector {
                        injector.before_process(id, delivered, &mut sample);
                    }
                    slot.pipeline.process(&sample)
                }));
                match stepped {
                    Ok(Ok(out)) => {
                        ctx.metrics
                            .samples_processed
                            .fetch_add(1, Ordering::Relaxed);
                        if out.sanitized {
                            ctx.metrics
                                .samples_sanitized
                                .fetch_add(1, Ordering::Relaxed);
                        }
                        slot.since_checkpoint += 1;
                        forward_pipeline_events(&ctx, id, slot.pipeline.drain_events());
                        if slot.since_checkpoint >= ctx.policy.checkpoint_interval {
                            take_checkpoint(&ctx, id, slot);
                        }
                    }
                    Ok(Err(_)) => {
                        // A bad sample (e.g. NaN from a faulty sensor)
                        // drops; the session itself stays healthy. The guard
                        // may have pushed a `Degraded` event — forward it now
                        // rather than waiting for the next clean sample.
                        ctx.metrics.samples_dropped.fetch_add(1, Ordering::Relaxed);
                        forward_pipeline_events(&ctx, id, slot.pipeline.drain_events());
                    }
                    Err(_) => {
                        // The pipeline is mid-mutation garbage: discard it
                        // and let supervision restore or quarantine.
                        slots.remove(&id);
                        supervise_panic(&ctx, &mut slots, id, delivered);
                    }
                }
            }
            ShardMsg::Snapshot { id, reply } => {
                let result = match slots.get(&id) {
                    Some(slot) => slot
                        .pipeline
                        .to_bytes()
                        .map_err(crate::engine::FleetError::Core),
                    None => Err(crate::engine::FleetError::UnknownSession(SessionId(id))),
                };
                let _ = reply.send(result);
            }
            ShardMsg::SamplesProcessed { id, reply } => {
                let result = match slots.get(&id) {
                    Some(slot) => Ok(slot.pipeline.samples_processed()),
                    None => Err(crate::engine::FleetError::UnknownSession(SessionId(id))),
                };
                let _ = reply.send(result);
            }
            ShardMsg::InstallModel { id, model, reply } => {
                let result = match slots.get_mut(&id) {
                    Some(slot) => slot
                        .pipeline
                        .install_model(*model)
                        .map_err(crate::engine::FleetError::Core),
                    None => Err(crate::engine::FleetError::UnknownSession(SessionId(id))),
                };
                let _ = reply.send(result);
            }
            ShardMsg::Evict { id, reply } => {
                let result = match slots.remove(&id) {
                    Some(slot) => {
                        ctx.metrics.sessions.fetch_sub(1, Ordering::Relaxed);
                        Ok(Box::new(slot.pipeline))
                    }
                    None => Err(crate::engine::FleetError::UnknownSession(SessionId(id))),
                };
                let _ = reply.send(result);
            }
        }
    }
    let mut out: Vec<(SessionId, DriftPipeline)> = slots
        .into_iter()
        .map(|(id, slot)| (SessionId(id), slot.pipeline))
        .collect();
    out.sort_by_key(|(id, _)| *id);
    out
}
