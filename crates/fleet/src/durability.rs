//! The durability health machine: `Durable → DegradedDurability(reason)
//! → Durable`.
//!
//! PR 4 made checkpoint flushes crash-safe; this module makes them
//! *disk-failure*-safe. Before it, a failed durable write bumped a
//! counter and was forgotten: a fleet whose disk failed for ten minutes
//! silently lost durability forever. Now the first failure flips the
//! fleet into **degraded durability**; while degraded, workers stop
//! touching the disk and instead buffer the *newest* pending checkpoint
//! per session (plus quarantine-ledger writes and the federated model)
//! in memory, and a background retry thread — decorrelated-jitter
//! backoff, the same shape as the server's reconnect `Backoff` —
//! re-attempts the buffered work until the disk heals. When everything
//! buffered has drained, the fleet transitions back to `Durable` and
//! says so: both transitions are [`FleetEvent`]s, counted in the fleet
//! metrics, and surfaced in `seqdrift fleet`/`serve` output.
//!
//! **Ordering invariant.** While degraded, the retry thread is the only
//! durable-store writer; workers buffer instead of writing. The
//! transition back to `Durable` happens only after the pending set is
//! empty, and each session's checkpoints are produced by its single
//! shard worker in stream order — so a stale blob can never be flushed
//! *after* a newer one and shadow it under a higher generation.
//! Buffered state is bounded: one blob per session (newer supersedes
//! older), the ledger ops, and one federated blob.

use crate::metrics::FleetMetrics;
use crate::supervisor::{mutex_lock, FleetEvent};
use seqdrift_linalg::Rng;
use seqdrift_store::{LedgerEntry, ReputationEntry, Store};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Which durable write first failed (the reason the fleet degraded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradedReason {
    /// A session-checkpoint flush failed.
    CheckpointFlush,
    /// A quarantine-ledger (manifest) write failed.
    LedgerWrite,
    /// A federated merged-model write failed.
    FederatedWrite,
    /// A federation reputation-book write failed.
    ReputationWrite,
}

impl std::fmt::Display for DegradedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DegradedReason::CheckpointFlush => write!(f, "checkpoint flush failed"),
            DegradedReason::LedgerWrite => write!(f, "quarantine-ledger write failed"),
            DegradedReason::FederatedWrite => write!(f, "federated-model write failed"),
            DegradedReason::ReputationWrite => write!(f, "reputation-book write failed"),
        }
    }
}

/// The fleet's durability state. Memory-only fleets (no
/// `FleetConfig::state_dir`) are always reported `Durable` — there is no
/// disk to degrade.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurabilityHealth {
    /// Durable writes are landing on disk.
    Durable,
    /// The disk is failing; checkpoints are buffered in memory and
    /// retried in the background until it heals.
    DegradedDurability(DegradedReason),
}

impl std::fmt::Display for DurabilityHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurabilityHealth::Durable => write!(f, "DURABLE"),
            DurabilityHealth::DegradedDurability(reason) => write!(f, "DEGRADED ({reason})"),
        }
    }
}

/// A buffered quarantine-ledger mutation, replayed in order on recovery.
#[derive(Debug, Clone, Copy)]
pub(crate) enum LedgerOp {
    /// `Store::set_quarantined(session, entry)`.
    Set(u64, LedgerEntry),
    /// `Store::remove_session(session)` (evict under a failing disk).
    Remove(u64),
}

#[derive(Debug, Default)]
struct MonitorState {
    degraded: Option<DegradedReason>,
    /// Newest pending checkpoint per session: `(sequence, blob)`. The
    /// sequence guards the snapshot/drain race — a drain only retires
    /// the exact blob it flushed.
    pending: HashMap<u64, (u64, Vec<u8>)>,
    /// Ledger mutations in arrival order (order matters: a `Set` then
    /// `Remove` of the same session must not replay reversed).
    pending_ledger: Vec<LedgerOp>,
    /// Newest pending federated merged model.
    pending_federated: Option<(u64, Vec<u8>)>,
    /// Newest pending federation reputation book (full-book snapshot;
    /// newer supersedes like the federated model).
    pending_reputation: Option<(u64, BTreeMap<u64, ReputationEntry>)>,
    seq: u64,
    /// Work flushed during the current degraded episode, reported in the
    /// `DurabilityRestored` event.
    episode_checkpoints: u32,
    episode_ledger: u32,
}

/// Shared between the workers (who report failures and buffer while
/// degraded), the engine (who reads health), and the background retry
/// thread (who drains).
#[derive(Debug)]
pub(crate) struct DurabilityMonitor {
    state: Mutex<MonitorState>,
    wake: Condvar,
    stopped: AtomicBool,
    metrics: Arc<FleetMetrics>,
    events: Arc<Mutex<Vec<FleetEvent>>>,
}

impl DurabilityMonitor {
    pub fn new(metrics: Arc<FleetMetrics>, events: Arc<Mutex<Vec<FleetEvent>>>) -> Self {
        DurabilityMonitor {
            state: Mutex::new(MonitorState::default()),
            wake: Condvar::new(),
            stopped: AtomicBool::new(false),
            metrics,
            events,
        }
    }

    /// Poison tolerance: the state is plain buffers; no invariant spans
    /// a panic window.
    fn lock(&self) -> MutexGuard<'_, MonitorState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn health(&self) -> DurabilityHealth {
        match self.lock().degraded {
            None => DurabilityHealth::Durable,
            Some(reason) => DurabilityHealth::DegradedDurability(reason),
        }
    }

    /// Enters degraded mode (no-op if already degraded: the *first*
    /// failure names the episode). Must be called with the state lock
    /// held.
    fn degrade_locked(&self, st: &mut MonitorState, reason: DegradedReason) {
        if st.degraded.is_some() {
            return;
        }
        st.degraded = Some(reason);
        st.episode_checkpoints = 0;
        st.episode_ledger = 0;
        self.metrics
            .durability_degraded
            .fetch_add(1, Ordering::Relaxed);
        mutex_lock(&self.events).push(FleetEvent::DurabilityDegraded { reason });
        self.wake.notify_all();
    }

    /// Worker path, before a checkpoint flush: while degraded, buffers
    /// the blob (superseding any older pending one for the session) and
    /// returns `true` — the retry thread owns the disk until recovery.
    pub fn buffer_checkpoint_if_degraded(&self, id: u64, blob: &[u8]) -> bool {
        let mut st = self.lock();
        if st.degraded.is_none() {
            return false;
        }
        st.seq += 1;
        let seq = st.seq;
        st.pending.insert(id, (seq, blob.to_vec()));
        self.metrics
            .durable_flushes_buffered
            .fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Worker path, after a checkpoint flush failed: buffer the blob and
    /// enter degraded mode.
    pub fn checkpoint_failed(&self, id: u64, blob: Vec<u8>) {
        let mut st = self.lock();
        st.seq += 1;
        let seq = st.seq;
        st.pending.insert(id, (seq, blob));
        self.metrics
            .durable_flushes_buffered
            .fetch_add(1, Ordering::Relaxed);
        self.degrade_locked(&mut st, DegradedReason::CheckpointFlush);
    }

    /// Worker path, before a ledger write: while degraded, buffers the
    /// op and returns `true`.
    pub fn buffer_ledger_if_degraded(&self, op: LedgerOp) -> bool {
        let mut st = self.lock();
        if st.degraded.is_none() {
            return false;
        }
        st.pending_ledger.push(op);
        self.metrics
            .durable_flushes_buffered
            .fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Worker path, after a ledger write failed: buffer and degrade.
    pub fn ledger_failed(&self, op: LedgerOp) {
        let mut st = self.lock();
        st.pending_ledger.push(op);
        self.metrics
            .durable_flushes_buffered
            .fetch_add(1, Ordering::Relaxed);
        self.degrade_locked(&mut st, DegradedReason::LedgerWrite);
    }

    /// Engine path, before a federated-model write: while degraded,
    /// buffers the blob (newest supersedes) and returns `true`.
    pub fn buffer_federated_if_degraded(&self, blob: &[u8]) -> bool {
        let mut st = self.lock();
        if st.degraded.is_none() {
            return false;
        }
        st.seq += 1;
        let seq = st.seq;
        st.pending_federated = Some((seq, blob.to_vec()));
        self.metrics
            .durable_flushes_buffered
            .fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Engine path, after a federated write failed: buffer and degrade.
    pub fn federated_failed(&self, blob: Vec<u8>) {
        let mut st = self.lock();
        st.seq += 1;
        let seq = st.seq;
        st.pending_federated = Some((seq, blob));
        self.metrics
            .durable_flushes_buffered
            .fetch_add(1, Ordering::Relaxed);
        self.degrade_locked(&mut st, DegradedReason::FederatedWrite);
    }

    /// Engine path, before a reputation-book write: while degraded,
    /// buffers the full book (newest supersedes) and returns `true`.
    pub fn buffer_reputation_if_degraded(&self, book: &BTreeMap<u64, ReputationEntry>) -> bool {
        let mut st = self.lock();
        if st.degraded.is_none() {
            return false;
        }
        st.seq += 1;
        let seq = st.seq;
        st.pending_reputation = Some((seq, book.clone()));
        self.metrics
            .durable_flushes_buffered
            .fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Engine path, after a reputation-book write failed: buffer and
    /// degrade.
    pub fn reputation_failed(&self, book: BTreeMap<u64, ReputationEntry>) {
        let mut st = self.lock();
        st.seq += 1;
        let seq = st.seq;
        st.pending_reputation = Some((seq, book));
        self.metrics
            .durable_flushes_buffered
            .fetch_add(1, Ordering::Relaxed);
        self.degrade_locked(&mut st, DegradedReason::ReputationWrite);
    }

    /// One drain attempt: re-flush every buffered checkpoint, replay
    /// ledger ops in order, and re-write the federated model. Retires
    /// only what it actually flushed (by sequence, so a blob buffered
    /// mid-drain survives for the next pass). When the buffers empty,
    /// transitions back to `Durable` and emits `DurabilityRestored`.
    /// Returns whether the fleet is durable again.
    pub fn try_drain(&self, store: &Store) -> bool {
        let (checkpoints, ledger_ops, federated, reputation) = {
            let st = self.lock();
            if st.degraded.is_none() {
                return true;
            }
            let ckpts: Vec<(u64, u64, Vec<u8>)> = st
                .pending
                .iter()
                .map(|(&id, (seq, blob))| (id, *seq, blob.clone()))
                .collect();
            (
                ckpts,
                st.pending_ledger.clone(),
                st.pending_federated.clone(),
                st.pending_reputation.clone(),
            )
        };
        let mut clean = true;
        for (id, seq, blob) in checkpoints {
            self.metrics
                .durable_flush_retries
                .fetch_add(1, Ordering::Relaxed);
            if store.put(id, &blob).is_ok() {
                self.metrics.durable_flushes.fetch_add(1, Ordering::Relaxed);
                let mut st = self.lock();
                st.episode_checkpoints += 1;
                if st.pending.get(&id).is_some_and(|(s, _)| *s == seq) {
                    st.pending.remove(&id);
                }
            } else {
                clean = false;
            }
        }
        // Ledger ops replay strictly in order; stop at the first failure
        // so a later op can never leapfrog an earlier one.
        let mut applied = 0usize;
        for op in &ledger_ops {
            self.metrics
                .durable_flush_retries
                .fetch_add(1, Ordering::Relaxed);
            let ok = match op {
                LedgerOp::Set(id, entry) => store.set_quarantined(*id, *entry).is_ok(),
                LedgerOp::Remove(id) => store.remove_session(*id).is_ok(),
            };
            if ok {
                applied += 1;
            } else {
                clean = false;
                break;
            }
        }
        if applied > 0 {
            let mut st = self.lock();
            // Ops are append-only, so the first `applied` entries are
            // exactly the ones replayed above.
            let n = applied.min(st.pending_ledger.len());
            st.pending_ledger.drain(..n);
            st.episode_ledger += applied as u32;
        }
        if let Some((seq, blob)) = federated {
            self.metrics
                .durable_flush_retries
                .fetch_add(1, Ordering::Relaxed);
            if store.put_federated(&blob).is_ok() {
                let mut st = self.lock();
                if st
                    .pending_federated
                    .as_ref()
                    .is_some_and(|(s, _)| *s == seq)
                {
                    st.pending_federated = None;
                }
            } else {
                clean = false;
            }
        }
        if let Some((seq, book)) = reputation {
            self.metrics
                .durable_flush_retries
                .fetch_add(1, Ordering::Relaxed);
            if store.put_reputations(&book).is_ok() {
                let mut st = self.lock();
                if st
                    .pending_reputation
                    .as_ref()
                    .is_some_and(|(s, _)| *s == seq)
                {
                    st.pending_reputation = None;
                }
            } else {
                clean = false;
            }
        }
        let mut st = self.lock();
        if clean
            && st.pending.is_empty()
            && st.pending_ledger.is_empty()
            && st.pending_federated.is_none()
            && st.pending_reputation.is_none()
            && st.degraded.is_some()
        {
            st.degraded = None;
            self.metrics
                .durability_recovered
                .fetch_add(1, Ordering::Relaxed);
            mutex_lock(&self.events).push(FleetEvent::DurabilityRestored {
                flushed_checkpoints: st.episode_checkpoints,
                drained_ledger_writes: st.episode_ledger,
            });
        }
        st.degraded.is_none()
    }

    /// Signals the retry thread to make one final drain attempt and exit.
    pub fn stop(&self) {
        self.stopped.store(true, Ordering::SeqCst);
        self.wake.notify_all();
    }

    fn is_stopped(&self) -> bool {
        self.stopped.load(Ordering::SeqCst)
    }
}

/// Decorrelated-jitter backoff (same shape as the server crate's
/// reconnect `Backoff`): each delay is uniform in `[base, prev * 3]`,
/// clamped to `cap`. Spreads many degraded fleets' retry attempts so a
/// shared storage backend that just healed is not thundering-herded.
struct Backoff {
    rng: Rng,
    base: Duration,
    cap: Duration,
    prev: Duration,
}

impl Backoff {
    fn new(base: Duration, cap: Duration, seed: u64) -> Backoff {
        Backoff {
            rng: Rng::seed_from(seed),
            base,
            cap,
            prev: base,
        }
    }

    fn next_delay(&mut self) -> Duration {
        let lo = self.base.as_micros() as u64;
        let hi = (self.prev.as_micros() as u64).saturating_mul(3).max(lo + 1);
        let span = hi - lo;
        let drawn = lo + self.rng.below(span + 1);
        let delay = Duration::from_micros(drawn).min(self.cap);
        self.prev = delay;
        delay
    }

    fn reset(&mut self) {
        self.prev = self.base;
    }
}

/// The background retry loop. Sleeps while the fleet is durable; once
/// degraded, drains with decorrelated-jitter backoff until the disk
/// heals, then goes back to sleep. On `stop()`, makes one final
/// best-effort drain and exits.
pub(crate) fn retry_loop(
    monitor: Arc<DurabilityMonitor>,
    store: Arc<Store>,
    base: Duration,
    cap: Duration,
) {
    let mut backoff = Backoff::new(base, cap, 0xD15C_FA11);
    loop {
        // Park until degraded or stopped.
        {
            let mut st = monitor.lock();
            while st.degraded.is_none() && !monitor.is_stopped() {
                st = monitor
                    .wake
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
        if monitor.is_stopped() {
            monitor.try_drain(&store);
            return;
        }
        // Degraded: wait out the backoff (waking early on stop), then
        // attempt a drain.
        let delay = backoff.next_delay();
        {
            let st = monitor.lock();
            let _ = monitor
                .wake
                .wait_timeout(st, delay)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if monitor.is_stopped() {
            monitor.try_drain(&store);
            return;
        }
        if monitor.try_drain(&store) {
            backoff.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor() -> DurabilityMonitor {
        DurabilityMonitor::new(
            Arc::new(FleetMetrics::default()),
            Arc::new(Mutex::new(Vec::new())),
        )
    }

    #[test]
    fn starts_durable_and_degrades_once_per_episode() {
        let m = monitor();
        assert_eq!(m.health(), DurabilityHealth::Durable);
        assert!(!m.buffer_checkpoint_if_degraded(1, b"x"));
        m.checkpoint_failed(1, b"x".to_vec());
        assert_eq!(
            m.health(),
            DurabilityHealth::DegradedDurability(DegradedReason::CheckpointFlush)
        );
        // A second failure does not re-enter (or re-label) the episode.
        m.federated_failed(b"y".to_vec());
        assert_eq!(
            m.health(),
            DurabilityHealth::DegradedDurability(DegradedReason::CheckpointFlush)
        );
        assert_eq!(m.metrics.durability_degraded.load(Ordering::Relaxed), 1);
        // While degraded, workers buffer instead of writing.
        assert!(m.buffer_checkpoint_if_degraded(1, b"newer"));
        let st = m.lock();
        assert_eq!(st.pending[&1].1, b"newer");
    }

    #[test]
    fn drain_recovers_and_emits_restored() {
        let dir = std::env::temp_dir().join(format!("seqdrift-durmon-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open(&dir).unwrap();
        let m = monitor();
        m.checkpoint_failed(3, b"blob".to_vec());
        m.ledger_failed(LedgerOp::Set(
            9,
            LedgerEntry {
                reason_code: 1,
                restarts_spent: 2,
            },
        ));
        assert!(m.try_drain(&store));
        assert_eq!(m.health(), DurabilityHealth::Durable);
        assert_eq!(store.load(3).unwrap().unwrap().1, b"blob");
        assert_eq!(store.ledger().len(), 1);
        let events = m.events.lock().unwrap();
        assert!(events.iter().any(|e| matches!(
            e,
            FleetEvent::DurabilityRestored {
                flushed_checkpoints: 1,
                drained_ledger_writes: 1
            }
        )));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reputation_buffers_while_degraded_and_drains() {
        let dir = std::env::temp_dir().join(format!("seqdrift-durmon-rep-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open(&dir).unwrap();
        let m = monitor();
        // Durable: nothing buffers.
        let mut book = BTreeMap::new();
        book.insert(1, ReputationEntry::default());
        assert!(!m.buffer_reputation_if_degraded(&book));
        // A failed write degrades with the reputation reason.
        m.reputation_failed(book.clone());
        assert_eq!(
            m.health(),
            DurabilityHealth::DegradedDurability(DegradedReason::ReputationWrite)
        );
        // A newer book supersedes the buffered one.
        book.insert(
            2,
            ReputationEntry {
                trust: 0.5,
                outlier_rounds: 1,
                clean_rounds: 0,
            },
        );
        assert!(m.buffer_reputation_if_degraded(&book));
        assert!(m.try_drain(&store));
        assert_eq!(m.health(), DurabilityHealth::Durable);
        assert_eq!(store.reputations(), book);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn backoff_grows_and_respects_cap() {
        let mut b = Backoff::new(Duration::from_millis(10), Duration::from_millis(200), 42);
        let mut prev = Duration::ZERO;
        let mut grew = false;
        for _ in 0..32 {
            let d = b.next_delay();
            assert!(d >= Duration::from_millis(10));
            assert!(d <= Duration::from_millis(200));
            if d > prev {
                grew = true;
            }
            prev = d;
        }
        assert!(grew);
        b.reset();
        assert!(b.next_delay() <= Duration::from_millis(30));
    }
}
