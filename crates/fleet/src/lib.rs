#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! # seqdrift-fleet
//!
//! The concurrent-session layer above [`seqdrift_core::DriftPipeline`]: one
//! gateway-class host multiplexing many independent device streams.
//!
//! The paper's detector is O(1)-memory and strictly sequential per stream —
//! exactly the property that makes it cheap to run *thousands* of streams
//! side by side. A [`FleetEngine`] owns a fixed pool of worker threads
//! ("shards"); every session is pinned to the shard `session_id % workers`
//! and processed in feed order, so per-session behaviour is deterministic
//! regardless of how many workers the host runs.
//!
//! Built strictly on `std` (`std::thread` + bounded `std::sync::mpsc`
//! channels): the workspace builds offline with no external crates.
//!
//! ## Contract
//!
//! * **Lifecycle** — [`FleetEngine::create`] installs a calibrated pipeline
//!   (or [`FleetEngine::create_from_bytes`] restores one from the
//!   `seqdrift_core::persist` wire format), [`FleetEngine::feed`] streams
//!   samples, [`FleetEngine::snapshot`] checkpoints at quiescent points
//!   (mid-reconstruction refusal propagates from `persist`), and
//!   [`FleetEngine::evict`] hands the live pipeline back.
//! * **Backpressure** — every shard has a bounded ingress queue.
//!   [`FleetEngine::feed`] never blocks: a full queue returns
//!   [`FeedReply::Busy`] so the caller can degrade gracefully (drop, retry,
//!   shed load) instead of growing memory without bound.
//!   [`FleetEngine::feed_blocking`] retries with exponential backoff but
//!   gives up with [`FleetError::Timeout`] after a configurable deadline.
//! * **Fault tolerance** — a panicking session is caught by the shard's
//!   supervision wrapper (the `supervisor` module): it is restored from its
//!   rolling checkpoint within a bounded restart budget, or permanently
//!   quarantined ([`FeedReply::Quarantined`]) — its co-sharded neighbours
//!   never notice. Dead worker threads are detected, respawned and their
//!   shards re-homed. Every recovery path is reproducibly exercisable via
//!   the seeded [`FaultInjector`]. [`FleetEngine::shutdown`] never panics.
//! * **Durability** — with [`FleetConfig::state_dir`] set, every rolling
//!   checkpoint is also flushed to a crash-safe on-disk store
//!   (`seqdrift_store`: CRC-framed generations, atomic fsync'd writes)
//!   and quarantine verdicts persist in a store manifest. After a crash
//!   or power loss, [`FleetEngine::resume`] re-homes every surviving
//!   session from its newest valid generation; the worst case is losing
//!   one checkpoint interval of samples — never a model, and never a
//!   quarantine decision.
//! * **Observability** — [`FleetEngine::metrics`] reads lock-free aggregate
//!   counters; [`FleetEngine::drain_events`] returns the [`FleetEvent`] log
//!   so callers can see *which* device drifted, panicked, or recovered.
//! * **Shutdown** — [`FleetEngine::shutdown`] drains every queue, joins the
//!   workers, and returns each surviving session's final pipeline plus the
//!   quarantined and lost ones.
//!
//! ## Example
//!
//! ```
//! use seqdrift_fleet::{FeedReply, FleetConfig, FleetEngine, SessionId};
//! use seqdrift_core::{DetectorConfig, DriftPipeline};
//! use seqdrift_linalg::{Real, Rng};
//! use seqdrift_oselm::{MultiInstanceModel, OsElmConfig};
//!
//! // Calibrate one pipeline and replicate it across 8 simulated devices.
//! let mut rng = Rng::seed_from(7);
//! let blob: Vec<Vec<Real>> = (0..80).map(|_| {
//!     let mut x = vec![0.0; 4];
//!     rng.fill_normal(&mut x, 0.3, 0.05);
//!     x
//! }).collect();
//! let mut model = MultiInstanceModel::new(1, OsElmConfig::new(4, 3).with_seed(1)).unwrap();
//! model.init_train_class(0, &blob).unwrap();
//! let train: Vec<(usize, &[Real])> = blob.iter().map(|x| (0, x.as_slice())).collect();
//! let pipeline = DriftPipeline::calibrate(
//!     model, DetectorConfig::new(1, 4).with_window(16), &train).unwrap();
//! let bytes = pipeline.to_bytes().unwrap();
//!
//! let fleet = FleetEngine::new(FleetConfig::new(2)).unwrap();
//! for dev in 0..8 {
//!     fleet.create_from_bytes(SessionId(dev), &bytes).unwrap();
//! }
//! let mut x = vec![0.0; 4];
//! rng.fill_normal(&mut x, 0.3, 0.05);
//! assert_eq!(fleet.feed(SessionId(3), &x), FeedReply::Enqueued);
//! let report = fleet.shutdown();
//! assert_eq!(report.sessions.len(), 8);
//! assert_eq!(report.metrics.samples_processed, 1);
//! ```

mod durability;
mod engine;
mod fault;
mod metrics;
mod supervisor;

pub use durability::{DegradedReason, DurabilityHealth};
pub use engine::{
    FederationConfig, FeedReply, FleetConfig, FleetEngine, FleetError, SessionId, ShutdownReport,
};
pub use fault::{Fault, FaultInjector};
pub use metrics::{MetricsSnapshot, RejectReasons};
pub use supervisor::{FleetEvent, LostSession, MergeRejectReason, QuarantineReason, SessionStatus};
// Carried in `FleetError::Store`; re-exported so callers can match on it
// without naming the store crate.
pub use seqdrift_store::StoreError;
// Surfaced by `FleetEngine::recovery_report`; re-exported so callers can
// print it without naming the store crate.
pub use seqdrift_store::RecoveryReport;
// Persisted by `FleetEngine::persist_reputations`; re-exported so the
// federation layer can keep its book without naming the store crate.
pub use seqdrift_store::ReputationEntry;
