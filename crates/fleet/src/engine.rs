//! The fleet engine: sharded worker threads, bounded ingress queues,
//! session routing, and deterministic shutdown.
//!
//! Every session is pinned to shard `session_id % workers`; a shard's queue
//! is FIFO, so each session sees its samples in exactly the order they were
//! fed no matter how many shards the engine runs — per-session behaviour is
//! reproducible across 1, 2 or 8 workers. Control operations (create,
//! snapshot, evict) travel through the same queue as samples, so a snapshot
//! observes every sample fed before it.

use crate::metrics::{FleetMetrics, MetricsSnapshot, QueueDepth};
use seqdrift_core::pipeline::PipelineEvent;
use seqdrift_core::{CoreError, DriftPipeline};
use seqdrift_linalg::Real;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;

/// Identifies one device stream inside the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "session-{}", self.0)
    }
}

/// Fleet-level failures.
#[derive(Debug)]
pub enum FleetError {
    /// The session id is not registered with the engine.
    UnknownSession(SessionId),
    /// A session with this id already exists.
    DuplicateSession(SessionId),
    /// Bad engine configuration.
    InvalidConfig(&'static str),
    /// An error bubbled up from the pipeline (e.g. a mid-reconstruction
    /// snapshot refusal, or a corrupt restore blob).
    Core(CoreError),
    /// The engine's workers are gone (shutdown raced the call).
    Disconnected,
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::UnknownSession(id) => write!(f, "unknown {id}"),
            FleetError::DuplicateSession(id) => write!(f, "{id} already exists"),
            FleetError::InvalidConfig(msg) => write!(f, "invalid fleet config: {msg}"),
            FleetError::Core(e) => write!(f, "pipeline error: {e}"),
            FleetError::Disconnected => write!(f, "fleet workers disconnected"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<CoreError> for FleetError {
    fn from(e: CoreError) -> Self {
        FleetError::Core(e)
    }
}

/// Reply of a non-blocking [`FleetEngine::feed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedReply {
    /// The sample was queued on the session's shard.
    Enqueued,
    /// The shard's bounded queue is full; the sample was NOT queued. The
    /// caller decides whether to retry, drop, or shed the device.
    Busy,
    /// No such session; the sample was NOT queued.
    UnknownSession,
}

/// Engine construction parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker threads (= shards). Each session is pinned to
    /// `session_id % workers`.
    pub workers: usize,
    /// Bound of each shard's ingress queue, in messages. When a shard's
    /// queue is full, `feed` returns [`FeedReply::Busy`].
    pub queue_capacity: usize,
}

impl FleetConfig {
    /// A config with the given worker count and the default queue bound
    /// (256 messages per shard).
    pub fn new(workers: usize) -> Self {
        FleetConfig {
            workers,
            queue_capacity: 256,
        }
    }

    /// Overrides the per-shard queue bound.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }
}

/// What a worker can be asked to do. Control messages carry a reply channel
/// so callers observe completion; samples are fire-and-forget.
enum ShardMsg {
    Create {
        id: u64,
        pipeline: Box<DriftPipeline>,
        reply: Sender<Result<(), FleetError>>,
    },
    Feed {
        id: u64,
        sample: Vec<Real>,
    },
    Snapshot {
        id: u64,
        reply: Sender<Result<Vec<u8>, FleetError>>,
    },
    Evict {
        id: u64,
        reply: Sender<Result<Box<DriftPipeline>, FleetError>>,
    },
}

struct Shard {
    /// `None` once shutdown has begun; dropping the sender is what tells
    /// the worker to drain and exit.
    tx: Option<SyncSender<ShardMsg>>,
    depth: Arc<QueueDepth>,
    handle: Option<JoinHandle<Vec<(SessionId, DriftPipeline)>>>,
}

/// Everything the engine hands back on [`FleetEngine::shutdown`].
#[derive(Debug)]
pub struct ShutdownReport {
    /// Final state of every session, sorted by id.
    pub sessions: Vec<(SessionId, DriftPipeline)>,
    /// Events that had not been drained before shutdown.
    pub events: Vec<(SessionId, PipelineEvent)>,
    /// Final aggregate counters.
    pub metrics: MetricsSnapshot,
}

/// The multi-tenant fleet engine. See the crate docs for the contract.
pub struct FleetEngine {
    shards: Vec<Shard>,
    /// Routing cache of live session ids; the per-shard session maps are
    /// authoritative. Updated only after a worker acknowledges.
    registry: RwLock<HashSet<u64>>,
    metrics: Arc<FleetMetrics>,
    events: Arc<Mutex<Vec<(SessionId, PipelineEvent)>>>,
}

impl FleetEngine {
    /// Spawns the worker pool.
    pub fn new(cfg: FleetConfig) -> Result<FleetEngine, FleetError> {
        if cfg.workers == 0 {
            return Err(FleetError::InvalidConfig("workers must be positive"));
        }
        if cfg.queue_capacity == 0 {
            return Err(FleetError::InvalidConfig("queue_capacity must be positive"));
        }
        let metrics = Arc::new(FleetMetrics::default());
        let events = Arc::new(Mutex::new(Vec::new()));
        let mut shards = Vec::with_capacity(cfg.workers);
        for _ in 0..cfg.workers {
            let (tx, rx) = sync_channel(cfg.queue_capacity);
            let depth = Arc::new(QueueDepth::default());
            let handle = {
                let depth = Arc::clone(&depth);
                let metrics = Arc::clone(&metrics);
                let events = Arc::clone(&events);
                std::thread::spawn(move || worker_loop(rx, depth, metrics, events))
            };
            shards.push(Shard {
                tx: Some(tx),
                depth,
                handle: Some(handle),
            });
        }
        Ok(FleetEngine {
            shards,
            registry: RwLock::new(HashSet::new()),
            metrics,
            events,
        })
    }

    /// Number of shards / worker threads.
    pub fn workers(&self) -> usize {
        self.shards.len()
    }

    /// Current number of live sessions.
    pub fn session_count(&self) -> usize {
        self.registry.read().expect("registry lock").len()
    }

    fn shard_of(&self, id: SessionId) -> &Shard {
        &self.shards[(id.0 % self.shards.len() as u64) as usize]
    }

    /// Sends a control message, blocking if the shard queue is full (control
    /// operations are rare and must not be droppable).
    fn control_send(&self, id: SessionId, msg: ShardMsg) -> Result<(), FleetError> {
        let shard = self.shard_of(id);
        let tx = shard.tx.as_ref().ok_or(FleetError::Disconnected)?;
        shard.depth.inc();
        tx.send(msg).map_err(|_| {
            shard.depth.dec();
            FleetError::Disconnected
        })
    }

    /// Installs a calibrated pipeline as a new session. Blocks until the
    /// owning worker acknowledges, so a `feed` issued after `create`
    /// returns is guaranteed to find the session. Any events still queued
    /// inside the pipeline are discarded: the fleet log covers a session's
    /// life *inside* the fleet, and the caller had full access to
    /// `events()` before handing the pipeline over.
    pub fn create(&self, id: SessionId, pipeline: DriftPipeline) -> Result<(), FleetError> {
        if self.registry.read().expect("registry lock").contains(&id.0) {
            return Err(FleetError::DuplicateSession(id));
        }
        let (reply, rx) = channel();
        self.control_send(
            id,
            ShardMsg::Create {
                id: id.0,
                pipeline: Box::new(pipeline),
                reply,
            },
        )?;
        rx.recv().map_err(|_| FleetError::Disconnected)??;
        self.registry.write().expect("registry lock").insert(id.0);
        Ok(())
    }

    /// Restores a session from a `seqdrift_core::persist` checkpoint blob —
    /// the reboot-recovery path, fleet edition.
    pub fn create_from_bytes(&self, id: SessionId, blob: &[u8]) -> Result<(), FleetError> {
        let pipeline = DriftPipeline::from_bytes(blob)?;
        self.create(id, pipeline)
    }

    fn try_feed(&self, id: SessionId, sample: &[Real], count_busy: bool) -> FeedReply {
        if !self.registry.read().expect("registry lock").contains(&id.0) {
            return FeedReply::UnknownSession;
        }
        let shard = self.shard_of(id);
        let Some(tx) = shard.tx.as_ref() else {
            return FeedReply::Busy;
        };
        shard.depth.inc();
        match tx.try_send(ShardMsg::Feed {
            id: id.0,
            sample: sample.to_vec(),
        }) {
            Ok(()) => FeedReply::Enqueued,
            Err(TrySendError::Full(_)) => {
                shard.depth.dec();
                if count_busy {
                    self.metrics.busy_rejections.fetch_add(1, Ordering::Relaxed);
                }
                FeedReply::Busy
            }
            Err(TrySendError::Disconnected(_)) => {
                shard.depth.dec();
                FeedReply::Busy
            }
        }
    }

    /// Queues one sample for a session without blocking. A full shard queue
    /// returns [`FeedReply::Busy`] — the engine never buffers unboundedly;
    /// slow consumers surface as explicit backpressure.
    pub fn feed(&self, id: SessionId, sample: &[Real]) -> FeedReply {
        self.try_feed(id, sample, true)
    }

    /// Cooperative blocking feed: retries a `Busy` shard (yielding between
    /// attempts) until the sample is queued. Used by replay-style callers
    /// that prefer throttling over dropping; live ingest paths should call
    /// [`FleetEngine::feed`] and shed load instead. `Busy` spins here are
    /// not counted in `busy_rejections`.
    pub fn feed_blocking(&self, id: SessionId, sample: &[Real]) -> Result<(), FleetError> {
        loop {
            match self.try_feed(id, sample, false) {
                FeedReply::Enqueued => return Ok(()),
                FeedReply::Busy => std::thread::yield_now(),
                FeedReply::UnknownSession => return Err(FleetError::UnknownSession(id)),
            }
        }
    }

    /// Checkpoints a session through the `seqdrift_core::persist` wire
    /// format. The request travels the same FIFO as samples, so the blob
    /// reflects every sample fed before this call. Mid-reconstruction
    /// sessions refuse to checkpoint (the persist contract); the error
    /// comes back as [`FleetError::Core`].
    pub fn snapshot(&self, id: SessionId) -> Result<Vec<u8>, FleetError> {
        if !self.registry.read().expect("registry lock").contains(&id.0) {
            return Err(FleetError::UnknownSession(id));
        }
        let (reply, rx) = channel();
        self.control_send(id, ShardMsg::Snapshot { id: id.0, reply })?;
        rx.recv().map_err(|_| FleetError::Disconnected)?
    }

    /// Removes a session and returns its live pipeline (with any samples
    /// fed before the call already applied).
    pub fn evict(&self, id: SessionId) -> Result<DriftPipeline, FleetError> {
        if !self.registry.read().expect("registry lock").contains(&id.0) {
            return Err(FleetError::UnknownSession(id));
        }
        let (reply, rx) = channel();
        self.control_send(id, ShardMsg::Evict { id: id.0, reply })?;
        let pipeline = rx.recv().map_err(|_| FleetError::Disconnected)??;
        self.registry.write().expect("registry lock").remove(&id.0);
        Ok(*pipeline)
    }

    /// Point-in-time aggregate counters plus per-shard queue depths.
    pub fn metrics(&self) -> MetricsSnapshot {
        let depths = self.shards.iter().map(|s| s.depth.get()).collect();
        self.metrics.snapshot(depths)
    }

    /// Removes and returns the `(session, event)` log accumulated since the
    /// last drain. The global interleaving across sessions follows worker
    /// completion order; each session's own subsequence is in stream order.
    pub fn drain_events(&self) -> Vec<(SessionId, PipelineEvent)> {
        std::mem::take(&mut *self.events.lock().expect("events lock"))
    }

    /// Drains every queue, joins the workers, and returns each session's
    /// final state (sorted by id), the undrained events, and the final
    /// counters. All samples fed before this call are applied before the
    /// report is built.
    pub fn shutdown(mut self) -> ShutdownReport {
        let mut shards = std::mem::take(&mut self.shards);
        // Drop every sender first so all workers drain concurrently...
        for shard in &mut shards {
            shard.tx = None;
        }
        // ...then join and merge their final session maps.
        let mut sessions = Vec::new();
        for shard in &mut shards {
            if let Some(handle) = shard.handle.take() {
                sessions.extend(handle.join().expect("fleet worker panicked"));
            }
        }
        sessions.sort_by_key(|(id, _)| *id);
        let events = std::mem::take(&mut *self.events.lock().expect("events lock"));
        let metrics = self
            .metrics
            .snapshot(shards.iter().map(|s| s.depth.get()).collect());
        ShutdownReport {
            sessions,
            events,
            metrics,
        }
    }
}

impl Drop for FleetEngine {
    /// Dropping without [`FleetEngine::shutdown`] still drains and joins the
    /// workers (final states are discarded).
    fn drop(&mut self) {
        for shard in &mut self.shards {
            shard.tx = None;
        }
        for shard in &mut self.shards {
            if let Some(handle) = shard.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

/// One shard's event loop. Exits (after draining the queue) when the engine
/// drops the sending side.
fn worker_loop(
    rx: Receiver<ShardMsg>,
    depth: Arc<QueueDepth>,
    metrics: Arc<FleetMetrics>,
    events: Arc<Mutex<Vec<(SessionId, PipelineEvent)>>>,
) -> Vec<(SessionId, DriftPipeline)> {
    let mut sessions: HashMap<u64, DriftPipeline> = HashMap::new();
    while let Ok(msg) = rx.recv() {
        depth.dec();
        match msg {
            ShardMsg::Create {
                id,
                mut pipeline,
                reply,
            } => {
                let result =
                    if let std::collections::hash_map::Entry::Vacant(e) = sessions.entry(id) {
                        pipeline.drain_events();
                        e.insert(*pipeline);
                        metrics.sessions.fetch_add(1, Ordering::Relaxed);
                        Ok(())
                    } else {
                        Err(FleetError::DuplicateSession(SessionId(id)))
                    };
                let _ = reply.send(result);
            }
            ShardMsg::Feed { id, sample } => {
                let Some(pipeline) = sessions.get_mut(&id) else {
                    metrics.samples_dropped.fetch_add(1, Ordering::Relaxed);
                    continue;
                };
                match pipeline.process(&sample) {
                    Ok(_) => {
                        metrics.samples_processed.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {
                        // A bad sample (e.g. NaN from a faulty sensor) drops;
                        // the session itself stays healthy.
                        metrics.samples_dropped.fetch_add(1, Ordering::Relaxed);
                    }
                }
                let fresh = pipeline.drain_events();
                if !fresh.is_empty() {
                    for e in &fresh {
                        match e {
                            PipelineEvent::DriftDetected { .. } => {
                                metrics.drifts_flagged.fetch_add(1, Ordering::Relaxed);
                            }
                            PipelineEvent::Reconstructed { .. } => {
                                metrics
                                    .reconstructions_completed
                                    .fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    let mut log = events.lock().expect("events lock");
                    log.extend(fresh.into_iter().map(|e| (SessionId(id), e)));
                }
            }
            ShardMsg::Snapshot { id, reply } => {
                let result = match sessions.get(&id) {
                    Some(pipeline) => pipeline.to_bytes().map_err(FleetError::Core),
                    None => Err(FleetError::UnknownSession(SessionId(id))),
                };
                let _ = reply.send(result);
            }
            ShardMsg::Evict { id, reply } => {
                let result = match sessions.remove(&id) {
                    Some(pipeline) => {
                        metrics.sessions.fetch_sub(1, Ordering::Relaxed);
                        Ok(Box::new(pipeline))
                    }
                    None => Err(FleetError::UnknownSession(SessionId(id))),
                };
                let _ = reply.send(result);
            }
        }
    }
    let mut out: Vec<(SessionId, DriftPipeline)> = sessions
        .into_iter()
        .map(|(id, p)| (SessionId(id), p))
        .collect();
    out.sort_by_key(|(id, _)| *id);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdrift_core::DetectorConfig;
    use seqdrift_linalg::Rng;
    use seqdrift_oselm::{MultiInstanceModel, OsElmConfig};

    const DIM: usize = 4;

    fn calibrated_pipeline(seed: u64) -> DriftPipeline {
        let mut rng = Rng::seed_from(seed);
        let class0: Vec<Vec<Real>> = (0..80)
            .map(|_| {
                let mut x = vec![0.0; DIM];
                rng.fill_normal(&mut x, 0.2, 0.05);
                x
            })
            .collect();
        let class1: Vec<Vec<Real>> = (0..80)
            .map(|_| {
                let mut x = vec![0.0; DIM];
                rng.fill_normal(&mut x, 0.8, 0.05);
                x
            })
            .collect();
        let mut model =
            MultiInstanceModel::new(2, OsElmConfig::new(DIM, 3).with_seed(seed)).unwrap();
        model.init_train_class(0, &class0).unwrap();
        model.init_train_class(1, &class1).unwrap();
        let train: Vec<(usize, &[Real])> = class0
            .iter()
            .map(|x| (0usize, x.as_slice()))
            .chain(class1.iter().map(|x| (1usize, x.as_slice())))
            .collect();
        DriftPipeline::calibrate(model, DetectorConfig::new(2, DIM).with_window(16), &train)
            .unwrap()
    }

    fn sample(rng: &mut Rng, mean: Real) -> Vec<Real> {
        let mut x = vec![0.0; DIM];
        rng.fill_normal(&mut x, mean, 0.05);
        x
    }

    #[test]
    fn lifecycle_create_feed_snapshot_evict() {
        let fleet = FleetEngine::new(FleetConfig::new(2)).unwrap();
        fleet.create(SessionId(1), calibrated_pipeline(1)).unwrap();
        assert_eq!(fleet.session_count(), 1);

        let mut rng = Rng::seed_from(9);
        for _ in 0..25 {
            fleet
                .feed_blocking(SessionId(1), &sample(&mut rng, 0.2))
                .unwrap();
        }
        let blob = fleet.snapshot(SessionId(1)).unwrap();
        let restored = DriftPipeline::from_bytes(&blob).unwrap();
        assert_eq!(restored.samples_processed(), 25);

        let evicted = fleet.evict(SessionId(1)).unwrap();
        assert_eq!(evicted.samples_processed(), 25);
        assert_eq!(fleet.session_count(), 0);
        assert!(matches!(
            fleet.evict(SessionId(1)),
            Err(FleetError::UnknownSession(_))
        ));
    }

    #[test]
    fn snapshot_roundtrips_into_new_session() {
        let fleet = FleetEngine::new(FleetConfig::new(2)).unwrap();
        fleet.create(SessionId(0), calibrated_pipeline(2)).unwrap();
        let mut rng = Rng::seed_from(3);
        for _ in 0..10 {
            fleet
                .feed_blocking(SessionId(0), &sample(&mut rng, 0.2))
                .unwrap();
        }
        let blob = fleet.snapshot(SessionId(0)).unwrap();
        fleet.create_from_bytes(SessionId(7), &blob).unwrap();
        assert_eq!(fleet.session_count(), 2);
        let report = fleet.shutdown();
        assert_eq!(report.sessions.len(), 2);
        // The clone resumed from the original's counter.
        assert_eq!(report.sessions[0].1.samples_processed(), 10);
        assert_eq!(report.sessions[1].1.samples_processed(), 10);
    }

    #[test]
    fn duplicate_and_unknown_sessions_are_rejected() {
        let fleet = FleetEngine::new(FleetConfig::new(1)).unwrap();
        fleet.create(SessionId(4), calibrated_pipeline(4)).unwrap();
        assert!(matches!(
            fleet.create(SessionId(4), calibrated_pipeline(5)),
            Err(FleetError::DuplicateSession(_))
        ));
        assert_eq!(
            fleet.feed(SessionId(99), &[0.0; DIM]),
            FeedReply::UnknownSession
        );
        assert!(matches!(
            fleet.snapshot(SessionId(99)),
            Err(FleetError::UnknownSession(_))
        ));
    }

    #[test]
    fn full_queue_returns_busy_not_unbounded_growth() {
        // Capacity 2 on a single shard; the worker is kept busy by stuffing
        // the queue faster than it drains. We must observe at least one
        // Busy, and the queue depth must never exceed the bound.
        let fleet = FleetEngine::new(FleetConfig::new(1).with_queue_capacity(2)).unwrap();
        fleet.create(SessionId(0), calibrated_pipeline(6)).unwrap();
        let mut rng = Rng::seed_from(11);
        let mut busy = 0;
        let mut enqueued = 0;
        for _ in 0..5_000 {
            match fleet.feed(SessionId(0), &sample(&mut rng, 0.2)) {
                FeedReply::Enqueued => enqueued += 1,
                FeedReply::Busy => busy += 1,
                FeedReply::UnknownSession => unreachable!(),
            }
            assert!(fleet.metrics().queue_depths[0] <= 2);
        }
        assert!(busy > 0, "never saw backpressure ({enqueued} enqueued)");
        let m = fleet.metrics();
        assert_eq!(m.busy_rejections, busy as u64);
        let report = fleet.shutdown();
        assert_eq!(report.metrics.samples_processed, enqueued as u64);
    }

    #[test]
    fn metrics_and_events_track_drift() {
        let fleet = FleetEngine::new(FleetConfig::new(2)).unwrap();
        for dev in 0..4u64 {
            fleet
                .create(SessionId(dev), calibrated_pipeline(7))
                .unwrap();
        }
        let mut rng = Rng::seed_from(13);
        // Stable for everyone, then device 2 drifts hard.
        for _ in 0..60 {
            for dev in 0..4u64 {
                let x = sample(&mut rng, if dev % 2 == 0 { 0.2 } else { 0.8 });
                fleet.feed_blocking(SessionId(dev), &x).unwrap();
            }
        }
        for _ in 0..600 {
            fleet
                .feed_blocking(SessionId(2), &sample(&mut rng, 1.6))
                .unwrap();
        }
        let report = fleet.shutdown();
        assert!(report.metrics.drifts_flagged >= 1, "{:?}", report.metrics);
        assert!(
            report
                .events
                .iter()
                .any(|(id, e)| *id == SessionId(2)
                    && matches!(e, PipelineEvent::DriftDetected { .. })),
            "drift not attributed to the drifting device"
        );
        // Devices that stayed stable flagged nothing.
        assert!(report.events.iter().all(|(id, _)| *id == SessionId(2)));
        assert_eq!(report.metrics.samples_processed, 4 * 60 + 600);
    }

    #[test]
    fn shutdown_drains_pending_samples() {
        let fleet = FleetEngine::new(FleetConfig::new(1).with_queue_capacity(512)).unwrap();
        fleet.create(SessionId(0), calibrated_pipeline(8)).unwrap();
        let mut rng = Rng::seed_from(17);
        let mut fed = 0u64;
        for _ in 0..200 {
            if fleet.feed(SessionId(0), &sample(&mut rng, 0.2)) == FeedReply::Enqueued {
                fed += 1;
            }
        }
        // Shut down immediately: everything queued must still be applied.
        let report = fleet.shutdown();
        assert_eq!(report.metrics.samples_processed, fed);
        assert_eq!(report.sessions[0].1.samples_processed(), fed);
    }

    #[test]
    fn rejects_degenerate_configs() {
        assert!(FleetEngine::new(FleetConfig::new(0)).is_err());
        assert!(FleetEngine::new(FleetConfig::new(1).with_queue_capacity(0)).is_err());
    }

    #[test]
    fn bad_samples_drop_without_killing_the_session() {
        let fleet = FleetEngine::new(FleetConfig::new(1)).unwrap();
        fleet.create(SessionId(0), calibrated_pipeline(9)).unwrap();
        let mut rng = Rng::seed_from(19);
        fleet
            .feed_blocking(SessionId(0), &sample(&mut rng, 0.2))
            .unwrap();
        fleet
            .feed_blocking(SessionId(0), &[Real::NAN, 0.0, 0.0, 0.0])
            .unwrap();
        fleet
            .feed_blocking(SessionId(0), &sample(&mut rng, 0.2))
            .unwrap();
        let report = fleet.shutdown();
        assert_eq!(report.metrics.samples_processed, 2);
        assert_eq!(report.metrics.samples_dropped, 1);
        assert_eq!(report.sessions[0].1.samples_processed(), 2);
    }
}
