//! The fleet engine: sharded worker threads, bounded ingress queues,
//! session routing, supervised recovery, and deterministic shutdown.
//!
//! Every session is pinned to shard `session_id % workers`; a shard's queue
//! is FIFO, so each session sees its samples in exactly the order they were
//! fed no matter how many shards the engine runs — per-session behaviour is
//! reproducible across 1, 2 or 8 workers. Control operations (create,
//! snapshot, evict) travel through the same queue as samples, so a snapshot
//! observes every sample fed before it.
//!
//! Fault tolerance (see [`crate::supervisor`]): a panicking session is
//! caught, restored from its rolling checkpoint within a bounded restart
//! budget, or permanently quarantined; a dead worker thread is respawned
//! and its shard re-homed; `shutdown` never panics.

use crate::durability::{retry_loop, DurabilityHealth, DurabilityMonitor, LedgerOp};
use crate::fault::FaultInjector;
use crate::metrics::{FleetMetrics, MetricsSnapshot, QueueDepth, RejectReasons};
use crate::supervisor::{
    decide_recovery, mutex_lock, quarantine, read_lock, worker_loop, write_lock, CheckpointStore,
    FleetEvent, LostSession, MergeRejectReason, QuarantineReason, Recovery, SessionSlot,
    SessionStatus, SupervisionPolicy, WorkerCtx,
};
use seqdrift_core::{CoreError, DriftPipeline};
use seqdrift_linalg::Real;
use seqdrift_oselm::MultiInstanceModel;
use seqdrift_store::{RecoveryReport, ReputationEntry, Store, StoreConfig, StoreError, Vfs};
use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{channel, sync_channel, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Identifies one device stream inside the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "session-{}", self.0)
    }
}

/// Fleet-level failures.
#[derive(Debug)]
pub enum FleetError {
    /// The session id is not registered with the engine.
    UnknownSession(SessionId),
    /// A session with this id already exists (and is not quarantined).
    DuplicateSession(SessionId),
    /// The session is permanently quarantined; it accepts no operations
    /// until it is replaced via [`FleetEngine::create`].
    SessionQuarantined(SessionId),
    /// A blocking feed gave up after `FleetConfig::feed_timeout` of
    /// sustained backpressure. Carries the culprit session and its
    /// shard's queue depth at the deadline so callers (server BUSY
    /// replies, logs) can name what was stuck and how deep.
    Timeout {
        /// The session whose shard stayed full past the deadline.
        id: SessionId,
        /// Depth of that shard's ingress queue when the deadline fired.
        queue_depth: usize,
    },
    /// Bad engine configuration.
    InvalidConfig(&'static str),
    /// An error bubbled up from the pipeline (e.g. a mid-reconstruction
    /// snapshot refusal, or a corrupt restore blob).
    Core(CoreError),
    /// The durable state store failed (opening the state dir, or a
    /// resume-time read).
    Store(StoreError),
    /// The engine's workers are gone (shutdown raced the call).
    Disconnected,
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::UnknownSession(id) => write!(f, "unknown {id}"),
            FleetError::DuplicateSession(id) => write!(f, "{id} already exists"),
            FleetError::SessionQuarantined(id) => write!(f, "{id} is quarantined"),
            FleetError::Timeout { id, queue_depth } => write!(
                f,
                "feed to {id} timed out under backpressure (queue depth {queue_depth})"
            ),
            FleetError::InvalidConfig(msg) => write!(f, "invalid fleet config: {msg}"),
            FleetError::Core(e) => write!(f, "pipeline error: {e}"),
            FleetError::Store(e) => write!(f, "state store error: {e}"),
            FleetError::Disconnected => write!(f, "fleet workers disconnected"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<CoreError> for FleetError {
    fn from(e: CoreError) -> Self {
        FleetError::Core(e)
    }
}

impl From<StoreError> for FleetError {
    fn from(e: StoreError) -> Self {
        FleetError::Store(e)
    }
}

/// Reply of a non-blocking [`FleetEngine::feed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedReply {
    /// The sample was queued on the session's shard.
    Enqueued,
    /// The shard's bounded queue is full; the sample was NOT queued. The
    /// caller decides whether to retry, drop, or shed the device.
    Busy,
    /// No such session; the sample was NOT queued.
    UnknownSession,
    /// The session is permanently quarantined; the sample was NOT queued.
    Quarantined,
}

/// Federation (cooperative cross-session model merging) knobs.
///
/// The fleet's pipelines all descend from one reference model, so their
/// OS-ELM sufficient statistics compose analytically (Ito et al.,
/// arXiv 2002.12301). A federation round collects snapshots from healthy
/// sessions whose models have diverged from the current fleet baseline
/// (i.e. sessions that reconstructed after a drift), merges them in
/// closed form, and redistributes the merged model so lagging sessions
/// adapt before their own detector has to fire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FederationConfig {
    /// Fleet-wide processed-sample interval between automatic merge
    /// rounds (pollers call `Federator::maybe_round`; an explicit
    /// `run_round` ignores this).
    pub interval: u64,
    /// Minimum accepted contributions before a merge happens; rounds
    /// with fewer changed healthy sessions are skipped.
    pub min_contributors: usize,
    /// Maximum per-instance trained-sample lag (vs the freshest
    /// contributor) a contribution may have; anything staler is rejected
    /// for the round.
    pub staleness_bound: u64,
    /// Byzantine-robust two-pass merging: score each contributor's
    /// (U, c) statistics against the geometric-median robust centre and
    /// re-admit only those within [`FederationConfig::deviation_bound`].
    /// On outlier-free rounds the admitted set is everyone and the merge
    /// is bit-identical to the plain path, so this defaults to on.
    pub robust: bool,
    /// Deviation-score bound (normalized Frobenius distance from the
    /// robust centre; honest contributors cluster near 1) above which a
    /// contribution is rejected as an outlier.
    pub deviation_bound: Real,
    /// Multiplicative trust decay applied to a session's reputation on
    /// each round it scores as an outlier.
    pub trust_decay: Real,
    /// Fraction of the gap to full trust recovered on each clean round:
    /// `trust += (1 - trust) * trust_recovery`.
    pub trust_recovery: Real,
    /// Reputation floor: sessions whose trust sits below this are
    /// excluded from merging (still scored, so they can recover).
    pub trust_floor: Real,
}

impl Default for FederationConfig {
    fn default() -> Self {
        FederationConfig {
            interval: 2048,
            min_contributors: 1,
            staleness_bound: 100_000,
            robust: true,
            deviation_bound: 8.0,
            trust_decay: 0.5,
            trust_recovery: 0.25,
            trust_floor: 0.3,
        }
    }
}

impl FederationConfig {
    /// Overrides the automatic-round sample interval.
    pub fn with_interval(mut self, interval: u64) -> Self {
        self.interval = interval;
        self
    }

    /// Overrides the minimum accepted contributions per merge.
    pub fn with_min_contributors(mut self, min: usize) -> Self {
        self.min_contributors = min;
        self
    }

    /// Overrides the contributor staleness bound (in trained samples).
    pub fn with_staleness_bound(mut self, bound: u64) -> Self {
        self.staleness_bound = bound;
        self
    }

    /// Enables or disables Byzantine-robust two-pass merging.
    pub fn with_robust(mut self, robust: bool) -> Self {
        self.robust = robust;
        self
    }

    /// Overrides the robust deviation-score bound.
    pub fn with_deviation_bound(mut self, bound: Real) -> Self {
        self.deviation_bound = bound;
        self
    }

    /// Overrides the outlier-round trust decay factor.
    pub fn with_trust_decay(mut self, decay: Real) -> Self {
        self.trust_decay = decay;
        self
    }

    /// Overrides the clean-round trust recovery rate.
    pub fn with_trust_recovery(mut self, recovery: Real) -> Self {
        self.trust_recovery = recovery;
        self
    }

    /// Overrides the reputation trust floor.
    pub fn with_trust_floor(mut self, floor: Real) -> Self {
        self.trust_floor = floor;
        self
    }

    pub(crate) fn validate(&self) -> Result<(), FleetError> {
        if self.interval == 0 {
            return Err(FleetError::InvalidConfig(
                "federation interval must be positive",
            ));
        }
        if self.min_contributors == 0 {
            return Err(FleetError::InvalidConfig(
                "federation min_contributors must be positive",
            ));
        }
        if self.staleness_bound == 0 {
            return Err(FleetError::InvalidConfig(
                "federation staleness_bound must be positive",
            ));
        }
        if !(self.deviation_bound.is_finite() && self.deviation_bound > 1.0) {
            return Err(FleetError::InvalidConfig(
                "federation deviation_bound must be finite and above 1",
            ));
        }
        if !(self.trust_decay > 0.0 && self.trust_decay < 1.0) {
            return Err(FleetError::InvalidConfig(
                "federation trust_decay must be in (0, 1)",
            ));
        }
        if !(self.trust_recovery > 0.0 && self.trust_recovery <= 1.0) {
            return Err(FleetError::InvalidConfig(
                "federation trust_recovery must be in (0, 1]",
            ));
        }
        if !(self.trust_floor >= 0.0 && self.trust_floor < 1.0) {
            return Err(FleetError::InvalidConfig(
                "federation trust_floor must be in [0, 1)",
            ));
        }
        Ok(())
    }
}

/// Engine construction parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker threads (= shards). Each session is pinned to
    /// `session_id % workers`.
    pub workers: usize,
    /// Bound of each shard's ingress queue, in messages. When a shard's
    /// queue is full, `feed` returns [`FeedReply::Busy`].
    pub queue_capacity: usize,
    /// Rolling-checkpoint cadence: serialise each session's state every
    /// this many processed samples (plus once at create). A restored
    /// session loses at most this many samples.
    pub checkpoint_interval: u64,
    /// Restarts allowed per session inside one sliding window before it
    /// is permanently quarantined.
    pub max_restarts: u32,
    /// Width of the restart sliding window, in delivered samples.
    pub restart_window: u64,
    /// How long [`FleetEngine::feed_blocking`] tolerates sustained
    /// backpressure before returning [`FleetError::Timeout`].
    pub feed_timeout: Duration,
    /// Deterministic fault plan applied by the workers (tests and the
    /// CLI's `--inject-faults`); `None` in production.
    pub fault_injector: Option<Arc<FaultInjector>>,
    /// Root of the crash-safe durable state store. When set, every
    /// rolling checkpoint is also flushed to disk (atomic temp + fsync +
    /// rename), quarantine decisions persist across restarts, and
    /// [`FleetEngine::resume`] can re-home every surviving session after
    /// a crash or power loss. `None` runs memory-only.
    pub state_dir: Option<PathBuf>,
    /// Checkpoint generations kept on disk per session (minimum 2, so a
    /// torn newest write always leaves a fallback). Ignored without
    /// `state_dir`.
    pub state_keep_generations: usize,
    /// Filesystem the durable store writes through. `None` uses the real
    /// filesystem; storage-chaos tests inject a
    /// `seqdrift_store::FaultVfs` here. Ignored without `state_dir`.
    pub state_vfs: Option<Arc<dyn Vfs>>,
    /// Base delay of the degraded-durability retry loop's decorrelated-
    /// jitter backoff.
    pub flush_retry_base: Duration,
    /// Delay ceiling of the degraded-durability retry backoff.
    pub flush_retry_cap: Duration,
    /// Cooperative cross-session model merging. `None` (the default)
    /// disables federation entirely.
    pub federation: Option<FederationConfig>,
}

impl FleetConfig {
    /// A config with the given worker count and the defaults: 256-message
    /// queues, checkpoint every 64 samples, 3 restarts per 1024-sample
    /// window, 10-second blocking-feed timeout, no fault injection.
    pub fn new(workers: usize) -> Self {
        FleetConfig {
            workers,
            queue_capacity: 256,
            checkpoint_interval: 64,
            max_restarts: 3,
            restart_window: 1024,
            feed_timeout: Duration::from_secs(10),
            fault_injector: None,
            state_dir: None,
            state_keep_generations: 2,
            state_vfs: None,
            flush_retry_base: Duration::from_millis(50),
            flush_retry_cap: Duration::from_secs(2),
            federation: None,
        }
    }

    /// Overrides the per-shard queue bound.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Overrides the rolling-checkpoint cadence (in processed samples).
    pub fn with_checkpoint_interval(mut self, samples: u64) -> Self {
        self.checkpoint_interval = samples;
        self
    }

    /// Overrides the restart budget: at most `max_restarts` restores per
    /// `window` delivered samples, then permanent quarantine.
    pub fn with_restart_budget(mut self, max_restarts: u32, window: u64) -> Self {
        self.max_restarts = max_restarts;
        self.restart_window = window;
        self
    }

    /// Overrides the blocking-feed timeout.
    pub fn with_feed_timeout(mut self, timeout: Duration) -> Self {
        self.feed_timeout = timeout;
        self
    }

    /// Installs a deterministic fault plan (shared by every shard).
    pub fn with_fault_injector(mut self, injector: FaultInjector) -> Self {
        self.fault_injector = Some(Arc::new(injector));
        self
    }

    /// Enables the crash-safe durable state store rooted at `dir`.
    pub fn with_state_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.state_dir = Some(dir.into());
        self
    }

    /// Overrides how many checkpoint generations the durable store keeps
    /// per session (minimum 2).
    pub fn with_state_keep_generations(mut self, keep: usize) -> Self {
        self.state_keep_generations = keep;
        self
    }

    /// Routes every durable-store disk operation through `vfs` — the
    /// storage-chaos injection point (`seqdrift_store::FaultVfs`).
    pub fn with_state_vfs(mut self, vfs: Arc<dyn Vfs>) -> Self {
        self.state_vfs = Some(vfs);
        self
    }

    /// Overrides the degraded-durability retry backoff (base delay and
    /// ceiling of the decorrelated jitter).
    pub fn with_flush_retry(mut self, base: Duration, cap: Duration) -> Self {
        self.flush_retry_base = base;
        self.flush_retry_cap = cap;
        self
    }

    /// Enables cooperative cross-session model merging.
    pub fn with_federation(mut self, federation: FederationConfig) -> Self {
        self.federation = Some(federation);
        self
    }
}

/// What a worker can be asked to do. Control messages carry a reply channel
/// so callers observe completion; samples are fire-and-forget.
pub(crate) enum ShardMsg {
    Create {
        id: u64,
        pipeline: Box<DriftPipeline>,
        reply: Sender<Result<(), FleetError>>,
    },
    Feed {
        id: u64,
        sample: Vec<Real>,
    },
    Snapshot {
        id: u64,
        reply: Sender<Result<Vec<u8>, FleetError>>,
    },
    SamplesProcessed {
        id: u64,
        reply: Sender<Result<u64, FleetError>>,
    },
    InstallModel {
        id: u64,
        model: Box<MultiInstanceModel>,
        reply: Sender<Result<(), FleetError>>,
    },
    Evict {
        id: u64,
        reply: Sender<Result<Box<DriftPipeline>, FleetError>>,
    },
}

/// A shard's mutable link to its worker thread. Behind an `RwLock` so a
/// dead worker can be replaced while the engine is shared (`&self`).
struct ShardLink {
    /// `None` once shutdown has begun; dropping the sender is what tells
    /// the worker to drain and exit.
    tx: Option<SyncSender<ShardMsg>>,
    handle: Option<JoinHandle<Vec<(SessionId, DriftPipeline)>>>,
}

struct Shard {
    link: RwLock<ShardLink>,
    depth: Arc<QueueDepth>,
    /// Serialises respawn attempts racing from multiple caller threads.
    respawn: Mutex<()>,
}

/// Everything the engine hands back on [`FleetEngine::shutdown`].
#[derive(Debug)]
pub struct ShutdownReport {
    /// Final state of every surviving session, sorted by id.
    pub sessions: Vec<(SessionId, DriftPipeline)>,
    /// Sessions permanently quarantined during the run, sorted by id.
    pub quarantined: Vec<(SessionId, QuarantineReason)>,
    /// Sessions lost with a worker that died before shutdown could drain
    /// it, each with its last rolling checkpoint (restorable elsewhere).
    pub lost: Vec<LostSession>,
    /// Events that had not been drained before shutdown.
    pub events: Vec<FleetEvent>,
    /// Final aggregate counters.
    pub metrics: MetricsSnapshot,
}

/// The multi-tenant fleet engine. See the crate docs for the contract.
pub struct FleetEngine {
    shards: Vec<Shard>,
    /// Routing cache of registered sessions and their status; the
    /// per-shard session maps are authoritative for live pipeline state.
    /// Workers flip entries to `Quarantined`; the engine adds/removes.
    registry: Arc<RwLock<HashMap<u64, SessionStatus>>>,
    /// Rolling checkpoints + restart history (survives worker death).
    store: Arc<CheckpointStore>,
    /// Crash-safe on-disk store (survives process death); `None` when the
    /// engine runs memory-only.
    durable: Option<Arc<Store>>,
    /// Durability health machine paired with `durable`; `None` when the
    /// engine runs memory-only.
    durability: Option<Arc<DurabilityMonitor>>,
    /// The background flush-retry thread, joined on drop.
    retry_thread: Mutex<Option<JoinHandle<()>>>,
    metrics: Arc<FleetMetrics>,
    events: Arc<Mutex<Vec<FleetEvent>>>,
    cfg: FleetConfig,
}

impl FleetEngine {
    /// Spawns the worker pool.
    pub fn new(cfg: FleetConfig) -> Result<FleetEngine, FleetError> {
        if cfg.workers == 0 {
            return Err(FleetError::InvalidConfig("workers must be positive"));
        }
        if cfg.queue_capacity == 0 {
            return Err(FleetError::InvalidConfig("queue_capacity must be positive"));
        }
        if cfg.checkpoint_interval == 0 {
            return Err(FleetError::InvalidConfig(
                "checkpoint_interval must be positive",
            ));
        }
        if cfg.restart_window == 0 {
            return Err(FleetError::InvalidConfig("restart_window must be positive"));
        }
        if cfg.feed_timeout.is_zero() {
            return Err(FleetError::InvalidConfig("feed_timeout must be positive"));
        }
        if let Some(federation) = &cfg.federation {
            federation.validate()?;
        }
        if cfg.flush_retry_base.is_zero() {
            return Err(FleetError::InvalidConfig(
                "flush_retry_base must be positive",
            ));
        }
        // Opening the durable store runs its recovery scan: stale temps
        // are swept and torn frames discarded before any worker writes.
        let durable = match &cfg.state_dir {
            Some(dir) => {
                let store_cfg =
                    StoreConfig::default().with_keep_generations(cfg.state_keep_generations);
                let store = match &cfg.state_vfs {
                    Some(vfs) => Store::open_with_vfs(dir, store_cfg, Arc::clone(vfs))?,
                    None => Store::open_with(dir, store_cfg)?,
                };
                Some(Arc::new(store))
            }
            None => None,
        };
        let registry = HashMap::new();
        let mut engine = FleetEngine {
            shards: Vec::new(),
            registry: Arc::new(RwLock::new(registry)),
            store: Arc::new(CheckpointStore::default()),
            durable,
            durability: None,
            retry_thread: Mutex::new(None),
            metrics: Arc::new(FleetMetrics::default()),
            events: Arc::new(Mutex::new(Vec::new())),
            cfg,
        };
        // A durable fleet gets the health machine and its background
        // flush-retry thread.
        if let Some(durable) = &engine.durable {
            let monitor = Arc::new(DurabilityMonitor::new(
                Arc::clone(&engine.metrics),
                Arc::clone(&engine.events),
            ));
            let thread_monitor = Arc::clone(&monitor);
            let thread_store = Arc::clone(durable);
            let (base, cap) = (engine.cfg.flush_retry_base, engine.cfg.flush_retry_cap);
            let handle =
                std::thread::spawn(move || retry_loop(thread_monitor, thread_store, base, cap));
            engine.durability = Some(monitor);
            *mutex_lock(&engine.retry_thread) = Some(handle);
        }
        // Quarantine is a durability fact: sessions the previous process
        // quarantined stay quarantined in this one.
        if let Some(durable) = &engine.durable {
            let mut registry = write_lock(&engine.registry);
            for (id, entry) in durable.ledger() {
                registry.insert(
                    id,
                    SessionStatus::Quarantined(QuarantineReason::from_code(entry.reason_code)),
                );
            }
        }
        for _ in 0..engine.cfg.workers {
            let depth = Arc::new(QueueDepth::default());
            let (tx, handle) = engine.spawn_worker(Arc::clone(&depth), Vec::new());
            engine.shards.push(Shard {
                link: RwLock::new(ShardLink {
                    tx: Some(tx),
                    handle: Some(handle),
                }),
                depth,
                respawn: Mutex::new(()),
            });
        }
        Ok(engine)
    }

    /// Builds the shared context a worker thread needs.
    fn worker_ctx(&self, depth: Arc<QueueDepth>) -> WorkerCtx {
        WorkerCtx {
            depth,
            metrics: Arc::clone(&self.metrics),
            events: Arc::clone(&self.events),
            registry: Arc::clone(&self.registry),
            store: Arc::clone(&self.store),
            durable: self.durable.clone(),
            monitor: self.durability.clone(),
            injector: self.cfg.fault_injector.clone(),
            policy: SupervisionPolicy {
                checkpoint_interval: self.cfg.checkpoint_interval,
                max_restarts: self.cfg.max_restarts,
                restart_window: self.cfg.restart_window,
            },
        }
    }

    /// Spawns one worker thread seeded with `initial` sessions.
    fn spawn_worker(
        &self,
        depth: Arc<QueueDepth>,
        initial: Vec<(u64, SessionSlot)>,
    ) -> (
        SyncSender<ShardMsg>,
        JoinHandle<Vec<(SessionId, DriftPipeline)>>,
    ) {
        let (tx, rx) = sync_channel(self.cfg.queue_capacity);
        let ctx = self.worker_ctx(depth);
        let handle = std::thread::spawn(move || worker_loop(rx, initial, ctx));
        (tx, handle)
    }

    /// Number of shards / worker threads.
    pub fn workers(&self) -> usize {
        self.shards.len()
    }

    /// Current number of live (non-quarantined) sessions.
    pub fn session_count(&self) -> usize {
        read_lock(&self.registry)
            .values()
            .filter(|s| matches!(s, SessionStatus::Active))
            .count()
    }

    /// Sessions permanently quarantined so far, sorted by id.
    pub fn quarantined_sessions(&self) -> Vec<(SessionId, QuarantineReason)> {
        let mut out: Vec<(SessionId, QuarantineReason)> = read_lock(&self.registry)
            .iter()
            .filter_map(|(&id, status)| match status {
                SessionStatus::Quarantined(reason) => Some((SessionId(id), *reason)),
                SessionStatus::Active => None,
            })
            .collect();
        out.sort_by_key(|(id, _)| *id);
        out
    }

    /// The session's last rolling checkpoint, if one was taken. Available
    /// for quarantined sessions too — the graceful-degradation hand-off
    /// for callers that want to resurrect the stream elsewhere.
    pub fn last_checkpoint(&self, id: SessionId) -> Option<Vec<u8>> {
        self.store.blob_of(id.0)
    }

    fn shard_index(&self, id: SessionId) -> usize {
        (id.0 % self.shards.len() as u64) as usize
    }

    /// Current depth of the ingress queue of the shard `id` is pinned to.
    /// Point-in-time and advisory: the worker drains concurrently.
    pub fn queue_depth(&self, id: SessionId) -> usize {
        self.shards[self.shard_index(id)].depth.get()
    }

    /// Detects and replaces any dead worker threads, re-homing their
    /// shards from the checkpoint store. Returns how many workers were
    /// respawned. `feed`/`create` call this lazily on a disconnected
    /// shard; long-running hosts may also call it periodically.
    pub fn supervise(&self) -> usize {
        (0..self.shards.len())
            .filter(|&idx| self.respawn_shard(idx))
            .count()
    }

    /// Replaces shard `idx`'s worker if (and only if) it is dead: joins
    /// the corpse, restores every Active session of the shard from its
    /// rolling checkpoint (counting against its restart budget), spawns a
    /// fresh worker seeded with the recovered sessions, and logs a
    /// [`FleetEvent::WorkerRespawned`]. Samples queued on the dead
    /// channel are lost (counted as dropped). Returns whether a respawn
    /// happened.
    fn respawn_shard(&self, idx: usize) -> bool {
        let shard = &self.shards[idx];
        let _serial = mutex_lock(&shard.respawn);
        let mut link = write_lock(&shard.link);
        // Respawn only applies to a worker that died while its sender is
        // still installed; `shutdown` takes both before joining.
        let dead = link.tx.is_some() && link.handle.as_ref().is_some_and(|h| h.is_finished());
        if !dead {
            return false;
        }
        let survivors = match link.handle.take() {
            Some(handle) => handle.join().unwrap_or_default(),
            None => Vec::new(),
        };
        // Whatever was still queued on the dead channel is gone.
        let lost_in_queue = shard.depth.reset();
        self.metrics
            .samples_dropped
            .fetch_add(lost_in_queue as u64, Ordering::Relaxed);

        let ctx = self.worker_ctx(Arc::clone(&shard.depth));
        let mut initial: Vec<(u64, SessionSlot)> = Vec::new();
        let mut recovered = 0u32;
        let mut lost = 0u32;
        // A clean exit (only possible in pathological shutdown races)
        // hands back live pipelines; reuse them directly.
        for (id, pipeline) in survivors {
            initial.push((
                id.0,
                SessionSlot {
                    pipeline,
                    delivered: 0,
                    since_checkpoint: 0,
                },
            ));
        }
        let assigned: Vec<u64> = read_lock(&self.registry)
            .iter()
            .filter(|(&id, status)| {
                matches!(status, SessionStatus::Active)
                    && (id % self.shards.len() as u64) as usize == idx
                    && !initial.iter().any(|(s, _)| *s == id)
            })
            .map(|(&id, _)| id)
            .collect();
        for id in assigned {
            let delivered = self.store.lock().get(&id).map_or(0, |e| e.delivered);
            match decide_recovery(&ctx, id, delivered) {
                Recovery::Restore {
                    pipeline,
                    resumed_at_sample,
                    restarts_in_window,
                } => {
                    initial.push((
                        id,
                        SessionSlot {
                            pipeline: *pipeline,
                            delivered,
                            since_checkpoint: 0,
                        },
                    ));
                    self.metrics
                        .sessions_restored
                        .fetch_add(1, Ordering::Relaxed);
                    mutex_lock(&self.events).push(FleetEvent::SessionRestored {
                        id: SessionId(id),
                        resumed_at_sample,
                        restarts_in_window,
                    });
                    recovered += 1;
                }
                Recovery::Quarantine(reason) => {
                    quarantine(&ctx, id, reason);
                    lost += 1;
                }
            }
        }
        let (tx, handle) = self.spawn_worker(Arc::clone(&shard.depth), initial);
        link.tx = Some(tx);
        link.handle = Some(handle);
        self.metrics
            .workers_respawned
            .fetch_add(1, Ordering::Relaxed);
        mutex_lock(&self.events).push(FleetEvent::WorkerRespawned {
            shard: idx,
            recovered,
            lost,
        });
        true
    }

    /// Sends a control message, blocking if the shard queue is full
    /// (control operations are rare and must not be droppable). A dead
    /// worker triggers one respawn-and-retry before giving up.
    fn control_send(&self, id: SessionId, msg: ShardMsg) -> Result<(), FleetError> {
        let idx = self.shard_index(id);
        let shard = &self.shards[idx];
        let mut msg = msg;
        for attempt in 0..2 {
            {
                let link = read_lock(&shard.link);
                let Some(tx) = link.tx.as_ref() else {
                    return Err(FleetError::Disconnected);
                };
                shard.depth.inc();
                match tx.send(msg) {
                    Ok(()) => return Ok(()),
                    Err(std::sync::mpsc::SendError(m)) => {
                        shard.depth.dec();
                        msg = m;
                    }
                }
            }
            if attempt == 0 && !self.respawn_shard(idx) {
                return Err(FleetError::Disconnected);
            }
        }
        Err(FleetError::Disconnected)
    }

    /// Installs a calibrated pipeline as a new session. Blocks until the
    /// owning worker acknowledges, so a `feed` issued after `create`
    /// returns is guaranteed to find the session. Any events still queued
    /// inside the pipeline are discarded: the fleet log covers a session's
    /// life *inside* the fleet, and the caller had full access to
    /// `events()` before handing the pipeline over.
    ///
    /// A quarantined id may be re-created: the replacement starts fresh
    /// (new checkpoint lineage, new restart budget).
    pub fn create(&self, id: SessionId, pipeline: DriftPipeline) -> Result<(), FleetError> {
        {
            let mut registry = write_lock(&self.registry);
            match registry.get(&id.0) {
                Some(SessionStatus::Active) => return Err(FleetError::DuplicateSession(id)),
                Some(SessionStatus::Quarantined(_)) => {
                    registry.remove(&id.0);
                    self.store.remove(id.0);
                    // The replacement starts a fresh checkpoint lineage
                    // and clears the persisted quarantine verdict.
                    if let Some(durable) = &self.durable {
                        durable.remove_session(id.0)?;
                    }
                }
                None => {}
            }
        }
        let (reply, rx) = channel();
        self.control_send(
            id,
            ShardMsg::Create {
                id: id.0,
                pipeline: Box::new(pipeline),
                reply,
            },
        )?;
        rx.recv().map_err(|_| FleetError::Disconnected)??;
        write_lock(&self.registry).insert(id.0, SessionStatus::Active);
        Ok(())
    }

    /// Restores a session from a `seqdrift_core::persist` checkpoint blob —
    /// the reboot-recovery path, fleet edition.
    pub fn create_from_bytes(&self, id: SessionId, blob: &[u8]) -> Result<(), FleetError> {
        let pipeline = DriftPipeline::from_bytes(blob)?;
        self.create(id, pipeline)
    }

    fn try_feed(&self, id: SessionId, sample: &[Real], count_busy: bool) -> FeedReply {
        match read_lock(&self.registry).get(&id.0) {
            None => return FeedReply::UnknownSession,
            Some(SessionStatus::Quarantined(_)) => return FeedReply::Quarantined,
            Some(SessionStatus::Active) => {}
        }
        let idx = self.shard_index(id);
        let shard = &self.shards[idx];
        let mut msg = ShardMsg::Feed {
            id: id.0,
            sample: sample.to_vec(),
        };
        for attempt in 0..2 {
            {
                let link = read_lock(&shard.link);
                let Some(tx) = link.tx.as_ref() else {
                    return FeedReply::Busy;
                };
                shard.depth.inc();
                match tx.try_send(msg) {
                    Ok(()) => return FeedReply::Enqueued,
                    Err(TrySendError::Full(_)) => {
                        shard.depth.dec();
                        if count_busy {
                            self.metrics.busy_rejections.fetch_add(1, Ordering::Relaxed);
                        }
                        return FeedReply::Busy;
                    }
                    Err(TrySendError::Disconnected(m)) => {
                        shard.depth.dec();
                        msg = m;
                    }
                }
            }
            // The worker died: respawn it and retry the send once.
            if attempt == 0 && !self.respawn_shard(idx) {
                return FeedReply::Busy;
            }
        }
        FeedReply::Busy
    }

    /// Queues one sample for a session without blocking. A full shard queue
    /// returns [`FeedReply::Busy`] — the engine never buffers unboundedly;
    /// slow consumers surface as explicit backpressure.
    pub fn feed(&self, id: SessionId, sample: &[Real]) -> FeedReply {
        self.try_feed(id, sample, true)
    }

    /// Cooperative blocking feed: retries a `Busy` shard with exponential
    /// backoff (a few yields, then sleeps doubling up to ~1 ms) until the
    /// sample is queued or `FleetConfig::feed_timeout` elapses, at which
    /// point it returns [`FleetError::Timeout`]. Used by replay-style
    /// callers that prefer throttling over dropping; live ingest paths
    /// should call [`FleetEngine::feed`] and shed load instead. `Busy`
    /// spins here are not counted in `busy_rejections`.
    pub fn feed_blocking(&self, id: SessionId, sample: &[Real]) -> Result<(), FleetError> {
        let mut deadline: Option<Instant> = None;
        let mut spins: u32 = 0;
        loop {
            match self.try_feed(id, sample, false) {
                FeedReply::Enqueued => return Ok(()),
                FeedReply::UnknownSession => return Err(FleetError::UnknownSession(id)),
                FeedReply::Quarantined => return Err(FleetError::SessionQuarantined(id)),
                FeedReply::Busy => {
                    let now = Instant::now();
                    let at = *deadline.get_or_insert(now + self.cfg.feed_timeout);
                    if now >= at {
                        self.metrics.feed_timeouts.fetch_add(1, Ordering::Relaxed);
                        return Err(FleetError::Timeout {
                            id,
                            queue_depth: self.queue_depth(id),
                        });
                    }
                    if spins < 8 {
                        std::thread::yield_now();
                    } else {
                        // 1 µs doubling to a 1.024 ms ceiling.
                        let exp = (spins - 8).min(10);
                        std::thread::sleep(Duration::from_micros(1 << exp));
                    }
                    spins = spins.saturating_add(1);
                }
            }
        }
    }

    /// Re-checks the registry after a worker reported the session missing:
    /// the session may have been quarantined while the request was queued.
    fn refine_missing(&self, id: SessionId) -> FleetError {
        match read_lock(&self.registry).get(&id.0) {
            Some(SessionStatus::Quarantined(_)) => FleetError::SessionQuarantined(id),
            _ => FleetError::UnknownSession(id),
        }
    }

    /// Checkpoints a session through the `seqdrift_core::persist` wire
    /// format. The request travels the same FIFO as samples, so the blob
    /// reflects every sample fed before this call. Mid-reconstruction
    /// sessions refuse to checkpoint (the persist contract); the error
    /// comes back as [`FleetError::Core`].
    pub fn snapshot(&self, id: SessionId) -> Result<Vec<u8>, FleetError> {
        match read_lock(&self.registry).get(&id.0) {
            None => return Err(FleetError::UnknownSession(id)),
            Some(SessionStatus::Quarantined(_)) => return Err(FleetError::SessionQuarantined(id)),
            Some(SessionStatus::Active) => {}
        }
        let (reply, rx) = channel();
        self.control_send(id, ShardMsg::Snapshot { id: id.0, reply })?;
        match rx.recv().map_err(|_| FleetError::Disconnected)? {
            Err(FleetError::UnknownSession(_)) => Err(self.refine_missing(id)),
            other => other,
        }
    }

    /// The session's live applied-sample count
    /// (`DriftPipeline::samples_processed`). The request travels the same
    /// FIFO as samples, so the count reflects every sample fed before
    /// this call — this is the replay offset a reconnecting device should
    /// resume its stream from. Cheaper than [`FleetEngine::snapshot`] (no
    /// serialization) and available even when a mid-reconstruction
    /// session would refuse to checkpoint.
    pub fn samples_processed(&self, id: SessionId) -> Result<u64, FleetError> {
        match read_lock(&self.registry).get(&id.0) {
            None => return Err(FleetError::UnknownSession(id)),
            Some(SessionStatus::Quarantined(_)) => return Err(FleetError::SessionQuarantined(id)),
            Some(SessionStatus::Active) => {}
        }
        let (reply, rx) = channel();
        self.control_send(id, ShardMsg::SamplesProcessed { id: id.0, reply })?;
        match rx.recv().map_err(|_| FleetError::Disconnected)? {
            Err(FleetError::UnknownSession(_)) => Err(self.refine_missing(id)),
            other => other,
        }
    }

    /// [`FleetEngine::samples_processed`] with a deadline. The query
    /// travels the shard FIFO behind every queued sample, so against a
    /// stalled shard the unbounded variant would block its caller for the
    /// whole backlog — a reconnect storm after a network partition would
    /// pin one server thread per re-HELLO. This variant gives up with
    /// [`FleetError::Timeout`] (carrying the stalled queue's depth) once
    /// `timeout` elapses; the reply channel outlives the call, so a late
    /// answer is harmlessly dropped with it.
    pub fn samples_processed_within(
        &self,
        id: SessionId,
        timeout: Duration,
    ) -> Result<u64, FleetError> {
        match read_lock(&self.registry).get(&id.0) {
            None => return Err(FleetError::UnknownSession(id)),
            Some(SessionStatus::Quarantined(_)) => return Err(FleetError::SessionQuarantined(id)),
            Some(SessionStatus::Active) => {}
        }
        let (reply, rx) = channel();
        self.control_send(id, ShardMsg::SamplesProcessed { id: id.0, reply })?;
        match rx.recv_timeout(timeout) {
            Ok(Err(FleetError::UnknownSession(_))) => Err(self.refine_missing(id)),
            Ok(other) => other,
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                self.metrics.feed_timeouts.fetch_add(1, Ordering::Relaxed);
                Err(FleetError::Timeout {
                    id,
                    queue_depth: self.queue_depth(id),
                })
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => Err(FleetError::Disconnected),
        }
    }

    /// Installs a federated merged model into a session through the same
    /// FIFO as its samples, so the install lands at a well-defined point
    /// in the session's stream. Only the model is replaced — the
    /// session's detector state, counters and resume offsets are
    /// untouched. A mid-reconstruction session refuses the install
    /// (surfaced as [`FleetError::Core`]); callers skip it and retry next
    /// round. Counted in `MetricsSnapshot::redistributions` on success.
    pub fn install_model(
        &self,
        id: SessionId,
        model: MultiInstanceModel,
    ) -> Result<(), FleetError> {
        match read_lock(&self.registry).get(&id.0) {
            None => return Err(FleetError::UnknownSession(id)),
            Some(SessionStatus::Quarantined(_)) => return Err(FleetError::SessionQuarantined(id)),
            Some(SessionStatus::Active) => {}
        }
        let (reply, rx) = channel();
        self.control_send(
            id,
            ShardMsg::InstallModel {
                id: id.0,
                model: Box::new(model),
                reply,
            },
        )?;
        match rx.recv().map_err(|_| FleetError::Disconnected)? {
            Err(FleetError::UnknownSession(_)) => Err(self.refine_missing(id)),
            Ok(()) => {
                self.metrics.redistributions.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            other => other,
        }
    }

    /// Registered sessions and their lifecycle status, sorted by id.
    /// Federation uses this to enumerate candidates; quarantined entries
    /// are listed so the caller can count them as rejected contributors.
    pub fn session_statuses(&self) -> Vec<(SessionId, SessionStatus)> {
        let mut out: Vec<(SessionId, SessionStatus)> = read_lock(&self.registry)
            .iter()
            .map(|(&id, &status)| (SessionId(id), status))
            .collect();
        out.sort_by_key(|(id, _)| *id);
        out
    }

    /// The federation configuration, when merging is enabled.
    pub fn federation(&self) -> Option<&FederationConfig> {
        self.cfg.federation.as_ref()
    }

    /// Tallies one federation round into the fleet metrics:
    /// `accepted` and the per-reason reject breakdown always,
    /// `merge_rounds` only when the round actually produced a merged
    /// model.
    pub fn record_federation_round(&self, merged: bool, accepted: u64, rejects: RejectReasons) {
        self.metrics
            .contributions_accepted
            .fetch_add(accepted, Ordering::Relaxed);
        self.metrics
            .contributions_rejected
            .fetch_add(rejects.total(), Ordering::Relaxed);
        self.metrics
            .rejected_health
            .fetch_add(rejects.health, Ordering::Relaxed);
        self.metrics
            .rejected_staleness
            .fetch_add(rejects.staleness, Ordering::Relaxed);
        self.metrics
            .rejected_non_pd
            .fetch_add(rejects.non_pd, Ordering::Relaxed);
        self.metrics
            .rejected_deviation
            .fetch_add(rejects.deviation, Ordering::Relaxed);
        self.metrics
            .rejected_low_trust
            .fetch_add(rejects.low_trust, Ordering::Relaxed);
        if merged {
            self.metrics.merge_rounds.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a merge round rejected wholesale: bumps the metric and
    /// emits [`FleetEvent::MergeRoundRejected`] so operators see the
    /// round fail instead of it dissolving silently into the next
    /// interval.
    pub fn record_merge_round_rejected(&self, candidates: u64, reason: MergeRejectReason) {
        self.metrics
            .merge_rounds_rejected
            .fetch_add(1, Ordering::Relaxed);
        mutex_lock(&self.events).push(FleetEvent::MergeRoundRejected { candidates, reason });
    }

    /// Records a session excluded from merging for low reputation,
    /// emitting [`FleetEvent::SessionExcludedLowTrust`]. (The
    /// contribution itself is tallied under `rejected_low_trust` by
    /// [`FleetEngine::record_federation_round`].)
    pub fn record_low_trust_exclusion(&self, id: SessionId, trust: Real) {
        mutex_lock(&self.events).push(FleetEvent::SessionExcludedLowTrust { id, trust });
    }

    /// Persists a merged-model pipeline blob as a durable federated
    /// generation (`SQCK`-framed, atomic, generational). Returns the
    /// generation written, or `None` when the engine runs memory-only.
    /// Disk failure is absorbed into `durable_flush_failures` — exactly
    /// like session checkpoint flushes, federation never takes the fleet
    /// down with the disk.
    pub fn persist_federated(&self, blob: &[u8]) -> Option<u64> {
        let durable = self.durable.as_ref()?;
        if self
            .durability
            .as_ref()
            .is_some_and(|m| m.buffer_federated_if_degraded(blob))
        {
            // Degraded: the retry loop writes the newest buffered model
            // once the disk heals.
            return None;
        }
        match durable.put_federated(blob) {
            Ok(generation) => Some(generation),
            Err(_) => {
                self.metrics
                    .durable_flush_failures
                    .fetch_add(1, Ordering::Relaxed);
                if let Some(monitor) = &self.durability {
                    monitor.federated_failed(blob.to_vec());
                }
                None
            }
        }
    }

    /// Loads the newest durable federated merged-model blob, when the
    /// engine has a state dir and a generation survived. Resume path for
    /// the fleet-wide model after power loss.
    pub fn load_federated(&self) -> Result<Option<Vec<u8>>, FleetError> {
        let Some(durable) = &self.durable else {
            return Ok(None);
        };
        Ok(durable.load_federated()?.map(|(_, blob)| blob))
    }

    /// Persists the full federation reputation book through the reserved
    /// store manifest (atomic, generational — the quarantine-ledger
    /// path). Returns the generation written, or `None` when the engine
    /// runs memory-only or the book was buffered under degraded
    /// durability (the retry loop writes the newest buffered book once
    /// the disk heals).
    pub fn persist_reputations(&self, book: &BTreeMap<u64, ReputationEntry>) -> Option<u64> {
        let durable = self.durable.as_ref()?;
        if self
            .durability
            .as_ref()
            .is_some_and(|m| m.buffer_reputation_if_degraded(book))
        {
            return None;
        }
        match durable.put_reputations(book) {
            Ok(generation) => Some(generation),
            Err(_) => {
                self.metrics
                    .durable_flush_failures
                    .fetch_add(1, Ordering::Relaxed);
                if let Some(monitor) = &self.durability {
                    monitor.reputation_failed(book.clone());
                }
                None
            }
        }
    }

    /// The durable federation reputation book restored by the store's
    /// recovery scan (empty for memory-only engines or before the first
    /// persisted round).
    pub fn load_reputations(&self) -> BTreeMap<u64, ReputationEntry> {
        self.durable
            .as_ref()
            .map(|d| d.reputations())
            .unwrap_or_default()
    }

    /// Removes a session and returns its live pipeline (with any samples
    /// fed before the call already applied).
    pub fn evict(&self, id: SessionId) -> Result<DriftPipeline, FleetError> {
        match read_lock(&self.registry).get(&id.0) {
            None => return Err(FleetError::UnknownSession(id)),
            Some(SessionStatus::Quarantined(_)) => return Err(FleetError::SessionQuarantined(id)),
            Some(SessionStatus::Active) => {}
        }
        let (reply, rx) = channel();
        self.control_send(id, ShardMsg::Evict { id: id.0, reply })?;
        let pipeline = match rx.recv().map_err(|_| FleetError::Disconnected)? {
            Err(FleetError::UnknownSession(_)) => return Err(self.refine_missing(id)),
            other => other?,
        };
        write_lock(&self.registry).remove(&id.0);
        self.store.remove(id.0);
        // Best-effort: the caller already holds the live pipeline; a disk
        // hiccup here must not eat it. Leftover generations are harmless
        // (resume skips ids the caller doesn't re-create) and visible in
        // the failure counter.
        if let Some(durable) = &self.durable {
            if self
                .durability
                .as_ref()
                .is_some_and(|m| m.buffer_ledger_if_degraded(LedgerOp::Remove(id.0)))
            {
                // Degraded: the removal replays from the buffer in order.
            } else if durable.remove_session(id.0).is_err() {
                self.metrics
                    .durable_flush_failures
                    .fetch_add(1, Ordering::Relaxed);
                if let Some(monitor) = &self.durability {
                    monitor.ledger_failed(LedgerOp::Remove(id.0));
                }
            }
        }
        Ok(*pipeline)
    }

    /// Re-homes every session that survived in the durable state store:
    /// for each non-quarantined session directory, the newest checkpoint
    /// generation that frames and decodes is installed as a live session.
    /// Returns `(id, samples_processed)` for each resumed session, sorted
    /// by id — the caller replays its stream from that offset, losing at
    /// most one checkpoint interval to the crash. Sessions whose every
    /// generation was destroyed are skipped (worst case is losing one
    /// session's recent history, never the store). Requires
    /// `FleetConfig::state_dir`.
    pub fn resume(&self) -> Result<Vec<(SessionId, u64)>, FleetError> {
        let Some(durable) = &self.durable else {
            return Err(FleetError::InvalidConfig(
                "resume requires FleetConfig::state_dir",
            ));
        };
        let ledger = durable.ledger();
        let mut resumed = Vec::new();
        for id in durable.sessions() {
            if ledger.contains_key(&id) {
                continue; // stays quarantined
            }
            if matches!(
                read_lock(&self.registry).get(&id),
                Some(SessionStatus::Active)
            ) {
                continue; // already live in this engine
            }
            let Some((_, pipeline)) = durable.load_pipeline(id)? else {
                continue; // every generation torn: session lost, store fine
            };
            let samples = pipeline.samples_processed();
            self.create(SessionId(id), pipeline)?;
            resumed.push((SessionId(id), samples));
        }
        resumed.sort_by_key(|(id, _)| *id);
        Ok(resumed)
    }

    /// The fleet's current durability health. Memory-only fleets are
    /// always `Durable`; a durable fleet reports
    /// [`DurabilityHealth::DegradedDurability`] from the first failed
    /// flush until the background retry loop drains every buffered write.
    pub fn durability_health(&self) -> DurabilityHealth {
        self.durability
            .as_ref()
            .map_or(DurabilityHealth::Durable, |m| m.health())
    }

    /// What the durable store's open-time recovery scan found and
    /// repaired; `None` for a memory-only fleet.
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        self.durable.as_ref().map(|d| d.recovery_report())
    }

    /// Point-in-time aggregate counters plus per-shard queue depths.
    pub fn metrics(&self) -> MetricsSnapshot {
        let depths = self.shards.iter().map(|s| s.depth.get()).collect();
        self.metrics.snapshot(depths)
    }

    /// Removes and returns the event log accumulated since the last drain.
    /// The global interleaving across sessions follows worker completion
    /// order; each session's own subsequence is in stream order.
    pub fn drain_events(&self) -> Vec<FleetEvent> {
        std::mem::take(&mut *mutex_lock(&self.events))
    }

    /// Drains every queue, joins the workers, and returns each surviving
    /// session's final state (sorted by id), the quarantined and lost
    /// sessions, the undrained events, and the final counters. All samples
    /// fed before this call are applied before the report is built.
    ///
    /// Never panics: a worker that died with its sessions is joined
    /// defensively and its Active sessions are reported in
    /// [`ShutdownReport::lost`] with their last checkpoints.
    pub fn shutdown(self) -> ShutdownReport {
        // Drop every sender first so all workers drain concurrently...
        for shard in &self.shards {
            write_lock(&shard.link).tx = None;
        }
        // ...then join and merge their final session maps. A panicked
        // worker (join error) loses its sessions; report, don't unwind.
        let mut sessions = Vec::new();
        let mut lost: Vec<LostSession> = Vec::new();
        for (idx, shard) in self.shards.iter().enumerate() {
            let handle = write_lock(&shard.link).handle.take();
            let Some(handle) = handle else { continue };
            match handle.join() {
                Ok(survivors) => sessions.extend(survivors),
                Err(_) => {
                    let assigned: Vec<u64> = read_lock(&self.registry)
                        .iter()
                        .filter(|(&id, status)| {
                            matches!(status, SessionStatus::Active)
                                && (id % self.shards.len() as u64) as usize == idx
                        })
                        .map(|(&id, _)| id)
                        .collect();
                    for id in assigned {
                        lost.push(LostSession {
                            id: SessionId(id),
                            checkpoint: self.store.blob_of(id),
                        });
                    }
                }
            }
        }
        sessions.sort_by_key(|(id, _)| *id);
        lost.sort_by_key(|s| s.id);
        // Graceful shutdown is the one moment every survivor's full state
        // is in hand: flush it durably so a drain leaves zero tail loss.
        // Crash paths (plain drop, power cut) still lose at most one
        // checkpoint interval. Mid-reconstruction pipelines refuse
        // to_bytes by contract — their last rolling checkpoint is already
        // on disk, so skip them without counting a flush failure.
        if let Some(durable) = &self.durable {
            // Give anything buffered during a degraded episode one final
            // drain before the survivor flush (whose newer generations
            // would shadow it anyway — this matters for sessions that are
            // NOT survivors, e.g. quarantine verdicts).
            if let Some(monitor) = &self.durability {
                monitor.try_drain(durable);
            }
            for (id, pipeline) in &sessions {
                let Ok(blob) = pipeline.to_bytes() else {
                    continue;
                };
                if durable.put(id.0, &blob).is_ok() {
                    self.metrics.durable_flushes.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.metrics
                        .durable_flush_failures
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let quarantined = self.quarantined_sessions();
        let events = std::mem::take(&mut *mutex_lock(&self.events));
        let metrics = self
            .metrics
            .snapshot(self.shards.iter().map(|s| s.depth.get()).collect());
        ShutdownReport {
            sessions,
            quarantined,
            lost,
            events,
            metrics,
        }
    }
}

impl Drop for FleetEngine {
    /// Dropping without [`FleetEngine::shutdown`] still drains and joins the
    /// workers (final states are discarded; join errors are swallowed).
    fn drop(&mut self) {
        for shard in &self.shards {
            write_lock(&shard.link).tx = None;
        }
        for shard in &self.shards {
            let handle = write_lock(&shard.link).handle.take();
            if let Some(handle) = handle {
                let _ = handle.join();
            }
        }
        // Stop the flush-retry thread (it makes one final best-effort
        // drain on the way out) and join it.
        if let Some(monitor) = &self.durability {
            monitor.stop();
        }
        if let Some(handle) = mutex_lock(&self.retry_thread).take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::Fault;
    use seqdrift_core::pipeline::PipelineEvent;
    use seqdrift_core::DetectorConfig;
    use seqdrift_linalg::Rng;
    use seqdrift_oselm::{MultiInstanceModel, OsElmConfig};

    const DIM: usize = 4;

    fn calibrated_pipeline(seed: u64) -> DriftPipeline {
        let mut rng = Rng::seed_from(seed);
        let class0: Vec<Vec<Real>> = (0..80)
            .map(|_| {
                let mut x = vec![0.0; DIM];
                rng.fill_normal(&mut x, 0.2, 0.05);
                x
            })
            .collect();
        let class1: Vec<Vec<Real>> = (0..80)
            .map(|_| {
                let mut x = vec![0.0; DIM];
                rng.fill_normal(&mut x, 0.8, 0.05);
                x
            })
            .collect();
        let mut model =
            MultiInstanceModel::new(2, OsElmConfig::new(DIM, 3).with_seed(seed)).unwrap();
        model.init_train_class(0, &class0).unwrap();
        model.init_train_class(1, &class1).unwrap();
        let train: Vec<(usize, &[Real])> = class0
            .iter()
            .map(|x| (0usize, x.as_slice()))
            .chain(class1.iter().map(|x| (1usize, x.as_slice())))
            .collect();
        DriftPipeline::calibrate(model, DetectorConfig::new(2, DIM).with_window(16), &train)
            .unwrap()
    }

    fn sample(rng: &mut Rng, mean: Real) -> Vec<Real> {
        let mut x = vec![0.0; DIM];
        rng.fill_normal(&mut x, mean, 0.05);
        x
    }

    #[test]
    fn lifecycle_create_feed_snapshot_evict() {
        let fleet = FleetEngine::new(FleetConfig::new(2)).unwrap();
        fleet.create(SessionId(1), calibrated_pipeline(1)).unwrap();
        assert_eq!(fleet.session_count(), 1);

        let mut rng = Rng::seed_from(9);
        for _ in 0..25 {
            fleet
                .feed_blocking(SessionId(1), &sample(&mut rng, 0.2))
                .unwrap();
        }
        let blob = fleet.snapshot(SessionId(1)).unwrap();
        let restored = DriftPipeline::from_bytes(&blob).unwrap();
        assert_eq!(restored.samples_processed(), 25);

        let evicted = fleet.evict(SessionId(1)).unwrap();
        assert_eq!(evicted.samples_processed(), 25);
        assert_eq!(fleet.session_count(), 0);
        assert!(matches!(
            fleet.evict(SessionId(1)),
            Err(FleetError::UnknownSession(_))
        ));
    }

    #[test]
    fn snapshot_roundtrips_into_new_session() {
        let fleet = FleetEngine::new(FleetConfig::new(2)).unwrap();
        fleet.create(SessionId(0), calibrated_pipeline(2)).unwrap();
        let mut rng = Rng::seed_from(3);
        for _ in 0..10 {
            fleet
                .feed_blocking(SessionId(0), &sample(&mut rng, 0.2))
                .unwrap();
        }
        let blob = fleet.snapshot(SessionId(0)).unwrap();
        fleet.create_from_bytes(SessionId(7), &blob).unwrap();
        assert_eq!(fleet.session_count(), 2);
        let report = fleet.shutdown();
        assert_eq!(report.sessions.len(), 2);
        // The clone resumed from the original's counter.
        assert_eq!(report.sessions[0].1.samples_processed(), 10);
        assert_eq!(report.sessions[1].1.samples_processed(), 10);
    }

    #[test]
    fn duplicate_and_unknown_sessions_are_rejected() {
        let fleet = FleetEngine::new(FleetConfig::new(1)).unwrap();
        fleet.create(SessionId(4), calibrated_pipeline(4)).unwrap();
        assert!(matches!(
            fleet.create(SessionId(4), calibrated_pipeline(5)),
            Err(FleetError::DuplicateSession(_))
        ));
        assert_eq!(
            fleet.feed(SessionId(99), &[0.0; DIM]),
            FeedReply::UnknownSession
        );
        assert!(matches!(
            fleet.snapshot(SessionId(99)),
            Err(FleetError::UnknownSession(_))
        ));
    }

    #[test]
    fn full_queue_returns_busy_not_unbounded_growth() {
        // Capacity 2 on a single shard; the worker is kept busy by stuffing
        // the queue faster than it drains. We must observe at least one
        // Busy, and the queue depth must never exceed the bound.
        let fleet = FleetEngine::new(FleetConfig::new(1).with_queue_capacity(2)).unwrap();
        fleet.create(SessionId(0), calibrated_pipeline(6)).unwrap();
        let mut rng = Rng::seed_from(11);
        let mut busy = 0;
        let mut enqueued = 0;
        for _ in 0..5_000 {
            match fleet.feed(SessionId(0), &sample(&mut rng, 0.2)) {
                FeedReply::Enqueued => enqueued += 1,
                FeedReply::Busy => busy += 1,
                FeedReply::UnknownSession | FeedReply::Quarantined => unreachable!(),
            }
            assert!(fleet.metrics().queue_depths[0] <= 2);
        }
        assert!(busy > 0, "never saw backpressure ({enqueued} enqueued)");
        let m = fleet.metrics();
        assert_eq!(m.busy_rejections, busy as u64);
        let report = fleet.shutdown();
        assert_eq!(report.metrics.samples_processed, enqueued as u64);
    }

    #[test]
    fn metrics_and_events_track_drift() {
        let fleet = FleetEngine::new(FleetConfig::new(2)).unwrap();
        for dev in 0..4u64 {
            fleet
                .create(SessionId(dev), calibrated_pipeline(7))
                .unwrap();
        }
        let mut rng = Rng::seed_from(13);
        // Stable for everyone, then device 2 drifts hard.
        for _ in 0..60 {
            for dev in 0..4u64 {
                let x = sample(&mut rng, if dev % 2 == 0 { 0.2 } else { 0.8 });
                fleet.feed_blocking(SessionId(dev), &x).unwrap();
            }
        }
        for _ in 0..600 {
            fleet
                .feed_blocking(SessionId(2), &sample(&mut rng, 1.6))
                .unwrap();
        }
        let report = fleet.shutdown();
        assert!(report.metrics.drifts_flagged >= 1, "{:?}", report.metrics);
        assert!(
            report.events.iter().any(|e| matches!(
                e,
                FleetEvent::Pipeline {
                    id: SessionId(2),
                    event: PipelineEvent::DriftDetected { .. }
                }
            )),
            "drift not attributed to the drifting device"
        );
        // Devices that stayed stable flagged nothing.
        assert!(report.events.iter().all(|e| matches!(
            e,
            FleetEvent::Pipeline {
                id: SessionId(2),
                ..
            }
        )));
        assert_eq!(report.metrics.samples_processed, 4 * 60 + 600);
    }

    #[test]
    fn shutdown_drains_pending_samples() {
        let fleet = FleetEngine::new(FleetConfig::new(1).with_queue_capacity(512)).unwrap();
        fleet.create(SessionId(0), calibrated_pipeline(8)).unwrap();
        let mut rng = Rng::seed_from(17);
        let mut fed = 0u64;
        for _ in 0..200 {
            if fleet.feed(SessionId(0), &sample(&mut rng, 0.2)) == FeedReply::Enqueued {
                fed += 1;
            }
        }
        // Shut down immediately: everything queued must still be applied.
        let report = fleet.shutdown();
        assert_eq!(report.metrics.samples_processed, fed);
        assert_eq!(report.sessions[0].1.samples_processed(), fed);
    }

    #[test]
    fn rejects_degenerate_configs() {
        assert!(FleetEngine::new(FleetConfig::new(0)).is_err());
        assert!(FleetEngine::new(FleetConfig::new(1).with_queue_capacity(0)).is_err());
        assert!(FleetEngine::new(FleetConfig::new(1).with_checkpoint_interval(0)).is_err());
        assert!(FleetEngine::new(FleetConfig::new(1).with_restart_budget(3, 0)).is_err());
        assert!(FleetEngine::new(FleetConfig::new(1).with_feed_timeout(Duration::ZERO)).is_err());
    }

    #[test]
    fn bad_samples_drop_without_killing_the_session() {
        let fleet = FleetEngine::new(FleetConfig::new(1)).unwrap();
        fleet.create(SessionId(0), calibrated_pipeline(9)).unwrap();
        let mut rng = Rng::seed_from(19);
        fleet
            .feed_blocking(SessionId(0), &sample(&mut rng, 0.2))
            .unwrap();
        fleet
            .feed_blocking(SessionId(0), &[Real::NAN, 0.0, 0.0, 0.0])
            .unwrap();
        fleet
            .feed_blocking(SessionId(0), &sample(&mut rng, 0.2))
            .unwrap();
        let report = fleet.shutdown();
        assert_eq!(report.metrics.samples_processed, 2);
        assert_eq!(report.metrics.samples_dropped, 1);
        assert_eq!(report.sessions[0].1.samples_processed(), 2);
    }

    #[test]
    fn feed_blocking_times_out_under_sustained_backpressure() {
        // A 100 ms stall per sample against a 30 ms budget: once the
        // 1-deep queue fills behind the stalled worker, the deadline must
        // fire instead of spinning forever.
        let injector = FaultInjector::new(vec![Fault::SlowSession {
            session: 0,
            every: 1,
            micros: 100_000,
        }]);
        let fleet = FleetEngine::new(
            FleetConfig::new(1)
                .with_queue_capacity(1)
                .with_feed_timeout(Duration::from_millis(30))
                .with_fault_injector(injector),
        )
        .unwrap();
        fleet.create(SessionId(0), calibrated_pipeline(10)).unwrap();
        let mut rng = Rng::seed_from(21);
        let started = Instant::now();
        let mut timed_out = false;
        for _ in 0..100 {
            match fleet.feed_blocking(SessionId(0), &sample(&mut rng, 0.2)) {
                Ok(()) => {}
                Err(FleetError::Timeout { id, queue_depth }) => {
                    assert_eq!(id, SessionId(0));
                    // The shard queue (capacity 1) was full at the deadline.
                    assert!(queue_depth >= 1, "timeout should report a backed-up queue");
                    timed_out = true;
                    break;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
            if started.elapsed() > Duration::from_secs(20) {
                break;
            }
        }
        assert!(timed_out, "never hit the blocking-feed timeout");
        assert!(fleet.metrics().feed_timeouts >= 1);
    }

    #[test]
    fn quarantined_id_can_be_recreated() {
        // Panic before any post-create sample: budget allows a restore,
        // so force exhaustion with a zero-restart budget instead.
        let injector = FaultInjector::new(vec![Fault::PanicOnSample { session: 0, nth: 5 }]);
        let fleet = FleetEngine::new(
            FleetConfig::new(1)
                .with_restart_budget(0, 1024)
                .with_fault_injector(injector),
        )
        .unwrap();
        fleet.create(SessionId(0), calibrated_pipeline(11)).unwrap();
        let mut rng = Rng::seed_from(23);
        for _ in 0..10 {
            let x = sample(&mut rng, 0.2);
            match fleet.feed_blocking(SessionId(0), &x) {
                Ok(()) | Err(FleetError::SessionQuarantined(_)) => {}
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        // Wait for the worker to drain and quarantine.
        let deadline = Instant::now() + Duration::from_secs(10);
        while fleet.quarantined_sessions().is_empty() && Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(
            fleet.quarantined_sessions(),
            vec![(SessionId(0), QuarantineReason::RestartBudgetExhausted)]
        );
        assert_eq!(
            fleet.feed(SessionId(0), &[0.2; DIM]),
            FeedReply::Quarantined
        );
        assert!(matches!(
            fleet.snapshot(SessionId(0)),
            Err(FleetError::SessionQuarantined(_))
        ));
        // The last checkpoint stays retrievable for graceful degradation.
        assert!(fleet.last_checkpoint(SessionId(0)).is_some());
        // And the id can be replaced with a fresh session.
        fleet.create(SessionId(0), calibrated_pipeline(12)).unwrap();
        assert_eq!(fleet.session_count(), 1);
        fleet
            .feed_blocking(SessionId(0), &sample(&mut rng, 0.2))
            .unwrap();
        let report = fleet.shutdown();
        assert_eq!(report.sessions.len(), 1);
        assert_eq!(report.sessions[0].1.samples_processed(), 1);
    }
}
