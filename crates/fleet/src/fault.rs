//! Deterministic seeded fault injection for the fleet's recovery paths.
//!
//! Every failure mode the supervision layer handles — a panicking session,
//! a dying worker thread, NaN sensor bursts, corrupted checkpoint bytes,
//! pathologically slow sessions — can be triggered on purpose, at an exact
//! (session, delivery-index) coordinate, so recovery is exercised
//! *reproducibly* in tests and from `seqdrift fleet --inject-faults SEED`.
//!
//! Determinism model: a plan is either written out explicitly
//! ([`FaultInjector::new`]) or derived from a seed through the workspace's
//! own xoshiro generator ([`FaultInjector::from_seed`]). Decisions at
//! runtime are pure functions of the plan and the per-session delivery
//! counter; no randomness is drawn while the fleet runs. One-shot faults
//! (panics, worker kills) fire at most once even if a recovery rolls the
//! delivery counter back past their trigger point.

use seqdrift_linalg::{Real, Rng};
use std::sync::atomic::{AtomicBool, Ordering};

/// One planned failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Panic inside the session's pipeline step when the session's
    /// `nth` delivered sample (0-based) arrives. Caught by the shard's
    /// supervision wrapper; exercises checkpoint restore.
    PanicOnSample {
        /// Victim session id.
        session: u64,
        /// 0-based delivery index that triggers the panic.
        nth: u64,
    },
    /// Panic *outside* the supervision wrapper, killing the whole worker
    /// thread. Exercises dead-worker detection and shard re-homing.
    KillWorkerOnSample {
        /// Victim session id (the kill takes its whole shard down).
        session: u64,
        /// 0-based delivery index that triggers the kill.
        nth: u64,
    },
    /// Overwrite every feature with NaN for `len` consecutive deliveries
    /// starting at `start` — a faulty sensor burst. The pipeline must
    /// reject each sample without losing the session.
    NanBurst {
        /// Victim session id.
        session: u64,
        /// First affected delivery index.
        start: u64,
        /// Number of consecutive poisoned samples.
        len: u64,
    },
    /// Flip a byte in every checkpoint blob the session writes, starting
    /// with its `from_nth` snapshot (0-based). A later restore attempt
    /// must fail cleanly into permanent quarantine.
    CorruptCheckpoint {
        /// Victim session id.
        session: u64,
        /// First corrupted snapshot ordinal.
        from_nth: u64,
    },
    /// Sleep `micros` before every `every`-th delivery of the session —
    /// an artificially slow consumer that builds real backpressure.
    SlowSession {
        /// Victim session id.
        session: u64,
        /// Period in deliveries (every `every`-th sample sleeps).
        every: u64,
        /// Sleep duration per affected sample, in microseconds.
        micros: u64,
    },
}

/// A fault plus its fired-once latch (for the one-shot kinds).
#[derive(Debug)]
struct Armed {
    fault: Fault,
    fired: AtomicBool,
}

impl Armed {
    /// Latches the fault as fired; returns whether this call won the race.
    fn fire_once(&self) -> bool {
        !self.fired.swap(true, Ordering::Relaxed)
    }
}

/// A deterministic fault plan shared by every shard of one engine.
#[derive(Debug)]
pub struct FaultInjector {
    faults: Vec<Armed>,
}

impl FaultInjector {
    /// Builds an injector from an explicit plan (the test-suite entry
    /// point: every coordinate is spelled out).
    pub fn new(plan: Vec<Fault>) -> Self {
        FaultInjector {
            faults: plan
                .into_iter()
                .map(|fault| Armed {
                    fault,
                    fired: AtomicBool::new(false),
                })
                .collect(),
        }
    }

    /// Derives a mixed plan from a seed: one mid-stream panic, one NaN
    /// burst, one corrupt-checkpoint victim and one slow session, spread
    /// over `sessions` session ids (the CLI entry point).
    pub fn from_seed(seed: u64, sessions: u64) -> Self {
        let mut rng = Rng::seed_from(seed);
        let sessions = sessions.max(1);
        let plan = vec![
            Fault::PanicOnSample {
                session: rng.below(sessions),
                nth: 40 + rng.below(160),
            },
            Fault::NanBurst {
                session: rng.below(sessions),
                start: 20 + rng.below(100),
                len: 1 + rng.below(8),
            },
            Fault::CorruptCheckpoint {
                session: rng.below(sessions),
                from_nth: rng.below(3),
            },
            Fault::SlowSession {
                session: rng.below(sessions),
                every: 16 + rng.below(48),
                micros: 100 + rng.below(400),
            },
        ];
        FaultInjector::new(plan)
    }

    /// The planned faults, in plan order.
    pub fn plan(&self) -> Vec<Fault> {
        self.faults.iter().map(|a| a.fault).collect()
    }

    /// Human-readable plan summary (one fault per line), printed by the
    /// CLI so a seeded run documents what it injected.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        for a in &self.faults {
            let line = match a.fault {
                Fault::PanicOnSample { session, nth } => {
                    format!("panic session {session} at its delivery {nth}")
                }
                Fault::KillWorkerOnSample { session, nth } => {
                    format!("kill session {session}'s worker at its delivery {nth}")
                }
                Fault::NanBurst {
                    session,
                    start,
                    len,
                } => format!(
                    "NaN burst on session {session}: deliveries {start}..{}",
                    start + len
                ),
                Fault::CorruptCheckpoint { session, from_nth } => {
                    format!("corrupt session {session}'s checkpoints from snapshot {from_nth}")
                }
                Fault::SlowSession {
                    session,
                    every,
                    micros,
                } => format!("slow session {session}: +{micros}us every {every} deliveries"),
            };
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Whether this delivery must take the whole worker down (checked
    /// *outside* the supervision wrapper).
    pub(crate) fn should_kill_worker(&self, session: u64, delivered: u64) -> bool {
        self.faults.iter().any(|a| {
            matches!(
                a.fault,
                Fault::KillWorkerOnSample { session: s, nth }
                    if s == session && nth == delivered
            ) && a.fire_once()
        })
    }

    /// Applies sample-level faults for this delivery: may sleep (slow
    /// session), overwrite the sample with NaN (sensor burst), or panic
    /// (the supervised failure path).
    pub(crate) fn before_process(&self, session: u64, delivered: u64, sample: &mut [Real]) {
        for a in &self.faults {
            match a.fault {
                Fault::SlowSession {
                    session: s,
                    every,
                    micros,
                } if s == session && every > 0 && delivered.is_multiple_of(every) => {
                    std::thread::sleep(std::time::Duration::from_micros(micros));
                }
                Fault::NanBurst {
                    session: s,
                    start,
                    len,
                } if s == session
                    && delivered >= start
                    && delivered < start.saturating_add(len) =>
                {
                    for v in sample.iter_mut() {
                        *v = Real::NAN;
                    }
                }
                Fault::PanicOnSample { session: s, nth }
                    if s == session && nth == delivered && a.fire_once() =>
                {
                    panic!("injected fault: session {session} panics at delivery {delivered}");
                }
                _ => {}
            }
        }
    }

    /// Corrupts a checkpoint blob in place when the plan targets this
    /// session's `nth` snapshot. Returns whether bytes were flipped.
    pub(crate) fn corrupt_checkpoint(&self, session: u64, nth: u64, blob: &mut [u8]) -> bool {
        let targeted = self.faults.iter().any(|a| {
            matches!(
                a.fault,
                Fault::CorruptCheckpoint { session: s, from_nth }
                    if s == session && nth >= from_nth
            )
        });
        if targeted {
            // Flip a byte past the header so the damage hits payload, not
            // magic (payload damage is the harder case for the decoder).
            if let Some(b) = blob.get_mut(blob.len() / 2) {
                *b ^= 0xA5;
            }
        }
        targeted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_reproducible() {
        let a = FaultInjector::from_seed(42, 16);
        let b = FaultInjector::from_seed(42, 16);
        assert_eq!(a.plan(), b.plan());
        let c = FaultInjector::from_seed(43, 16);
        assert_ne!(a.plan(), c.plan());
    }

    #[test]
    fn panic_fault_fires_exactly_once() {
        let inj = FaultInjector::new(vec![Fault::PanicOnSample { session: 3, nth: 5 }]);
        let mut x = vec![0.5; 4];
        inj.before_process(3, 4, &mut x); // miss
        let hit = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            inj.before_process(3, 5, &mut x)
        }));
        assert!(hit.is_err());
        // Re-delivery of the same index (post-restore rollback) must not
        // re-fire.
        inj.before_process(3, 5, &mut x);
    }

    #[test]
    fn nan_burst_covers_its_range_only() {
        let inj = FaultInjector::new(vec![Fault::NanBurst {
            session: 1,
            start: 10,
            len: 2,
        }]);
        let mut x = vec![0.5; 3];
        inj.before_process(1, 9, &mut x);
        assert!(x.iter().all(|v| v.is_finite()));
        inj.before_process(1, 10, &mut x);
        assert!(x.iter().all(|v| v.is_nan()));
        x = vec![0.5; 3];
        inj.before_process(1, 11, &mut x);
        assert!(x.iter().all(|v| v.is_nan()));
        x = vec![0.5; 3];
        inj.before_process(1, 12, &mut x);
        assert!(x.iter().all(|v| v.is_finite()));
        // Other sessions untouched.
        x = vec![0.5; 3];
        inj.before_process(2, 10, &mut x);
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn checkpoint_corruption_targets_from_nth() {
        let inj = FaultInjector::new(vec![Fault::CorruptCheckpoint {
            session: 7,
            from_nth: 1,
        }]);
        let clean = vec![1u8; 32];
        let mut blob = clean.clone();
        assert!(!inj.corrupt_checkpoint(7, 0, &mut blob));
        assert_eq!(blob, clean);
        assert!(inj.corrupt_checkpoint(7, 1, &mut blob));
        assert_ne!(blob, clean);
        let mut other = clean.clone();
        assert!(!inj.corrupt_checkpoint(8, 1, &mut other));
        assert_eq!(other, clean);
    }

    #[test]
    fn kill_worker_is_one_shot() {
        let inj = FaultInjector::new(vec![Fault::KillWorkerOnSample { session: 2, nth: 3 }]);
        assert!(!inj.should_kill_worker(2, 2));
        assert!(inj.should_kill_worker(2, 3));
        assert!(!inj.should_kill_worker(2, 3));
    }

    #[test]
    fn describe_mentions_every_fault() {
        let inj = FaultInjector::from_seed(7, 8);
        let text = inj.describe();
        assert_eq!(text.lines().count(), inj.plan().len());
    }
}
