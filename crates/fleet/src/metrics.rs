//! Lock-light fleet-wide aggregation.
//!
//! Workers bump plain atomic counters on their hot path; readers take a
//! consistent-enough snapshot without stopping the world. Only the event
//! log (rare: drifts, reconstructions, supervision lifecycle) takes a
//! mutex.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Shared atomic counters. Internal; read through [`MetricsSnapshot`].
#[derive(Debug, Default)]
pub(crate) struct FleetMetrics {
    /// Samples fully processed by workers (not merely enqueued).
    pub samples_processed: AtomicU64,
    /// Drift detections flagged across all sessions.
    pub drifts_flagged: AtomicU64,
    /// Reconstructions completed across all sessions.
    pub reconstructions_completed: AtomicU64,
    /// Feeds rejected with `Busy` (queue full at the time of the call).
    pub busy_rejections: AtomicU64,
    /// Samples dropped by workers: fed to a session that no longer (or
    /// never) existed on the shard, rejected by the pipeline (e.g.
    /// non-finite input), or stranded on a dead worker's queue.
    pub samples_dropped: AtomicU64,
    /// Live session count.
    pub sessions: AtomicU64,
    /// Session pipeline-step panics caught by the supervision wrapper.
    pub panics_caught: AtomicU64,
    /// Sessions restored from a rolling checkpoint after a panic or a
    /// worker death.
    pub sessions_restored: AtomicU64,
    /// Sessions permanently quarantined.
    pub sessions_quarantined: AtomicU64,
    /// Dead worker threads detected and replaced.
    pub workers_respawned: AtomicU64,
    /// Checkpoint blobs deliberately damaged by the fault injector.
    pub checkpoints_corrupted: AtomicU64,
    /// Blocking feeds that gave up after `FleetConfig::feed_timeout`.
    pub feed_timeouts: AtomicU64,
    /// Pipelines that left `Healthy` (guard rejection/repair or a rolled-
    /// back model update).
    pub sessions_degraded: AtomicU64,
    /// Degraded pipelines that returned to `Healthy`.
    pub sessions_recovered: AtomicU64,
    /// Samples repaired (clamped/imputed) by pipeline guards and processed.
    pub samples_sanitized: AtomicU64,
    /// Checkpoints flushed to the durable state store.
    pub durable_flushes: AtomicU64,
    /// Durable-store writes (checkpoint or quarantine ledger) that failed;
    /// the fleet keeps running memory-only when the disk misbehaves.
    pub durable_flush_failures: AtomicU64,
    /// Transitions into degraded durability (first flush failure of an
    /// episode).
    pub durability_degraded: AtomicU64,
    /// Transitions back to durable (every buffered write drained).
    pub durability_recovered: AtomicU64,
    /// Background re-attempts of buffered durable writes.
    pub durable_flush_retries: AtomicU64,
    /// Durable writes buffered in memory while degraded instead of
    /// hitting the failing disk.
    pub durable_flushes_buffered: AtomicU64,
    /// Federation merge rounds that produced (and installed) a merged
    /// model.
    pub merge_rounds: AtomicU64,
    /// Per-session contributions accepted into a federated merge.
    pub contributions_accepted: AtomicU64,
    /// Contributions rejected by health gating (quarantined or degraded
    /// contributor, or stale beyond the staleness bound). Total across
    /// every reason; the per-reason split follows.
    pub contributions_rejected: AtomicU64,
    /// Contributions rejected because the contributor's pipeline was
    /// quarantined, degraded, or its snapshot undecodable.
    pub rejected_health: AtomicU64,
    /// Contributions rejected for staleness beyond the staleness bound.
    pub rejected_staleness: AtomicU64,
    /// Contributions whose statistics were non-finite / non-positive-
    /// definite (the merge validation path).
    pub rejected_non_pd: AtomicU64,
    /// Contributions scored outside the robust deviation bound by the
    /// two-pass merge (statistically plausible but wrong — the poisoning
    /// signature).
    pub rejected_deviation: AtomicU64,
    /// Contributions excluded because the session's reputation sat below
    /// the trust floor at round time.
    pub rejected_low_trust: AtomicU64,
    /// Merge rounds rejected wholesale (too few contributors survived
    /// gating, or merge validation failed); the baseline stayed put.
    pub merge_rounds_rejected: AtomicU64,
    /// Merged-model installs delivered to sessions through the shard
    /// FIFOs.
    pub redistributions: AtomicU64,
}

/// Per-reason breakdown of federation contribution rejections, bumped
/// alongside the `contributions_rejected` total so operators can tell
/// poisoning (deviation/low-trust) from flakiness (health/staleness).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RejectReasons {
    /// Quarantined/degraded contributor or undecodable snapshot.
    pub health: u64,
    /// Stale beyond the staleness bound.
    pub staleness: u64,
    /// Non-finite or non-positive-definite statistics.
    pub non_pd: u64,
    /// Outside the robust deviation bound.
    pub deviation: u64,
    /// Below the reputation trust floor.
    pub low_trust: u64,
}

impl RejectReasons {
    /// Sum across every reason.
    pub fn total(&self) -> u64 {
        self.health + self.staleness + self.non_pd + self.deviation + self.low_trust
    }
}

/// Per-shard ingress-queue depth, incremented on enqueue and decremented
/// when the worker pops a message.
#[derive(Debug, Default)]
pub(crate) struct QueueDepth(AtomicUsize);

impl QueueDepth {
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    pub fn get(&self) -> usize {
        self.0.load(Ordering::Relaxed)
    }

    /// Zeroes the depth (the queue's messages died with its worker) and
    /// returns how many messages were stranded.
    pub fn reset(&self) -> usize {
        self.0.swap(0, Ordering::Relaxed)
    }
}

/// A point-in-time copy of the fleet's aggregate counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Samples fully processed by workers.
    pub samples_processed: u64,
    /// Drift detections flagged across all sessions.
    pub drifts_flagged: u64,
    /// Reconstructions completed across all sessions.
    pub reconstructions_completed: u64,
    /// Feeds rejected with `Busy`.
    pub busy_rejections: u64,
    /// Samples dropped (unknown session, pipeline rejection, or stranded
    /// on a dead worker's queue).
    pub samples_dropped: u64,
    /// Live session count.
    pub sessions: u64,
    /// Session panics caught by the supervision wrapper.
    pub panics_caught: u64,
    /// Sessions restored from a rolling checkpoint.
    pub sessions_restored: u64,
    /// Sessions permanently quarantined.
    pub sessions_quarantined: u64,
    /// Dead worker threads detected and replaced.
    pub workers_respawned: u64,
    /// Checkpoint blobs damaged by the fault injector.
    pub checkpoints_corrupted: u64,
    /// Blocking feeds that timed out under sustained backpressure.
    pub feed_timeouts: u64,
    /// Pipelines that left `Healthy` (degraded-episode starts).
    pub sessions_degraded: u64,
    /// Degraded pipelines that returned to `Healthy`.
    pub sessions_recovered: u64,
    /// Samples repaired by pipeline guards and processed.
    pub samples_sanitized: u64,
    /// Checkpoints flushed to the durable state store.
    pub durable_flushes: u64,
    /// Durable-store writes that failed (fleet degraded to memory-only).
    pub durable_flush_failures: u64,
    /// Transitions into degraded durability.
    pub durability_degraded: u64,
    /// Transitions back to durable.
    pub durability_recovered: u64,
    /// Background re-attempts of buffered durable writes.
    pub durable_flush_retries: u64,
    /// Durable writes buffered in memory while degraded.
    pub durable_flushes_buffered: u64,
    /// Federation merge rounds that produced a merged model.
    pub merge_rounds: u64,
    /// Contributions accepted into federated merges.
    pub contributions_accepted: u64,
    /// Contributions rejected by federation gating (all reasons).
    pub contributions_rejected: u64,
    /// Rejections: quarantined/degraded contributor or bad snapshot.
    pub rejected_health: u64,
    /// Rejections: stale beyond the staleness bound.
    pub rejected_staleness: u64,
    /// Rejections: non-finite / non-positive-definite statistics.
    pub rejected_non_pd: u64,
    /// Rejections: outside the robust deviation bound.
    pub rejected_deviation: u64,
    /// Rejections: below the reputation trust floor.
    pub rejected_low_trust: u64,
    /// Merge rounds rejected wholesale (baseline left untouched).
    pub merge_rounds_rejected: u64,
    /// Merged-model installs delivered to sessions.
    pub redistributions: u64,
    /// Ingress-queue depth per shard at snapshot time.
    pub queue_depths: Vec<usize>,
}

impl FleetMetrics {
    pub fn snapshot(&self, queue_depths: Vec<usize>) -> MetricsSnapshot {
        MetricsSnapshot {
            samples_processed: self.samples_processed.load(Ordering::Relaxed),
            drifts_flagged: self.drifts_flagged.load(Ordering::Relaxed),
            reconstructions_completed: self.reconstructions_completed.load(Ordering::Relaxed),
            busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
            samples_dropped: self.samples_dropped.load(Ordering::Relaxed),
            sessions: self.sessions.load(Ordering::Relaxed),
            panics_caught: self.panics_caught.load(Ordering::Relaxed),
            sessions_restored: self.sessions_restored.load(Ordering::Relaxed),
            sessions_quarantined: self.sessions_quarantined.load(Ordering::Relaxed),
            workers_respawned: self.workers_respawned.load(Ordering::Relaxed),
            checkpoints_corrupted: self.checkpoints_corrupted.load(Ordering::Relaxed),
            feed_timeouts: self.feed_timeouts.load(Ordering::Relaxed),
            sessions_degraded: self.sessions_degraded.load(Ordering::Relaxed),
            sessions_recovered: self.sessions_recovered.load(Ordering::Relaxed),
            samples_sanitized: self.samples_sanitized.load(Ordering::Relaxed),
            durable_flushes: self.durable_flushes.load(Ordering::Relaxed),
            durable_flush_failures: self.durable_flush_failures.load(Ordering::Relaxed),
            durability_degraded: self.durability_degraded.load(Ordering::Relaxed),
            durability_recovered: self.durability_recovered.load(Ordering::Relaxed),
            durable_flush_retries: self.durable_flush_retries.load(Ordering::Relaxed),
            durable_flushes_buffered: self.durable_flushes_buffered.load(Ordering::Relaxed),
            merge_rounds: self.merge_rounds.load(Ordering::Relaxed),
            contributions_accepted: self.contributions_accepted.load(Ordering::Relaxed),
            contributions_rejected: self.contributions_rejected.load(Ordering::Relaxed),
            rejected_health: self.rejected_health.load(Ordering::Relaxed),
            rejected_staleness: self.rejected_staleness.load(Ordering::Relaxed),
            rejected_non_pd: self.rejected_non_pd.load(Ordering::Relaxed),
            rejected_deviation: self.rejected_deviation.load(Ordering::Relaxed),
            rejected_low_trust: self.rejected_low_trust.load(Ordering::Relaxed),
            merge_rounds_rejected: self.merge_rounds_rejected.load(Ordering::Relaxed),
            redistributions: self.redistributions.load(Ordering::Relaxed),
            queue_depths,
        }
    }
}
