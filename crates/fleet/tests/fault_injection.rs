//! Fault-injection e2e: every recovery path of the supervision layer,
//! exercised deterministically through the seeded `FaultInjector`.
//!
//! The headline acceptance scenario: with 1 of 64 sessions panicking
//! mid-stream, the other 63 sessions' drift-event sequences and final
//! serialised states are bit-identical to a fault-free run, the victim
//! auto-restores from its rolling checkpoint, and `shutdown()` returns
//! without panicking.

use seqdrift_core::pipeline::PipelineEvent;
use seqdrift_core::{DetectorConfig, DriftPipeline};
use seqdrift_fleet::{
    Fault, FaultInjector, FeedReply, FleetConfig, FleetEngine, FleetError, FleetEvent,
    QuarantineReason, SessionId,
};
use seqdrift_linalg::{Real, Rng};
use seqdrift_oselm::{MultiInstanceModel, OsElmConfig};
use std::collections::BTreeMap;

const DIM: usize = 4;

fn sample(rng: &mut Rng, mean: Real) -> Vec<Real> {
    let mut x = vec![0.0; DIM];
    rng.fill_normal(&mut x, mean, 0.05);
    x
}

/// One calibrated single-class checkpoint cloned into every session.
fn checkpoint() -> Vec<u8> {
    let mut rng = Rng::seed_from(555);
    let train: Vec<Vec<Real>> = (0..100).map(|_| sample(&mut rng, 0.3)).collect();
    let mut model = MultiInstanceModel::new(1, OsElmConfig::new(DIM, 3).with_seed(4)).unwrap();
    model.init_train_class(0, &train).unwrap();
    let pairs: Vec<(usize, &[Real])> = train.iter().map(|x| (0, x.as_slice())).collect();
    DriftPipeline::calibrate(model, DetectorConfig::new(1, DIM).with_window(15), &pairs)
        .unwrap()
        .to_bytes()
        .unwrap()
}

/// Per-device streams, a pure function of the device id: every fourth
/// device drifts at a staggered onset, the rest stay stable.
fn device_streams(devices: u64, samples: usize) -> Vec<Vec<Vec<Real>>> {
    (0..devices)
        .map(|dev| {
            let mut rng = Rng::seed_from(3_000 + dev);
            let onset = 60 + 2 * dev as usize;
            (0..samples)
                .map(|t| {
                    let mean = if dev % 4 == 0 && t >= onset {
                        0.85
                    } else {
                        0.3
                    };
                    sample(&mut rng, mean)
                })
                .collect()
        })
        .collect()
}

/// Per-session outcome of a replay: ordered pipeline events + final blob.
type SessionOutcomes = BTreeMap<u64, (Vec<PipelineEvent>, Vec<u8>)>;

/// Runs the full replay and returns per-session (pipeline events, final
/// state blob) plus the shutdown report. Quarantined sessions are skipped
/// for the rest of the replay, mirroring a real ingest loop.
fn run(
    cfg: FleetConfig,
    blob: &[u8],
    streams: &[Vec<Vec<Real>>],
) -> (SessionOutcomes, seqdrift_fleet::ShutdownReport) {
    let fleet = FleetEngine::new(cfg).unwrap();
    for dev in 0..streams.len() as u64 {
        fleet.create_from_bytes(SessionId(dev), blob).unwrap();
    }
    let samples = streams[0].len();
    for t in 0..samples {
        for (dev, stream) in streams.iter().enumerate() {
            match fleet.feed_blocking(SessionId(dev as u64), &stream[t]) {
                Ok(()) | Err(FleetError::SessionQuarantined(_)) => {}
                Err(other) => panic!("feed failed: {other}"),
            }
        }
    }
    let report = fleet.shutdown();
    let mut out = SessionOutcomes::new();
    for (id, pipeline) in &report.sessions {
        out.insert(id.0, (Vec::new(), pipeline.to_bytes().unwrap()));
    }
    for fleet_event in &report.events {
        if let FleetEvent::Pipeline { id, event } = fleet_event {
            if let Some(entry) = out.get_mut(&id.0) {
                entry.0.push(*event);
            }
        }
    }
    (out, report)
}

/// The ISSUE acceptance scenario, seed-derived victim and panic point.
#[test]
fn one_panicking_session_of_64_leaves_the_other_63_bit_identical() {
    // Long enough that every drifting device finishes its 200-sample
    // reconstruction before shutdown, so all sessions serialise cleanly.
    const DEVICES: u64 = 64;
    const SAMPLES: usize = 480;
    let mut seed_rng = Rng::seed_from(0xFA17);
    // Seed-derived victim, pinned to a *stable* device (dev % 4 != 0) so
    // its rolling checkpoints are never suspended by a reconstruction and
    // the restore-point bound below is tight.
    let victim = 1 + 4 * seed_rng.below(16);
    let nth = 80 + seed_rng.below(80); // mid-stream, past the first checkpoints

    let blob = checkpoint();
    let streams = device_streams(DEVICES, SAMPLES);

    let base_cfg = FleetConfig::new(4).with_checkpoint_interval(32);
    let (clean, clean_report) = run(base_cfg.clone(), &blob, &streams);

    let injector = FaultInjector::new(vec![Fault::PanicOnSample {
        session: victim,
        nth,
    }]);
    let (faulted, faulted_report) = run(base_cfg.with_fault_injector(injector), &blob, &streams);

    // The workload itself must be non-trivial: the clean run detects drift.
    assert!(clean_report.metrics.drifts_flagged >= 4);

    // All 64 sessions survive in both runs (the victim was restored, not
    // quarantined), and shutdown returned normally to get us here.
    assert_eq!(clean.len(), DEVICES as usize);
    assert_eq!(faulted.len(), DEVICES as usize);
    assert!(faulted_report.quarantined.is_empty());
    assert!(faulted_report.lost.is_empty());

    // Blast-radius one: every non-victim session's event sequence and
    // final serialised state are bit-identical across the two runs.
    for dev in 0..DEVICES {
        if dev == victim {
            continue;
        }
        let (clean_events, clean_state) = &clean[&dev];
        let (faulted_events, faulted_state) = &faulted[&dev];
        assert_eq!(
            clean_events, faulted_events,
            "device {dev}: events disturbed by device {victim}'s panic"
        );
        assert_eq!(
            clean_state, faulted_state,
            "device {dev}: state disturbed by device {victim}'s panic"
        );
    }

    // The victim panicked exactly once and was restored from a checkpoint.
    let m = &faulted_report.metrics;
    assert_eq!(m.panics_caught, 1);
    assert_eq!(m.sessions_restored, 1);
    assert_eq!(m.sessions_quarantined, 0);
    assert!(faulted_report.events.iter().any(|e| matches!(
        e,
        FleetEvent::SessionPanicked { id, at_delivery } if id.0 == victim && *at_delivery == nth
    )));
    let resumed_at = faulted_report.events.iter().find_map(|e| match e {
        FleetEvent::SessionRestored {
            id,
            resumed_at_sample,
            ..
        } if id.0 == victim => Some(*resumed_at_sample),
        _ => None,
    });
    let resumed_at = resumed_at.expect("victim was not restored");
    // The rolling checkpoint it resumed from trails the panic by at most
    // one checkpoint interval.
    assert!(
        resumed_at <= nth && nth - resumed_at <= 32,
        "resumed at {resumed_at}, panic at {nth}"
    );
    // And the victim kept processing after the restore: it ends with more
    // samples than the restore point.
    let victim_state = DriftPipeline::from_bytes(&faulted[&victim].1).unwrap();
    assert!(victim_state.samples_processed() > resumed_at);
}

/// After a checkpoint restore the session keeps *detecting*: a drift whose
/// onset lies beyond the panic point is still flagged.
#[test]
fn restored_session_still_detects_drift() {
    let blob = checkpoint();
    // One device, drifting at t=150; panic at delivery 100 with
    // checkpoints every 25 samples.
    let streams: Vec<Vec<Vec<Real>>> = vec![{
        let mut rng = Rng::seed_from(777);
        (0..400)
            .map(|t| sample(&mut rng, if t >= 150 { 0.9 } else { 0.3 }))
            .collect()
    }];
    let injector = FaultInjector::new(vec![Fault::PanicOnSample {
        session: 0,
        nth: 100,
    }]);
    let cfg = FleetConfig::new(1)
        .with_checkpoint_interval(25)
        .with_fault_injector(injector);
    let (sessions, report) = run(cfg, &blob, &streams);

    assert_eq!(report.metrics.sessions_restored, 1);
    let (events, _) = &sessions[&0];
    let drift_at = events.iter().find_map(|e| match e {
        PipelineEvent::DriftDetected { index, .. } => Some(*index),
        _ => None,
    });
    let drift_at = drift_at.expect("restored session never flagged the post-restore drift");
    // The detection happened on samples processed after the restore.
    assert!(
        drift_at > 100,
        "drift flagged at {drift_at}, before the panic point"
    );
}

/// Exhausting the restart budget permanently quarantines the session —
/// and only that session; a co-sharded neighbour is untouched.
#[test]
fn restart_budget_exhaustion_quarantines_permanently() {
    let blob = checkpoint();
    let mut rng = Rng::seed_from(888);
    let streams: Vec<Vec<Vec<Real>>> = (0..2)
        .map(|_| (0..200).map(|_| sample(&mut rng, 0.3)).collect())
        .collect();
    // Budget of one restart; the second panic inside the window must
    // quarantine. Both sessions share the single shard.
    let injector = FaultInjector::new(vec![
        Fault::PanicOnSample {
            session: 0,
            nth: 40,
        },
        Fault::PanicOnSample {
            session: 0,
            nth: 90,
        },
    ]);
    let cfg = FleetConfig::new(1)
        .with_checkpoint_interval(16)
        .with_restart_budget(1, 1_000)
        .with_fault_injector(injector);

    let fleet = FleetEngine::new(cfg).unwrap();
    for dev in 0..2u64 {
        fleet.create_from_bytes(SessionId(dev), &blob).unwrap();
    }
    #[allow(clippy::needless_range_loop)] // lock-step feed across sessions
    for t in 0..200 {
        for dev in 0..2u64 {
            match fleet.feed_blocking(SessionId(dev), &streams[dev as usize][t]) {
                Ok(()) => {}
                Err(FleetError::SessionQuarantined(id)) => {
                    assert_eq!(id.0, 0, "wrong session quarantined");
                }
                Err(other) => panic!("feed failed: {other}"),
            }
        }
    }
    // Feeds enqueue until the *worker* reaches the second panic and flips
    // the quarantine flag, so the loop above may finish before the flag is
    // set (the queue holds every remaining sample). Wait for the
    // quarantine to land rather than racing the worker.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while fleet.metrics().sessions_quarantined == 0 && std::time::Instant::now() < deadline {
        std::thread::yield_now();
    }
    assert_eq!(
        fleet.metrics().sessions_quarantined,
        1,
        "restart-budget exhaustion never quarantined the victim"
    );
    // Non-blocking feeds agree.
    assert_eq!(
        fleet.feed(SessionId(0), &[0.3; DIM]),
        FeedReply::Quarantined
    );
    // The last checkpoint survives quarantine for graceful degradation:
    // the caller can resurrect the stream elsewhere.
    let salvage = fleet.last_checkpoint(SessionId(0)).expect("no checkpoint");
    assert!(DriftPipeline::from_bytes(&salvage).is_ok());

    let report = fleet.shutdown();
    assert_eq!(report.metrics.panics_caught, 2);
    assert_eq!(report.metrics.sessions_restored, 1);
    assert_eq!(report.metrics.sessions_quarantined, 1);
    assert_eq!(
        report.quarantined,
        vec![(SessionId(0), QuarantineReason::RestartBudgetExhausted)]
    );
    // Only the neighbour survives, having processed its whole stream.
    assert_eq!(report.sessions.len(), 1);
    assert_eq!(report.sessions[0].0, SessionId(1));
    assert_eq!(report.sessions[0].1.samples_processed(), 200);
}

/// A corrupted checkpoint fails the restore cleanly: the session is
/// quarantined with `CorruptCheckpoint`, nothing panics.
#[test]
fn corrupt_checkpoint_fails_restore_into_quarantine() {
    let blob = checkpoint();
    let mut rng = Rng::seed_from(999);
    let streams: Vec<Vec<Vec<Real>>> = vec![(0..150).map(|_| sample(&mut rng, 0.3)).collect()];
    let injector = FaultInjector::new(vec![
        Fault::CorruptCheckpoint {
            session: 0,
            from_nth: 0,
        },
        Fault::PanicOnSample {
            session: 0,
            nth: 60,
        },
    ]);
    let cfg = FleetConfig::new(1)
        .with_checkpoint_interval(20)
        .with_fault_injector(injector);
    let (sessions, report) = run(cfg, &blob, &streams);

    assert!(sessions.is_empty(), "corrupt-restore session survived");
    assert!(report.metrics.checkpoints_corrupted >= 1);
    assert_eq!(report.metrics.sessions_restored, 0);
    assert_eq!(
        report.quarantined,
        vec![(SessionId(0), QuarantineReason::CorruptCheckpoint)]
    );
}

/// A worker-fatal panic kills the whole shard; the engine detects the dead
/// worker on the next send, respawns it, and re-homes every session of the
/// shard from its rolling checkpoint.
#[test]
fn killed_worker_is_respawned_and_its_shard_rehomed() {
    const DEVICES: u64 = 8;
    let blob = checkpoint();
    let streams = device_streams(DEVICES, 320);
    // Session 3 lives on shard 3 % 2 = 1 together with sessions 1, 5, 7.
    let injector = FaultInjector::new(vec![Fault::KillWorkerOnSample {
        session: 3,
        nth: 50,
    }]);
    let cfg = FleetConfig::new(2)
        .with_checkpoint_interval(16)
        .with_fault_injector(injector);
    let (sessions, report) = run(cfg, &blob, &streams);

    let m = &report.metrics;
    assert!(m.workers_respawned >= 1, "dead worker never respawned");
    assert!(
        report.events.iter().any(|e| matches!(
            e,
            FleetEvent::WorkerRespawned { shard: 1, recovered, .. } if *recovered >= 1
        )),
        "no WorkerRespawned event for shard 1"
    );
    // Every session survives: the kill lost in-flight queue contents and
    // rolled shard 1's sessions back to their checkpoints, but nothing was
    // quarantined or lost.
    assert_eq!(sessions.len(), DEVICES as usize);
    assert!(report.quarantined.is_empty());
    assert!(report.lost.is_empty());
    // Shard 0's sessions (untouched by the kill) processed every sample.
    for dev in [0u64, 2, 4, 6] {
        let state = DriftPipeline::from_bytes(&sessions[&dev].1).unwrap();
        assert_eq!(state.samples_processed(), 320, "device {dev}");
    }
}

/// The ISSUE 3 acceptance scenario: a NaN burst against one session leaves
/// it degraded-then-recovered with finite state — never quarantined — and
/// every clean co-sharded session stays bit-identical to a fault-free run.
#[test]
fn nan_burst_degrades_then_recovers_without_quarantine() {
    const DEVICES: u64 = 8;
    const SAMPLES: usize = 300;
    const BURST_LEN: u64 = 5;
    // Victim 1 is a *stable* device (1 % 4 != 0) on shard 1 % 2 = 1,
    // co-sharded with devices 3, 5 and 7.
    const VICTIM: u64 = 1;

    let blob = checkpoint();
    let streams = device_streams(DEVICES, SAMPLES);
    let base_cfg = FleetConfig::new(2).with_checkpoint_interval(32);

    let (clean, clean_report) = run(base_cfg.clone(), &blob, &streams);
    let injector = FaultInjector::new(vec![Fault::NanBurst {
        session: VICTIM,
        start: 40,
        len: BURST_LEN,
    }]);
    let (faulted, faulted_report) = run(base_cfg.with_fault_injector(injector), &blob, &streams);

    // Nobody is quarantined or lost in either run; the victim survives.
    assert!(clean_report.quarantined.is_empty());
    assert!(faulted_report.quarantined.is_empty());
    assert!(faulted_report.lost.is_empty());
    assert_eq!(faulted.len(), DEVICES as usize);

    // The victim went Degraded (input fault) and then Recovered, in order.
    let (victim_events, victim_blob) = &faulted[&VICTIM];
    let degraded_at = victim_events.iter().position(|e| {
        matches!(
            e,
            PipelineEvent::Degraded {
                reason: seqdrift_core::DegradeReason::InputFault,
                ..
            }
        )
    });
    let recovered_at = victim_events
        .iter()
        .position(|e| matches!(e, PipelineEvent::Recovered { .. }));
    let degraded_at = degraded_at.expect("victim never degraded");
    let recovered_at = recovered_at.expect("victim never recovered");
    assert!(degraded_at < recovered_at, "recovered before degrading");

    // Metrics account for exactly the injected burst: every poisoned
    // delivery was dropped by the guard, nothing else.
    let m = &faulted_report.metrics;
    assert_eq!(clean_report.metrics.samples_dropped, 0);
    assert_eq!(m.samples_dropped, BURST_LEN);
    assert_eq!(m.samples_processed, DEVICES * SAMPLES as u64 - BURST_LEN);
    assert!(m.sessions_degraded >= 1);
    assert!(m.sessions_recovered >= 1);
    assert_eq!(m.sessions_quarantined, 0);
    assert_eq!(m.panics_caught, 0);

    // The victim's final state: healthy, finite, guard counters matching
    // the injected plan, and still serving clean samples.
    let mut victim_state = DriftPipeline::from_bytes(victim_blob).unwrap();
    assert_eq!(victim_state.samples_processed(), SAMPLES as u64 - BURST_LEN);
    assert_eq!(
        victim_state.health(),
        seqdrift_core::PipelineHealth::Healthy
    );
    let counters = victim_state.guard_counters();
    assert_eq!(counters.non_finite, BURST_LEN);
    assert_eq!(counters.rejected, BURST_LEN);
    let o = victim_state.process(&[0.3; DIM]).unwrap();
    assert!(o.score.is_finite() && o.drift_distance.is_finite());

    // Blast-radius zero: every other session's events and final state are
    // bit-identical to the fault-free run.
    for dev in 0..DEVICES {
        if dev == VICTIM {
            continue;
        }
        assert_eq!(
            clean[&dev].0, faulted[&dev].0,
            "device {dev}: events disturbed by the NaN burst"
        );
        assert_eq!(
            clean[&dev].1, faulted[&dev].1,
            "device {dev}: state disturbed by the NaN burst"
        );
    }
}

/// `supervise()` proactively detects a dead worker without waiting for
/// traffic, and an explicitly lost queue is accounted as drops.
#[test]
fn supervise_detects_dead_worker_without_traffic() {
    let blob = checkpoint();
    let injector = FaultInjector::new(vec![Fault::KillWorkerOnSample {
        session: 0,
        nth: 10,
    }]);
    let cfg = FleetConfig::new(1)
        .with_checkpoint_interval(8)
        .with_fault_injector(injector);
    let fleet = FleetEngine::new(cfg).unwrap();
    fleet.create_from_bytes(SessionId(0), &blob).unwrap();
    let mut rng = Rng::seed_from(123);
    for _ in 0..=10 {
        fleet
            .feed_blocking(SessionId(0), &sample(&mut rng, 0.3))
            .unwrap();
    }
    // Wait for the worker to die, then let the supervisor find the corpse.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let mut respawned = 0;
    while respawned == 0 && std::time::Instant::now() < deadline {
        respawned = fleet.supervise();
        std::thread::yield_now();
    }
    assert_eq!(respawned, 1, "supervise never found the dead worker");
    assert_eq!(fleet.metrics().workers_respawned, 1);
    // The engine still works end to end after the respawn.
    fleet
        .feed_blocking(SessionId(0), &sample(&mut rng, 0.3))
        .unwrap();
    let report = fleet.shutdown();
    assert_eq!(report.sessions.len(), 1);
}
