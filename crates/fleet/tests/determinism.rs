//! Fleet determinism: because every session is pinned to one shard and its
//! queue is FIFO, the per-session event stream and final session state are
//! identical whether the fleet runs 1, 2 or 8 workers. Only the global
//! interleaving of *different* sessions' events may vary.

use seqdrift_core::pipeline::PipelineEvent;
use seqdrift_core::{DetectorConfig, DriftPipeline};
use seqdrift_fleet::{FleetConfig, FleetEngine, FleetEvent, SessionId};
use seqdrift_linalg::{Real, Rng};
use seqdrift_oselm::{MultiInstanceModel, OsElmConfig};
use std::collections::BTreeMap;

const DIM: usize = 4;
const DEVICES: u64 = 12;
// Long enough that even the latest-drifting device finishes its 200-sample
// reconstruction, so every session serialises at a quiescent point.
const SAMPLES: usize = 450;

fn sample(rng: &mut Rng, mean: Real) -> Vec<Real> {
    let mut x = vec![0.0; DIM];
    rng.fill_normal(&mut x, mean, 0.05);
    x
}

fn checkpoint() -> Vec<u8> {
    let mut rng = Rng::seed_from(71);
    let train: Vec<Vec<Real>> = (0..100).map(|_| sample(&mut rng, 0.3)).collect();
    let mut model = MultiInstanceModel::new(1, OsElmConfig::new(DIM, 3).with_seed(9)).unwrap();
    model.init_train_class(0, &train).unwrap();
    let pairs: Vec<(usize, &[Real])> = train.iter().map(|x| (0, x.as_slice())).collect();
    DriftPipeline::calibrate(model, DetectorConfig::new(1, DIM).with_window(15), &pairs)
        .unwrap()
        .to_bytes()
        .unwrap()
}

/// The per-device streams: a third of the devices drift (at staggered
/// onsets), the rest stay stable. Streams are a pure function of the
/// device id, so every run feeds identical data.
fn device_streams() -> Vec<Vec<Vec<Real>>> {
    (0..DEVICES)
        .map(|dev| {
            let mut rng = Rng::seed_from(1000 + dev);
            let onset = 60 + 10 * dev as usize;
            (0..SAMPLES)
                .map(|t| {
                    let mean = if dev % 3 == 0 && t >= onset { 0.8 } else { 0.3 };
                    sample(&mut rng, mean)
                })
                .collect()
        })
        .collect()
}

/// Runs the whole fleet with the given worker count and returns, per
/// session: the ordered event list and the final serialised state.
fn run_with_workers(
    workers: usize,
    blob: &[u8],
    streams: &[Vec<Vec<Real>>],
) -> BTreeMap<u64, (Vec<PipelineEvent>, Vec<u8>)> {
    let fleet = FleetEngine::new(FleetConfig::new(workers)).unwrap();
    for dev in 0..DEVICES {
        fleet.create_from_bytes(SessionId(dev), blob).unwrap();
    }
    for t in 0..SAMPLES {
        for (dev, stream) in streams.iter().enumerate() {
            fleet
                .feed_blocking(SessionId(dev as u64), &stream[t])
                .unwrap();
        }
    }
    let report = fleet.shutdown();
    let mut out: BTreeMap<u64, (Vec<PipelineEvent>, Vec<u8>)> = BTreeMap::new();
    for (id, pipeline) in &report.sessions {
        out.insert(id.0, (Vec::new(), pipeline.to_bytes().unwrap()));
    }
    for fleet_event in &report.events {
        if let FleetEvent::Pipeline { id, event } = fleet_event {
            out.get_mut(&id.0).unwrap().0.push(*event);
        }
    }
    out
}

#[test]
fn per_session_events_and_state_match_across_worker_counts() {
    let blob = checkpoint();
    let streams = device_streams();

    let one = run_with_workers(1, &blob, &streams);
    let two = run_with_workers(2, &blob, &streams);
    let eight = run_with_workers(8, &blob, &streams);

    // The workload must actually produce events, or this test is vacuous.
    let total_events: usize = one.values().map(|(e, _)| e.len()).sum();
    assert!(total_events >= 4, "only {total_events} events fleet-wide");
    assert_eq!(one.len(), DEVICES as usize);

    for (dev, (events_1, state_1)) in &one {
        let (events_2, state_2) = &two[dev];
        let (events_8, state_8) = &eight[dev];
        assert_eq!(
            events_1, events_2,
            "device {dev}: events differ at 2 workers"
        );
        assert_eq!(
            events_1, events_8,
            "device {dev}: events differ at 8 workers"
        );
        assert_eq!(state_1, state_2, "device {dev}: state differs at 2 workers");
        assert_eq!(state_1, state_8, "device {dev}: state differs at 8 workers");
    }

    // Drifting devices (dev % 3 == 0) must be the only ones with drift
    // events, confirming sessions do not leak into one another.
    for (dev, (events, _)) in &one {
        let drifted = events
            .iter()
            .any(|e| matches!(e, PipelineEvent::DriftDetected { .. }));
        assert_eq!(drifted, dev % 3 == 0, "device {dev} drift status");
    }
}
