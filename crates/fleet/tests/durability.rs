//! Kill-and-resume end-to-end: a fleet with a durable state store is
//! killed mid-stream, reopened from `--state-dir`, and every resumed
//! session must be bit-identical to an uninterrupted run — modulo the
//! tail of samples after the last durable checkpoint, which the caller
//! replays.

use seqdrift_core::{DetectorConfig, DriftPipeline};
use seqdrift_fleet::{DegradedReason, DurabilityHealth, Fault, FaultInjector, FleetEvent};
use seqdrift_fleet::{
    FeedReply, FleetConfig, FleetEngine, FleetError, QuarantineReason, SessionId,
};
use seqdrift_linalg::{Real, Rng};
use seqdrift_oselm::{MultiInstanceModel, OsElmConfig};
use seqdrift_store::{FaultPlan, FaultVfs, Vfs};
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const DIM: usize = 4;
const INTERVAL: u64 = 64;

fn calibrated_pipeline(seed: u64) -> DriftPipeline {
    let mut rng = Rng::seed_from(seed);
    let class0: Vec<Vec<Real>> = (0..80)
        .map(|_| {
            let mut x = vec![0.0; DIM];
            rng.fill_normal(&mut x, 0.2, 0.05);
            x
        })
        .collect();
    let class1: Vec<Vec<Real>> = (0..80)
        .map(|_| {
            let mut x = vec![0.0; DIM];
            rng.fill_normal(&mut x, 0.8, 0.05);
            x
        })
        .collect();
    let mut model = MultiInstanceModel::new(2, OsElmConfig::new(DIM, 3).with_seed(seed)).unwrap();
    model.init_train_class(0, &class0).unwrap();
    model.init_train_class(1, &class1).unwrap();
    let train: Vec<(usize, &[Real])> = class0
        .iter()
        .map(|x| (0usize, x.as_slice()))
        .chain(class1.iter().map(|x| (1usize, x.as_slice())))
        .collect();
    DriftPipeline::calibrate(model, DetectorConfig::new(2, DIM).with_window(16), &train).unwrap()
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("seqdrift-durability-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Deterministic per-session stream: each session gets its own RNG.
fn stream(session: u64, len: usize) -> Vec<Vec<Real>> {
    let mut rng = Rng::seed_from(1000 + session);
    (0..len)
        .map(|_| {
            let mut x = vec![0.0; DIM];
            rng.fill_normal(&mut x, 0.2, 0.05);
            x
        })
        .collect()
}

fn durable_config(dir: &PathBuf) -> FleetConfig {
    FleetConfig::new(2)
        .with_checkpoint_interval(INTERVAL)
        .with_state_dir(dir)
}

#[test]
fn killed_engine_resumes_bit_identical_modulo_lost_tail() {
    let dir = tmp_dir("kill-resume");
    const SESSIONS: u64 = 5;
    const CUT: usize = 150; // not a checkpoint boundary: a real tail is lost
    const TOTAL: usize = 230;

    // --- Reference: one uninterrupted run over the full streams. ---
    let reference =
        FleetEngine::new(FleetConfig::new(2).with_checkpoint_interval(INTERVAL)).unwrap();
    for s in 0..SESSIONS {
        reference
            .create(SessionId(s), calibrated_pipeline(s))
            .unwrap();
        for x in stream(s, TOTAL) {
            reference.feed_blocking(SessionId(s), &x).unwrap();
        }
    }
    let mut expected = Vec::new();
    for s in 0..SESSIONS {
        expected.push(reference.snapshot(SessionId(s)).unwrap());
    }
    drop(reference);

    // --- Victim: same streams, killed at sample CUT. ---
    {
        let victim = FleetEngine::new(durable_config(&dir)).unwrap();
        for s in 0..SESSIONS {
            victim.create(SessionId(s), calibrated_pipeline(s)).unwrap();
            for x in stream(s, CUT) {
                victim.feed_blocking(SessionId(s), &x).unwrap();
            }
        }
        assert!(victim.metrics().durable_flushes > 0, "nothing reached disk");
        // Simulated power loss: the engine dies here. Whatever is on disk
        // is all the next process gets.
        drop(victim);
    }

    // --- Resume from the state dir and replay each lost tail. ---
    let revived = FleetEngine::new(durable_config(&dir)).unwrap();
    let resumed = revived.resume().unwrap();
    assert_eq!(resumed.len(), SESSIONS as usize, "{resumed:?}");
    for &(id, samples_processed) in &resumed {
        // The durable checkpoint can only lag by less than one interval.
        assert!(
            samples_processed <= CUT as u64,
            "{id}: resumed ahead of the crash point"
        );
        assert!(
            CUT as u64 - samples_processed < INTERVAL,
            "{id}: lost more than one checkpoint interval ({samples_processed})"
        );
        let full = stream(id.0, TOTAL);
        for x in &full[samples_processed as usize..] {
            revived.feed_blocking(id, x).unwrap();
        }
    }
    for s in 0..SESSIONS {
        let got = revived.snapshot(SessionId(s)).unwrap();
        assert_eq!(
            got, expected[s as usize],
            "session {s}: resumed state diverged from the uninterrupted run"
        );
    }
    drop(revived);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_skips_sessions_with_no_surviving_checkpoint() {
    let dir = tmp_dir("resume-torn");
    {
        let fleet = FleetEngine::new(durable_config(&dir)).unwrap();
        fleet.create(SessionId(0), calibrated_pipeline(0)).unwrap();
        fleet.create(SessionId(1), calibrated_pipeline(1)).unwrap();
        drop(fleet);
    }
    // Destroy every generation of session 0 (as a crash storm might).
    for entry in fs::read_dir(dir.join("0")).unwrap() {
        fs::write(entry.unwrap().path(), b"torn to shreds").unwrap();
    }
    let revived = FleetEngine::new(durable_config(&dir)).unwrap();
    let resumed = revived.resume().unwrap();
    assert_eq!(
        resumed.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
        vec![SessionId(1)]
    );
    drop(revived);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_without_state_dir_is_a_typed_error() {
    let fleet = FleetEngine::new(FleetConfig::new(1)).unwrap();
    assert!(matches!(fleet.resume(), Err(FleetError::InvalidConfig(_))));
}

#[test]
fn federated_write_under_disk_failure_degrades_then_recovers() {
    let dir = tmp_dir("federated-fault");
    let vfs = Arc::new(FaultVfs::new(FaultPlan::new(41).with_enospc(1024)).with_base(&dir));
    let fleet = FleetEngine::new(
        durable_config(&dir)
            .with_state_vfs(Arc::clone(&vfs) as Arc<dyn Vfs>)
            .with_flush_retry(Duration::from_millis(2), Duration::from_millis(20)),
    )
    .unwrap();
    assert_eq!(fleet.durability_health(), DurabilityHealth::Durable);

    // Disk down: the write is absorbed (never a panic, never an Err to
    // the federation path), the fleet degrades, the blob is buffered.
    let blob = calibrated_pipeline(21).to_bytes().unwrap();
    assert_eq!(fleet.persist_federated(&blob), None);
    assert_eq!(
        fleet.durability_health(),
        DurabilityHealth::DegradedDurability(DegradedReason::FederatedWrite)
    );
    // A newer merged model supersedes the buffered one while degraded.
    let blob2 = calibrated_pipeline(22).to_bytes().unwrap();
    assert_eq!(fleet.persist_federated(&blob2), None);

    // Disk heals: the background retry loop drains the newest buffered
    // model and the fleet transitions back to Durable on its own.
    vfs.set_active(false);
    let deadline = Instant::now() + Duration::from_secs(10);
    while fleet.durability_health() != DurabilityHealth::Durable && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(fleet.durability_health(), DurabilityHealth::Durable);
    assert_eq!(fleet.load_federated().unwrap(), Some(blob2));

    let m = fleet.metrics();
    assert_eq!(m.durability_degraded, 1);
    assert_eq!(m.durability_recovered, 1);
    assert!(m.durable_flushes_buffered >= 2, "{m:?}");
    assert!(m.durable_flush_retries >= 1, "{m:?}");
    let report = fleet.shutdown();
    assert!(report.events.iter().any(|e| matches!(
        e,
        FleetEvent::DurabilityDegraded {
            reason: DegradedReason::FederatedWrite
        }
    )));
    assert!(report
        .events
        .iter()
        .any(|e| matches!(e, FleetEvent::DurabilityRestored { .. })));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn quarantine_survives_process_restart() {
    let dir = tmp_dir("quarantine-persists");
    {
        let injector = FaultInjector::new(vec![Fault::PanicOnSample { session: 0, nth: 5 }]);
        let fleet = FleetEngine::new(
            durable_config(&dir)
                .with_restart_budget(0, 1024)
                .with_fault_injector(injector),
        )
        .unwrap();
        fleet.create(SessionId(0), calibrated_pipeline(0)).unwrap();
        let mut rng = Rng::seed_from(3);
        for _ in 0..10 {
            let mut x = vec![0.0; DIM];
            rng.fill_normal(&mut x, 0.2, 0.05);
            match fleet.feed_blocking(SessionId(0), &x) {
                Ok(()) | Err(FleetError::SessionQuarantined(_)) => {}
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while fleet.quarantined_sessions().is_empty() && Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(
            fleet.quarantined_sessions(),
            vec![(SessionId(0), QuarantineReason::RestartBudgetExhausted)]
        );
        drop(fleet);
    }
    // A fresh process must inherit the verdict: no resume, no feeding.
    let revived = FleetEngine::new(durable_config(&dir)).unwrap();
    assert_eq!(
        revived.quarantined_sessions(),
        vec![(SessionId(0), QuarantineReason::RestartBudgetExhausted)]
    );
    assert!(revived.resume().unwrap().is_empty());
    assert_eq!(
        revived.feed(SessionId(0), &[0.2; DIM]),
        FeedReply::Quarantined
    );
    // Re-creating the id lifts the quarantine — durably.
    revived
        .create(SessionId(0), calibrated_pipeline(9))
        .unwrap();
    drop(revived);
    let third = FleetEngine::new(durable_config(&dir)).unwrap();
    assert!(third.quarantined_sessions().is_empty());
    assert_eq!(third.resume().unwrap().len(), 1);
    drop(third);
    fs::remove_dir_all(&dir).ok();
}
