//! Hostile-input hardening for `DriftPipeline::from_bytes`: truncated,
//! bit-flipped and length-lying blobs must all return `Err` — never panic,
//! never allocate unboundedly. Exercised over *real* snapshot blobs so the
//! corruption lands on every section of the wire format (configs, centroid
//! sets, model weights).

use seqdrift_core::{DetectorConfig, DriftPipeline};
use seqdrift_linalg::{Real, Rng};
use seqdrift_oselm::{MultiInstanceModel, OsElmConfig};

const DIM: usize = 5;

fn sample(rng: &mut Rng, mean: Real) -> Vec<Real> {
    let mut x = vec![0.0; DIM];
    rng.fill_normal(&mut x, mean, 0.05);
    x
}

/// A realistic warmed-up snapshot: calibrated two-class pipeline with 150
/// streamed samples of detector state.
fn snapshot_blob() -> Vec<u8> {
    let mut rng = Rng::seed_from(404);
    let class0: Vec<Vec<Real>> = (0..80).map(|_| sample(&mut rng, 0.2)).collect();
    let class1: Vec<Vec<Real>> = (0..80).map(|_| sample(&mut rng, 0.8)).collect();
    let mut model = MultiInstanceModel::new(2, OsElmConfig::new(DIM, 4).with_seed(11)).unwrap();
    model.init_train_class(0, &class0).unwrap();
    model.init_train_class(1, &class1).unwrap();
    let pairs: Vec<(usize, &[Real])> = class0
        .iter()
        .map(|x| (0usize, x.as_slice()))
        .chain(class1.iter().map(|x| (1usize, x.as_slice())))
        .collect();
    let mut p =
        DriftPipeline::calibrate(model, DetectorConfig::new(2, DIM).with_window(20), &pairs)
            .unwrap();
    for i in 0..150 {
        let mean = if i % 2 == 0 { 0.2 } else { 0.8 };
        p.process(&sample(&mut rng, mean)).unwrap();
    }
    p.to_bytes().unwrap()
}

/// Decoding must return a `Result`, not unwind. Wrap in catch_unwind so a
/// panicking decoder fails the test with a precise message instead of
/// aborting the harness.
fn decode_must_err(blob: &[u8], what: &str) {
    let outcome = std::panic::catch_unwind(|| DriftPipeline::from_bytes(blob).is_err());
    match outcome {
        Ok(true) => {}
        Ok(false) => panic!("{what}: corrupted blob decoded successfully"),
        Err(_) => panic!("{what}: decoder panicked instead of returning Err"),
    }
}

#[test]
fn every_truncation_point_errors_cleanly() {
    let blob = snapshot_blob();
    // Every prefix, stepping fine near the start (header/config region)
    // and coarser through the bulky weight section.
    let mut cut = 0usize;
    while cut < blob.len() {
        decode_must_err(&blob[..cut], &format!("truncated at {cut}"));
        cut += if cut < 256 { 1 } else { 37 };
    }
}

#[test]
fn seeded_bit_flips_never_panic_or_succeed_silently() {
    let blob = snapshot_blob();
    let reference = DriftPipeline::from_bytes(&blob).unwrap();
    let mut rng = Rng::seed_from(0xBADC0DE);
    for _ in 0..400 {
        let pos = rng.below(blob.len() as u64) as usize;
        let bit = 1u8 << rng.below(8);
        let mut bad = blob.clone();
        bad[pos] ^= bit;
        // A flip may land in a don't-care bit (e.g. float mantissa) and
        // still decode; that is fine. What is never fine is a panic.
        let outcome = std::panic::catch_unwind(|| {
            DriftPipeline::from_bytes(&bad).map(|p| p.samples_processed())
        });
        match outcome {
            Ok(Ok(n)) => {
                // If it decoded, it must be internally consistent enough
                // to report its counter (flips in scalar payloads).
                let _ = n;
            }
            Ok(Err(_)) => {}
            Err(_) => panic!("decoder panicked on bit flip at byte {pos} bit {bit:08b}"),
        }
    }
    // Sanity: the uncorrupted blob still decodes to the same state.
    assert_eq!(
        DriftPipeline::from_bytes(&blob)
            .unwrap()
            .samples_processed(),
        reference.samples_processed()
    );
}

#[test]
fn newer_wire_version_is_a_typed_error_not_a_parse_attempt() {
    use seqdrift_core::CoreError;
    use seqdrift_linalg::wire;

    // A checkpoint written by a future library release: same magic, wire
    // version bumped past what this build understands. Decoding must fail
    // with the dedicated unsupported-version error — before any section
    // parsing — so old firmware reports "upgrade needed", never "corrupt".
    let blob = snapshot_blob();
    assert_eq!(&blob[..4], wire::MAGIC, "wire layout changed under us");
    for skew in [wire::VERSION + 1, wire::VERSION + 7, u16::MAX] {
        let mut future = blob.clone();
        future[4..6].copy_from_slice(&skew.to_le_bytes());
        match DriftPipeline::from_bytes(&future) {
            Err(CoreError::InvalidConfig(msg)) => {
                assert_eq!(
                    msg, "persist: unsupported version",
                    "version {skew}: wrong error message"
                );
            }
            Err(other) => panic!("version {skew}: wrong error type: {other}"),
            Ok(_) => panic!("version {skew}: future blob decoded on old code"),
        }
    }
    // Version 0 (never issued) is equally unsupported, not treated as "old
    // and therefore fine".
    let mut ancient = blob;
    ancient[4..6].copy_from_slice(&0u16.to_le_bytes());
    assert!(DriftPipeline::from_bytes(&ancient).is_err());
}

#[test]
fn length_lying_fields_error_without_huge_allocation() {
    let blob = snapshot_blob();
    let mut rng = Rng::seed_from(0x11E5);
    // Overwrite seeded 8-byte windows with absurd little-endian lengths.
    // Wherever they land (length prefix, dim field, count), the decoder
    // must reject by comparing against remaining bytes / dim caps before
    // allocating — if it tried to honour them, the test would OOM or take
    // forever rather than merely fail.
    for &lie in &[u64::MAX, u64::MAX / 2, 1 << 40, 1 << 33] {
        for _ in 0..60 {
            let pos = rng.below((blob.len() - 8) as u64) as usize;
            let mut bad = blob.clone();
            bad[pos..pos + 8].copy_from_slice(&lie.to_le_bytes());
            let outcome = std::panic::catch_unwind(|| DriftPipeline::from_bytes(&bad).is_err());
            match outcome {
                // Landing mid-scalar-run can leave the blob decodable or
                // not; both fine as long as nothing panicked or ballooned.
                Ok(_) => {}
                Err(_) => panic!("decoder panicked on length lie at byte {pos}"),
            }
        }
    }
    // The canonical attack: a centroid-set header claiming ~10^12 scalars
    // (classes=65536 x dim=16777216 passes the old per-field caps). The
    // detector-config section starts right after the 8-byte header with
    // classes/dim as the first two u64 fields; the trained centroid set
    // follows the pipeline scalars. Target it precisely by scanning for
    // the first occurrence of the legitimate classes/dim pair.
    let classes_bytes = 2u64.to_le_bytes();
    let dim_bytes = (DIM as u64).to_le_bytes();
    let mut hit = false;
    for pos in 8..blob.len().saturating_sub(16) {
        if blob[pos..pos + 8] == classes_bytes && blob[pos + 8..pos + 16] == dim_bytes {
            let mut bad = blob.clone();
            bad[pos..pos + 8].copy_from_slice(&65_536u64.to_le_bytes());
            bad[pos + 8..pos + 16].copy_from_slice(&16_777_216u64.to_le_bytes());
            decode_must_err(&bad, &format!("giant shape claim at {pos}"));
            hit = true;
        }
    }
    assert!(hit, "never found a classes/dim pair to corrupt");
}
