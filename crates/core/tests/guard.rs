//! Boundary invariant (ISSUE 3 acceptance): under a hostile sensor stream
//! — NaN, infinities, huge-but-finite magnitudes, stuck runs and mis-sized
//! samples — no non-finite value ever crosses a public API boundary, under
//! *every* guard policy. Outputs stay finite sample by sample, and the full
//! model/detector state is finite when the stream ends.

use seqdrift_core::{
    CoreError, DetectorConfig, DriftPipeline, GuardConfig, GuardPolicy, PipelineConfig,
    PipelineHealth,
};
use seqdrift_linalg::{Real, Rng};
use seqdrift_oselm::{MultiInstanceModel, OsElmConfig};

const DIM: usize = 4;
const CLASSES: usize = 2;
const ADVERSARIAL_SAMPLES: usize = 10_000;

fn calibrated(guard: GuardConfig) -> DriftPipeline {
    let mut rng = Rng::seed_from(42);
    let mut train: Vec<(usize, Vec<Real>)> = Vec::new();
    for i in 0..200 {
        let label = i % CLASSES;
        let mut x = vec![0.0; DIM];
        rng.fill_normal(&mut x, if label == 0 { 0.2 } else { 0.8 }, 0.05);
        train.push((label, x));
    }
    let mut model =
        MultiInstanceModel::new(CLASSES, OsElmConfig::new(DIM, 6).with_seed(7)).unwrap();
    for label in 0..CLASSES {
        let bucket: Vec<Vec<Real>> = train
            .iter()
            .filter(|(l, _)| *l == label)
            .map(|(_, x)| x.clone())
            .collect();
        model.init_train_class(label, &bucket).unwrap();
    }
    let pairs: Vec<(usize, &[Real])> = train.iter().map(|(l, x)| (*l, x.as_slice())).collect();
    let det = DetectorConfig::new(CLASSES, DIM).with_window(20);
    let cfg = PipelineConfig::new(det.clone()).with_guard(guard);
    DriftPipeline::calibrate_with(model, det, &pairs, Some(cfg)).unwrap()
}

fn clean(rng: &mut Rng) -> Vec<Real> {
    let mut x = vec![0.0; DIM];
    let mean = if rng.uniform() < 0.5 { 0.2 } else { 0.8 };
    rng.fill_normal(&mut x, mean, 0.05);
    x
}

/// Seeded adversarial stream mixing every hostile shape the guard handles.
/// The first sample is clean so `ImputeLast` always has a last-good sample.
fn adversarial_stream(seed: u64) -> Vec<Vec<Real>> {
    let mut rng = Rng::seed_from(seed);
    let mut out: Vec<Vec<Real>> = vec![clean(&mut rng)];
    while out.len() < ADVERSARIAL_SAMPLES {
        match rng.below(12) {
            6 => {
                let mut x = clean(&mut rng);
                x[rng.below(DIM as u64) as usize] = Real::NAN;
                out.push(x);
            }
            7 => {
                let mut x = clean(&mut rng);
                let sign = if rng.uniform() < 0.5 { 1.0 } else { -1.0 };
                x[rng.below(DIM as u64) as usize] = sign * Real::INFINITY;
                out.push(x);
            }
            8 => {
                // Huge but finite: would overflow the f32 squared distance
                // if admitted unclamped.
                out.push(vec![1e30; DIM]);
            }
            9 => {
                // Stuck-sensor burst, longer than the threshold below.
                for _ in 0..6 {
                    out.push(vec![7.7; DIM]);
                }
            }
            10 => out.push(vec![0.5; DIM - 1]),
            11 => out.push(vec![0.5; DIM + 1]),
            _ => out.push(clean(&mut rng)),
        }
    }
    out.truncate(ADVERSARIAL_SAMPLES);
    out
}

fn assert_state_finite(pipeline: &DriftPipeline, context: &str) {
    for label in 0..CLASSES {
        let net = pipeline.model().instance(label).unwrap().network();
        for (name, values) in [
            ("P", net.p().as_slice()),
            ("beta", net.beta().as_slice()),
            ("weights", net.weights().as_slice()),
            ("biases", net.biases()),
        ] {
            assert!(
                values.iter().all(|v| v.is_finite()),
                "{context}: class {label} {name} went non-finite"
            );
        }
        for (name, set) in [
            ("trained", pipeline.detector().trained_centroids()),
            ("test", pipeline.detector().test_centroids()),
        ] {
            assert!(
                set.centroid(label).unwrap().iter().all(|v| v.is_finite()),
                "{context}: class {label} {name} centroid went non-finite"
            );
        }
    }
    assert!(
        pipeline.detector().last_distance().is_finite(),
        "{context}: last_distance went non-finite"
    );
}

/// The headline invariant, once per policy.
#[test]
fn no_non_finite_value_crosses_the_public_api() {
    for policy in [
        GuardPolicy::Reject,
        GuardPolicy::Clamp,
        GuardPolicy::ImputeLast,
    ] {
        let guard = GuardConfig::new()
            .with_policy(policy)
            .with_stuck_threshold(4);
        let mut pipeline = calibrated(guard);
        let stream = adversarial_stream(0xBAD5EED);

        let mut rejected = 0u64;
        for (i, x) in stream.iter().enumerate() {
            match pipeline.process(x) {
                Ok(o) => {
                    assert!(
                        o.score.is_finite() && o.drift_distance.is_finite(),
                        "{policy:?}: non-finite output escaped at sample {i}"
                    );
                }
                Err(
                    CoreError::NonFiniteInput { .. }
                    | CoreError::OversizedInput { .. }
                    | CoreError::StuckSensor { .. }
                    | CoreError::DimensionMismatch { .. },
                ) => rejected += 1,
                Err(e) => panic!("{policy:?}: unexpected error at sample {i}: {e}"),
            }
            assert!(
                pipeline.detector().last_distance().is_finite(),
                "{policy:?}: last_distance went non-finite at sample {i}"
            );
        }

        // The stream genuinely exercised the guard...
        let counters = pipeline.guard_counters();
        assert!(rejected > 0, "{policy:?}: nothing was ever rejected");
        assert!(counters.non_finite > 0, "{policy:?}: no non-finite inputs");
        assert!(counters.oversized > 0, "{policy:?}: no oversized inputs");
        assert!(counters.stuck > 0, "{policy:?}: no stuck runs");
        assert!(counters.dim_mismatch > 0, "{policy:?}: no dim mismatches");
        if policy != GuardPolicy::Reject {
            assert!(counters.sanitized > 0, "{policy:?}: nothing was repaired");
        }

        // ...and the entire state survived it finite.
        assert_state_finite(&pipeline, &format!("{policy:?} after hostile stream"));

        // A clean tail recovers the pipeline and keeps producing finite,
        // sane outputs.
        let mut rng = Rng::seed_from(77);
        for _ in 0..50 {
            let o = pipeline.process(&clean(&mut rng)).unwrap();
            assert!(o.score.is_finite() && o.drift_distance.is_finite());
        }
        assert_eq!(
            pipeline.health(),
            PipelineHealth::Healthy,
            "{policy:?}: did not recover on a clean tail"
        );
        assert_state_finite(&pipeline, &format!("{policy:?} after clean tail"));

        // And the finite state is still serialisable end to end.
        let blob = pipeline.to_bytes().unwrap();
        let restored = DriftPipeline::from_bytes(&blob).unwrap();
        assert_eq!(restored.guard_counters(), pipeline.guard_counters());
    }
}
