//! Checkpoint/restore equivalence: interrupting a stream with
//! `to_bytes`/`from_bytes` must be invisible to the pipeline's outputs.
//!
//! A calibrated pipeline processes N samples, is serialised and restored,
//! and then both the restored copy and the uninterrupted original process
//! the same M further samples. Every `PipelineOutput` field must be
//! bit-identical — the wire format stores exact f32 state, so there is no
//! tolerance here.

use seqdrift_core::{DetectorConfig, DriftPipeline};
use seqdrift_linalg::{Real, Rng};
use seqdrift_oselm::{MultiInstanceModel, OsElmConfig};

const DIM: usize = 5;
const N_BEFORE: usize = 180;
const M_AFTER: usize = 220;

fn sample(rng: &mut Rng, mean: Real) -> Vec<Real> {
    let mut x = vec![0.0; DIM];
    rng.fill_normal(&mut x, mean, 0.05);
    x
}

fn calibrated() -> DriftPipeline {
    let mut rng = Rng::seed_from(5);
    let c0: Vec<Vec<Real>> = (0..80).map(|_| sample(&mut rng, 0.25)).collect();
    let c1: Vec<Vec<Real>> = (0..80).map(|_| sample(&mut rng, 0.75)).collect();
    let mut model = MultiInstanceModel::new(2, OsElmConfig::new(DIM, 4).with_seed(2)).unwrap();
    model.init_train_class(0, &c0).unwrap();
    model.init_train_class(1, &c1).unwrap();
    let pairs: Vec<(usize, &[Real])> = c0
        .iter()
        .map(|x| (0usize, x.as_slice()))
        .chain(c1.iter().map(|x| (1usize, x.as_slice())))
        .collect();
    DriftPipeline::calibrate(model, DetectorConfig::new(2, DIM).with_window(25), &pairs).unwrap()
}

/// The stream alternates the two stable classes, then shifts mid-way
/// through the post-restore segment so the comparison also covers drift
/// detection and reconstruction, not just the steady state.
fn stream(n: usize, seed: u64, shift_from: usize, shift: Real) -> Vec<Vec<Real>> {
    let mut rng = Rng::seed_from(seed);
    (0..n)
        .map(|i| {
            let base = if i % 2 == 0 { 0.25 } else { 0.75 };
            let mean = if i >= shift_from { base + shift } else { base };
            sample(&mut rng, mean)
        })
        .collect()
}

#[test]
fn restore_is_bit_identical_to_uninterrupted_run() {
    let mut original = calibrated();

    let before = stream(N_BEFORE, 31, usize::MAX, 0.0);
    for x in &before {
        original.process(x).unwrap();
    }

    let blob = original.to_bytes().unwrap();
    let mut restored = DriftPipeline::from_bytes(&blob).unwrap();
    assert_eq!(restored.samples_processed(), original.samples_processed());

    // The post-restore stream drifts at sample 100 to exercise detection
    // and reconstruction in lockstep on both copies.
    let after = stream(M_AFTER, 37, 100, 0.4);
    let mut saw_drift = false;
    let mut saw_reconstruction = false;
    for x in &after {
        let a = original.process(x).unwrap();
        let b = restored.process(x).unwrap();
        assert_eq!(a, b, "outputs diverged after restore");
        saw_drift |= a.drift_detected;
        saw_reconstruction |= a.reconstructing;
    }
    assert!(saw_drift, "the comparison stream never triggered a drift");
    assert!(saw_reconstruction);
    assert_eq!(original.events(), restored.events());
}

#[test]
fn restore_refuses_then_succeeds_around_reconstruction() {
    let mut pipeline = calibrated();
    for x in &stream(N_BEFORE, 41, usize::MAX, 0.0) {
        pipeline.process(x).unwrap();
    }
    // Push shifted samples until the pipeline starts reconstructing, then
    // verify the mid-reconstruction refusal and that a quiescent point
    // serialises again.
    let shifted = stream(600, 43, 0, 0.4);
    let mut refused = false;
    for x in &shifted {
        pipeline.process(x).unwrap();
        if pipeline.is_reconstructing() {
            assert!(pipeline.to_bytes().is_err(), "mid-reconstruction snapshot");
            refused = true;
        } else if refused {
            break;
        }
    }
    assert!(refused, "stream never entered reconstruction");
    assert!(!pipeline.is_reconstructing());
    let blob = pipeline.to_bytes().unwrap();
    assert!(DriftPipeline::from_bytes(&blob).is_ok());
}
