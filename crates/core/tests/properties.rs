//! Property-based tests for the proposed detector's invariants, driven by
//! seeded RNG loops (the workspace builds offline; no proptest).

use seqdrift_core::centroid::CentroidSet;
use seqdrift_core::detector::{CentroidDetector, DetectorConfig, DetectorOutcome};
use seqdrift_core::reconstruct::{ReconOutcome, ReconstructConfig, Reconstructor};
use seqdrift_core::threshold::DriftThresholdCalibrator;
use seqdrift_core::DistanceMetric;
use seqdrift_linalg::{Real, Rng};
use seqdrift_oselm::{MultiInstanceModel, OsElmConfig};

const CASES: u64 = 32;

fn for_cases(f: impl Fn(&mut Rng)) {
    for case in 0..CASES {
        let mut rng = Rng::seed_from(0x44DD ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        f(&mut rng);
    }
}

fn trained_set(classes: usize, dim: usize, count: u64) -> CentroidSet {
    let mut s = CentroidSet::zeros(classes, dim);
    for c in 0..classes {
        let centroid = vec![c as Real; dim];
        s.set_centroid(c, &centroid).unwrap();
        s.set_count(c, count);
    }
    s
}

/// The detector is total over valid inputs: any sequence of
/// (label, sample, score) triples produces outcomes without panicking,
/// windows always close after exactly W updates, and the drift distance
/// stays non-negative.
#[test]
fn detector_is_total_and_windows_close() {
    for_cases(|rng| {
        let classes = 1 + rng.below(3) as usize;
        let dim = 1 + rng.below(5) as usize;
        let window = 1 + rng.below(19) as usize;
        let n = 1 + rng.below(199) as usize;
        let cfg = DetectorConfig::new(classes, dim)
            .with_window(window)
            .with_theta_error(0.5)
            .with_theta_drift(1.0);
        let mut det = CentroidDetector::new(cfg, trained_set(classes, dim, 10)).unwrap();
        let mut updates_in_window = 0usize;
        for _ in 0..n {
            let label = rng.below(classes as u64) as usize;
            let mut x = vec![0.0; dim];
            rng.fill_uniform(&mut x, -2.0, 2.0);
            let score = rng.uniform();
            match det.observe(label, &x, score).unwrap() {
                DetectorOutcome::Idle => {
                    assert_eq!(updates_in_window, 0);
                }
                DetectorOutcome::Windowing { win, dist } => {
                    updates_in_window += 1;
                    assert_eq!(win, updates_in_window);
                    assert!(win < window);
                    assert!(dist >= 0.0);
                }
                DetectorOutcome::Checked { dist, .. } => {
                    assert_eq!(updates_in_window + 1, window);
                    updates_in_window = 0;
                    assert!(dist >= 0.0);
                }
            }
        }
    });
}

/// Feeding a sample equal to the trained centroid never increases the drift
/// distance for that label.
#[test]
fn centroid_samples_do_not_inflate_distance() {
    for_cases(|rng| {
        let dim = 1 + rng.below(5) as usize;
        let trained = trained_set(1, dim, 5);
        let cfg = DetectorConfig::new(1, dim)
            .with_window(1000)
            .with_theta_error(0.0)
            .with_theta_drift(1e9);
        let mut det = CentroidDetector::new(cfg, trained.clone()).unwrap();
        // First push the centroid moves nothing.
        let centroid = trained.centroid(0).unwrap().to_vec();
        let mut prev = 0.0;
        // Alternate noise and centroid samples: after each centroid sample,
        // the distance must be <= the distance after the preceding noise
        // sample (the running mean is pulled back toward the reference).
        for _ in 0..20 {
            let mut x = vec![0.0; dim];
            rng.fill_uniform(&mut x, -1.0, 1.0);
            let after_noise = match det.observe(0, &x, 1.0).unwrap() {
                DetectorOutcome::Windowing { dist, .. } | DetectorOutcome::Checked { dist, .. } => {
                    dist
                }
                DetectorOutcome::Idle => prev,
            };
            let after_centroid = match det.observe(0, &centroid, 1.0).unwrap() {
                DetectorOutcome::Windowing { dist, .. } | DetectorOutcome::Checked { dist, .. } => {
                    dist
                }
                DetectorOutcome::Idle => after_noise,
            };
            assert!(after_centroid <= after_noise + 1e-5);
            prev = after_centroid;
        }
    });
}

/// Eq. 1 threshold: always >= the mean for z >= 0, monotone in z, and
/// exactly the mean when all distances are equal.
#[test]
fn eq1_threshold_properties() {
    for_cases(|rng| {
        let n = 1 + rng.below(99) as usize;
        let mut dists = vec![0.0; n];
        rng.fill_uniform(&mut dists, 0.0, 100.0);
        let z = rng.uniform_range(0.0, 5.0);
        let mut cal = DriftThresholdCalibrator::new();
        let mut mean = 0.0f64;
        for &d in &dists {
            cal.push(d);
            mean += d as f64;
        }
        mean /= dists.len() as f64;
        let t = cal.threshold(z).unwrap() as f64;
        assert!(t >= mean - 1e-3);
        let t2 = cal.threshold(z + 1.0).unwrap() as f64;
        assert!(t2 >= t - 1e-6);
    });
}

/// The reconstructor finishes after exactly `n_total` steps for any stream
/// and produces a positive recalibrated threshold; afterwards it is
/// inactive.
#[test]
fn reconstructor_always_terminates() {
    for_cases(|rng| {
        let seed = rng.below(5000);
        let n_total = 8 + rng.below(52) as usize;
        let classes = 2;
        let dim = 3;
        let cfg = ReconstructConfig::new(n_total);
        let mut rec = Reconstructor::new(cfg, classes, dim).unwrap();
        let mut model =
            MultiInstanceModel::new(classes, OsElmConfig::new(dim, 3).with_seed(seed)).unwrap();
        let mut srng = Rng::seed_from(seed);
        let blob = |rng: &mut Rng, mean: Real| -> Vec<Real> {
            let mut x = vec![0.0; dim];
            rng.fill_normal(&mut x, mean, 0.1);
            x
        };
        let train0: Vec<Vec<Real>> = (0..10).map(|_| blob(&mut srng, 0.0)).collect();
        let train1: Vec<Vec<Real>> = (0..10).map(|_| blob(&mut srng, 1.0)).collect();
        model.init_train_class(0, &train0).unwrap();
        model.init_train_class(1, &train1).unwrap();

        rec.start(&trained_set(classes, dim, 10), &mut model)
            .unwrap();
        let mut done = None;
        for i in 0..n_total + 5 {
            if !rec.is_active() {
                break;
            }
            let mean = srng.uniform_range(0.0, 1.0);
            let x = blob(&mut srng, mean);
            if let ReconOutcome::Done {
                theta_drift,
                new_trained,
            } = rec.step(&mut model, &x).unwrap()
            {
                assert!(theta_drift > 0.0);
                assert_eq!(new_trained.classes(), classes);
                done = Some(i);
            }
        }
        assert_eq!(done, Some(n_total - 1));
        assert!(!rec.is_active());
    });
}

/// Centroid-set distance under both metrics is symmetric-in-role,
/// non-negative, and zero iff the sets coincide.
#[test]
fn centroid_distance_metric_properties() {
    for_cases(|rng| {
        let classes = 1 + rng.below(3) as usize;
        let dim = 1 + rng.below(4) as usize;
        let mut a = CentroidSet::zeros(classes, dim);
        for c in 0..classes {
            let mut x = vec![0.0; dim];
            rng.fill_uniform(&mut x, -3.0, 3.0);
            a.set_centroid(c, &x).unwrap();
        }
        let b = a.clone();
        for metric in [DistanceMetric::L1, DistanceMetric::L2] {
            assert_eq!(a.distance_to(&b, metric), 0.0);
        }
        let mut c_set = a.clone();
        let mut y = vec![0.0; dim];
        rng.fill_uniform(&mut y, 4.0, 5.0);
        c_set.set_centroid(0, &y).unwrap();
        for metric in [DistanceMetric::L1, DistanceMetric::L2] {
            let d_ab = a.distance_to(&c_set, metric);
            let d_ba = c_set.distance_to(&a, metric);
            assert!(d_ab > 0.0);
            assert!((d_ab - d_ba).abs() < 1e-4);
        }
    });
}
