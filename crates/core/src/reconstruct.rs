//! Discriminative-model reconstruction — Algorithms 2, 3 and 4.
//!
//! Once a drift is detected the model must re-learn the new concept from
//! the stream itself, with no buffering and (in the unsupervised setting)
//! no labels. Reconstruction runs through four sequential phases driven by
//! a single counter:
//!
//! 1. **Coordinate search** (`count < N_search`, Algorithm 3): incoming
//!    samples compete to become label coordinates; a sample replaces the
//!    coordinate whose replacement maximises the summed pairwise L1
//!    distance between coordinates — the k-means++ "spread the seeds" idea
//!    in sequential form.
//! 2. **Coordinate refinement** (`count < N_update`, Algorithm 4):
//!    sequential k-means — each sample moves its nearest coordinate by a
//!    running mean, washing out outlier seeds.
//! 3. **Distance-labelled retraining** (`count < N/2`): the sample is
//!    labelled by its nearest coordinate and the corresponding OS-ELM
//!    instance trains on it.
//! 4. **Prediction-labelled retraining** (`count < N`): the (partially
//!    retrained) model labels the sample itself and trains the winning
//!    instance — weaning the system off the crude distance labels.
//!
//! Phases 1–2 overlap by construction (a sample in phase 1 also refines).
//! The printed Algorithm 2 has phases 3 and 4 as two non-exclusive `if`s;
//! we treat them as exclusive ranges (`[..N/2)` and `[N/2..N)`) — training
//! each early sample twice with two different labels is clearly not
//! intended.
//!
//! While phases 3–4 run, the per-sample distances to the chosen coordinate
//! feed a Welford accumulator so `θ_drift` is recalibrated (Eq. 1) with no
//! extra memory; at `count == N` reconstruction reports the new trained
//! centroids and threshold.

use crate::centroid::CentroidSet;
use crate::threshold::DriftThresholdCalibrator;
use crate::{CoreError, Result};
use seqdrift_linalg::{vector, Real};
use seqdrift_oselm::MultiInstanceModel;

/// Configuration of the reconstruction schedule.
#[derive(Debug, Clone, Copy)]
pub struct ReconstructConfig {
    /// Samples participating in coordinate search (`N_search`).
    pub n_search: usize,
    /// Samples participating in coordinate refinement (`N_update`).
    pub n_update: usize,
    /// Total reconstruction length (`N`).
    pub n_total: usize,
    /// Eq. 1 `z` for the recalibrated `θ_drift`.
    pub z: Real,
    /// After coordinate refinement, reorder the coordinates to best match
    /// the previous trained centroids (minimum-cost assignment) so label
    /// identity survives reconstruction when the new concepts are still
    /// attributable to the old ones. The paper leaves label identity
    /// undefined (its pseudocode can permute or even scramble labels —
    /// Algorithm 3 maximises spread with no notion of identity); downstream
    /// consumers of labels almost always want this on.
    pub align_labels: bool,
}

impl ReconstructConfig {
    /// Schedule derived from the total length: search 10%, refine 25%.
    pub fn new(n_total: usize) -> Self {
        ReconstructConfig {
            n_search: (n_total / 10).max(1),
            n_update: (n_total / 4).max(2),
            n_total,
            z: crate::threshold::DEFAULT_Z,
            align_labels: true,
        }
    }

    /// Disables post-refinement label alignment (raw Algorithms 2–4).
    pub fn without_label_alignment(mut self) -> Self {
        self.align_labels = false;
        self
    }

    /// Overrides the search length.
    pub fn with_search(mut self, n: usize) -> Self {
        self.n_search = n;
        self
    }

    /// Overrides the refinement length.
    pub fn with_update(mut self, n: usize) -> Self {
        self.n_update = n;
        self
    }

    /// Overrides `z`.
    pub fn with_z(mut self, z: Real) -> Self {
        self.z = z;
        self
    }

    fn validate(&self) -> Result<()> {
        if self.n_total < 4 {
            return Err(CoreError::InvalidConfig("n_total must be >= 4"));
        }
        if self.n_search == 0 || self.n_search > self.n_update {
            return Err(CoreError::InvalidConfig("need 0 < n_search <= n_update"));
        }
        if self.n_update > self.n_total / 2 {
            return Err(CoreError::InvalidConfig(
                "n_update must not exceed n_total / 2",
            ));
        }
        Ok(())
    }
}

/// Which phase a reconstruction step executed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconPhase {
    /// Phases 1–2 (coordinate search / refinement).
    Coordinates,
    /// Phase 3 (distance-labelled retraining).
    DistanceLabelled,
    /// Phase 4 (prediction-labelled retraining).
    PredictionLabelled,
}

/// Result of one reconstruction step.
#[derive(Debug, Clone)]
pub enum ReconOutcome {
    /// Reconstruction continues.
    InProgress {
        /// Phase this sample was used in.
        phase: ReconPhase,
        /// Label whose instance was trained, if any.
        trained_label: Option<usize>,
    },
    /// Reconstruction finished with this sample.
    Done {
        /// New trained centroids (with their sample counts).
        new_trained: CentroidSet,
        /// Recalibrated `θ_drift` (Eq. 1 over the retraining distances).
        theta_drift: Real,
    },
}

/// Sequential model reconstructor (Algorithm 2 driver).
#[derive(Debug, Clone)]
pub struct Reconstructor {
    cfg: ReconstructConfig,
    cor: CentroidSet,
    /// Coordinates seeded so far (the first C search samples are placed
    /// directly, one per coordinate, before maximin replacement engages).
    seeded: usize,
    /// Trained centroids in force when reconstruction started (label-
    /// alignment reference).
    previous: CentroidSet,
    count: usize,
    calibrator: DriftThresholdCalibrator,
    active: bool,
}

impl Reconstructor {
    /// Creates an inactive reconstructor for `classes x dim`.
    pub fn new(cfg: ReconstructConfig, classes: usize, dim: usize) -> Result<Self> {
        cfg.validate()?;
        if classes == 0 || dim == 0 {
            return Err(CoreError::InvalidConfig("classes and dim must be > 0"));
        }
        Ok(Reconstructor {
            cfg,
            cor: CentroidSet::zeros(classes, dim),
            previous: CentroidSet::zeros(classes, dim),
            seeded: 0,
            count: 0,
            calibrator: DriftThresholdCalibrator::new(),
            active: false,
        })
    }

    /// The schedule.
    pub fn config(&self) -> &ReconstructConfig {
        &self.cfg
    }

    /// Whether a reconstruction is running.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Samples consumed by the current reconstruction.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Current working coordinates (diagnostics).
    pub fn coordinates(&self) -> &CentroidSet {
        &self.cor
    }

    /// Begins a reconstruction: coordinates seed from *zero* so Algorithm
    /// 3's spread-maximisation acts like true k-means++ seeding (seeding
    /// from the old centroids lets an extreme new sample evict a *middle*
    /// coordinate and strand two coordinates on one cluster), the threshold
    /// calibrator clears, and every model instance's plasticity is restored
    /// so sequential retraining can actually move the weights (see lib.rs
    /// interpretation note 3). The old centroids are retained as the
    /// label-alignment reference.
    pub fn start(&mut self, previous: &CentroidSet, model: &mut MultiInstanceModel) -> Result<()> {
        if previous.classes() != self.cor.classes() || previous.dim() != self.cor.dim() {
            return Err(CoreError::InvalidConfig("previous centroid shape mismatch"));
        }
        self.previous = previous.clone();
        self.cor = CentroidSet::zeros(self.cor.classes(), self.cor.dim());
        self.seeded = 0;
        self.count = 0;
        self.calibrator.reset();
        self.active = true;
        model.reset_plasticity()?;
        Ok(())
    }

    /// Feeds one sample (Algorithm 2 body). Errors if not active.
    pub fn step(&mut self, model: &mut MultiInstanceModel, x: &[Real]) -> Result<ReconOutcome> {
        if !self.active {
            return Err(CoreError::InvalidConfig(
                "reconstructor stepped while inactive",
            ));
        }
        if x.len() != self.cor.dim() {
            return Err(CoreError::DimensionMismatch {
                expected: self.cor.dim(),
                got: x.len(),
            });
        }
        self.count += 1;
        let count = self.count;

        if count <= self.cfg.n_search {
            self.init_coord(x);
        }
        let mut phase = ReconPhase::Coordinates;
        let mut trained_label = None;
        if count <= self.cfg.n_update {
            self.update_coord(x)?;
        }
        if count == self.cfg.n_update + 1 && self.cfg.align_labels {
            // Refinement just finished: reorder coordinates onto the old
            // label identities before any instance trains.
            let mapping = self.cor.match_to(&self.previous);
            self.cor = self.cor.permuted(&mapping)?;
        }
        if count > self.cfg.n_update && count <= self.cfg.n_total / 2 {
            // Phase 3: nearest-coordinate label.
            let label = self.cor.nearest_label(x);
            self.calibrator
                .push(vector::dist_l1(self.cor.centroid(label)?, x));
            self.cor.update(label, x)?;
            model.seq_train_label(label, x)?;
            phase = ReconPhase::DistanceLabelled;
            trained_label = Some(label);
        } else if count > self.cfg.n_total / 2 {
            // Phase 4: model-predicted label.
            let label = model.predict(x)?.label;
            self.calibrator
                .push(vector::dist_l1(self.cor.centroid(label)?, x));
            self.cor.update(label, x)?;
            model.seq_train_label(label, x)?;
            phase = ReconPhase::PredictionLabelled;
            trained_label = Some(label);
        }

        if count >= self.cfg.n_total {
            self.active = false;
            let theta_drift = self.calibrator.threshold(self.cfg.z)?.max(Real::EPSILON);
            return Ok(ReconOutcome::Done {
                new_trained: self.cor.clone(),
                theta_drift,
            });
        }
        Ok(ReconOutcome::InProgress {
            phase,
            trained_label,
        })
    }

    /// Algorithm 3, with two repairs documented in the module docs:
    ///
    /// 1. **Forgy bootstrap** — the first `C` search samples take one
    ///    coordinate each. Coordinates start equal (zero), so the
    ///    dispersion objective is pinned at zero until they differ.
    /// 2. **Maximin objective** — replacement competes on the *minimum*
    ///    pairwise distance instead of the printed sum. The sum objective
    ///    is degenerate beyond two classes: an extreme sample evicts a
    ///    *middle* coordinate (that raises the sum most), stranding two
    ///    coordinates on one cluster, and sequential k-means cannot split
    ///    them apart again. For C <= 2 the objectives coincide (at most
    ///    one pair), so the paper's evaluated configurations are
    ///    unaffected.
    fn init_coord(&mut self, data: &[Real]) {
        if self.seeded < self.cor.classes() {
            self.cor
                .set_centroid(self.seeded, data)
                .expect("shape checked");
            self.seeded += 1;
            return;
        }
        let baseline = self.cor.min_pairwise_distance();
        let classes = self.cor.classes();
        let mut best: Option<(usize, Real)> = None;
        let mut tmp = vec![0.0; self.cor.dim()];
        for c in 0..classes {
            tmp.copy_from_slice(self.cor.centroid(c).expect("label in range"));
            self.cor.set_centroid(c, data).expect("shape checked");
            let dist = self.cor.min_pairwise_distance();
            self.cor.set_centroid(c, &tmp).expect("shape checked");
            let beats_baseline = dist > baseline;
            let beats_best = best.is_none_or(|(_, d)| dist > d);
            if beats_baseline && beats_best {
                best = Some((c, dist));
            }
        }
        if let Some((label, _)) = best {
            self.cor.set_centroid(label, data).expect("shape checked");
        }
    }

    /// Algorithm 4: sequential k-means refinement.
    fn update_coord(&mut self, data: &[Real]) -> Result<()> {
        let label = self.cor.nearest_label(data);
        self.cor.update(label, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdrift_linalg::Rng;
    use seqdrift_oselm::OsElmConfig;

    fn blob(n: usize, dim: usize, mean: Real, seed: u64) -> Vec<Vec<Real>> {
        let mut rng = Rng::seed_from(seed);
        (0..n)
            .map(|_| {
                let mut x = vec![0.0; dim];
                rng.fill_normal(&mut x, mean, 0.05);
                x
            })
            .collect()
    }

    fn trained_model() -> MultiInstanceModel {
        let mut m = MultiInstanceModel::new(2, OsElmConfig::new(4, 3).with_seed(5)).unwrap();
        m.init_train_class(0, &blob(60, 4, 0.2, 1)).unwrap();
        m.init_train_class(1, &blob(60, 4, 0.8, 2)).unwrap();
        m
    }

    fn old_centroids() -> CentroidSet {
        let mut c = CentroidSet::zeros(2, 4);
        c.set_centroid(0, &[0.2; 4]).unwrap();
        c.set_centroid(1, &[0.8; 4]).unwrap();
        c.set_count(0, 60);
        c.set_count(1, 60);
        c
    }

    #[test]
    fn config_validation() {
        assert!(ReconstructConfig::new(100).validate().is_ok());
        assert!(ReconstructConfig::new(2).validate().is_err());
        assert!(ReconstructConfig::new(100)
            .with_search(0)
            .validate()
            .is_err());
        assert!(ReconstructConfig::new(100)
            .with_search(30)
            .with_update(20)
            .validate()
            .is_err());
        assert!(ReconstructConfig::new(100)
            .with_update(60)
            .validate()
            .is_err());
    }

    #[test]
    fn step_before_start_is_an_error() {
        let mut r = Reconstructor::new(ReconstructConfig::new(40), 2, 4).unwrap();
        let mut m = trained_model();
        assert!(r.step(&mut m, &[0.0; 4]).is_err());
    }

    #[test]
    fn runs_exactly_n_total_steps() {
        let mut r = Reconstructor::new(ReconstructConfig::new(40), 2, 4).unwrap();
        let mut m = trained_model();
        r.start(&old_centroids(), &mut m).unwrap();
        let data = blob(40, 4, 0.5, 3);
        let mut done_at = None;
        for (i, x) in data.iter().enumerate() {
            match r.step(&mut m, x).unwrap() {
                ReconOutcome::Done { .. } => {
                    done_at = Some(i);
                    break;
                }
                ReconOutcome::InProgress { .. } => {}
            }
        }
        assert_eq!(done_at, Some(39));
        assert!(!r.is_active());
    }

    #[test]
    fn phases_follow_schedule() {
        let cfg = ReconstructConfig::new(40).with_search(4).with_update(10);
        let mut r = Reconstructor::new(cfg, 2, 4).unwrap();
        let mut m = trained_model();
        r.start(&old_centroids(), &mut m).unwrap();
        let data = blob(40, 4, 0.5, 4);
        let mut phases = Vec::new();
        for x in &data {
            match r.step(&mut m, x).unwrap() {
                ReconOutcome::InProgress { phase, .. } => phases.push(phase),
                ReconOutcome::Done { .. } => {}
            }
        }
        // Samples 1..=10 coordinates, 11..=20 distance-labelled, 21..=39
        // prediction-labelled (40th returns Done).
        assert!(phases[..10].iter().all(|&p| p == ReconPhase::Coordinates));
        assert!(phases[10..20]
            .iter()
            .all(|&p| p == ReconPhase::DistanceLabelled));
        assert!(phases[20..]
            .iter()
            .all(|&p| p == ReconPhase::PredictionLabelled));
    }

    #[test]
    fn recovers_two_new_blobs() {
        // Old concept at 0.2 / 0.8; new concept at 0.0 / 1.0 (swapped-ish
        // positions still near old seeds, so labels stay aligned).
        let cfg = ReconstructConfig::new(200).with_search(20).with_update(50);
        let mut r = Reconstructor::new(cfg, 2, 4).unwrap();
        let mut m = trained_model();
        r.start(&old_centroids(), &mut m).unwrap();
        let mut rng = Rng::seed_from(6);
        let mut outcome = None;
        for i in 0..200 {
            let mean = if i % 2 == 0 { 0.05 } else { 0.95 };
            let mut x = vec![0.0; 4];
            rng.fill_normal(&mut x, mean, 0.04);
            if let ReconOutcome::Done {
                new_trained,
                theta_drift,
            } = r.step(&mut m, &x).unwrap()
            {
                outcome = Some((new_trained, theta_drift));
            }
        }
        let (new_trained, theta_drift) = outcome.expect("reconstruction must finish");
        assert!(theta_drift > 0.0);
        // One centroid near 0.05, the other near 0.95.
        let c0 = new_trained.centroid(0).unwrap()[0];
        let c1 = new_trained.centroid(1).unwrap()[0];
        let (lo, hi) = if c0 < c1 { (c0, c1) } else { (c1, c0) };
        assert!((lo - 0.05).abs() < 0.1, "low centroid {lo}");
        assert!((hi - 0.95).abs() < 0.1, "high centroid {hi}");
        // The retrained model separates the new blobs.
        let mut x_lo = vec![0.05; 4];
        let mut x_hi = vec![0.95; 4];
        rng.fill_normal(&mut x_lo, 0.05, 0.02);
        rng.fill_normal(&mut x_hi, 0.95, 0.02);
        assert_ne!(
            m.predict(&x_lo).unwrap().label,
            m.predict(&x_hi).unwrap().label
        );
    }

    #[test]
    fn init_coord_spreads_seeds() {
        let cfg = ReconstructConfig::new(40).with_search(6).with_update(10);
        let mut r = Reconstructor::new(cfg, 2, 1).unwrap();
        let mut m = MultiInstanceModel::new(2, OsElmConfig::new(1, 2).with_seed(9)).unwrap();
        m.init_train_class(0, &blob(30, 1, 0.4, 11)).unwrap();
        m.init_train_class(1, &blob(30, 1, 0.6, 12)).unwrap();
        let mut prev = CentroidSet::zeros(2, 1);
        prev.set_centroid(0, &[0.4]).unwrap();
        prev.set_centroid(1, &[0.6]).unwrap();
        r.start(&prev, &mut m).unwrap();
        // Extreme points arrive: seeds should spread to cover them.
        r.step(&mut m, &[-3.0]).unwrap();
        r.step(&mut m, &[3.0]).unwrap();
        let spread = r.coordinates().pairwise_distance_sum();
        assert!(spread > 3.0, "seeds not spread: {spread}");
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut r = Reconstructor::new(ReconstructConfig::new(40), 2, 4).unwrap();
        let mut m = trained_model();
        r.start(&old_centroids(), &mut m).unwrap();
        assert!(matches!(
            r.step(&mut m, &[0.0; 3]),
            Err(CoreError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn restart_after_completion_works() {
        let mut r = Reconstructor::new(ReconstructConfig::new(20), 2, 4).unwrap();
        let mut m = trained_model();
        for round in 0..2 {
            r.start(&old_centroids(), &mut m).unwrap();
            let data = blob(20, 4, 0.5, 100 + round);
            let mut finished = false;
            for x in &data {
                if matches!(r.step(&mut m, x).unwrap(), ReconOutcome::Done { .. }) {
                    finished = true;
                }
            }
            assert!(finished, "round {round} did not finish");
        }
    }
}
