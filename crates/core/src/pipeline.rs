//! The complete online loop of Figure 2: discriminative model + proposed
//! detector + model reconstruction.
//!
//! Per sample:
//!
//! 1. the multi-instance OS-ELM predicts a label and an anomaly score
//!    (Algorithm 1 lines 6–7);
//! 2. if no reconstruction is running, the [`CentroidDetector`] consumes
//!    `(label, x, score)` (lines 8–19) and may flag a drift;
//! 3. on a drift flag the [`Reconstructor`] takes over (line 21,
//!    Algorithm 2) until its schedule completes, after which the detector
//!    is rebased onto the new centroids and recalibrated `θ_drift`.
//!
//! Every step is sequential and allocation-free after construction; total
//! resident state is the model parameters plus two centroid sets.

use crate::centroid::CentroidSet;
use crate::detector::{CentroidDetector, DetectorConfig, DetectorOutcome};
use crate::guard::{GuardConfig, GuardCounters, GuardVerdict, SampleGuard};
use crate::reconstruct::{ReconOutcome, ReconstructConfig, Reconstructor};
use crate::threshold::{calibrate_drift_threshold, calibrate_error_threshold};
use crate::{CoreError, Result};
use seqdrift_linalg::Real;
use seqdrift_oselm::{ModelError, MultiInstanceModel};

/// Pipeline configuration beyond the detector's own.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Detector configuration. `theta_error` / `theta_drift` are treated as
    /// "calibrate for me" when left at their `DetectorConfig::new` defaults.
    pub detector: DetectorConfig,
    /// Reconstruction schedule.
    pub reconstruct: ReconstructConfig,
    /// Quantile of training anomaly scores used to calibrate `θ_error`
    /// when it was not set explicitly.
    pub error_quantile: Real,
    /// Multiplier applied on top of the quantile. `θ_error` must sit
    /// *above* the in-distribution score band — any normal sample that
    /// clears the gate opens a spurious window, inflating `num` and
    /// permanently slowing centroid movement — while staying below true
    /// anomaly scores (typically orders of magnitude higher for an
    /// autoencoder). Default: 3x the training maximum (the training max of a small split underestimates the deployment tail).
    pub error_margin: Real,
    /// Eq. 1 `z` for the initial `θ_drift` calibration.
    pub z: Real,
    /// Whether the closest instance keeps sequentially training on samples
    /// that open no detection window (the discriminative model's normal
    /// online learning from §3.1). The paper's evaluation keeps the model
    /// frozen between reconstructions, so this defaults to `false`.
    pub train_on_stable: bool,
    /// Input-guard policy and thresholds (see [`crate::guard`]).
    pub guard: GuardConfig,
}

impl PipelineConfig {
    /// Defaults around a detector config.
    pub fn new(detector: DetectorConfig) -> Self {
        PipelineConfig {
            reconstruct: ReconstructConfig::new(200),
            error_quantile: 1.0,
            error_margin: 3.0,
            z: crate::threshold::DEFAULT_Z,
            detector,
            train_on_stable: false,
            guard: GuardConfig::default(),
        }
    }

    /// Overrides the reconstruction schedule.
    pub fn with_reconstruct(mut self, r: ReconstructConfig) -> Self {
        self.reconstruct = r;
        self
    }

    /// Overrides the `θ_error` calibration quantile.
    pub fn with_error_quantile(mut self, q: Real) -> Self {
        self.error_quantile = q;
        self
    }

    /// Overrides the multiplier applied on top of the `θ_error` quantile.
    pub fn with_error_margin(mut self, margin: Real) -> Self {
        self.error_margin = margin;
        self
    }

    /// Overrides Eq. 1's `z` for the initial `θ_drift` calibration.
    pub fn with_z(mut self, z: Real) -> Self {
        self.z = z;
        self
    }

    /// Enables continuous training of the closest instance on stable
    /// samples.
    pub fn with_train_on_stable(mut self, yes: bool) -> Self {
        self.train_on_stable = yes;
        self
    }

    /// Overrides the input-guard configuration.
    pub fn with_guard(mut self, guard: GuardConfig) -> Self {
        self.guard = guard;
        self
    }
}

/// Per-sample pipeline output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineOutput {
    /// Predicted class label (always produced).
    pub predicted_label: Option<usize>,
    /// Anomaly score of the winning instance.
    pub score: Real,
    /// True exactly on the sample whose window check flagged a drift.
    pub drift_detected: bool,
    /// True while model reconstruction is consuming samples.
    pub reconstructing: bool,
    /// Drift distance after this sample (diagnostics; the Figure-4-style
    /// traces plot this).
    pub drift_distance: Real,
    /// True when the guard repaired this sample (clamped or imputed) before
    /// processing; the pipeline is degraded until enough clean samples
    /// follow.
    pub sanitized: bool,
}

/// Why a pipeline left the `Healthy` state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeReason {
    /// The guard rejected or repaired input samples (non-finite, oversized,
    /// stuck or mis-sized readings).
    InputFault,
    /// A sequential model update was rejected and rolled back by the
    /// numerical-health layer.
    NumericalFault,
}

impl std::fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DegradeReason::InputFault => "input-fault",
            DegradeReason::NumericalFault => "numerical-fault",
        })
    }
}

/// Health state of a pipeline, driven by the guard and the transactional
/// update layer: `Healthy → Degraded(reason) → Healthy` (the transition
/// back is surfaced as [`PipelineEvent::Recovered`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PipelineHealth {
    /// No recent faults.
    #[default]
    Healthy,
    /// A fault was seen and fewer than `guard.recover_after` clean samples
    /// have been processed since. The reason is the *first* fault of the
    /// current degraded episode.
    Degraded(DegradeReason),
}

/// Events the pipeline logs (drift detections and reconstruction
/// completions) for the experiment harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PipelineEvent {
    /// Drift flagged at this 0-based sample index.
    DriftDetected {
        /// Stream index.
        index: u64,
        /// Distance that crossed the threshold.
        dist: Real,
    },
    /// Reconstruction finished at this sample index.
    Reconstructed {
        /// Stream index.
        index: u64,
        /// Recalibrated threshold now in force.
        new_theta_drift: Real,
    },
    /// The pipeline left `Healthy` (first fault of a degraded episode).
    Degraded {
        /// Stream index of the faulting sample.
        index: u64,
        /// What went wrong.
        reason: DegradeReason,
    },
    /// The pipeline returned to `Healthy` after `guard.recover_after`
    /// consecutive clean samples.
    Recovered {
        /// Stream index of the sample that completed recovery.
        index: u64,
    },
}

/// The coupled model + detector + reconstructor.
#[derive(Debug, Clone)]
pub struct DriftPipeline {
    model: MultiInstanceModel,
    detector: CentroidDetector,
    reconstructor: Reconstructor,
    cfg: PipelineConfig,
    samples_processed: u64,
    events: Vec<PipelineEvent>,
    guard: SampleGuard,
    /// Scratch for guard-sanitized samples (reused, never reallocated).
    guard_buf: Vec<Real>,
    health: PipelineHealth,
    /// Consecutive clean samples since the last fault (recovery progress).
    clean_streak: u64,
}

// The pipeline holds plain owned data with no interior mutability, so a
// caught panic cannot leave observable shared state behind — supervisors
// (e.g. the fleet's per-session `catch_unwind` wrapper) discard the
// possibly-half-mutated value and restore from a checkpoint. These impls
// state that policy explicitly instead of scattering `AssertUnwindSafe`
// at every call site.
impl std::panic::UnwindSafe for DriftPipeline {}
impl std::panic::RefUnwindSafe for DriftPipeline {}

impl DriftPipeline {
    /// Builds a pipeline from an initially-trained model and labelled
    /// training data, calibrating whatever thresholds the caller left
    /// unset:
    ///
    /// * trained centroids = per-label means of the training data
    ///   (Figure 3(b));
    /// * `θ_drift` = Eq. 1 over sample-to-predicted-label-centroid
    ///   distances;
    /// * `θ_error` = `error_quantile` of training anomaly scores.
    pub fn calibrate(
        model: MultiInstanceModel,
        detector_cfg: DetectorConfig,
        train: &[(usize, &[Real])],
    ) -> Result<DriftPipeline> {
        Self::calibrate_with(model, detector_cfg, train, None)
    }

    /// [`DriftPipeline::calibrate`] with an explicit pipeline config.
    pub fn calibrate_with(
        mut model: MultiInstanceModel,
        detector_cfg: DetectorConfig,
        train: &[(usize, &[Real])],
        pipeline_cfg: Option<PipelineConfig>,
    ) -> Result<DriftPipeline> {
        let mut cfg = pipeline_cfg.unwrap_or_else(|| PipelineConfig::new(detector_cfg.clone()));
        cfg.detector = detector_cfg;
        if train.is_empty() {
            return Err(CoreError::InvalidConfig("empty calibration data"));
        }
        let classes = cfg.detector.classes;
        let dim = cfg.detector.dim;
        if model.classes() != classes || model.dim() != dim {
            return Err(CoreError::InvalidConfig(
                "model shape does not match detector config",
            ));
        }
        if !model.is_initialized() {
            // Convenience: initially train from the calibration data.
            let grouped: Vec<(usize, Vec<Real>)> =
                train.iter().map(|(l, x)| (*l, x.to_vec())).collect();
            model.init_train_labeled(&grouped)?;
        }

        // Trained centroids from ground-truth training labels.
        let trained = CentroidSet::from_labeled(classes, dim, train)?;

        // Predicted labels + scores over the training set drive both
        // threshold calibrations (Eq. 1 uses the *predicted* label's
        // centroid).
        let mut scores = Vec::with_capacity(train.len());
        let mut predicted: Vec<(usize, &[Real])> = Vec::with_capacity(train.len());
        for (_, x) in train {
            let p = model.predict(x)?;
            scores.push(p.score);
            predicted.push((p.label, x));
        }
        if cfg.detector.theta_drift == Real::INFINITY {
            cfg.detector.theta_drift =
                calibrate_drift_threshold(&trained, &predicted, cfg.detector.metric, cfg.z)?
                    .max(Real::EPSILON);
        }
        if cfg.detector.theta_error == 0.0 {
            cfg.detector.theta_error =
                cfg.error_margin * calibrate_error_threshold(&scores, cfg.error_quantile)?;
        }

        let detector = CentroidDetector::new(cfg.detector.clone(), trained)?;
        let reconstructor = Reconstructor::new(cfg.reconstruct, classes, dim)?;
        let guard = SampleGuard::new(cfg.guard, dim)?;
        Ok(DriftPipeline {
            model,
            detector,
            reconstructor,
            cfg,
            samples_processed: 0,
            events: Vec::new(),
            guard,
            guard_buf: Vec::with_capacity(dim),
            health: PipelineHealth::Healthy,
            clean_streak: 0,
        })
    }

    /// Rebuilds a pipeline from persisted parts (see `crate::persist`).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_restored_parts(
        model: MultiInstanceModel,
        detector: CentroidDetector,
        reconstructor: Reconstructor,
        cfg: PipelineConfig,
        samples_processed: u64,
        guard: SampleGuard,
        health: PipelineHealth,
        clean_streak: u64,
    ) -> Result<DriftPipeline> {
        if model.classes() != cfg.detector.classes || model.dim() != cfg.detector.dim {
            return Err(CoreError::InvalidConfig(
                "restore: model shape does not match detector config",
            ));
        }
        let dim = cfg.detector.dim;
        Ok(DriftPipeline {
            model,
            detector,
            reconstructor,
            cfg,
            samples_processed,
            events: Vec::new(),
            guard,
            guard_buf: Vec::with_capacity(dim),
            health,
            clean_streak,
        })
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    /// The underlying model.
    pub fn model(&self) -> &MultiInstanceModel {
        &self.model
    }

    /// The detector.
    pub fn detector(&self) -> &CentroidDetector {
        &self.detector
    }

    /// Replaces the underlying model with a federated merged model.
    ///
    /// Only the model is swapped: the detector's centroids and
    /// thresholds, guard counters, health state, event log and
    /// `samples_processed` are all untouched, so durable resume offsets
    /// and drift bookkeeping stay valid across the install. Refused while
    /// a reconstruction is consuming samples — reconstruction owns the
    /// model during its schedule, and installing over it would corrupt
    /// the rebuild (callers skip the session and retry next round).
    pub fn install_model(&mut self, model: MultiInstanceModel) -> Result<()> {
        if self.reconstructor.is_active() {
            return Err(CoreError::InvalidConfig(
                "install_model: reconstruction in progress",
            ));
        }
        if model.classes() != self.cfg.detector.classes || model.dim() != self.cfg.detector.dim {
            return Err(CoreError::InvalidConfig(
                "install_model: model shape does not match pipeline config",
            ));
        }
        if !model.is_initialized() {
            return Err(CoreError::InvalidConfig(
                "install_model: model not initially trained",
            ));
        }
        self.model = model;
        Ok(())
    }

    /// Logged events.
    pub fn events(&self) -> &[PipelineEvent] {
        &self.events
    }

    /// Removes and returns all events logged since the last drain (or since
    /// construction). Long-running hosts — the fleet engine in particular —
    /// use this to forward events without letting the internal log grow
    /// unboundedly.
    pub fn drain_events(&mut self) -> Vec<PipelineEvent> {
        std::mem::take(&mut self.events)
    }

    /// Samples processed so far.
    pub fn samples_processed(&self) -> u64 {
        self.samples_processed
    }

    /// Whether a reconstruction is currently consuming samples.
    pub fn is_reconstructing(&self) -> bool {
        self.reconstructor.is_active()
    }

    /// Current health state.
    pub fn health(&self) -> PipelineHealth {
        self.health
    }

    /// Lifetime guard tallies for this pipeline.
    pub fn guard_counters(&self) -> GuardCounters {
        self.guard.counters()
    }

    /// The active guard configuration.
    pub fn guard_config(&self) -> &GuardConfig {
        self.guard.config()
    }

    /// Replaces the guard configuration at runtime (counters, health and
    /// imputation state are kept). Used to apply CLI overrides to a
    /// restored pipeline.
    pub fn set_guard_config(&mut self, guard: GuardConfig) -> Result<()> {
        self.guard.set_config(guard)?;
        self.cfg.guard = guard;
        Ok(())
    }

    /// Recovery progress (persistence).
    pub(crate) fn clean_streak(&self) -> u64 {
        self.clean_streak
    }

    /// Guard imputation source (persistence).
    pub(crate) fn guard_last_good(&self) -> &[Real] {
        self.guard.last_good()
    }

    /// Guard stuck-run reference sample (persistence).
    pub(crate) fn guard_last_raw(&self) -> &[Real] {
        self.guard.last_raw()
    }

    /// Guard stuck-run length (persistence).
    pub(crate) fn guard_run_len(&self) -> u64 {
        self.guard.run_len()
    }

    /// Marks the pipeline degraded; emits the event only on the
    /// `Healthy → Degraded` edge (the first fault of an episode keeps its
    /// reason until recovery).
    fn degrade(&mut self, reason: DegradeReason, index: u64) {
        self.clean_streak = 0;
        if self.health == PipelineHealth::Healthy {
            self.health = PipelineHealth::Degraded(reason);
            self.events.push(PipelineEvent::Degraded { index, reason });
        }
    }

    /// Records a fault-free sample; after `guard.recover_after` of them in
    /// a row a degraded pipeline transitions back to `Healthy`.
    fn note_clean(&mut self, index: u64) {
        if let PipelineHealth::Degraded(_) = self.health {
            self.clean_streak += 1;
            if self.clean_streak >= self.cfg.guard.recover_after {
                self.health = PipelineHealth::Healthy;
                self.clean_streak = 0;
                self.events.push(PipelineEvent::Recovered { index });
            }
        }
    }

    /// Processes one sample through the full loop.
    ///
    /// The sample first passes the input guard (see [`crate::guard`]):
    /// under the default [`crate::GuardPolicy::Reject`] a non-finite,
    /// oversized, mis-sized or stuck sample returns a typed error and
    /// touches *no* state (a single NaN would otherwise poison the running
    /// centroids and silently disable detection forever); under `Clamp` /
    /// `ImputeLast` the sample is repaired and processed with
    /// [`PipelineOutput::sanitized`] set. Sequential model updates rejected
    /// by the numerical-health layer (see
    /// [`seqdrift_oselm::ModelError::RejectedUpdate`]) are swallowed — the
    /// update rolls back, the pipeline degrades and keeps running. Both
    /// fault kinds drive the `Healthy → Degraded → Recovered` machine
    /// surfaced through [`PipelineEvent`]s.
    pub fn process(&mut self, x: &[Real]) -> Result<PipelineOutput> {
        let index = self.samples_processed;
        let mut buf = std::mem::take(&mut self.guard_buf);
        let verdict = match self.guard.admit(x, &mut buf) {
            Ok(v) => v,
            Err(e) => {
                self.guard_buf = buf;
                self.degrade(DegradeReason::InputFault, index);
                return Err(e);
            }
        };
        let sanitized = verdict == GuardVerdict::Sanitized;
        let result = self.process_admitted(if sanitized { &buf } else { x }, index, sanitized);
        self.guard_buf = buf;
        result
    }

    /// The post-guard pipeline loop; `x` is guaranteed finite and in-range.
    fn process_admitted(
        &mut self,
        x: &[Real],
        index: u64,
        sanitized: bool,
    ) -> Result<PipelineOutput> {
        if sanitized {
            self.degrade(DegradeReason::InputFault, index);
        }
        self.samples_processed += 1;
        // Tracks whether anything faulted on this sample, for recovery
        // accounting (a repaired sample never counts as clean).
        let mut faulted = sanitized;

        // Always predict: needed for accuracy reporting and as Algorithm 1
        // lines 6–7 (see lib.rs interpretation note 1).
        let prediction = self.model.predict(x)?;

        if self.reconstructor.is_active() {
            let mut reconstructing = true;
            match self.reconstructor.step(&mut self.model, x) {
                Ok(ReconOutcome::Done {
                    new_trained,
                    theta_drift,
                }) => {
                    self.detector.rebase(new_trained, theta_drift)?;
                    self.events.push(PipelineEvent::Reconstructed {
                        index,
                        new_theta_drift: theta_drift,
                    });
                    reconstructing = false;
                }
                Ok(_) => {}
                Err(CoreError::Model(ModelError::RejectedUpdate(_))) => {
                    // The instance rolled back; the reconstruction schedule
                    // self-heals one sample later. Degrade and keep going.
                    self.degrade(DegradeReason::NumericalFault, index);
                    faulted = true;
                }
                Err(e) => return Err(e),
            }
            if !faulted {
                self.note_clean(index);
            }
            return Ok(PipelineOutput {
                predicted_label: Some(prediction.label),
                score: prediction.score,
                drift_detected: false,
                reconstructing,
                drift_distance: self.detector.last_distance(),
                sanitized,
            });
        }

        let outcome = self
            .detector
            .observe(prediction.label, x, prediction.score)?;
        let mut drift_detected = false;
        if let DetectorOutcome::Checked { dist, drift: true } = outcome {
            drift_detected = true;
            self.events
                .push(PipelineEvent::DriftDetected { index, dist });
            self.reconstructor
                .start(self.detector.trained_centroids(), &mut self.model)?;
        } else if self.cfg.train_on_stable && outcome == DetectorOutcome::Idle {
            // Optional §3.1 behaviour: keep refining the winning instance
            // on in-distribution samples.
            match self.model.seq_train_label(prediction.label, x) {
                Ok(()) => {}
                Err(ModelError::RejectedUpdate(_)) => {
                    self.degrade(DegradeReason::NumericalFault, index);
                    faulted = true;
                }
                Err(e) => return Err(e.into()),
            }
        }
        if !faulted {
            self.note_clean(index);
        }

        Ok(PipelineOutput {
            predicted_label: Some(prediction.label),
            score: prediction.score,
            drift_detected,
            reconstructing: self.reconstructor.is_active() && drift_detected,
            drift_distance: self.detector.last_distance(),
            sanitized,
        })
    }

    /// Resident scalars of the detection machinery (model excluded):
    /// detector centroids + reconstructor coordinates. The Table 4
    /// comparison for the proposed method.
    pub fn detector_memory_scalars(&self) -> usize {
        self.detector.memory_scalars() + self.reconstructor.coordinates().memory_scalars()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdrift_linalg::Rng;
    use seqdrift_oselm::OsElmConfig;

    fn blob(n: usize, dim: usize, mean: Real, seed: u64) -> Vec<Vec<Real>> {
        let mut rng = Rng::seed_from(seed);
        (0..n)
            .map(|_| {
                let mut x = vec![0.0; dim];
                rng.fill_normal(&mut x, mean, 0.05);
                x
            })
            .collect()
    }

    fn build_pipeline(window: usize) -> (DriftPipeline, Vec<Vec<Real>>, Vec<Vec<Real>>) {
        let dim = 6;
        let class0 = blob(150, dim, 0.2, 1);
        let class1 = blob(150, dim, 0.8, 2);
        let mut model = MultiInstanceModel::new(2, OsElmConfig::new(dim, 4).with_seed(7)).unwrap();
        model.init_train_class(0, &class0).unwrap();
        model.init_train_class(1, &class1).unwrap();
        let train: Vec<(usize, &[Real])> = class0
            .iter()
            .map(|x| (0usize, x.as_slice()))
            .chain(class1.iter().map(|x| (1usize, x.as_slice())))
            .collect();
        let det = DetectorConfig::new(2, dim).with_window(window);
        let cfg = PipelineConfig::new(det.clone()).with_reconstruct(
            crate::ReconstructConfig::new(80)
                .with_search(8)
                .with_update(20),
        );
        let p = DriftPipeline::calibrate_with(model, det, &train, Some(cfg)).unwrap();
        (p, class0, class1)
    }

    #[test]
    fn calibration_sets_thresholds() {
        let (p, _, _) = build_pipeline(20);
        assert!(p.detector().config().theta_drift.is_finite());
        assert!(p.detector().config().theta_drift > 0.0);
        assert!(p.detector().config().theta_error > 0.0);
    }

    #[test]
    fn stable_stream_no_drift_and_accurate() {
        let (mut p, _, _) = build_pipeline(20);
        let mut rng = Rng::seed_from(3);
        let mut correct = 0;
        let n = 400;
        for i in 0..n {
            let (mean, label) = if i % 2 == 0 { (0.2, 0) } else { (0.8, 1) };
            let mut x = vec![0.0; 6];
            rng.fill_normal(&mut x, mean, 0.05);
            let out = p.process(&x).unwrap();
            assert!(!out.drift_detected, "false drift at {i}");
            if out.predicted_label == Some(label) {
                correct += 1;
            }
        }
        assert!(correct > n * 95 / 100, "accuracy {correct}/{n}");
        assert!(p.events().is_empty());
    }

    #[test]
    fn sudden_drift_is_detected_and_model_reconstructed() {
        let (mut p, _, _) = build_pipeline(20);
        let mut rng = Rng::seed_from(4);
        // Stable phase.
        for i in 0..100 {
            let mean = if i % 2 == 0 { 0.2 } else { 0.8 };
            let mut x = vec![0.0; 6];
            rng.fill_normal(&mut x, mean, 0.05);
            p.process(&x).unwrap();
        }
        // Drift: both classes move to new positions.
        let mut detected_at = None;
        let mut reconstructed_at = None;
        for i in 0..600 {
            let mean = if i % 2 == 0 { 0.45 } else { 1.1 };
            let mut x = vec![0.0; 6];
            rng.fill_normal(&mut x, mean, 0.05);
            let out = p.process(&x).unwrap();
            if out.drift_detected && detected_at.is_none() {
                detected_at = Some(i);
            }
        }
        for e in p.events() {
            if let PipelineEvent::Reconstructed { index, .. } = e {
                reconstructed_at = Some(*index);
            }
        }
        let d = detected_at.expect("drift not detected");
        assert!(d < 500, "detection delay {d}");
        let r = reconstructed_at.expect("reconstruction never completed");
        assert!(r as usize > d, "reconstruction before detection");
    }

    #[test]
    fn accuracy_recovers_after_reconstruction() {
        let (mut p, _, _) = build_pipeline(20);
        let mut rng = Rng::seed_from(5);
        for i in 0..100 {
            let mean = if i % 2 == 0 { 0.2 } else { 0.8 };
            let mut x = vec![0.0; 6];
            rng.fill_normal(&mut x, mean, 0.05);
            p.process(&x).unwrap();
        }
        // New concept: classes at 0.5 / 1.4 (class 0 moved more than a
        // window of noise, class 1 clearly elsewhere).
        let mut results: Vec<(usize, Option<usize>)> = Vec::new();
        for i in 0..900 {
            let (mean, label) = if i % 2 == 0 { (0.5, 0) } else { (1.4, 1) };
            let mut x = vec![0.0; 6];
            rng.fill_normal(&mut x, mean, 0.05);
            let out = p.process(&x).unwrap();
            results.push((label, out.predicted_label));
        }
        assert!(
            p.events()
                .iter()
                .any(|e| matches!(e, PipelineEvent::Reconstructed { .. })),
            "no reconstruction happened"
        );
        // Post-recovery accuracy over the last 200 samples, allowing label
        // permutation (reconstruction relabels clusters arbitrarily).
        let tail = &results[700..];
        let direct = tail.iter().filter(|(l, p)| Some(*l) == *p).count();
        let swapped = tail.iter().filter(|(l, p)| Some(1 - *l) == *p).count();
        let best = direct.max(swapped);
        assert!(best > 160, "post-recovery accuracy {best}/200");
    }

    #[test]
    fn events_are_ordered_and_indexed() {
        let (mut p, _, _) = build_pipeline(10);
        let mut rng = Rng::seed_from(6);
        for i in 0..600 {
            let mean = if i < 50 {
                if i % 2 == 0 {
                    0.2
                } else {
                    0.8
                }
            } else if i % 2 == 0 {
                0.5
            } else {
                1.2
            };
            let label = i % 2;
            let _ = label;
            let mut x = vec![0.0; 6];
            rng.fill_normal(&mut x, mean, 0.05);
            p.process(&x).unwrap();
        }
        let mut last = 0;
        for e in p.events() {
            let idx = match e {
                PipelineEvent::DriftDetected { index, .. } => *index,
                PipelineEvent::Reconstructed { index, .. } => *index,
                PipelineEvent::Degraded { index, .. } => *index,
                PipelineEvent::Recovered { index } => *index,
            };
            assert!(idx >= last);
            last = idx;
        }
        assert!(!p.events().is_empty());
    }

    #[test]
    fn detector_memory_is_small_and_constant() {
        let (mut p, _, _) = build_pipeline(20);
        let before = p.detector_memory_scalars();
        let mut rng = Rng::seed_from(7);
        for _ in 0..500 {
            let mut x = vec![0.0; 6];
            rng.fill_normal(&mut x, 0.2, 0.05);
            p.process(&x).unwrap();
        }
        assert_eq!(p.detector_memory_scalars(), before);
        // 3 centroid sets of (2 x 6 + 2) + detector bookkeeping.
        assert!(before < 100);
    }

    #[test]
    fn mismatched_model_rejected() {
        let model = MultiInstanceModel::new(3, OsElmConfig::new(6, 4)).unwrap();
        let det = DetectorConfig::new(2, 6);
        let xs = blob(10, 6, 0.2, 8);
        let train: Vec<(usize, &[Real])> = xs.iter().map(|x| (0usize, x.as_slice())).collect();
        assert!(DriftPipeline::calibrate(model, det, &train).is_err());
    }

    #[test]
    fn non_finite_inputs_are_rejected_and_state_preserved() {
        let (mut p, _, _) = build_pipeline(20);
        let mut rng = Rng::seed_from(99);
        let mut good = vec![0.0; 6];
        rng.fill_normal(&mut good, 0.2, 0.05);
        p.process(&good).unwrap();
        let samples_before = p.samples_processed();
        let dist_before = p.detector().last_distance();

        for bad_value in [Real::NAN, Real::INFINITY, Real::NEG_INFINITY] {
            let mut bad = good.clone();
            bad[3] = bad_value;
            match p.process(&bad) {
                Err(crate::CoreError::NonFiniteInput { feature }) => assert_eq!(feature, 3),
                other => panic!("expected NonFiniteInput, got {other:?}"),
            }
        }
        // The rejected samples must not have touched any state.
        assert_eq!(p.samples_processed(), samples_before);
        assert_eq!(p.detector().last_distance(), dist_before);
        // And the pipeline keeps working afterwards.
        let out = p.process(&good).unwrap();
        assert_eq!(out.predicted_label, Some(0));
    }

    #[test]
    fn rejection_degrades_then_clean_samples_recover() {
        let (mut p, _, _) = build_pipeline(20);
        let mut rng = Rng::seed_from(101);
        let mut good = vec![0.0; 6];
        rng.fill_normal(&mut good, 0.2, 0.05);
        p.process(&good).unwrap();
        assert_eq!(p.health(), PipelineHealth::Healthy);

        let mut bad = good.clone();
        bad[0] = Real::NAN;
        assert!(p.process(&bad).is_err());
        assert_eq!(
            p.health(),
            PipelineHealth::Degraded(DegradeReason::InputFault)
        );
        // A second fault while degraded emits no second event.
        assert!(p.process(&bad).is_err());

        let recover_after = p.guard_config().recover_after;
        let mut recovered_at = None;
        for i in 0..recover_after + 2 {
            let mut x = vec![0.0; 6];
            rng.fill_normal(&mut x, if i % 2 == 0 { 0.2 } else { 0.8 }, 0.05);
            p.process(&x).unwrap();
            if p.health() == PipelineHealth::Healthy && recovered_at.is_none() {
                recovered_at = Some(i);
            }
        }
        assert_eq!(recovered_at, Some(recover_after - 1));
        let degraded: Vec<_> = p
            .events()
            .iter()
            .filter(|e| matches!(e, PipelineEvent::Degraded { .. }))
            .collect();
        let recovered: Vec<_> = p
            .events()
            .iter()
            .filter(|e| matches!(e, PipelineEvent::Recovered { .. }))
            .collect();
        assert_eq!(degraded.len(), 1);
        assert_eq!(recovered.len(), 1);
        assert_eq!(p.guard_counters().rejected, 2);
    }

    #[test]
    fn clamp_policy_sanitizes_and_keeps_processing() {
        let dim = 6;
        let class0 = blob(150, dim, 0.2, 1);
        let class1 = blob(150, dim, 0.8, 2);
        let mut model = MultiInstanceModel::new(2, OsElmConfig::new(dim, 4).with_seed(7)).unwrap();
        model.init_train_class(0, &class0).unwrap();
        model.init_train_class(1, &class1).unwrap();
        let train: Vec<(usize, &[Real])> = class0
            .iter()
            .map(|x| (0usize, x.as_slice()))
            .chain(class1.iter().map(|x| (1usize, x.as_slice())))
            .collect();
        let det = DetectorConfig::new(2, dim).with_window(20);
        let cfg = PipelineConfig::new(det.clone())
            .with_guard(crate::GuardConfig::new().with_policy(crate::GuardPolicy::Clamp));
        let mut p = DriftPipeline::calibrate_with(model, det, &train, Some(cfg)).unwrap();

        let bad = [Real::NAN, Real::INFINITY, 0.2, 0.2, 0.2, 0.2];
        let out = p.process(&bad).unwrap();
        assert!(out.sanitized);
        assert!(out.score.is_finite());
        assert!(out.drift_distance.is_finite());
        assert_eq!(p.samples_processed(), 1);
        assert_eq!(p.guard_counters().sanitized, 1);
        assert_eq!(
            p.health(),
            PipelineHealth::Degraded(DegradeReason::InputFault)
        );
    }

    #[test]
    fn guard_config_survives_override_on_live_pipeline() {
        let (mut p, _, _) = build_pipeline(20);
        let cfg = crate::GuardConfig::new()
            .with_policy(crate::GuardPolicy::ImputeLast)
            .with_stuck_threshold(5);
        p.set_guard_config(cfg).unwrap();
        assert_eq!(p.guard_config().policy, crate::GuardPolicy::ImputeLast);
        assert_eq!(p.config().guard.stuck_threshold, 5);
        assert!(p
            .set_guard_config(crate::GuardConfig::new().with_magnitude_limit(-1.0))
            .is_err());
    }

    #[test]
    fn install_model_swaps_model_and_keeps_bookkeeping() {
        let (mut p, class0, _) = build_pipeline(20);
        for x in class0.iter().take(30) {
            p.process(x).unwrap();
        }
        let seen = p.samples_processed();
        // A compatible replacement: the same model, further adapted.
        let mut replacement = p.model().clone();
        for x in class0.iter().take(50) {
            replacement.seq_train_label(0, x).unwrap();
        }
        let expect_seen = replacement.instance(0).unwrap().samples_seen();
        p.install_model(replacement).unwrap();
        assert_eq!(p.samples_processed(), seen);
        assert_eq!(p.model().instance(0).unwrap().samples_seen(), expect_seen);
        // Pipeline still processes normally with the installed model.
        p.process(&class0[0]).unwrap();
        assert_eq!(p.samples_processed(), seen + 1);
    }

    #[test]
    fn install_model_rejects_incompatible_or_midreconstruction() {
        let (mut p, _, _) = build_pipeline(10);
        // Wrong shape: single-class model into a two-class pipeline.
        let mut small = MultiInstanceModel::new(1, OsElmConfig::new(6, 4).with_seed(7)).unwrap();
        small.init_train_class(0, &blob(60, 6, 0.2, 31)).unwrap();
        assert!(matches!(
            p.install_model(small),
            Err(CoreError::InvalidConfig(_))
        ));
        // Uninitialised model.
        let raw = MultiInstanceModel::new(2, OsElmConfig::new(6, 4).with_seed(7)).unwrap();
        assert!(matches!(
            p.install_model(raw),
            Err(CoreError::InvalidConfig(_))
        ));
        // Drive the pipeline into reconstruction, then refuse the install.
        let good = p.model().clone();
        let drifted = blob(400, 6, 0.5, 32);
        let mut i = 0;
        while !p.is_reconstructing() && i < drifted.len() {
            p.process(&drifted[i]).unwrap();
            i += 1;
        }
        assert!(p.is_reconstructing(), "drift stream never opened a window");
        assert!(matches!(
            p.install_model(good),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn train_on_stable_keeps_adapting() {
        let dim = 4;
        let class0 = blob(100, dim, 0.3, 10);
        let mut model = MultiInstanceModel::new(1, OsElmConfig::new(dim, 3).with_seed(11)).unwrap();
        model.init_train_class(0, &class0).unwrap();
        let train: Vec<(usize, &[Real])> = class0.iter().map(|x| (0usize, x.as_slice())).collect();
        let det = DetectorConfig::new(1, dim).with_window(50);
        let cfg = PipelineConfig::new(det.clone()).with_train_on_stable(true);
        let mut p = DriftPipeline::calibrate_with(model, det, &train, Some(cfg)).unwrap();
        let seen_before = p.model().instance(0).unwrap().samples_seen();
        let mut rng = Rng::seed_from(12);
        for _ in 0..50 {
            let mut x = vec![0.0; dim];
            rng.fill_normal(&mut x, 0.3, 0.02);
            p.process(&x).unwrap();
        }
        assert!(p.model().instance(0).unwrap().samples_seen() > seen_before);
    }
}
