//! The proposed concept-drift detector — Algorithm 1 of the paper.
//!
//! State: per-label *trained* centroids (fixed between reconstructions) and
//! per-label *test* centroids `cor` with counts `num` that update
//! sequentially. A detection window opens when a sample's anomaly score
//! reaches `θ_error`; for the next `W` samples the predicted-label centroid
//! is updated and the summed L1 displacement `dist` between test and trained
//! centroids is refreshed; when the window closes, `dist >= θ_drift` flags a
//! drift. Everything is O(classes x dim) memory and O(dim) work per sample.

use crate::centroid::{CentroidSet, Recency};
use crate::{CoreError, Result};
use seqdrift_linalg::{vector, Real};

/// Distance used for the drift statistic (Algorithm 1 line 14 uses L1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DistanceMetric {
    /// Manhattan distance (the paper's choice).
    #[default]
    L1,
    /// Euclidean distance (ablation variant).
    L2,
}

impl DistanceMetric {
    /// Evaluates the metric between two points.
    #[inline]
    pub fn eval(self, a: &[Real], b: &[Real]) -> Real {
        match self {
            DistanceMetric::L1 => vector::dist_l1(a, b),
            DistanceMetric::L2 => vector::dist_l2(a, b),
        }
    }
}

/// Configuration of the [`CentroidDetector`].
#[derive(Debug, Clone)]
pub struct DetectorConfig {
    /// Number of class labels `C`.
    pub classes: usize,
    /// Feature dimensionality `D`.
    pub dim: usize,
    /// Window size `W` (paper sweeps 10–1000).
    pub window: usize,
    /// Anomaly-score gate `θ_error`: a window only opens on a sample whose
    /// score reaches this. `0.0` disables gating (every sample opens).
    pub theta_error: Real,
    /// Drift threshold `θ_drift` (usually calibrated via Eq. 1; see
    /// [`crate::threshold`]).
    pub theta_drift: Real,
    /// Distance metric for the drift statistic.
    pub metric: DistanceMetric,
    /// Recency weighting of the test centroids.
    pub recency: Recency,
}

impl DetectorConfig {
    /// Sensible defaults for `classes x dim` (window 100, L1, running mean;
    /// thresholds must still be calibrated or set).
    pub fn new(classes: usize, dim: usize) -> Self {
        DetectorConfig {
            classes,
            dim,
            window: 100,
            theta_error: 0.0,
            theta_drift: Real::INFINITY,
            metric: DistanceMetric::L1,
            recency: Recency::RunningMean,
        }
    }

    /// Sets the window size `W`.
    pub fn with_window(mut self, w: usize) -> Self {
        self.window = w;
        self
    }

    /// Sets `θ_error`.
    pub fn with_theta_error(mut self, t: Real) -> Self {
        self.theta_error = t;
        self
    }

    /// Sets `θ_drift`.
    pub fn with_theta_drift(mut self, t: Real) -> Self {
        self.theta_drift = t;
        self
    }

    /// Sets the distance metric.
    pub fn with_metric(mut self, m: DistanceMetric) -> Self {
        self.metric = m;
        self
    }

    /// Sets the recency weighting.
    pub fn with_recency(mut self, r: Recency) -> Self {
        self.recency = r;
        self
    }

    fn validate(&self) -> Result<()> {
        if self.classes == 0 || self.dim == 0 {
            return Err(CoreError::InvalidConfig("classes and dim must be > 0"));
        }
        if self.window == 0 {
            return Err(CoreError::InvalidConfig("window must be > 0"));
        }
        if self.theta_error.is_nan() || self.theta_error < 0.0 {
            return Err(CoreError::InvalidConfig("theta_error must be >= 0"));
        }
        if self.theta_drift <= 0.0 {
            return Err(CoreError::InvalidConfig("theta_drift must be > 0"));
        }
        Ok(())
    }
}

/// What one `observe` call did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DetectorOutcome {
    /// No window open, score below `θ_error`: nothing recorded.
    Idle,
    /// A window is open (this sample may have opened it); centroids were
    /// updated; `win` samples of the current window consumed so far.
    Windowing {
        /// Samples consumed in the current window.
        win: usize,
        /// Current drift distance.
        dist: Real,
    },
    /// This sample closed a window: the drift test ran.
    Checked {
        /// Final drift distance of the window.
        dist: Real,
        /// Whether `dist >= θ_drift`.
        drift: bool,
    },
}

/// The Algorithm 1 detector.
#[derive(Debug, Clone)]
pub struct CentroidDetector {
    cfg: DetectorConfig,
    /// Trained centroids (fixed until reconstruction).
    trained: CentroidSet,
    /// Sequentially updated test centroids `cor` with counts `num`.
    test: CentroidSet,
    /// Whether a detection window is open (`check` in Algorithm 1).
    checking: bool,
    /// Samples consumed in the current window (`win`).
    win: usize,
    /// Last computed drift distance (`dist`).
    dist: Real,
    /// Total observe() calls (diagnostics).
    samples_seen: u64,
}

impl CentroidDetector {
    /// Builds a detector from trained centroids.
    ///
    /// `trained` supplies both the reference centroids and the initial test
    /// centroids/counts (the paper initialises `cor`/`num` from training).
    pub fn new(cfg: DetectorConfig, trained: CentroidSet) -> Result<Self> {
        cfg.validate()?;
        if trained.classes() != cfg.classes || trained.dim() != cfg.dim {
            return Err(CoreError::InvalidConfig(
                "trained centroid shape does not match config",
            ));
        }
        Ok(CentroidDetector {
            test: trained.clone(),
            trained,
            cfg,
            checking: false,
            win: 0,
            dist: 0.0,
            samples_seen: 0,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.cfg
    }

    /// Trained (reference) centroids.
    pub fn trained_centroids(&self) -> &CentroidSet {
        &self.trained
    }

    /// Current test centroids.
    pub fn test_centroids(&self) -> &CentroidSet {
        &self.test
    }

    /// Whether a detection window is currently open.
    pub fn is_checking(&self) -> bool {
        self.checking
    }

    /// Last computed drift distance.
    pub fn last_distance(&self) -> Real {
        self.dist
    }

    /// Total samples observed.
    pub fn samples_seen(&self) -> u64 {
        self.samples_seen
    }

    /// Feeds one sample: its predicted label `c` and anomaly score `error`
    /// (lines 6–19 of Algorithm 1; prediction itself happens in the
    /// pipeline).
    pub fn observe(&mut self, label: usize, x: &[Real], error: Real) -> Result<DetectorOutcome> {
        if label >= self.cfg.classes {
            return Err(CoreError::BadLabel {
                classes: self.cfg.classes,
                label,
            });
        }
        if x.len() != self.cfg.dim {
            return Err(CoreError::DimensionMismatch {
                expected: self.cfg.dim,
                got: x.len(),
            });
        }
        self.samples_seen += 1;

        if !self.checking {
            if error >= self.cfg.theta_error {
                // Lines 8–10: open a window; this sample participates.
                self.checking = true;
                self.win = 0;
            } else {
                return Ok(DetectorOutcome::Idle);
            }
        }

        // Lines 11–15: sequential centroid update and distance refresh.
        self.test.update_with(label, x, self.cfg.recency)?;
        self.dist = self.test.distance_to(&self.trained, self.cfg.metric);
        self.win += 1;

        // Lines 16–19: close the window and test.
        if self.win >= self.cfg.window {
            self.checking = false;
            let drift = self.dist >= self.cfg.theta_drift;
            return Ok(DetectorOutcome::Checked {
                dist: self.dist,
                drift,
            });
        }
        Ok(DetectorOutcome::Windowing {
            win: self.win,
            dist: self.dist,
        })
    }

    /// Rebuilds a detector from persisted state (see `crate::persist`):
    /// explicit trained and test centroid sets plus the lifetime sample
    /// counter. The window state resumes closed (checkpoints are taken at
    /// quiescent points), and the drift distance is recomputed from the
    /// restored sets.
    pub fn restore(
        cfg: DetectorConfig,
        trained: CentroidSet,
        test: CentroidSet,
        samples_seen: u64,
    ) -> Result<Self> {
        cfg.validate()?;
        for set in [&trained, &test] {
            if set.classes() != cfg.classes || set.dim() != cfg.dim {
                return Err(CoreError::InvalidConfig(
                    "restore: centroid shape does not match config",
                ));
            }
        }
        let dist = test.distance_to(&trained, cfg.metric);
        Ok(CentroidDetector {
            trained,
            test,
            cfg,
            checking: false,
            win: 0,
            dist,
            samples_seen,
        })
    }

    /// Replaces the reference state after a model reconstruction: new
    /// trained centroids/counts, test centroids re-seeded from them, and a
    /// fresh `θ_drift`.
    pub fn rebase(&mut self, trained: CentroidSet, theta_drift: Real) -> Result<()> {
        if trained.classes() != self.cfg.classes || trained.dim() != self.cfg.dim {
            return Err(CoreError::InvalidConfig(
                "rebase centroid shape does not match config",
            ));
        }
        if theta_drift <= 0.0 {
            return Err(CoreError::InvalidConfig("theta_drift must be > 0"));
        }
        self.test = trained.clone();
        self.trained = trained;
        self.cfg.theta_drift = theta_drift;
        self.checking = false;
        self.win = 0;
        self.dist = 0.0;
        Ok(())
    }

    /// Resident scalars: two centroid sets plus O(1) bookkeeping. This is
    /// the number Table 4 compares against the batch detectors' buffers.
    pub fn memory_scalars(&self) -> usize {
        self.trained.memory_scalars() + self.test.memory_scalars() + 4
    }

    /// Drift localisation: the `top_k` feature dimensions contributing most
    /// to the current drift distance (summed per-dimension |test − trained|
    /// over all labels), largest first.
    ///
    /// When a drift fires, this tells an operator *which sensors moved* —
    /// e.g. which spectral bins of a fan, or which flow features of the
    /// intrusion stream — at O(C·D) cost and no extra state.
    pub fn dimension_contributions(&self, top_k: usize) -> Vec<(usize, Real)> {
        let mut contrib = vec![0.0 as Real; self.cfg.dim];
        for c in 0..self.cfg.classes {
            let t = self.trained.centroid(c).expect("class in range");
            let s = self.test.centroid(c).expect("class in range");
            for (slot, (&a, &b)) in contrib.iter_mut().zip(s.iter().zip(t.iter())) {
                *slot += (a - b).abs();
            }
        }
        let mut indexed: Vec<(usize, Real)> = contrib.into_iter().enumerate().collect();
        indexed.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite contributions"));
        indexed.truncate(top_k);
        indexed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trained_set() -> CentroidSet {
        let mut s = CentroidSet::zeros(2, 2);
        s.set_centroid(0, &[0.0, 0.0]).unwrap();
        s.set_centroid(1, &[1.0, 1.0]).unwrap();
        // Pretend 100 training samples per class so running-mean updates
        // move slowly, like after real initial training.
        s.set_count(0, 100);
        s.set_count(1, 100);
        s
    }

    fn detector(window: usize, theta_error: Real, theta_drift: Real) -> CentroidDetector {
        let cfg = DetectorConfig::new(2, 2)
            .with_window(window)
            .with_theta_error(theta_error)
            .with_theta_drift(theta_drift);
        CentroidDetector::new(cfg, trained_set()).unwrap()
    }

    #[test]
    fn config_validation() {
        let t = trained_set();
        assert!(CentroidDetector::new(DetectorConfig::new(0, 2), t.clone()).is_err());
        assert!(
            CentroidDetector::new(DetectorConfig::new(2, 2).with_window(0), t.clone()).is_err()
        );
        assert!(
            CentroidDetector::new(DetectorConfig::new(2, 2).with_theta_drift(-1.0), t.clone())
                .is_err()
        );
        // Shape mismatch.
        assert!(CentroidDetector::new(DetectorConfig::new(3, 2).with_theta_drift(1.0), t).is_err());
    }

    #[test]
    fn idle_below_error_gate() {
        let mut d = detector(5, 0.5, 10.0);
        for _ in 0..20 {
            let o = d.observe(0, &[0.0, 0.0], 0.1).unwrap();
            assert_eq!(o, DetectorOutcome::Idle);
        }
        assert!(!d.is_checking());
        // Test centroids untouched while idle.
        assert_eq!(d.test_centroids().count(0), 100);
    }

    #[test]
    fn gate_opens_window_and_counts_to_w() {
        let mut d = detector(3, 0.5, 1000.0);
        // Trigger sample participates in the window (win = 1 after it).
        match d.observe(0, &[0.0, 0.0], 0.9).unwrap() {
            DetectorOutcome::Windowing { win, .. } => assert_eq!(win, 1),
            o => panic!("{o:?}"),
        }
        // Scores are ignored while the window is open.
        match d.observe(0, &[0.0, 0.0], 0.0).unwrap() {
            DetectorOutcome::Windowing { win, .. } => assert_eq!(win, 2),
            o => panic!("{o:?}"),
        }
        match d.observe(0, &[0.0, 0.0], 0.0).unwrap() {
            DetectorOutcome::Checked { drift, .. } => assert!(!drift),
            o => panic!("{o:?}"),
        }
        assert!(!d.is_checking());
    }

    #[test]
    fn detects_displaced_centroid() {
        // Window 10, drift threshold 0.1: stream far-away samples labelled
        // 1 so cor[1] moves away from trained[1].
        let mut d = detector(10, 0.0, 0.1);
        let mut last = DetectorOutcome::Idle;
        for _ in 0..10 {
            last = d.observe(1, &[5.0, 5.0], 1.0).unwrap();
        }
        match last {
            DetectorOutcome::Checked { dist, drift } => {
                assert!(drift);
                // 10 new samples at (5,5) against count 100 at (1,1):
                // centroid moves by 10/110 * 4 per dim -> L1 ≈ 0.72.
                assert!((dist - 8.0 * 10.0 / 110.0).abs() < 1e-3, "dist {dist}");
            }
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn distance_accumulates_across_windows() {
        // The paper's key behaviour: cor/num persist, so repeated windows
        // keep pushing the test centroid and dist grows monotonically under
        // a sustained shift.
        let mut d = detector(5, 0.0, 1e9);
        let mut dists = Vec::new();
        for _ in 0..10 {
            for _ in 0..5 {
                if let DetectorOutcome::Checked { dist, .. } =
                    d.observe(1, &[5.0, 5.0], 1.0).unwrap()
                {
                    dists.push(dist);
                }
            }
        }
        assert_eq!(dists.len(), 10);
        for pair in dists.windows(2) {
            assert!(pair[1] > pair[0], "dist not accumulating: {dists:?}");
        }
    }

    #[test]
    fn stationary_stream_keeps_distance_small() {
        let mut d = detector(10, 0.0, 0.5);
        let mut rng = seqdrift_linalg::Rng::seed_from(3);
        let mut drifts = 0;
        for i in 0..500 {
            let label = i % 2;
            let base = label as Real;
            let x = [rng.normal(base, 0.05), rng.normal(base, 0.05)];
            if let DetectorOutcome::Checked { drift, .. } = d.observe(label, &x, 1.0).unwrap() {
                drifts += u32::from(drift);
            }
        }
        assert_eq!(drifts, 0);
        assert!(d.last_distance() < 0.2, "dist {}", d.last_distance());
    }

    #[test]
    fn smaller_window_checks_more_often() {
        let run = |w: usize| -> usize {
            let mut d = detector(w, 0.0, 1e9);
            let mut checks = 0;
            for _ in 0..100 {
                if matches!(
                    d.observe(0, &[0.0, 0.0], 1.0).unwrap(),
                    DetectorOutcome::Checked { .. }
                ) {
                    checks += 1;
                }
            }
            checks
        };
        assert_eq!(run(10), 10);
        assert_eq!(run(50), 2);
    }

    #[test]
    fn rebase_resets_reference_and_threshold() {
        let mut d = detector(5, 0.0, 0.01);
        for _ in 0..5 {
            d.observe(1, &[5.0, 5.0], 1.0).unwrap();
        }
        assert!(d.last_distance() > 0.0);
        let mut new_trained = CentroidSet::zeros(2, 2);
        new_trained.set_centroid(0, &[0.0, 0.0]).unwrap();
        new_trained.set_centroid(1, &[5.0, 5.0]).unwrap();
        new_trained.set_count(0, 10);
        new_trained.set_count(1, 10);
        d.rebase(new_trained, 2.0).unwrap();
        assert_eq!(d.last_distance(), 0.0);
        assert!(!d.is_checking());
        assert_eq!(d.config().theta_drift, 2.0);
        // Post-rebase, samples near the new centroid do not re-trigger.
        let mut drifted = false;
        for _ in 0..5 {
            if let DetectorOutcome::Checked { drift, .. } = d.observe(1, &[5.0, 5.0], 1.0).unwrap()
            {
                drifted = drift;
            }
        }
        assert!(!drifted);
    }

    #[test]
    fn bad_inputs_rejected() {
        let mut d = detector(5, 0.0, 1.0);
        assert!(matches!(
            d.observe(7, &[0.0, 0.0], 1.0),
            Err(CoreError::BadLabel { .. })
        ));
        assert!(matches!(
            d.observe(0, &[0.0], 1.0),
            Err(CoreError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn memory_constant_in_stream_length() {
        let mut d = detector(10, 0.0, 1e9);
        let before = d.memory_scalars();
        for _ in 0..5000 {
            d.observe(0, &[0.1, 0.1], 1.0).unwrap();
        }
        assert_eq!(d.memory_scalars(), before);
        // 2 sets x (2 classes x 2 dims + 2 counts) + 4.
        assert_eq!(before, 2 * 6 + 4);
    }

    #[test]
    fn dimension_contributions_localise_the_drift() {
        // Shift only dimension 1: it must dominate the contributions.
        let mut d = detector(100, 0.0, 1e9);
        for _ in 0..50 {
            d.observe(1, &[1.0, 4.0], 1.0).unwrap();
        }
        let top = d.dimension_contributions(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, 1, "dimension 1 should dominate: {top:?}");
        assert!(top[0].1 > 5.0 * top[1].1, "{top:?}");
        // top_k larger than dim is clamped.
        assert_eq!(d.dimension_contributions(10).len(), 2);
    }

    #[test]
    fn l2_metric_variant_detects_too() {
        let cfg = DetectorConfig::new(2, 2)
            .with_window(10)
            .with_theta_drift(0.1)
            .with_metric(DistanceMetric::L2);
        let mut d = CentroidDetector::new(cfg, trained_set()).unwrap();
        let mut drifted = false;
        for _ in 0..10 {
            if let DetectorOutcome::Checked { drift, .. } = d.observe(1, &[5.0, 5.0], 1.0).unwrap()
            {
                drifted = drift;
            }
        }
        assert!(drifted);
    }
}
