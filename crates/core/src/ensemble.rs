//! Multi-window detector ensemble — the extension the paper names as
//! future work ("using multiple detection models with different window
//! sizes ... to address more complicated drift behaviors").
//!
//! Table 3 shows the window-size dilemma: small windows react fast to
//! sudden drifts but chatter on gradual ones and fire on transient
//! reoccurring blips; large windows are stable but slow. An ensemble runs
//! several [`CentroidDetector`]s over the same sample stream and combines
//! their window verdicts under a configurable vote.

use crate::centroid::CentroidSet;
use crate::detector::{CentroidDetector, DetectorConfig, DetectorOutcome};
use crate::{CoreError, Result};
use seqdrift_linalg::Real;

/// How member verdicts combine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VotePolicy {
    /// Drift as soon as any member flags (fast, more false positives).
    Any,
    /// Drift when a strict majority of members currently flag.
    Majority,
    /// Drift only when every member flags (slow, conservative).
    All,
}

/// Ensemble of centroid detectors with different window sizes.
#[derive(Debug, Clone)]
pub struct EnsembleDetector {
    members: Vec<CentroidDetector>,
    /// Sticky per-member "has flagged since last reset" bits; windows of
    /// different sizes close at different samples, so votes latch.
    flagged: Vec<bool>,
    policy: VotePolicy,
}

impl EnsembleDetector {
    /// Builds one member per window size, sharing `base` config (thresholds,
    /// metric) and the trained centroids.
    pub fn new(
        base: DetectorConfig,
        windows: &[usize],
        trained: &CentroidSet,
        policy: VotePolicy,
    ) -> Result<Self> {
        if windows.is_empty() {
            return Err(CoreError::InvalidConfig("ensemble needs >= 1 window"));
        }
        let mut members = Vec::with_capacity(windows.len());
        for &w in windows {
            let cfg = base.clone().with_window(w);
            members.push(CentroidDetector::new(cfg, trained.clone())?);
        }
        Ok(EnsembleDetector {
            flagged: vec![false; members.len()],
            members,
            policy,
        })
    }

    /// Member count.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the ensemble has no members (never, post-construction).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Immutable member access (diagnostics).
    pub fn member(&self, i: usize) -> &CentroidDetector {
        &self.members[i]
    }

    /// Current latched votes.
    pub fn votes(&self) -> &[bool] {
        &self.flagged
    }

    /// Feeds one sample to every member; returns `true` when the vote
    /// policy is satisfied *at this sample*.
    pub fn observe(&mut self, label: usize, x: &[Real], error: Real) -> Result<bool> {
        for (member, flag) in self.members.iter_mut().zip(self.flagged.iter_mut()) {
            if let DetectorOutcome::Checked { drift: true, .. } = member.observe(label, x, error)? {
                *flag = true;
            }
        }
        let yes = self.flagged.iter().filter(|&&f| f).count();
        let fired = match self.policy {
            VotePolicy::Any => yes >= 1,
            VotePolicy::Majority => 2 * yes > self.members.len(),
            VotePolicy::All => yes == self.members.len(),
        };
        Ok(fired)
    }

    /// Rebases every member after a reconstruction and clears the latched
    /// votes.
    pub fn rebase(&mut self, trained: CentroidSet, theta_drift: Real) -> Result<()> {
        for member in &mut self.members {
            member.rebase(trained.clone(), theta_drift)?;
        }
        self.flagged.fill(false);
        Ok(())
    }

    /// Total resident scalars across members (memory accounting: the
    /// ensemble multiplies the detector's footprint by its member count).
    pub fn memory_scalars(&self) -> usize {
        self.members.iter().map(|m| m.memory_scalars()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trained() -> CentroidSet {
        let mut s = CentroidSet::zeros(1, 2);
        s.set_centroid(0, &[0.0, 0.0]).unwrap();
        s.set_count(0, 50);
        s
    }

    fn base() -> DetectorConfig {
        DetectorConfig::new(1, 2)
            .with_theta_drift(0.5)
            .with_theta_error(0.0)
    }

    #[test]
    fn empty_windows_rejected() {
        assert!(EnsembleDetector::new(base(), &[], &trained(), VotePolicy::Any).is_err());
    }

    #[test]
    fn any_fires_with_first_member() {
        let mut e = EnsembleDetector::new(base(), &[5, 50], &trained(), VotePolicy::Any).unwrap();
        let mut fired_at = None;
        for i in 0..50 {
            if e.observe(0, &[4.0, 4.0], 1.0).unwrap() && fired_at.is_none() {
                fired_at = Some(i);
            }
        }
        // The 5-window member checks at sample 5 (index 4).
        assert_eq!(fired_at, Some(4));
    }

    #[test]
    fn all_waits_for_slowest_member() {
        let mut e = EnsembleDetector::new(base(), &[5, 20], &trained(), VotePolicy::All).unwrap();
        let mut fired_at = None;
        for i in 0..40 {
            if e.observe(0, &[4.0, 4.0], 1.0).unwrap() && fired_at.is_none() {
                fired_at = Some(i);
            }
        }
        assert_eq!(fired_at, Some(19));
    }

    #[test]
    fn majority_needs_more_than_half() {
        let mut e =
            EnsembleDetector::new(base(), &[5, 10, 40], &trained(), VotePolicy::Majority).unwrap();
        let mut fired_at = None;
        for i in 0..60 {
            if e.observe(0, &[4.0, 4.0], 1.0).unwrap() && fired_at.is_none() {
                fired_at = Some(i);
            }
        }
        // Members flag at their first window close (samples 5, 10, 40);
        // majority (2 of 3) at index 9.
        assert_eq!(fired_at, Some(9));
    }

    #[test]
    fn stationary_stream_never_fires() {
        let mut e = EnsembleDetector::new(base(), &[5, 20], &trained(), VotePolicy::Any).unwrap();
        let mut rng = seqdrift_linalg::Rng::seed_from(1);
        for _ in 0..200 {
            let x = [rng.normal(0.0, 0.02), rng.normal(0.0, 0.02)];
            assert!(!e.observe(0, &x, 1.0).unwrap());
        }
    }

    #[test]
    fn rebase_clears_latched_votes() {
        let mut e = EnsembleDetector::new(base(), &[5], &trained(), VotePolicy::Any).unwrap();
        for _ in 0..5 {
            e.observe(0, &[4.0, 4.0], 1.0).unwrap();
        }
        assert_eq!(e.votes(), &[true]);
        let mut new_set = CentroidSet::zeros(1, 2);
        new_set.set_centroid(0, &[4.0, 4.0]).unwrap();
        new_set.set_count(0, 10);
        e.rebase(new_set, 0.5).unwrap();
        assert_eq!(e.votes(), &[false]);
        // Now stable at the new location.
        for _ in 0..10 {
            assert!(!e.observe(0, &[4.0, 4.0], 1.0).unwrap());
        }
    }

    #[test]
    fn staggered_window_closes_latch_votes_until_reset() {
        // Three members with staggered windows: each flags at its own
        // close (samples 4, 9, 19) and the earlier votes must stay
        // latched while later members are still mid-window.
        let mut e =
            EnsembleDetector::new(base(), &[5, 10, 20], &trained(), VotePolicy::All).unwrap();
        for i in 0..4 {
            e.observe(0, &[4.0, 4.0], 1.0).unwrap();
            assert_eq!(e.votes(), &[false, false, false], "sample {i}");
        }
        e.observe(0, &[4.0, 4.0], 1.0).unwrap();
        assert_eq!(e.votes(), &[true, false, false]);
        // Even if the stream goes quiet at the drifted location, the
        // 5-window's vote must not decay while the 10-window closes.
        for _ in 5..10 {
            e.observe(0, &[4.0, 4.0], 1.0).unwrap();
        }
        assert_eq!(e.votes(), &[true, true, false]);
        for _ in 10..19 {
            assert!(!e.observe(0, &[4.0, 4.0], 1.0).unwrap());
        }
        // The slowest member closes: all latched, the All policy fires.
        assert!(e.observe(0, &[4.0, 4.0], 1.0).unwrap());
        assert_eq!(e.votes(), &[true, true, true]);
    }

    #[test]
    fn rebase_clears_every_members_latched_flag() {
        let mut e =
            EnsembleDetector::new(base(), &[5, 10, 20], &trained(), VotePolicy::Any).unwrap();
        for _ in 0..20 {
            e.observe(0, &[4.0, 4.0], 1.0).unwrap();
        }
        assert_eq!(e.votes(), &[true, true, true]);
        let mut new_set = CentroidSet::zeros(1, 2);
        new_set.set_centroid(0, &[4.0, 4.0]).unwrap();
        new_set.set_count(0, 10);
        e.rebase(new_set, 0.5).unwrap();
        assert_eq!(e.votes(), &[false, false, false]);
        // Post-rebase, a stable stream at the new concept leaves all
        // flags down — no stale latch survives the reset.
        for _ in 0..25 {
            assert!(!e.observe(0, &[4.0, 4.0], 1.0).unwrap());
        }
        assert_eq!(e.votes(), &[false, false, false]);
    }

    #[test]
    fn memory_scales_with_member_count() {
        let one = EnsembleDetector::new(base(), &[5], &trained(), VotePolicy::Any).unwrap();
        let three =
            EnsembleDetector::new(base(), &[5, 10, 20], &trained(), VotePolicy::Any).unwrap();
        assert_eq!(3 * one.memory_scalars(), three.memory_scalars());
    }
}
