//! Multi-window detector ensemble — the extension the paper names as
//! future work ("using multiple detection models with different window
//! sizes ... to address more complicated drift behaviors").
//!
//! Table 3 shows the window-size dilemma: small windows react fast to
//! sudden drifts but chatter on gradual ones and fire on transient
//! reoccurring blips; large windows are stable but slow. An ensemble runs
//! several [`CentroidDetector`]s over the same sample stream and combines
//! their window verdicts under a configurable vote.

use crate::centroid::CentroidSet;
use crate::detector::{CentroidDetector, DetectorConfig, DetectorOutcome};
use crate::{CoreError, Result};
use seqdrift_linalg::Real;

/// How member verdicts combine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VotePolicy {
    /// Drift as soon as any member flags (fast, more false positives).
    Any,
    /// Drift when a strict majority of members currently flag.
    Majority,
    /// Drift only when every member flags (slow, conservative).
    All,
    /// Drift when the *weighted* flagged mass exceeds half the total
    /// weight. Weights come from [`EnsembleDetector::with_calibrated_weights`]
    /// (derived from per-member false-positive rates) or
    /// [`EnsembleDetector::with_weights`]; with uniform weights this is
    /// exactly [`VotePolicy::Majority`].
    Weighted,
}

/// Ensemble of centroid detectors with different window sizes.
#[derive(Debug, Clone)]
pub struct EnsembleDetector {
    members: Vec<CentroidDetector>,
    /// Sticky per-member "has flagged since last reset" bits; windows of
    /// different sizes close at different samples, so votes latch.
    flagged: Vec<bool>,
    policy: VotePolicy,
    /// Per-member vote weights (uniform unless calibrated); only consulted
    /// by [`VotePolicy::Weighted`].
    weights: Vec<Real>,
}

impl EnsembleDetector {
    /// Builds one member per window size, sharing `base` config (thresholds,
    /// metric) and the trained centroids.
    pub fn new(
        base: DetectorConfig,
        windows: &[usize],
        trained: &CentroidSet,
        policy: VotePolicy,
    ) -> Result<Self> {
        if windows.is_empty() {
            return Err(CoreError::InvalidConfig("ensemble needs >= 1 window"));
        }
        let mut members = Vec::with_capacity(windows.len());
        for &w in windows {
            let cfg = base.clone().with_window(w);
            members.push(CentroidDetector::new(cfg, trained.clone())?);
        }
        Ok(EnsembleDetector {
            flagged: vec![false; members.len()],
            weights: vec![1.0; members.len()],
            members,
            policy,
        })
    }

    /// Sets explicit per-member vote weights (must match the member count,
    /// be finite, and be positive). Consulted by [`VotePolicy::Weighted`].
    pub fn with_weights(mut self, weights: Vec<Real>) -> Result<Self> {
        if weights.len() != self.members.len() {
            return Err(CoreError::InvalidConfig(
                "one weight per ensemble member required",
            ));
        }
        if weights.iter().any(|w| !w.is_finite() || *w <= 0.0) {
            return Err(CoreError::InvalidConfig(
                "ensemble weights must be finite and positive",
            ));
        }
        self.weights = weights;
        Ok(self)
    }

    /// Derives vote weights from calibrated per-member false-positive rates
    /// (measured on drift-free validation streams): a member that cries
    /// wolf with probability `p` gets the boosting-style weight
    /// `ln((1 - p) / p)`, clamped to `[0.05, 10]` so a perfectly silent or
    /// hopeless member can neither dominate nor vanish entirely. Chattery
    /// small windows are thus down-weighted instead of excluded, keeping
    /// their fast reaction available when the reliable members agree.
    pub fn with_calibrated_weights(self, fp_rates: &[Real]) -> Result<Self> {
        if fp_rates.len() != self.members.len() {
            return Err(CoreError::InvalidConfig(
                "one false-positive rate per ensemble member required",
            ));
        }
        if fp_rates
            .iter()
            .any(|p| !p.is_finite() || *p <= 0.0 || *p >= 1.0)
        {
            return Err(CoreError::InvalidConfig(
                "false-positive rates must lie strictly between 0 and 1",
            ));
        }
        let weights = fp_rates
            .iter()
            .map(|&p| ((1.0 - p) / p).ln().clamp(0.05, 10.0))
            .collect();
        self.with_weights(weights)
    }

    /// Current per-member vote weights.
    pub fn weights(&self) -> &[Real] {
        &self.weights
    }

    /// Member count.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the ensemble has no members (never, post-construction).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Immutable member access (diagnostics).
    pub fn member(&self, i: usize) -> &CentroidDetector {
        &self.members[i]
    }

    /// Current latched votes.
    pub fn votes(&self) -> &[bool] {
        &self.flagged
    }

    /// Feeds one sample to every member; returns `true` when the vote
    /// policy is satisfied *at this sample*.
    pub fn observe(&mut self, label: usize, x: &[Real], error: Real) -> Result<bool> {
        for (member, flag) in self.members.iter_mut().zip(self.flagged.iter_mut()) {
            if let DetectorOutcome::Checked { drift: true, .. } = member.observe(label, x, error)? {
                *flag = true;
            }
        }
        let yes = self.flagged.iter().filter(|&&f| f).count();
        let fired = match self.policy {
            VotePolicy::Any => yes >= 1,
            VotePolicy::Majority => 2 * yes > self.members.len(),
            VotePolicy::All => yes == self.members.len(),
            VotePolicy::Weighted => {
                let total: Real = self.weights.iter().sum();
                let flagged: Real = self
                    .flagged
                    .iter()
                    .zip(self.weights.iter())
                    .filter(|(f, _)| **f)
                    .map(|(_, w)| *w)
                    .sum();
                2.0 * flagged > total
            }
        };
        Ok(fired)
    }

    /// Rebases every member after a reconstruction and clears the latched
    /// votes.
    pub fn rebase(&mut self, trained: CentroidSet, theta_drift: Real) -> Result<()> {
        for member in &mut self.members {
            member.rebase(trained.clone(), theta_drift)?;
        }
        self.flagged.fill(false);
        Ok(())
    }

    /// Total resident scalars across members (memory accounting: the
    /// ensemble multiplies the detector's footprint by its member count).
    pub fn memory_scalars(&self) -> usize {
        self.members.iter().map(|m| m.memory_scalars()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trained() -> CentroidSet {
        let mut s = CentroidSet::zeros(1, 2);
        s.set_centroid(0, &[0.0, 0.0]).unwrap();
        s.set_count(0, 50);
        s
    }

    fn base() -> DetectorConfig {
        DetectorConfig::new(1, 2)
            .with_theta_drift(0.5)
            .with_theta_error(0.0)
    }

    #[test]
    fn empty_windows_rejected() {
        assert!(EnsembleDetector::new(base(), &[], &trained(), VotePolicy::Any).is_err());
    }

    #[test]
    fn any_fires_with_first_member() {
        let mut e = EnsembleDetector::new(base(), &[5, 50], &trained(), VotePolicy::Any).unwrap();
        let mut fired_at = None;
        for i in 0..50 {
            if e.observe(0, &[4.0, 4.0], 1.0).unwrap() && fired_at.is_none() {
                fired_at = Some(i);
            }
        }
        // The 5-window member checks at sample 5 (index 4).
        assert_eq!(fired_at, Some(4));
    }

    #[test]
    fn all_waits_for_slowest_member() {
        let mut e = EnsembleDetector::new(base(), &[5, 20], &trained(), VotePolicy::All).unwrap();
        let mut fired_at = None;
        for i in 0..40 {
            if e.observe(0, &[4.0, 4.0], 1.0).unwrap() && fired_at.is_none() {
                fired_at = Some(i);
            }
        }
        assert_eq!(fired_at, Some(19));
    }

    #[test]
    fn majority_needs_more_than_half() {
        let mut e =
            EnsembleDetector::new(base(), &[5, 10, 40], &trained(), VotePolicy::Majority).unwrap();
        let mut fired_at = None;
        for i in 0..60 {
            if e.observe(0, &[4.0, 4.0], 1.0).unwrap() && fired_at.is_none() {
                fired_at = Some(i);
            }
        }
        // Members flag at their first window close (samples 5, 10, 40);
        // majority (2 of 3) at index 9.
        assert_eq!(fired_at, Some(9));
    }

    #[test]
    fn stationary_stream_never_fires() {
        let mut e = EnsembleDetector::new(base(), &[5, 20], &trained(), VotePolicy::Any).unwrap();
        let mut rng = seqdrift_linalg::Rng::seed_from(1);
        for _ in 0..200 {
            let x = [rng.normal(0.0, 0.02), rng.normal(0.0, 0.02)];
            assert!(!e.observe(0, &x, 1.0).unwrap());
        }
    }

    #[test]
    fn rebase_clears_latched_votes() {
        let mut e = EnsembleDetector::new(base(), &[5], &trained(), VotePolicy::Any).unwrap();
        for _ in 0..5 {
            e.observe(0, &[4.0, 4.0], 1.0).unwrap();
        }
        assert_eq!(e.votes(), &[true]);
        let mut new_set = CentroidSet::zeros(1, 2);
        new_set.set_centroid(0, &[4.0, 4.0]).unwrap();
        new_set.set_count(0, 10);
        e.rebase(new_set, 0.5).unwrap();
        assert_eq!(e.votes(), &[false]);
        // Now stable at the new location.
        for _ in 0..10 {
            assert!(!e.observe(0, &[4.0, 4.0], 1.0).unwrap());
        }
    }

    #[test]
    fn staggered_window_closes_latch_votes_until_reset() {
        // Three members with staggered windows: each flags at its own
        // close (samples 4, 9, 19) and the earlier votes must stay
        // latched while later members are still mid-window.
        let mut e =
            EnsembleDetector::new(base(), &[5, 10, 20], &trained(), VotePolicy::All).unwrap();
        for i in 0..4 {
            e.observe(0, &[4.0, 4.0], 1.0).unwrap();
            assert_eq!(e.votes(), &[false, false, false], "sample {i}");
        }
        e.observe(0, &[4.0, 4.0], 1.0).unwrap();
        assert_eq!(e.votes(), &[true, false, false]);
        // Even if the stream goes quiet at the drifted location, the
        // 5-window's vote must not decay while the 10-window closes.
        for _ in 5..10 {
            e.observe(0, &[4.0, 4.0], 1.0).unwrap();
        }
        assert_eq!(e.votes(), &[true, true, false]);
        for _ in 10..19 {
            assert!(!e.observe(0, &[4.0, 4.0], 1.0).unwrap());
        }
        // The slowest member closes: all latched, the All policy fires.
        assert!(e.observe(0, &[4.0, 4.0], 1.0).unwrap());
        assert_eq!(e.votes(), &[true, true, true]);
    }

    #[test]
    fn rebase_clears_every_members_latched_flag() {
        let mut e =
            EnsembleDetector::new(base(), &[5, 10, 20], &trained(), VotePolicy::Any).unwrap();
        for _ in 0..20 {
            e.observe(0, &[4.0, 4.0], 1.0).unwrap();
        }
        assert_eq!(e.votes(), &[true, true, true]);
        let mut new_set = CentroidSet::zeros(1, 2);
        new_set.set_centroid(0, &[4.0, 4.0]).unwrap();
        new_set.set_count(0, 10);
        e.rebase(new_set, 0.5).unwrap();
        assert_eq!(e.votes(), &[false, false, false]);
        // Post-rebase, a stable stream at the new concept leaves all
        // flags down — no stale latch survives the reset.
        for _ in 0..25 {
            assert!(!e.observe(0, &[4.0, 4.0], 1.0).unwrap());
        }
        assert_eq!(e.votes(), &[false, false, false]);
    }

    #[test]
    fn weighted_rejects_bad_calibration() {
        let e = || EnsembleDetector::new(base(), &[5, 40], &trained(), VotePolicy::Weighted);
        assert!(e().unwrap().with_weights(vec![1.0]).is_err());
        assert!(e().unwrap().with_weights(vec![1.0, -1.0]).is_err());
        assert!(e().unwrap().with_weights(vec![1.0, Real::NAN]).is_err());
        assert!(e().unwrap().with_calibrated_weights(&[0.0, 0.1]).is_err());
        assert!(e().unwrap().with_calibrated_weights(&[0.5, 1.0]).is_err());
        let ok = e().unwrap().with_calibrated_weights(&[0.4, 0.02]).unwrap();
        // The chattery member's weight is a fraction of the reliable one's.
        assert!(
            ok.weights()[0] < ok.weights()[1] / 3.0,
            "{:?}",
            ok.weights()
        );
    }

    #[test]
    fn weighted_with_uniform_weights_matches_majority() {
        let run = |policy: VotePolicy| -> Option<usize> {
            let mut e = EnsembleDetector::new(base(), &[5, 10, 40], &trained(), policy).unwrap();
            (0..60).find(|_| e.observe(0, &[4.0, 4.0], 1.0).unwrap())
        };
        assert_eq!(run(VotePolicy::Weighted), run(VotePolicy::Majority));
    }

    /// Regression test for the window-size dilemma on *reoccurring* +
    /// *gradual* scenarios (Table 3): a chattery 5-sample window latches on
    /// a brief reoccurring excursion that the 40-sample window correctly
    /// averages away. `Any` fires on the blip; `Weighted` with calibrated
    /// false-positive rates holds — yet still fires on a genuine gradual
    /// drift once the reliable member agrees.
    #[test]
    fn weighted_vote_survives_reoccurring_blip_but_fires_on_gradual() {
        use seqdrift_datasets::synth::ClassConcept;
        use seqdrift_datasets::DriftSchedule;

        let old = ClassConcept::isotropic(vec![0.0, 0.0], 0.05);
        let new = ClassConcept::isotropic(vec![1.5, 1.5], 0.05);
        let stream = |schedule: DriftSchedule, n: usize, seed: u64| -> Vec<[Real; 2]> {
            let mut rng = seqdrift_linalg::Rng::seed_from(seed);
            (0..n)
                .map(|t| {
                    let (use_new, _) = schedule.resolve(t, &mut rng);
                    let x = if use_new {
                        new.sample(&mut rng)
                    } else {
                        old.sample(&mut rng)
                    };
                    [x[0], x[1]]
                })
                .collect()
        };
        // EWMA recency makes the test centroid track recent samples, so the
        // window size is the *check cadence*: a 5-window closes mid-blip and
        // sees the excursion, a 40-window closes after it has decayed away.
        let cfg = base().with_recency(crate::centroid::Recency::Ewma(0.3));
        let build = move |policy: VotePolicy| {
            let e = EnsembleDetector::new(cfg.clone(), &[5, 40], &trained(), policy).unwrap();
            // Calibrated on drift-free validation streams: the 5-window
            // chatters (p = 0.4), the 40-window is reliable (p = 0.02).
            e.with_calibrated_weights(&[0.4, 0.02]).unwrap()
        };
        let first_fire = |e: &mut EnsembleDetector, stream: &[[Real; 2]]| -> Option<usize> {
            stream.iter().position(|x| e.observe(0, x, 1.0).unwrap())
        };

        // Reoccurring blip: 8 drifted samples out of 400 (samples 100..108).
        // The 5-window flags; the 40-window sees 8/40 of the shift (0.42 <
        // theta 0.5) and stays quiet.
        let blip = stream(DriftSchedule::reoccurring(100, 108), 400, 21);
        let mut weighted = build(VotePolicy::Weighted);
        assert_eq!(
            first_fire(&mut weighted, &blip),
            None,
            "weighted vote fired on a transient reoccurring blip"
        );
        assert_eq!(
            weighted.votes(),
            &[true, false],
            "the chattery member should have latched on the blip"
        );
        let mut any = build(VotePolicy::Any);
        assert!(
            first_fire(&mut any, &blip).is_some(),
            "Any should chatter on the blip (that is the dilemma)"
        );

        // Gradual drift to a persistent new concept: the reliable member
        // flags once its window fills with drifted data and the weighted
        // vote fires.
        let gradual = stream(DriftSchedule::gradual(100, 200), 400, 22);
        let mut weighted = build(VotePolicy::Weighted);
        let fired = first_fire(&mut weighted, &gradual)
            .expect("weighted vote never fired on a genuine gradual drift");
        assert!(fired >= 100, "fired before drift onset: {fired}");
        assert!(fired < 300, "fired too late: {fired}");
    }

    #[test]
    fn memory_scales_with_member_count() {
        let one = EnsembleDetector::new(base(), &[5], &trained(), VotePolicy::Any).unwrap();
        let three =
            EnsembleDetector::new(base(), &[5, 10, 20], &trained(), VotePolicy::Any).unwrap();
        assert_eq!(3 * one.memory_scalars(), three.memory_scalars());
    }
}
