//! Threshold calibration.
//!
//! * `θ_drift` — Eq. 1 of the paper: over the training samples, compute the
//!   distance between each sample and the centroid of its (predicted)
//!   label; `θ_drift = μ + z·σ` of those distances with `z = 1` by default.
//! * `θ_error` — "a tuning parameter" in the paper; calibrated here as a
//!   quantile of the training anomaly scores so windows open on the tail of
//!   the in-distribution score distribution.
//!
//! Both calibrations are single-pass (Welford / one sort) and reusable
//! during reconstruction, where the distance stream arrives sequentially.

use crate::centroid::CentroidSet;
use crate::detector::DistanceMetric;
use crate::{CoreError, Result};
use seqdrift_linalg::{stats, Real};

/// Default `z` of Eq. 1.
pub const DEFAULT_Z: Real = 1.0;

/// Sequential accumulator for Eq. 1: feed per-sample distances as they
/// occur, read the threshold at the end. O(1) memory — usable on-device
/// during reconstruction.
#[derive(Debug, Clone, Default)]
pub struct DriftThresholdCalibrator {
    welford: stats::Welford,
}

impl DriftThresholdCalibrator {
    /// Fresh calibrator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one sample-to-centroid distance.
    pub fn push(&mut self, dist: Real) {
        self.welford.push(dist);
    }

    /// Number of distances consumed.
    pub fn count(&self) -> u64 {
        self.welford.count()
    }

    /// `θ_drift = μ + z·σ` (Eq. 1). Errors if no distances were fed.
    pub fn threshold(&self, z: Real) -> Result<Real> {
        if self.welford.count() == 0 {
            return Err(CoreError::InvalidConfig(
                "drift threshold calibration saw no samples",
            ));
        }
        Ok(self.welford.mean() + z * self.welford.std())
    }

    /// Resets to empty.
    pub fn reset(&mut self) {
        self.welford.reset();
    }
}

/// Eq. 1 in one call: distances of `(label, sample)` pairs to their label
/// centroid under `metric`, threshold `μ + z·σ`.
pub fn calibrate_drift_threshold(
    centroids: &CentroidSet,
    data: &[(usize, &[Real])],
    metric: DistanceMetric,
    z: Real,
) -> Result<Real> {
    let mut cal = DriftThresholdCalibrator::new();
    for (label, x) in data {
        let c = centroids.centroid(*label)?;
        cal.push(metric.eval(c, x));
    }
    cal.threshold(z)
}

/// Calibrates `θ_error` as the `q`-quantile of training anomaly scores
/// (`q` in `[0, 1]`; e.g. 0.95 keeps windows shut for 95% of
/// in-distribution samples).
pub fn calibrate_error_threshold(scores: &[Real], q: Real) -> Result<Real> {
    if scores.is_empty() {
        return Err(CoreError::InvalidConfig(
            "error threshold calibration saw no scores",
        ));
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(CoreError::InvalidConfig("quantile must be in [0, 1]"));
    }
    Ok(stats::quantile(scores, q))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_known_values() {
        // Distances 1, 2, 3: mu = 2, sigma = sqrt(2/3).
        let mut cal = DriftThresholdCalibrator::new();
        for d in [1.0, 2.0, 3.0] {
            cal.push(d);
        }
        let t = cal.threshold(1.0).unwrap();
        let expect = 2.0 + (2.0f64 / 3.0).sqrt() as Real;
        assert!((t - expect).abs() < 1e-5);
        // z = 0 gives the mean.
        assert!((cal.threshold(0.0).unwrap() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn empty_calibration_is_an_error() {
        let cal = DriftThresholdCalibrator::new();
        assert!(cal.threshold(1.0).is_err());
        assert!(calibrate_error_threshold(&[], 0.9).is_err());
    }

    #[test]
    fn calibrate_from_labeled_data() {
        let mut c = CentroidSet::zeros(2, 1);
        c.set_centroid(0, &[0.0]).unwrap();
        c.set_centroid(1, &[10.0]).unwrap();
        let data: Vec<(usize, &[Real])> = vec![
            (0, &[1.0][..]),  // dist 1
            (0, &[-1.0][..]), // dist 1
            (1, &[12.0][..]), // dist 2
            (1, &[8.0][..]),  // dist 2
        ];
        let t = calibrate_drift_threshold(&c, &data, DistanceMetric::L1, 1.0).unwrap();
        // mu = 1.5, sigma = 0.5.
        assert!((t - 2.0).abs() < 1e-5);
    }

    #[test]
    fn calibrate_rejects_bad_label() {
        let c = CentroidSet::zeros(1, 1);
        let data: Vec<(usize, &[Real])> = vec![(3, &[0.0][..])];
        assert!(calibrate_drift_threshold(&c, &data, DistanceMetric::L1, 1.0).is_err());
    }

    #[test]
    fn error_threshold_is_quantile() {
        let scores: Vec<Real> = (1..=100).map(|i| i as Real).collect();
        let t = calibrate_error_threshold(&scores, 0.95).unwrap();
        assert!((t - 95.05).abs() < 0.1, "t = {t}");
        assert!(calibrate_error_threshold(&scores, 1.5).is_err());
    }

    #[test]
    fn larger_z_larger_threshold() {
        let mut cal = DriftThresholdCalibrator::new();
        for d in [1.0, 5.0, 3.0, 2.0] {
            cal.push(d);
        }
        assert!(cal.threshold(2.0).unwrap() > cal.threshold(1.0).unwrap());
    }

    #[test]
    fn reset_clears_state() {
        let mut cal = DriftThresholdCalibrator::new();
        cal.push(1.0);
        cal.reset();
        assert_eq!(cal.count(), 0);
        assert!(cal.threshold(1.0).is_err());
    }
}
