//! Per-label centroid sets with sequential updates.
//!
//! A [`CentroidSet`] holds one centroid per class label plus the per-label
//! sample counts `num` that weight the running-mean update of Algorithm 1
//! line 12:
//!
//! ```text
//! cor[c] <- (cor[c] * num[c] + data) / (num[c] + 1)
//! ```
//!
//! State is `classes x dim` scalars — independent of stream length, which is
//! the entire memory argument of the paper.

use crate::{CoreError, Result};
use seqdrift_linalg::{vector, Real};

/// How the recent centroid weights new samples (§3.2: "it is possible to
/// assign a higher weight to a newer sample").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Recency {
    /// Plain running mean (the paper's Algorithm 1 update).
    RunningMean,
    /// Exponentially-weighted mean with the given `alpha` — newer samples
    /// weigh more; the extension variant the paper sketches.
    Ewma(Real),
}

/// A set of per-label centroids with sample counts.
#[derive(Debug, Clone, PartialEq)]
pub struct CentroidSet {
    centroids: Vec<Vec<Real>>,
    counts: Vec<u64>,
    dim: usize,
}

impl CentroidSet {
    /// Creates an all-zero centroid set.
    pub fn zeros(classes: usize, dim: usize) -> Self {
        CentroidSet {
            centroids: vec![vec![0.0; dim]; classes],
            counts: vec![0; classes],
            dim,
        }
    }

    /// Builds centroids as per-label means of `(label, sample)` pairs.
    ///
    /// Labels must be `< classes`; classes that receive no samples keep a
    /// zero centroid and zero count.
    pub fn from_labeled(
        classes: usize,
        dim: usize,
        data: &[(usize, &[Real])],
    ) -> Result<CentroidSet> {
        let mut set = CentroidSet::zeros(classes, dim);
        for (label, x) in data {
            set.update(*label, x)?;
        }
        Ok(set)
    }

    /// Number of labels.
    pub fn classes(&self) -> usize {
        self.centroids.len()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Centroid of `label`.
    pub fn centroid(&self, label: usize) -> Result<&[Real]> {
        self.centroids
            .get(label)
            .map(|c| c.as_slice())
            .ok_or(CoreError::BadLabel {
                classes: self.centroids.len(),
                label,
            })
    }

    /// Sample count of `label`.
    pub fn count(&self, label: usize) -> u64 {
        self.counts.get(label).copied().unwrap_or(0)
    }

    /// All counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Sequential running-mean update of `label`'s centroid with `x`
    /// (Algorithm 1 line 12 / Algorithm 4 line 3).
    pub fn update(&mut self, label: usize, x: &[Real]) -> Result<()> {
        self.check(label, x)?;
        vector::running_mean_update(&mut self.centroids[label], self.counts[label], x);
        self.counts[label] += 1;
        Ok(())
    }

    /// Recency-weighted update (see [`Recency`]).
    pub fn update_with(&mut self, label: usize, x: &[Real], recency: Recency) -> Result<()> {
        match recency {
            Recency::RunningMean => self.update(label, x),
            Recency::Ewma(alpha) => {
                self.check(label, x)?;
                if self.counts[label] == 0 {
                    self.centroids[label].copy_from_slice(x);
                } else {
                    vector::ewma_update(&mut self.centroids[label], alpha, x);
                }
                self.counts[label] += 1;
                Ok(())
            }
        }
    }

    /// Overwrites `label`'s centroid (Algorithm 3 line 13).
    pub fn set_centroid(&mut self, label: usize, x: &[Real]) -> Result<()> {
        self.check(label, x)?;
        self.centroids[label].copy_from_slice(x);
        Ok(())
    }

    /// Overwrites `label`'s count.
    pub fn set_count(&mut self, label: usize, n: u64) {
        self.counts[label] = n;
    }

    /// Label whose centroid is nearest to `x` in L1
    /// (`argmin_c |cor[c] - data|`, Algorithms 2–4).
    pub fn nearest_label(&self, x: &[Real]) -> usize {
        let mut best = 0;
        let mut best_d = Real::INFINITY;
        for (c, cent) in self.centroids.iter().enumerate() {
            let d = vector::dist_l1(cent, x);
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        best
    }

    /// Sum over all label pairs of pairwise centroid L1 distances
    /// (Algorithm 3 lines 3 and 7).
    pub fn pairwise_distance_sum(&self) -> Real {
        let mut sum = 0.0;
        for j in 0..self.centroids.len() {
            for k in (j + 1)..self.centroids.len() {
                sum += vector::dist_l1(&self.centroids[j], &self.centroids[k]);
            }
        }
        sum
    }

    /// Minimum pairwise centroid L1 distance (`+inf` with fewer than two
    /// labels) — the maximin dispersion objective of coordinate search.
    pub fn min_pairwise_distance(&self) -> Real {
        let mut min = Real::INFINITY;
        for j in 0..self.centroids.len() {
            for k in (j + 1)..self.centroids.len() {
                min = min.min(vector::dist_l1(&self.centroids[j], &self.centroids[k]));
            }
        }
        min
    }

    /// `Σ_labels metric(self[c], other[c])` — the drift distance of
    /// Algorithm 1 line 14 when `metric` is L1.
    pub fn distance_to(&self, other: &CentroidSet, metric: crate::DistanceMetric) -> Real {
        debug_assert_eq!(self.classes(), other.classes());
        self.centroids
            .iter()
            .zip(other.centroids.iter())
            .map(|(a, b)| metric.eval(a, b))
            .sum()
    }

    /// Number of resident scalars (memory accounting): centroid values plus
    /// one count per class.
    pub fn memory_scalars(&self) -> usize {
        self.centroids.len() * self.dim + self.counts.len()
    }

    /// Reorders labels: row `i` moves to index `mapping[i]` (counts move
    /// with their centroids). `mapping` must be a permutation.
    pub fn permuted(&self, mapping: &[usize]) -> Result<CentroidSet> {
        let c = self.centroids.len();
        if mapping.len() != c {
            return Err(CoreError::InvalidConfig("permutation length mismatch"));
        }
        let mut seen = vec![false; c];
        for &m in mapping {
            if m >= c || seen[m] {
                return Err(CoreError::InvalidConfig("mapping is not a permutation"));
            }
            seen[m] = true;
        }
        let mut out = CentroidSet::zeros(c, self.dim);
        for (i, &target) in mapping.iter().enumerate() {
            out.centroids[target] = self.centroids[i].clone();
            out.counts[target] = self.counts[i];
        }
        Ok(out)
    }

    /// Minimum-total-L1-cost assignment of this set's labels onto
    /// `reference`'s labels: returns `mapping` with `mapping[i]` = the
    /// reference label that row `i` should take. Exact (permutation search)
    /// for up to 8 classes, greedy nearest-unclaimed beyond.
    pub fn match_to(&self, reference: &CentroidSet) -> Vec<usize> {
        let c = self.centroids.len();
        debug_assert_eq!(c, reference.classes());
        if c <= 8 {
            let mut best: Option<(Real, Vec<usize>)> = None;
            let mut perm: Vec<usize> = (0..c).collect();
            permute_visit(&mut perm, 0, &mut |p| {
                let cost: Real = p
                    .iter()
                    .enumerate()
                    .map(|(i, &target)| {
                        vector::dist_l1(&self.centroids[i], &reference.centroids[target])
                    })
                    .sum();
                if best.as_ref().is_none_or(|(bc, _)| cost < *bc) {
                    best = Some((cost, p.to_vec()));
                }
            });
            best.expect("non-empty permutation set").1
        } else {
            let mut mapping = vec![usize::MAX; c];
            let mut taken = vec![false; c];
            for (i, cent) in self.centroids.iter().enumerate() {
                let mut best_t = None;
                let mut best_d = Real::INFINITY;
                for (t, rc) in reference.centroids.iter().enumerate() {
                    if taken[t] {
                        continue;
                    }
                    let d = vector::dist_l1(cent, rc);
                    if d < best_d {
                        best_d = d;
                        best_t = Some(t);
                    }
                }
                let t = best_t.expect("reference labels remain");
                mapping[i] = t;
                taken[t] = true;
            }
            mapping
        }
    }
}

fn permute_visit(items: &mut Vec<usize>, k: usize, visit: &mut impl FnMut(&[usize])) {
    if k == items.len() {
        visit(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute_visit(items, k + 1, visit);
        items.swap(k, i);
    }
}

impl CentroidSet {
    fn check(&self, label: usize, x: &[Real]) -> Result<()> {
        if label >= self.centroids.len() {
            return Err(CoreError::BadLabel {
                classes: self.centroids.len(),
                label,
            });
        }
        if x.len() != self.dim {
            return Err(CoreError::DimensionMismatch {
                expected: self.dim,
                got: x.len(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DistanceMetric;

    #[test]
    fn running_mean_matches_batch_mean() {
        let mut s = CentroidSet::zeros(2, 2);
        s.update(0, &[1.0, 2.0]).unwrap();
        s.update(0, &[3.0, 4.0]).unwrap();
        s.update(1, &[10.0, 10.0]).unwrap();
        assert_eq!(s.centroid(0).unwrap(), &[2.0, 3.0]);
        assert_eq!(s.centroid(1).unwrap(), &[10.0, 10.0]);
        assert_eq!(s.count(0), 2);
        assert_eq!(s.count(1), 1);
    }

    #[test]
    fn from_labeled_builds_means() {
        let data: Vec<(usize, &[Real])> = vec![
            (0, &[0.0, 0.0][..]),
            (0, &[2.0, 2.0][..]),
            (1, &[4.0, 6.0][..]),
        ];
        let s = CentroidSet::from_labeled(2, 2, &data).unwrap();
        assert_eq!(s.centroid(0).unwrap(), &[1.0, 1.0]);
        assert_eq!(s.centroid(1).unwrap(), &[4.0, 6.0]);
    }

    #[test]
    fn bad_label_and_dim_rejected() {
        let mut s = CentroidSet::zeros(2, 3);
        assert!(matches!(
            s.update(5, &[0.0; 3]),
            Err(CoreError::BadLabel { .. })
        ));
        assert!(matches!(
            s.update(0, &[0.0; 2]),
            Err(CoreError::DimensionMismatch { .. })
        ));
        assert!(matches!(s.centroid(9), Err(CoreError::BadLabel { .. })));
    }

    #[test]
    fn ewma_first_sample_snaps_then_smooths() {
        let mut s = CentroidSet::zeros(1, 1);
        s.update_with(0, &[10.0], Recency::Ewma(0.5)).unwrap();
        assert_eq!(s.centroid(0).unwrap(), &[10.0]);
        s.update_with(0, &[0.0], Recency::Ewma(0.5)).unwrap();
        assert_eq!(s.centroid(0).unwrap(), &[5.0]);
    }

    #[test]
    fn ewma_tracks_recent_faster_than_running_mean() {
        let mut rm = CentroidSet::zeros(1, 1);
        let mut ew = CentroidSet::zeros(1, 1);
        // 100 samples at 0, then 20 samples at 1.
        for _ in 0..100 {
            rm.update(0, &[0.0]).unwrap();
            ew.update_with(0, &[0.0], Recency::Ewma(0.2)).unwrap();
        }
        for _ in 0..20 {
            rm.update(0, &[1.0]).unwrap();
            ew.update_with(0, &[1.0], Recency::Ewma(0.2)).unwrap();
        }
        assert!(ew.centroid(0).unwrap()[0] > 3.0 * rm.centroid(0).unwrap()[0]);
    }

    #[test]
    fn nearest_label_is_l1_argmin() {
        let mut s = CentroidSet::zeros(3, 2);
        s.set_centroid(0, &[0.0, 0.0]).unwrap();
        s.set_centroid(1, &[5.0, 5.0]).unwrap();
        s.set_centroid(2, &[0.0, 5.0]).unwrap();
        assert_eq!(s.nearest_label(&[1.0, 0.5]), 0);
        assert_eq!(s.nearest_label(&[4.0, 4.0]), 1);
        assert_eq!(s.nearest_label(&[0.5, 4.5]), 2);
    }

    #[test]
    fn pairwise_distance_sum_known() {
        let mut s = CentroidSet::zeros(3, 1);
        s.set_centroid(0, &[0.0]).unwrap();
        s.set_centroid(1, &[1.0]).unwrap();
        s.set_centroid(2, &[3.0]).unwrap();
        // |0-1| + |0-3| + |1-3| = 6.
        assert_eq!(s.pairwise_distance_sum(), 6.0);
    }

    #[test]
    fn distance_to_sums_over_labels() {
        let mut a = CentroidSet::zeros(2, 2);
        let b = CentroidSet::zeros(2, 2);
        a.set_centroid(0, &[1.0, 0.0]).unwrap();
        a.set_centroid(1, &[0.0, 2.0]).unwrap();
        assert_eq!(a.distance_to(&b, DistanceMetric::L1), 3.0);
        assert!((a.distance_to(&b, DistanceMetric::L2) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn memory_is_constant_in_stream_length() {
        let mut s = CentroidSet::zeros(2, 10);
        let before = s.memory_scalars();
        for i in 0..10_000 {
            s.update(i % 2, &[0.5; 10]).unwrap();
        }
        assert_eq!(s.memory_scalars(), before);
        assert_eq!(before, 2 * 10 + 2);
    }
}
