//! Per-sample input guard: the pipeline's first line of defence against
//! hostile sensor streams.
//!
//! The paper assumes clean streams; real edge deployments do not get them.
//! A single NaN reaching the Sherman–Morrison `P` update corrupts the model
//! permanently, a huge-but-finite reading (1e30) overflows the `f32`
//! reconstruction error to infinity, and a stuck sensor replaying one frame
//! forever silently drags every running centroid toward the frozen value.
//! [`SampleGuard`] validates each raw sample *before* it touches any model
//! state and applies a configurable [`GuardPolicy`]:
//!
//! * [`GuardPolicy::Reject`] — refuse the sample with a typed error; the
//!   pipeline state is untouched (the conservative default, and the PR 1/2
//!   behaviour for non-finite input).
//! * [`GuardPolicy::Clamp`] — sanitize in place: NaN → 0, ±∞ and
//!   out-of-range magnitudes → ±`magnitude_limit`; processing continues on
//!   the sanitized copy.
//! * [`GuardPolicy::ImputeLast`] — replace each bad feature with its value
//!   from the last good sample (falls back to rejection until one exists).
//!
//! Independently of the policy, a run of more than `stuck_threshold`
//! *bit-identical* consecutive samples is always rejected (imputing a stuck
//! frame would just replay it), and dimension mismatches are always
//! rejected. Every decision increments a [`GuardCounters`] field so
//! operators can see *what* the stream did, not just that something
//! happened.

use crate::{CoreError, Result};
use seqdrift_linalg::Real;

/// What to do with a sample that fails validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GuardPolicy {
    /// Refuse the sample with a typed error; no state is touched.
    #[default]
    Reject,
    /// Replace bad features with 0 (NaN) or ±`magnitude_limit` (overflow)
    /// and continue on the sanitized copy.
    Clamp,
    /// Replace bad features with their value from the last good sample;
    /// rejects like [`GuardPolicy::Reject`] until a good sample exists.
    ImputeLast,
}

impl core::str::FromStr for GuardPolicy {
    type Err = &'static str;

    fn from_str(s: &str) -> core::result::Result<Self, Self::Err> {
        match s {
            "reject" => Ok(GuardPolicy::Reject),
            "clamp" => Ok(GuardPolicy::Clamp),
            "impute" | "impute-last" => Ok(GuardPolicy::ImputeLast),
            _ => Err("expected one of: reject, clamp, impute"),
        }
    }
}

impl core::fmt::Display for GuardPolicy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            GuardPolicy::Reject => "reject",
            GuardPolicy::Clamp => "clamp",
            GuardPolicy::ImputeLast => "impute",
        })
    }
}

/// Guard configuration carried by
/// [`PipelineConfig`](crate::pipeline::PipelineConfig).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardConfig {
    /// Policy applied to samples with non-finite or oversized features.
    pub policy: GuardPolicy,
    /// Features with `|v|` beyond this are treated as invalid: their square
    /// (reconstruction error, Welford variance) would overflow `f32`. The
    /// default `1e12` keeps squares (~1e24) comfortably finite while never
    /// rejecting plausible physical sensor readings.
    pub magnitude_limit: Real,
    /// Reject the sample once more than this many bit-identical consecutive
    /// raw samples have arrived (`0` disables stuck detection).
    pub stuck_threshold: u64,
    /// Consecutive clean samples after which a degraded pipeline reports
    /// recovery (see
    /// [`PipelineHealth`](crate::pipeline::PipelineHealth)).
    pub recover_after: u64,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            policy: GuardPolicy::Reject,
            magnitude_limit: 1e12,
            stuck_threshold: 0,
            recover_after: 8,
        }
    }
}

impl GuardConfig {
    /// Default configuration (policy `Reject`, limit `1e12`, stuck
    /// detection off, recovery after 8 clean samples).
    pub fn new() -> Self {
        GuardConfig::default()
    }

    /// Sets the policy for invalid features.
    pub fn with_policy(mut self, policy: GuardPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the magnitude limit beyond which a finite feature is invalid.
    pub fn with_magnitude_limit(mut self, limit: Real) -> Self {
        self.magnitude_limit = limit;
        self
    }

    /// Sets the stuck-sensor run threshold (`0` disables).
    pub fn with_stuck_threshold(mut self, k: u64) -> Self {
        self.stuck_threshold = k;
        self
    }

    /// Sets how many consecutive clean samples clear a degraded state.
    pub fn with_recover_after(mut self, n: u64) -> Self {
        self.recover_after = n;
        self
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if !self.magnitude_limit.is_finite() || self.magnitude_limit <= 0.0 {
            return Err(CoreError::InvalidConfig(
                "guard magnitude_limit must be finite and > 0",
            ));
        }
        if self.recover_after == 0 {
            return Err(CoreError::InvalidConfig("guard recover_after must be >= 1"));
        }
        Ok(())
    }
}

/// Per-pipeline tallies of everything the guard saw and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GuardCounters {
    /// Samples containing at least one NaN/±∞ feature.
    pub non_finite: u64,
    /// Samples containing an oversized (finite but beyond the magnitude
    /// limit) feature and no non-finite one.
    pub oversized: u64,
    /// Samples with the wrong dimensionality.
    pub dim_mismatch: u64,
    /// Samples rejected as part of a stuck-sensor run.
    pub stuck: u64,
    /// Samples repaired (clamped or imputed) and processed.
    pub sanitized: u64,
    /// Samples refused outright.
    pub rejected: u64,
}

/// Verdict for a sample the guard allowed through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardVerdict {
    /// The sample passed validation untouched.
    Clean,
    /// The sample was repaired per the policy; process the buffer, not the
    /// original.
    Sanitized,
}

/// Stateful per-pipeline sample validator.
#[derive(Debug, Clone)]
pub struct SampleGuard {
    cfg: GuardConfig,
    dim: usize,
    counters: GuardCounters,
    /// Last sample that passed (possibly after repair); imputation source.
    last_good: Vec<Real>,
    /// Last raw sample, for bitwise stuck-run comparison.
    last_raw: Vec<Real>,
    /// Length of the current bit-identical run (1 = not repeating).
    run_len: u64,
}

impl SampleGuard {
    /// Builds a guard for `dim`-feature samples.
    pub fn new(cfg: GuardConfig, dim: usize) -> Result<Self> {
        cfg.validate()?;
        Ok(SampleGuard {
            cfg,
            dim,
            counters: GuardCounters::default(),
            last_good: Vec::new(),
            last_raw: Vec::new(),
            run_len: 0,
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &GuardConfig {
        &self.cfg
    }

    /// The lifetime tallies.
    pub fn counters(&self) -> GuardCounters {
        self.counters
    }

    /// Validates `x`. On `Ok(Clean)` the caller processes `x` itself; on
    /// `Ok(Sanitized)` the repaired sample has been written to `buf` and the
    /// caller must process that instead. `Err` means the sample is refused
    /// and no model state may be touched.
    pub fn admit(&mut self, x: &[Real], buf: &mut Vec<Real>) -> Result<GuardVerdict> {
        if x.len() != self.dim {
            self.counters.dim_mismatch += 1;
            self.counters.rejected += 1;
            return Err(CoreError::DimensionMismatch {
                expected: self.dim,
                got: x.len(),
            });
        }
        // Stuck-run tracking compares raw bits: NaN payloads compare equal
        // to themselves, so a sensor stuck on NaN still counts as stuck.
        let same = self.last_raw.len() == x.len()
            && self
                .last_raw
                .iter()
                .zip(x.iter())
                .all(|(a, b)| a.to_bits() == b.to_bits());
        if same {
            self.run_len += 1;
        } else {
            self.run_len = 1;
            self.last_raw.clear();
            self.last_raw.extend_from_slice(x);
        }
        if self.cfg.stuck_threshold > 0 && self.run_len > self.cfg.stuck_threshold {
            self.counters.stuck += 1;
            self.counters.rejected += 1;
            return Err(CoreError::StuckSensor { run: self.run_len });
        }
        // Feature validation: non-finite dominates oversized for counting
        // and error reporting (the first offending feature wins).
        let mut first_bad: Option<usize> = None;
        let mut any_non_finite = false;
        for (i, &v) in x.iter().enumerate() {
            let bad = !v.is_finite() || v.abs() > self.cfg.magnitude_limit;
            if bad {
                if first_bad.is_none() {
                    first_bad = Some(i);
                }
                if !v.is_finite() {
                    any_non_finite = true;
                }
            }
        }
        let Some(first) = first_bad else {
            self.last_good.clear();
            self.last_good.extend_from_slice(x);
            return Ok(GuardVerdict::Clean);
        };
        if any_non_finite {
            self.counters.non_finite += 1;
        } else {
            self.counters.oversized += 1;
        }
        let refuse = |guard: &mut Self| {
            guard.counters.rejected += 1;
            if any_non_finite {
                // Report the first *non-finite* feature for parity with the
                // pre-guard NonFiniteInput contract.
                let feature = x.iter().position(|v| !v.is_finite()).unwrap_or(first);
                Err(CoreError::NonFiniteInput { feature })
            } else {
                Err(CoreError::OversizedInput { feature: first })
            }
        };
        match self.cfg.policy {
            GuardPolicy::Reject => refuse(self),
            GuardPolicy::ImputeLast if self.last_good.is_empty() => refuse(self),
            GuardPolicy::Clamp => {
                buf.clear();
                let limit = self.cfg.magnitude_limit;
                buf.extend(x.iter().map(|&v| {
                    if v.is_nan() {
                        0.0
                    } else {
                        v.clamp(-limit, limit)
                    }
                }));
                self.counters.sanitized += 1;
                self.last_good.clear();
                self.last_good.extend_from_slice(buf);
                Ok(GuardVerdict::Sanitized)
            }
            GuardPolicy::ImputeLast => {
                buf.clear();
                let limit = self.cfg.magnitude_limit;
                buf.extend(x.iter().enumerate().map(|(i, &v)| {
                    if !v.is_finite() || v.abs() > limit {
                        self.last_good[i]
                    } else {
                        v
                    }
                }));
                self.counters.sanitized += 1;
                self.last_good.clear();
                self.last_good.extend_from_slice(buf);
                Ok(GuardVerdict::Sanitized)
            }
        }
    }

    /// Replaces the configuration (counters and imputation state persist).
    pub(crate) fn set_config(&mut self, cfg: GuardConfig) -> Result<()> {
        cfg.validate()?;
        self.cfg = cfg;
        Ok(())
    }

    /// Reassembles a guard from persisted state (deserialisation).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        cfg: GuardConfig,
        dim: usize,
        counters: GuardCounters,
        last_good: Vec<Real>,
        last_raw: Vec<Real>,
        run_len: u64,
    ) -> Result<Self> {
        cfg.validate()?;
        if !(last_good.is_empty() || last_good.len() == dim)
            || !(last_raw.is_empty() || last_raw.len() == dim)
        {
            return Err(CoreError::InvalidConfig(
                "guard state length does not match dimension",
            ));
        }
        Ok(SampleGuard {
            cfg,
            dim,
            counters,
            last_good,
            last_raw,
            run_len,
        })
    }

    /// Imputation source (persistence).
    pub(crate) fn last_good(&self) -> &[Real] {
        &self.last_good
    }

    /// Last raw sample (persistence).
    pub(crate) fn last_raw(&self) -> &[Real] {
        &self.last_raw
    }

    /// Current identical-run length (persistence).
    pub(crate) fn run_len(&self) -> u64 {
        self.run_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn guard(policy: GuardPolicy) -> SampleGuard {
        SampleGuard::new(
            GuardConfig::new()
                .with_policy(policy)
                .with_stuck_threshold(3),
            3,
        )
        .unwrap()
    }

    #[test]
    fn clean_samples_pass_untouched() {
        let mut g = guard(GuardPolicy::Reject);
        let mut buf = Vec::new();
        for i in 0..5 {
            let x = [i as Real, 1.0, -2.0];
            assert_eq!(g.admit(&x, &mut buf).unwrap(), GuardVerdict::Clean);
        }
        assert_eq!(g.counters(), GuardCounters::default());
    }

    #[test]
    fn reject_reports_first_non_finite_feature() {
        let mut g = guard(GuardPolicy::Reject);
        let mut buf = Vec::new();
        let x = [1.0, Real::NAN, Real::INFINITY];
        assert_eq!(
            g.admit(&x, &mut buf).unwrap_err(),
            CoreError::NonFiniteInput { feature: 1 }
        );
        let c = g.counters();
        assert_eq!((c.non_finite, c.rejected), (1, 1));
    }

    #[test]
    fn oversized_is_its_own_error_and_counter() {
        let mut g = guard(GuardPolicy::Reject);
        let mut buf = Vec::new();
        let x = [1.0, 1e30, 0.0];
        assert_eq!(
            g.admit(&x, &mut buf).unwrap_err(),
            CoreError::OversizedInput { feature: 1 }
        );
        let c = g.counters();
        assert_eq!((c.oversized, c.non_finite, c.rejected), (1, 0, 1));
    }

    #[test]
    fn clamp_repairs_in_place() {
        let mut g = guard(GuardPolicy::Clamp);
        let mut buf = Vec::new();
        let x = [Real::NAN, -Real::INFINITY, 1e30];
        assert_eq!(g.admit(&x, &mut buf).unwrap(), GuardVerdict::Sanitized);
        assert_eq!(buf, vec![0.0, -1e12, 1e12]);
        assert_eq!(g.counters().sanitized, 1);
    }

    #[test]
    fn impute_uses_last_good_and_rejects_before_one_exists() {
        let mut g = guard(GuardPolicy::ImputeLast);
        let mut buf = Vec::new();
        // No last-good yet: behaves like Reject.
        assert!(g.admit(&[Real::NAN, 0.0, 0.0], &mut buf).is_err());
        assert_eq!(
            g.admit(&[1.0, 2.0, 3.0], &mut buf).unwrap(),
            GuardVerdict::Clean
        );
        assert_eq!(
            g.admit(&[Real::NAN, 9.0, Real::INFINITY], &mut buf)
                .unwrap(),
            GuardVerdict::Sanitized
        );
        assert_eq!(buf, vec![1.0, 9.0, 3.0]);
        // The repaired sample becomes the new imputation source.
        assert_eq!(
            g.admit(&[Real::NAN, 0.0, 0.0], &mut buf).unwrap(),
            GuardVerdict::Sanitized
        );
        assert_eq!(buf, vec![1.0, 0.0, 0.0]);
    }

    #[test]
    fn stuck_runs_are_rejected_past_threshold() {
        let mut g = guard(GuardPolicy::Clamp);
        let mut buf = Vec::new();
        let x = [0.5, 0.5, 0.5];
        for _ in 0..3 {
            assert!(g.admit(&x, &mut buf).is_ok());
        }
        assert_eq!(
            g.admit(&x, &mut buf).unwrap_err(),
            CoreError::StuckSensor { run: 4 }
        );
        // A different sample resets the run.
        assert!(g.admit(&[0.5, 0.5, 0.6], &mut buf).is_ok());
        assert!(g.admit(&x, &mut buf).is_ok());
        let c = g.counters();
        assert_eq!((c.stuck, c.rejected), (1, 1));
    }

    #[test]
    fn stuck_detection_disabled_by_default() {
        let mut g = SampleGuard::new(GuardConfig::new(), 2).unwrap();
        let mut buf = Vec::new();
        for _ in 0..100 {
            assert!(g.admit(&[1.0, 1.0], &mut buf).is_ok());
        }
        assert_eq!(g.counters().stuck, 0);
    }

    #[test]
    fn dimension_mismatch_always_rejects() {
        for policy in [
            GuardPolicy::Reject,
            GuardPolicy::Clamp,
            GuardPolicy::ImputeLast,
        ] {
            let mut g = guard(policy);
            let mut buf = Vec::new();
            assert!(matches!(
                g.admit(&[1.0, 2.0], &mut buf),
                Err(CoreError::DimensionMismatch {
                    expected: 3,
                    got: 2
                })
            ));
            assert_eq!(g.counters().dim_mismatch, 1);
        }
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        assert!(GuardConfig::new()
            .with_magnitude_limit(0.0)
            .validate()
            .is_err());
        assert!(GuardConfig::new()
            .with_magnitude_limit(Real::NAN)
            .validate()
            .is_err());
        assert!(GuardConfig::new().with_recover_after(0).validate().is_err());
        assert!(GuardConfig::new().validate().is_ok());
    }

    #[test]
    fn policy_parses_from_cli_spellings() {
        assert_eq!(
            "reject".parse::<GuardPolicy>().unwrap(),
            GuardPolicy::Reject
        );
        assert_eq!("clamp".parse::<GuardPolicy>().unwrap(), GuardPolicy::Clamp);
        assert_eq!(
            "impute".parse::<GuardPolicy>().unwrap(),
            GuardPolicy::ImputeLast
        );
        assert_eq!(
            "impute-last".parse::<GuardPolicy>().unwrap(),
            GuardPolicy::ImputeLast
        );
        assert!("yolo".parse::<GuardPolicy>().is_err());
    }
}
