//! Pipeline persistence: checkpoint the full detection state for device
//! reboot recovery.
//!
//! An edge device loses power; on restart it should resume with its
//! *adapted* model and centroids, not refit from scratch (the training
//! data is long gone). [`DriftPipeline::to_bytes`] captures the model, the
//! detector's trained/test centroid sets, all thresholds, and the
//! reconstruction schedule. Mid-reconstruction checkpoints are refused —
//! the half-retrained model is not a state worth resuming into; callers
//! checkpoint at quiescent points (e.g. after each `Reconstructed` event).

use crate::centroid::{CentroidSet, Recency};
use crate::detector::{CentroidDetector, DetectorConfig, DistanceMetric};
use crate::guard::{GuardConfig, GuardCounters, GuardPolicy, SampleGuard};
use crate::pipeline::{DegradeReason, DriftPipeline, PipelineConfig, PipelineHealth};
use crate::reconstruct::{ReconstructConfig, Reconstructor};
use crate::{CoreError, Result};
use seqdrift_linalg::wire::{Reader, WireError, Writer};
use seqdrift_oselm::persist::{read_multi_instance_body, write_multi_instance_body};

/// Payload kind of a serialised pipeline.
const KIND_PIPELINE: u16 = 16;

fn wire_err(e: WireError) -> CoreError {
    CoreError::InvalidConfig(match e {
        WireError::BadMagic => "persist: bad magic",
        WireError::UnsupportedVersion(_) => "persist: unsupported version",
        WireError::WrongKind { .. } => "persist: wrong payload kind",
        WireError::Truncated => "persist: truncated blob",
        WireError::Invalid(w) => w,
    })
}

fn write_centroid_set(w: &mut Writer, s: &CentroidSet) {
    w.u64(s.classes() as u64);
    w.u64(s.dim() as u64);
    for c in 0..s.classes() {
        w.reals(s.centroid(c).expect("class in range"));
    }
    w.u64s(s.counts());
}

fn read_centroid_set(r: &mut Reader<'_>) -> Result<CentroidSet> {
    let classes = r.u64().map_err(wire_err)? as usize;
    let dim = r.u64().map_err(wire_err)? as usize;
    if classes == 0 || classes > 65_536 || dim == 0 || dim > 16_777_216 {
        return Err(CoreError::InvalidConfig("persist: centroid set shape"));
    }
    // Bound the allocation by the bytes actually present: a length-lying
    // blob could otherwise pass the sanity caps above (up to ~10^12
    // scalars) and make `zeros` reserve gigabytes before any row read
    // fails. Each of `classes` rows needs a length prefix plus `dim`
    // scalars, so a legitimate blob has at least this many bytes left.
    let min_bytes = (classes as u64)
        .checked_mul(8 + (dim as u64) * core::mem::size_of::<seqdrift_linalg::Real>() as u64)
        .ok_or(CoreError::InvalidConfig("persist: centroid set shape"))?;
    if min_bytes > r.remaining() as u64 {
        return Err(CoreError::InvalidConfig("persist: truncated blob"));
    }
    let mut set = CentroidSet::zeros(classes, dim);
    for c in 0..classes {
        let row = r.reals().map_err(wire_err)?;
        if row.len() != dim {
            return Err(CoreError::InvalidConfig("persist: centroid row length"));
        }
        set.set_centroid(c, &row)?;
    }
    let counts = r.u64s().map_err(wire_err)?;
    if counts.len() != classes {
        return Err(CoreError::InvalidConfig("persist: counts length"));
    }
    for (c, &n) in counts.iter().enumerate() {
        set.set_count(c, n);
    }
    Ok(set)
}

fn write_detector_config(w: &mut Writer, cfg: &DetectorConfig) {
    w.u64(cfg.classes as u64);
    w.u64(cfg.dim as u64);
    w.u64(cfg.window as u64);
    w.real(cfg.theta_error);
    w.real(cfg.theta_drift);
    w.u8(match cfg.metric {
        DistanceMetric::L1 => 0,
        DistanceMetric::L2 => 1,
    });
    match cfg.recency {
        Recency::RunningMean => w.u8(0),
        Recency::Ewma(a) => {
            w.u8(1);
            w.real(a);
        }
    }
}

fn read_detector_config(r: &mut Reader<'_>) -> Result<DetectorConfig> {
    let classes = r.u64().map_err(wire_err)? as usize;
    let dim = r.u64().map_err(wire_err)? as usize;
    let window = r.u64().map_err(wire_err)? as usize;
    let theta_error = r.real().map_err(wire_err)?;
    let theta_drift = r.real().map_err(wire_err)?;
    let metric = match r.u8().map_err(wire_err)? {
        0 => DistanceMetric::L1,
        1 => DistanceMetric::L2,
        _ => return Err(CoreError::InvalidConfig("persist: metric tag")),
    };
    let recency = match r.u8().map_err(wire_err)? {
        0 => Recency::RunningMean,
        1 => Recency::Ewma(r.real().map_err(wire_err)?),
        _ => return Err(CoreError::InvalidConfig("persist: recency tag")),
    };
    Ok(DetectorConfig {
        classes,
        dim,
        window,
        theta_error,
        theta_drift,
        metric,
        recency,
    })
}

impl DriftPipeline {
    /// Serialises the pipeline's quiescent state: model, detector (config +
    /// trained/test centroid sets + window state), pipeline and
    /// reconstruction configs, and the processed-sample counter. The event
    /// log is diagnostic and not persisted.
    ///
    /// Errors while a reconstruction is in progress.
    pub fn to_bytes(&self) -> Result<Vec<u8>> {
        if self.is_reconstructing() {
            return Err(CoreError::InvalidConfig(
                "cannot checkpoint mid-reconstruction; wait for the Reconstructed event",
            ));
        }
        let cfg = self.config();
        let det = self.detector();
        let mut w = Writer::new(KIND_PIPELINE);
        // Pipeline-level config.
        write_detector_config(&mut w, det.config());
        w.u64(cfg.reconstruct.n_search as u64);
        w.u64(cfg.reconstruct.n_update as u64);
        w.u64(cfg.reconstruct.n_total as u64);
        w.real(cfg.reconstruct.z);
        w.u8(u8::from(cfg.reconstruct.align_labels));
        w.real(cfg.error_quantile);
        w.real(cfg.error_margin);
        w.real(cfg.z);
        w.u8(u8::from(cfg.train_on_stable));
        // Guard config + state and the health machine.
        w.u8(match cfg.guard.policy {
            GuardPolicy::Reject => 0,
            GuardPolicy::Clamp => 1,
            GuardPolicy::ImputeLast => 2,
        });
        w.real(cfg.guard.magnitude_limit);
        w.u64(cfg.guard.stuck_threshold);
        w.u64(cfg.guard.recover_after);
        w.u8(match self.health() {
            PipelineHealth::Healthy => 0,
            PipelineHealth::Degraded(DegradeReason::InputFault) => 1,
            PipelineHealth::Degraded(DegradeReason::NumericalFault) => 2,
        });
        w.u64(self.clean_streak());
        let gc = self.guard_counters();
        w.u64(gc.non_finite);
        w.u64(gc.oversized);
        w.u64(gc.dim_mismatch);
        w.u64(gc.stuck);
        w.u64(gc.sanitized);
        w.u64(gc.rejected);
        w.reals(self.guard_last_good());
        w.reals(self.guard_last_raw());
        w.u64(self.guard_run_len());
        // Detector state.
        write_centroid_set(&mut w, det.trained_centroids());
        write_centroid_set(&mut w, det.test_centroids());
        w.u64(det.samples_seen());
        w.u64(self.samples_processed());
        // Model.
        write_multi_instance_body(&mut w, self.model());
        Ok(w.into_bytes())
    }

    /// Restores a pipeline written by [`DriftPipeline::to_bytes`].
    pub fn from_bytes(data: &[u8]) -> Result<DriftPipeline> {
        let mut r = Reader::new(data, KIND_PIPELINE).map_err(wire_err)?;
        let det_cfg = read_detector_config(&mut r)?;
        let n_search = r.u64().map_err(wire_err)? as usize;
        let n_update = r.u64().map_err(wire_err)? as usize;
        let n_total = r.u64().map_err(wire_err)? as usize;
        let recon_z = r.real().map_err(wire_err)?;
        let align_labels = r.u8().map_err(wire_err)? != 0;
        let error_quantile = r.real().map_err(wire_err)?;
        let error_margin = r.real().map_err(wire_err)?;
        let z = r.real().map_err(wire_err)?;
        let train_on_stable = r.u8().map_err(wire_err)? != 0;
        let guard_policy = match r.u8().map_err(wire_err)? {
            0 => GuardPolicy::Reject,
            1 => GuardPolicy::Clamp,
            2 => GuardPolicy::ImputeLast,
            _ => return Err(CoreError::InvalidConfig("persist: guard policy tag")),
        };
        let magnitude_limit = r.real().map_err(wire_err)?;
        let stuck_threshold = r.u64().map_err(wire_err)?;
        let recover_after = r.u64().map_err(wire_err)?;
        let health = match r.u8().map_err(wire_err)? {
            0 => PipelineHealth::Healthy,
            1 => PipelineHealth::Degraded(DegradeReason::InputFault),
            2 => PipelineHealth::Degraded(DegradeReason::NumericalFault),
            _ => return Err(CoreError::InvalidConfig("persist: health tag")),
        };
        let clean_streak = r.u64().map_err(wire_err)?;
        let guard_counters = GuardCounters {
            non_finite: r.u64().map_err(wire_err)?,
            oversized: r.u64().map_err(wire_err)?,
            dim_mismatch: r.u64().map_err(wire_err)?,
            stuck: r.u64().map_err(wire_err)?,
            sanitized: r.u64().map_err(wire_err)?,
            rejected: r.u64().map_err(wire_err)?,
        };
        let guard_last_good = r.reals().map_err(wire_err)?;
        let guard_last_raw = r.reals().map_err(wire_err)?;
        let guard_run_len = r.u64().map_err(wire_err)?;
        let trained = read_centroid_set(&mut r)?;
        let test = read_centroid_set(&mut r)?;
        let det_samples = r.u64().map_err(wire_err)?;
        let samples_processed = r.u64().map_err(wire_err)?;
        let model = read_multi_instance_body(&mut r)?;
        r.finish().map_err(wire_err)?;

        let mut recon_cfg = ReconstructConfig::new(n_total)
            .with_search(n_search)
            .with_update(n_update)
            .with_z(recon_z);
        if !align_labels {
            recon_cfg = recon_cfg.without_label_alignment();
        }
        let guard_cfg = GuardConfig {
            policy: guard_policy,
            magnitude_limit,
            stuck_threshold,
            recover_after,
        };
        let cfg = PipelineConfig::new(det_cfg.clone())
            .with_reconstruct(recon_cfg)
            .with_error_quantile(error_quantile)
            .with_error_margin(error_margin)
            .with_z(z)
            .with_train_on_stable(train_on_stable)
            .with_guard(guard_cfg);

        let detector = CentroidDetector::restore(det_cfg.clone(), trained, test, det_samples)?;
        let reconstructor = Reconstructor::new(recon_cfg, det_cfg.classes, det_cfg.dim)?;
        let guard = SampleGuard::from_parts(
            guard_cfg,
            det_cfg.dim,
            guard_counters,
            guard_last_good,
            guard_last_raw,
            guard_run_len,
        )?;
        DriftPipeline::from_restored_parts(
            model,
            detector,
            reconstructor,
            cfg,
            samples_processed,
            guard,
            health,
            clean_streak,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdrift_linalg::{Real, Rng};
    use seqdrift_oselm::{MultiInstanceModel, OsElmConfig};

    fn blob(rng: &mut Rng, dim: usize, mean: Real) -> Vec<Real> {
        let mut x = vec![0.0; dim];
        rng.fill_normal(&mut x, mean, 0.05);
        x
    }

    fn build_pipeline(rng: &mut Rng) -> DriftPipeline {
        let dim = 5;
        let class0: Vec<Vec<Real>> = (0..80).map(|_| blob(rng, dim, 0.2)).collect();
        let class1: Vec<Vec<Real>> = (0..80).map(|_| blob(rng, dim, 0.8)).collect();
        let mut model = MultiInstanceModel::new(2, OsElmConfig::new(dim, 4).with_seed(3)).unwrap();
        model.init_train_class(0, &class0).unwrap();
        model.init_train_class(1, &class1).unwrap();
        let pairs: Vec<(usize, &[Real])> = class0
            .iter()
            .map(|x| (0usize, x.as_slice()))
            .chain(class1.iter().map(|x| (1usize, x.as_slice())))
            .collect();
        let det = DetectorConfig::new(2, dim).with_window(20);
        DriftPipeline::calibrate(model, det, &pairs).unwrap()
    }

    #[test]
    fn checkpoint_roundtrip_resumes_identically() {
        let mut rng = Rng::seed_from(1);
        let mut p = build_pipeline(&mut rng);
        // Warm it up so detector state is non-trivial.
        for i in 0..150 {
            let mean = if i % 2 == 0 { 0.2 } else { 0.8 };
            p.process(&blob(&mut rng, 5, mean)).unwrap();
        }
        let bytes = p.to_bytes().unwrap();
        let mut restored = DriftPipeline::from_bytes(&bytes).unwrap();
        assert_eq!(restored.samples_processed(), p.samples_processed());
        assert_eq!(
            restored.detector().config().theta_drift,
            p.detector().config().theta_drift
        );
        assert_eq!(
            restored.detector().test_centroids(),
            p.detector().test_centroids()
        );
        // Both continue in lockstep over the same future stream.
        let mut rng_a = Rng::seed_from(2);
        let mut rng_b = Rng::seed_from(2);
        for i in 0..300 {
            let mean = if i % 2 == 0 { 0.5 } else { 1.1 };
            let a = p.process(&blob(&mut rng_a, 5, mean)).unwrap();
            let b = restored.process(&blob(&mut rng_b, 5, mean)).unwrap();
            assert_eq!(a.predicted_label, b.predicted_label, "diverged at {i}");
            assert_eq!(a.drift_detected, b.drift_detected, "diverged at {i}");
        }
    }

    #[test]
    fn mid_reconstruction_checkpoint_is_refused() {
        let mut rng = Rng::seed_from(5);
        let mut p = build_pipeline(&mut rng);
        // Force a drift and stop inside the reconstruction.
        let mut drifted = false;
        for _ in 0..500 {
            let out = p.process(&blob(&mut rng, 5, 1.4)).unwrap();
            if out.drift_detected {
                drifted = true;
                break;
            }
        }
        assert!(drifted, "no drift triggered");
        // One more sample puts us mid-reconstruction.
        p.process(&blob(&mut rng, 5, 1.4)).unwrap();
        assert!(p.is_reconstructing());
        assert!(p.to_bytes().is_err());
    }

    #[test]
    fn guard_state_and_health_roundtrip() {
        let mut rng = Rng::seed_from(21);
        let mut p = build_pipeline(&mut rng);
        p.set_guard_config(
            crate::GuardConfig::new()
                .with_policy(crate::GuardPolicy::ImputeLast)
                .with_stuck_threshold(6)
                .with_recover_after(4),
        )
        .unwrap();
        // Accumulate guard state: a clean sample, then a repaired one.
        let good = blob(&mut rng, 5, 0.2);
        p.process(&good).unwrap();
        let mut bad = good.clone();
        bad[2] = Real::NAN;
        let out = p.process(&bad).unwrap();
        assert!(out.sanitized);
        assert_eq!(
            p.health(),
            crate::PipelineHealth::Degraded(crate::pipeline::DegradeReason::InputFault)
        );

        let restored = DriftPipeline::from_bytes(&p.to_bytes().unwrap()).unwrap();
        assert_eq!(restored.health(), p.health());
        assert_eq!(restored.guard_counters(), p.guard_counters());
        assert_eq!(restored.guard_config(), p.guard_config());
        assert_eq!(restored.guard_last_good(), p.guard_last_good());
        // last_raw holds the NaN-laced sample; compare bit patterns (NaN
        // never compares equal to itself).
        let bits = |xs: &[Real]| xs.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(restored.guard_last_raw()), bits(p.guard_last_raw()));
        assert_eq!(restored.guard_run_len(), p.guard_run_len());
        assert_eq!(restored.clean_streak(), p.clean_streak());
        // The full blob is still bit-stable across a save/restore/save.
        assert_eq!(restored.to_bytes().unwrap(), p.to_bytes().unwrap());
    }

    #[test]
    fn corrupted_pipeline_blob_rejected() {
        let mut rng = Rng::seed_from(9);
        let p = build_pipeline(&mut rng);
        let bytes = p.to_bytes().unwrap();
        assert!(DriftPipeline::from_bytes(&bytes[..bytes.len() - 5]).is_err());
        let mut bad = bytes.clone();
        bad[0] = b'Q';
        assert!(DriftPipeline::from_bytes(&bad).is_err());
        let mut long = bytes;
        long.push(1);
        assert!(DriftPipeline::from_bytes(&long).is_err());
    }
}
