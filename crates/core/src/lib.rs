#![warn(missing_docs)]

//! # seqdrift-core
//!
//! The paper's primary contribution: a **fully sequential concept-drift
//! detection method** that pairs with on-device OS-ELM learning so both
//! detection and retraining run in O(1) memory per sample.
//!
//! * [`centroid`] — per-label centroid sets with the sequential
//!   running-mean update of Algorithm 1 line 12 / Algorithm 4;
//! * [`detector`] — the Algorithm 1 state machine
//!   ([`detector::CentroidDetector`]): anomaly-gated windows, sequential
//!   centroid tracking, L1 drift distance against calibrated `θ_drift`;
//! * [`threshold`] — Eq. 1 calibration of `θ_drift` (`μ + z·σ` of
//!   train-sample-to-centroid distances) and quantile calibration of
//!   `θ_error`;
//! * [`reconstruct`] — Algorithms 2–4: k-means++-inspired coordinate
//!   initialisation, sequential coordinate refinement, and two-phase
//!   sequential model retraining;
//! * [`pipeline`] — [`pipeline::DriftPipeline`] wires a
//!   `MultiInstanceModel`, the detector, and the reconstructor into the
//!   complete online loop of Figure 2;
//! * [`ensemble`] — the paper's stated future-work extension: several
//!   detectors with different window sizes voting.
//!
//! ## Standalone detector example
//!
//! The detector works with any model that yields `(label, score)` pairs —
//! here driven directly, without the pipeline:
//!
//! ```
//! use seqdrift_core::centroid::CentroidSet;
//! use seqdrift_core::{CentroidDetector, DetectorConfig, DetectorOutcome};
//!
//! // One class in 2-D, trained centroid at the origin, 50 training samples.
//! let mut trained = CentroidSet::zeros(1, 2);
//! trained.set_centroid(0, &[0.0, 0.0]).unwrap();
//! trained.set_count(0, 50);
//!
//! let cfg = DetectorConfig::new(1, 2)
//!     .with_window(10)
//!     .with_theta_error(0.0)   // no gating in this toy
//!     .with_theta_drift(0.5);  // normally calibrated via Eq. 1
//! let mut det = CentroidDetector::new(cfg, trained).unwrap();
//!
//! // The concept moves to (2, 2): within two windows the accumulated
//! // centroid displacement crosses the threshold.
//! let mut drift_at = None;
//! for i in 0..40 {
//!     if let DetectorOutcome::Checked { drift: true, .. } =
//!         det.observe(0, &[2.0, 2.0], 1.0).unwrap()
//!     {
//!         drift_at = Some(i);
//!         break;
//!     }
//! }
//! assert_eq!(drift_at, Some(9)); // first window close
//! ```
//!
//! ## Interpretation notes (where the pseudocode under-specifies)
//!
//! 1. Algorithm 1 as printed skips label prediction while a detection
//!    window is open (lines 6–7 run only when `check = False`). Prediction
//!    is needed every sample anyway — for the accuracy curves of Figure 4
//!    and for choosing which centroid to update — so this implementation
//!    predicts every sample and updates the centroid of *each sample's own*
//!    predicted label.
//! 2. `cor`/`num` persist across windows (they are inputs to Algorithm 1,
//!    not reset in it). Detection therefore triggers once the *accumulated*
//!    centroid displacement crosses `θ_drift`, which is why the paper's
//!    observed delays (843–1263 samples) exceed the window size.
//! 3. During reconstruction, each OS-ELM instance's covariance `P` is reset
//!    to `(1/λ)·I` (its regularised fresh state) while `β` is kept as a warm
//!    start: after thousands of sequential updates `P` has contracted so far
//!    that new-concept data would barely move the model, and the paper's
//!    reconstruction is explicitly meant to *replace* the old concept.
//!    `θ_drift` is recalibrated from the distances observed during
//!    reconstruction phases 3–4 (sequentially, via Welford — no buffering).

pub mod centroid;
pub mod detector;
pub mod ensemble;
pub mod guard;
pub mod persist;
pub mod pipeline;
pub mod reconstruct;
pub mod threshold;

pub use centroid::CentroidSet;
pub use detector::{CentroidDetector, DetectorConfig, DetectorOutcome, DistanceMetric};
pub use ensemble::{EnsembleDetector, VotePolicy};
pub use guard::{GuardConfig, GuardCounters, GuardPolicy};
pub use pipeline::{DegradeReason, DriftPipeline, PipelineConfig, PipelineHealth, PipelineOutput};
pub use reconstruct::{ReconstructConfig, Reconstructor};

use seqdrift_oselm::ModelError;

/// Errors from the detection pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Underlying model failure.
    Model(ModelError),
    /// Invalid configuration.
    InvalidConfig(&'static str),
    /// Input dimensionality mismatch.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Provided dimension.
        got: usize,
    },
    /// Label out of range.
    BadLabel {
        /// Number of classes.
        classes: usize,
        /// Offending label.
        label: usize,
    },
    /// An input sample contained NaN or infinity. Such values would poison
    /// the running centroids permanently (a single NaN makes every later
    /// distance NaN, silently disabling detection), so the pipeline rejects
    /// them at the boundary — a faulty sensor should surface as an error,
    /// not as a detector that quietly stops working.
    NonFiniteInput {
        /// Index of the offending feature.
        feature: usize,
    },
    /// An input feature is finite but exceeds the guard's magnitude limit.
    /// Squaring such a value (reconstruction error, Welford variance)
    /// overflows `f32` to infinity, so the guard treats it like a
    /// non-finite reading.
    OversizedInput {
        /// Index of the offending feature.
        feature: usize,
    },
    /// The same raw sample arrived more than `stuck_threshold` times in a
    /// row — the signature of a stuck sensor. Feeding the repeats onward
    /// would silently bias the running centroids toward the frozen value.
    StuckSensor {
        /// Length of the identical-sample run, including this sample.
        run: u64,
    },
}

impl From<ModelError> for CoreError {
    fn from(e: ModelError) -> Self {
        CoreError::Model(e)
    }
}

impl core::fmt::Display for CoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CoreError::Model(e) => write!(f, "model error: {e}"),
            CoreError::InvalidConfig(what) => write!(f, "invalid config: {what}"),
            CoreError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            CoreError::BadLabel { classes, label } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
            CoreError::NonFiniteInput { feature } => {
                write!(f, "input feature {feature} is NaN or infinite")
            }
            CoreError::OversizedInput { feature } => {
                write!(
                    f,
                    "input feature {feature} exceeds the guard magnitude limit"
                )
            }
            CoreError::StuckSensor { run } => {
                write!(f, "stuck sensor: {run} identical consecutive samples")
            }
        }
    }
}

impl std::error::Error for CoreError {}

/// Result alias for this crate.
pub type Result<T> = core::result::Result<T, CoreError>;
