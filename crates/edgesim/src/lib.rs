#![warn(missing_docs)]

//! # seqdrift-edgesim
//!
//! Edge-device models standing in for the paper's hardware (Table 1):
//! Raspberry Pi 4 Model B and Raspberry Pi Pico.
//!
//! The reproduction does not run on the physical boards, so this crate
//! provides the two things the paper's evaluation needs from them:
//!
//! * **memory accounting** ([`memory`]) — analytic byte counts of every
//!   method's resident state, computed from the live Rust structures with
//!   the same arithmetic the paper's C firmware implies (4-byte `f32`
//!   scalars). This regenerates Table 4 and the "Quant Tree / SPLL cannot
//!   run on the Pico" claim (Table 1's 264 kB budget);
//! * **timing projection** ([`timing`]) — host-measured execution times
//!   scaled by a per-device slowdown factor (clock ratio x ISA/FPU
//!   penalty). Absolute values are approximate by construction; the
//!   *relative* comparisons of Tables 5–6 (who is faster, by what factor)
//!   are preserved because every method scales by the same constant.

pub mod budget;
pub mod device;
pub mod flops;
pub mod memory;
pub mod timing;

pub use budget::{check_budget, fits_in_ram, BudgetReport};
pub use device::{DeviceSpec, PI4, PICO};
pub use flops::{project_op, CycleModel, Table6Op, TABLE6_OPS};
pub use memory::{bytes_of_scalars, MemoryFootprint, MemoryReport};
pub use timing::{project_duration, TimingProjection};
