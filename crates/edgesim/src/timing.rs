//! Host-to-device timing projection (Tables 5 and 6).
//!
//! Execution times are measured on the host (std::time / Criterion) and
//! projected to a device by multiplying with its `host_slowdown`. This is a
//! deliberately simple linear model: it cannot capture cache differences or
//! the Pico's lack of an FPU per-operation, but every method is scaled by
//! the same constant, so the paper's actual claims — orderings and ratios
//! between methods — survive the projection unchanged. EXPERIMENTS.md
//! reports both raw host numbers and projections.

use crate::device::DeviceSpec;
use std::time::Duration;

/// Projects a host-measured duration onto a device.
pub fn project_duration(host: Duration, device: &DeviceSpec) -> Duration {
    host.mul_f64(device.host_slowdown)
}

/// A labelled host measurement with device projections.
#[derive(Debug, Clone)]
pub struct TimingProjection {
    /// Operation name.
    pub label: String,
    /// Measured host duration.
    pub host: Duration,
}

impl TimingProjection {
    /// Builds a projection entry.
    pub fn new(label: impl Into<String>, host: Duration) -> Self {
        TimingProjection {
            label: label.into(),
            host,
        }
    }

    /// Projection onto a device.
    pub fn on(&self, device: &DeviceSpec) -> Duration {
        project_duration(self.host, device)
    }

    /// Projection in milliseconds (Table 6's unit).
    pub fn on_ms(&self, device: &DeviceSpec) -> f64 {
        self.on(device).as_secs_f64() * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{PI4, PICO};

    #[test]
    fn projection_scales_linearly() {
        let host = Duration::from_micros(100);
        let pi4 = project_duration(host, &PI4);
        let pico = project_duration(host, &PICO);
        assert_eq!(pi4, host.mul_f64(PI4.host_slowdown));
        assert!(pico > pi4);
        // Ratio between devices equals the ratio of slowdowns.
        let ratio = pico.as_secs_f64() / pi4.as_secs_f64();
        assert!((ratio - PICO.host_slowdown / PI4.host_slowdown).abs() < 1e-9);
    }

    #[test]
    fn ordering_is_preserved() {
        // If method A is 3x slower than B on the host, it stays 3x slower
        // on any device under this model.
        let a = TimingProjection::new("a", Duration::from_micros(300));
        let b = TimingProjection::new("b", Duration::from_micros(100));
        for dev in [&PI4, &PICO] {
            let ra = a.on(dev).as_secs_f64();
            let rb = b.on(dev).as_secs_f64();
            assert!((ra / rb - 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn milliseconds_unit() {
        let t = TimingProjection::new("x", Duration::from_millis(2));
        assert!((t.on_ms(&PI4) - 2.0 * PI4.host_slowdown).abs() < 1e-9);
    }
}
