//! Flop-level cost model: an analytic alternative to wall-clock scaling.
//!
//! The linear host-slowdown projection in [`crate::timing`] preserves
//! ratios between methods but cannot capture how differently a Cortex-M0+
//! (software floating point, 2-stage in-order pipeline) weights arithmetic
//! against a cache-rich superscalar host. This module counts the floating
//! point operations of each algorithmic step *exactly* from the paper's
//! dimensions and converts them to time with a per-device
//! effective-cycles-per-flop constant — the standard back-of-envelope an
//! embedded engineer runs before committing to a deployment.
//!
//! "Effective cycles per flop" folds in the adjacent loads/stores and loop
//! overhead of the dense kernels this workspace uses; it is calibrated
//! once per device class (see [`CycleModel`]) and deliberately coarse —
//! the value of the model is that every operation scales by *its own flop
//! count* instead of one global wall-clock ratio.

use crate::device::DeviceSpec;
use std::time::Duration;

/// Per-device arithmetic cost constants.
#[derive(Debug, Clone, Copy)]
pub struct CycleModel {
    /// Effective cycles per floating-point operation, including the
    /// surrounding loads/stores and loop overhead of dense kernels.
    pub cycles_per_flop: f64,
    /// Device clock in Hz.
    pub clock_hz: u64,
}

impl CycleModel {
    /// Projected duration of `flops` floating-point operations.
    pub fn duration(&self, flops: u64) -> Duration {
        Duration::from_secs_f64(flops as f64 * self.cycles_per_flop / self.clock_hz as f64)
    }
}

impl DeviceSpec {
    /// The flop-cost model for this device.
    ///
    /// * Cortex-M0+ has no FPU: every f32 multiply/add is a software
    ///   routine of tens of cycles plus argument marshalling — ~200
    ///   effective cycles per flop for the paper's kernels (calibrated so
    ///   a 511-dim OS-ELM forward pass lands in the paper's Table 6
    ///   regime).
    /// * Cortex-A72 dual-issues NEON but the kernels here are
    ///   memory-streaming; ~1 effective cycle per flop.
    pub fn cycle_model(&self) -> CycleModel {
        CycleModel {
            cycles_per_flop: if self.has_fpu { 1.0 } else { 200.0 },
            clock_hz: self.clock_hz,
        }
    }
}

/// The six Table 6 operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Table6Op {
    /// Algorithm 1 line 6: argmin over per-instance reconstruction errors.
    LabelPrediction,
    /// Algorithm 1 lines 12–14: centroid update + summed L1 distance.
    DistanceComputation,
    /// Algorithm 2 lines 8–9: nearest-coordinate label + one OS-ELM step.
    RetrainWithoutPrediction,
    /// Algorithm 2 lines 11–12: model prediction + one OS-ELM step.
    RetrainWithPrediction,
    /// Algorithm 3: trial replacement of every coordinate.
    CoordInit,
    /// Algorithm 4: nearest coordinate + running-mean update.
    CoordUpdate,
}

/// All six operations in the paper's Table 6 row order.
pub const TABLE6_OPS: [Table6Op; 6] = [
    Table6Op::LabelPrediction,
    Table6Op::DistanceComputation,
    Table6Op::RetrainWithoutPrediction,
    Table6Op::RetrainWithPrediction,
    Table6Op::CoordInit,
    Table6Op::CoordUpdate,
];

impl Table6Op {
    /// Display name matching the paper's Table 6 rows.
    pub fn label(self) -> &'static str {
        match self {
            Table6Op::LabelPrediction => "Label prediction",
            Table6Op::DistanceComputation => "Distance computation",
            Table6Op::RetrainWithoutPrediction => "Model retraining without label prediction",
            Table6Op::RetrainWithPrediction => "Model retraining with label prediction",
            Table6Op::CoordInit => "Label coordinates initialization",
            Table6Op::CoordUpdate => "Label coordinates update",
        }
    }

    /// Exact flop count at `(classes, dim, hidden)` = `(C, D, H)`.
    ///
    /// Derivations (counting one multiply or add as one flop):
    /// * forward pass of one instance: `W x` (2HD) + bias (H) + sigmoid
    ///   (~4H) + `βᵀ h` (2HD) + squared-error score (3D) = `4HD + 5H + 3D`;
    /// * one OS-ELM sequential step totals `6HD + 8H² + 7H + D`: hidden
    ///   activations (2HD + 5H), residual (2HD + D), two P matvecs (4H²),
    ///   gain denominator (2H), rank-1 P update (2H²), P matvec for the
    ///   gain (2H²), and the β rank-1 update (2HD);
    /// * L1 distance between two D-vectors: 2D.
    pub fn flops(self, classes: u64, dim: u64, hidden: u64) -> u64 {
        let (c, d, h) = (classes, dim, hidden);
        let forward = 4 * h * d + 5 * h + 3 * d;
        let oselm_step = 6 * h * d + 8 * h * h + 7 * h + d;
        let l1 = 2 * d;
        match self {
            Table6Op::LabelPrediction => c * forward + c, // + argmin compares
            Table6Op::DistanceComputation => {
                // Running-mean update (3 flops/element) + C distances + sum.
                3 * d + c * l1 + c
            }
            Table6Op::RetrainWithoutPrediction => c * l1 + c + oselm_step,
            Table6Op::RetrainWithPrediction => c * forward + c + oselm_step,
            Table6Op::CoordInit => {
                // C trial replacements, each re-evaluating the pairwise
                // distance set: C(C-1)/2 L1 distances per trial.
                c * (c * (c - 1) / 2) * l1 + c
            }
            Table6Op::CoordUpdate => c * l1 + c + 3 * d,
        }
    }
}

/// Projects one Table 6 operation onto a device via its flop count.
pub fn project_op(
    op: Table6Op,
    classes: u64,
    dim: u64,
    hidden: u64,
    device: &DeviceSpec,
) -> Duration {
    device
        .cycle_model()
        .duration(op.flops(classes, dim, hidden))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{PI4, PICO};

    const C: u64 = 2;
    const D: u64 = 511;
    const H: u64 = 22;

    #[test]
    fn prediction_dominates_detection_ops() {
        let pred = Table6Op::LabelPrediction.flops(C, D, H);
        for op in [
            Table6Op::DistanceComputation,
            Table6Op::CoordInit,
            Table6Op::CoordUpdate,
        ] {
            assert!(
                op.flops(C, D, H) < pred,
                "{op:?} should cost less than prediction"
            );
        }
    }

    #[test]
    fn retrain_with_prediction_is_sum_of_parts() {
        let with = Table6Op::RetrainWithPrediction.flops(C, D, H);
        let without = Table6Op::RetrainWithoutPrediction.flops(C, D, H);
        let pred = Table6Op::LabelPrediction.flops(C, D, H);
        // with = prediction + oselm step; without = nearest + oselm step.
        assert!(with > without);
        assert!(with < pred + without);
        assert!(with > pred);
    }

    #[test]
    fn pico_projection_lands_in_the_papers_regime() {
        // The paper measures 148.87 ms for label prediction at D=511, H=22
        // on the Pico. The flop model should land within a small factor —
        // it cannot be exact (unknown instance count / firmware details),
        // but the order of magnitude is the point.
        let ms = project_op(Table6Op::LabelPrediction, C, D, H, &PICO).as_secs_f64() * 1e3;
        assert!(
            (30.0..500.0).contains(&ms),
            "Pico label prediction projected at {ms:.1} ms"
        );
        // Distance computation: paper 10.58 ms.
        let dist_ms = project_op(Table6Op::DistanceComputation, C, D, H, &PICO).as_secs_f64() * 1e3;
        assert!(
            (0.5..50.0).contains(&dist_ms),
            "distance computation projected at {dist_ms:.2} ms"
        );
    }

    #[test]
    fn pi4_is_orders_of_magnitude_faster() {
        let pico = project_op(Table6Op::LabelPrediction, C, D, H, &PICO);
        let pi4 = project_op(Table6Op::LabelPrediction, C, D, H, &PI4);
        let ratio = pico.as_secs_f64() / pi4.as_secs_f64();
        assert!(ratio > 1000.0, "pico/pi4 ratio {ratio}");
    }

    #[test]
    fn flops_scale_with_dimensions() {
        let small = Table6Op::LabelPrediction.flops(2, 38, 22);
        let large = Table6Op::LabelPrediction.flops(2, 511, 22);
        let ratio = large as f64 / small as f64;
        // Dominated by the 4HD terms: ratio ≈ 511/38.
        assert!((ratio - 511.0 / 38.0).abs() < 1.5, "ratio {ratio}");
    }

    #[test]
    fn coord_init_grows_cubically_in_classes() {
        let c2 = Table6Op::CoordInit.flops(2, 100, 22) as f64;
        let c4 = Table6Op::CoordInit.flops(4, 100, 22) as f64;
        // C·C(C-1)/2 trials: 2 -> 2, 4 -> 24: ~12x (plus O(C) bookkeeping).
        assert!((c4 / c2 - 12.0).abs() < 0.2, "ratio {}", c4 / c2);
    }
}
