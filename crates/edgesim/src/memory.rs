//! Analytic memory accounting (Table 4).
//!
//! Every method's resident state is counted in `Real` scalars by the
//! implementing crates ([`seqdrift_baselines::BatchDriftDetector::memory_scalars`],
//! `CentroidDetector::memory_scalars`, OS-ELM `param_counts`); this module
//! converts scalar counts to bytes and assembles per-method reports. The
//! counts are *analytic* — derived from the data structures, not from a
//! heap profiler — which matches how an MCU firmware engineer budgets SRAM
//! and makes the numbers platform-independent.

use seqdrift_linalg::Real;
use seqdrift_oselm::MultiInstanceModel;

/// Bytes occupied by `n` scalars of the active [`Real`] type.
pub fn bytes_of_scalars(n: usize) -> usize {
    n * core::mem::size_of::<Real>()
}

/// Anything that can report its resident scalar count.
pub trait MemoryFootprint {
    /// Number of resident `Real` scalars.
    fn memory_scalars(&self) -> usize;

    /// Resident bytes.
    fn memory_bytes(&self) -> usize {
        bytes_of_scalars(self.memory_scalars())
    }
}

impl MemoryFootprint for MultiInstanceModel {
    fn memory_scalars(&self) -> usize {
        self.total_param_scalars()
    }
}

/// A labelled memory measurement for report tables.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryReport {
    /// Method name.
    pub label: String,
    /// Detector-state bytes (the Table 4 quantity).
    pub detector_bytes: usize,
    /// Discriminative-model bytes (same for every method; reported
    /// separately, as the paper compares only the detectors).
    pub model_bytes: usize,
}

impl MemoryReport {
    /// Builds a report entry.
    pub fn new(label: impl Into<String>, detector_bytes: usize, model_bytes: usize) -> Self {
        MemoryReport {
            label: label.into(),
            detector_bytes,
            model_bytes,
        }
    }

    /// Detector bytes in kB (Table 4's unit).
    pub fn detector_kb(&self) -> f64 {
        self.detector_bytes as f64 / 1024.0
    }

    /// Total resident bytes.
    pub fn total_bytes(&self) -> usize {
        self.detector_bytes + self.model_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdrift_oselm::OsElmConfig;

    #[test]
    fn scalar_byte_conversion() {
        assert_eq!(bytes_of_scalars(0), 0);
        assert_eq!(bytes_of_scalars(256), 256 * core::mem::size_of::<Real>());
    }

    #[test]
    fn model_footprint_matches_param_counts() {
        let m = MultiInstanceModel::new(2, OsElmConfig::new(38, 22)).unwrap();
        let per_instance = 22 * 38 * 2 + 22 + 22 * 22;
        assert_eq!(m.memory_scalars(), 2 * per_instance);
        assert_eq!(m.memory_bytes(), bytes_of_scalars(2 * per_instance));
    }

    #[test]
    fn fan_config_model_fits_pico_class_budget() {
        // The paper runs the 511-22-511 two-instance... actually the fan
        // model is single-class: 511 x 22 weights twice + P + b per
        // instance ≈ 90 kB, comfortably under 264 kB.
        let m = MultiInstanceModel::new(1, OsElmConfig::new(511, 22)).unwrap();
        let kb = m.memory_bytes() as f64 / 1024.0;
        assert!(kb < 264.0, "model {kb} kB exceeds Pico RAM");
        assert!(kb > 50.0, "model {kb} kB suspiciously small");
    }

    #[test]
    fn report_units() {
        let r = MemoryReport::new("x", 2048, 1024);
        assert_eq!(r.detector_kb(), 2.0);
        assert_eq!(r.total_bytes(), 3072);
    }
}
