//! Device specifications (Table 1 of the paper).

/// A target edge device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name.
    pub name: &'static str,
    /// CPU description.
    pub cpu: &'static str,
    /// Clock frequency in Hz.
    pub clock_hz: u64,
    /// RAM in bytes.
    pub ram_bytes: u64,
    /// Whether the core has hardware floating point.
    pub has_fpu: bool,
    /// Operating system ("-" for bare metal).
    pub os: &'static str,
    /// Estimated wall-clock slowdown of numeric code relative to the x86
    /// development host this reproduction measures on. Combines clock
    /// ratio, issue width, and (for the Pico) software floating point.
    /// Used only for *projections*; relative method comparisons never
    /// depend on it.
    pub host_slowdown: f64,
}

impl DeviceSpec {
    /// RAM in kilobytes (the paper quotes 264 kB for the Pico).
    pub fn ram_kb(&self) -> f64 {
        self.ram_bytes as f64 / 1024.0
    }
}

/// Raspberry Pi 4 Model B: quad Cortex-A72 @ 1.5 GHz, 4 GB, Raspberry Pi OS.
pub const PI4: DeviceSpec = DeviceSpec {
    name: "Raspberry Pi 4 Model B",
    cpu: "ARM Cortex-A72, 1.5GHz",
    clock_hz: 1_500_000_000,
    ram_bytes: 4 * 1024 * 1024 * 1024,
    has_fpu: true,
    os: "Raspberry Pi OS",
    // ~2-3x slower per clock than a modern x86 core on dense f32 kernels,
    // plus the clock gap to a ~3 GHz host.
    host_slowdown: 5.0,
};

/// Raspberry Pi Pico: Cortex-M0+ @ 133 MHz, 264 kB SRAM, bare metal.
pub const PICO: DeviceSpec = DeviceSpec {
    name: "Raspberry Pi Pico",
    cpu: "ARM Cortex-M0+, 133MHz",
    clock_hz: 133_000_000,
    ram_bytes: 264 * 1024,
    has_fpu: false,
    os: "-",
    // ~22x clock gap to a 3 GHz host x ~30-60x for software floating
    // point and the 2-stage in-order pipeline. The paper's own Table 6
    // (148 ms for one 511-dim prediction) implies a factor of this order.
    host_slowdown: 900.0,
};

#[cfg(test)]
mod tests {
    use super::*;

    // The paper's Table 1 values are compile-time constants; asserting them
    // is the point of these tests.
    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn table1_values() {
        assert_eq!(PI4.clock_hz, 1_500_000_000);
        assert_eq!(PICO.clock_hz, 133_000_000);
        assert_eq!(PICO.ram_bytes, 264 * 1024);
        assert_eq!(PICO.os, "-");
        assert!(PI4.has_fpu);
        assert!(!PICO.has_fpu);
    }

    #[test]
    fn pico_ram_kb_matches_paper() {
        assert_eq!(PICO.ram_kb(), 264.0);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn pico_is_much_slower_than_pi4() {
        assert!(PICO.host_slowdown > 50.0 * PI4.host_slowdown / 5.0);
        assert!(PI4.host_slowdown < PICO.host_slowdown);
    }
}
