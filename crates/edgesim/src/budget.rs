//! RAM-budget checks: can a method run on a given device at all?
//!
//! This regenerates the paper's §5.3 claim that "the batch-based Quant Tree
//! and SPLL methods cannot operate on Raspberry Pi Pico" while the proposed
//! method (and its model) fit in 264 kB.

use crate::device::DeviceSpec;
use crate::memory::MemoryReport;

/// Fraction of device RAM usable by the workload (stack, runtime, and
/// buffers claim the rest; MCU practice leaves ~25% headroom).
pub const USABLE_RAM_FRACTION: f64 = 0.75;

/// Whether `bytes` of workload state fit on `device` with headroom.
pub fn fits_in_ram(bytes: usize, device: &DeviceSpec) -> bool {
    (bytes as f64) <= device.ram_bytes as f64 * USABLE_RAM_FRACTION
}

/// A per-method feasibility verdict.
#[derive(Debug, Clone)]
pub struct BudgetReport {
    /// Method name.
    pub label: String,
    /// Total resident bytes (detector + model).
    pub total_bytes: usize,
    /// Whether it fits on the device.
    pub fits: bool,
}

/// Evaluates a set of memory reports against a device.
pub fn check_budget(reports: &[MemoryReport], device: &DeviceSpec) -> Vec<BudgetReport> {
    reports
        .iter()
        .map(|r| BudgetReport {
            label: r.label.clone(),
            total_bytes: r.total_bytes(),
            fits: fits_in_ram(r.total_bytes(), device),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{PI4, PICO};

    #[test]
    fn small_state_fits_everywhere() {
        assert!(fits_in_ram(64 * 1024, &PICO));
        assert!(fits_in_ram(64 * 1024, &PI4));
    }

    #[test]
    fn megabyte_state_fails_pico_fits_pi4() {
        let mb = 1024 * 1024;
        assert!(!fits_in_ram(mb, &PICO));
        assert!(fits_in_ram(mb, &PI4));
    }

    #[test]
    fn headroom_is_applied() {
        // 264 kB exactly does NOT fit: headroom reserves 25%.
        assert!(!fits_in_ram(264 * 1024, &PICO));
        assert!(fits_in_ram((264.0 * 1024.0 * 0.75) as usize, &PICO));
    }

    #[test]
    fn check_budget_maps_reports() {
        let reports = vec![
            MemoryReport::new("small", 10 * 1024, 90 * 1024),
            MemoryReport::new("huge", 1900 * 1024, 90 * 1024),
        ];
        let verdicts = check_budget(&reports, &PICO);
        assert!(verdicts[0].fits);
        assert!(!verdicts[1].fits);
        assert_eq!(verdicts[1].total_bytes, 1990 * 1024);
    }
}
