#![warn(missing_docs)]

//! # seqdrift-linalg
//!
//! Allocation-conscious dense linear algebra, deterministic RNG, and
//! streaming statistics kernels used by every other crate in the `seqdrift`
//! workspace.
//!
//! The paper this workspace reproduces runs its arithmetic on a Raspberry Pi
//! Pico (Cortex-M0+, 264 kB RAM), where no BLAS is available and heap
//! allocation inside the per-sample loop is unaffordable. This crate
//! therefore provides:
//!
//! * [`Matrix`] — a heap-backed, row-major dense matrix with `*_into`
//!   variants of every hot kernel so per-sample loops can run with zero
//!   allocations after setup;
//! * [`fixed`] — `const`-generic stack matrices/vectors mirroring what the
//!   MCU firmware would use, with no heap at all;
//! * [`solve`] / [`cholesky`] — LU and Cholesky factorisations for the
//!   one-off OS-ELM initialisation solve;
//! * [`sherman`] — the Sherman–Morrison rank-1 inverse update that makes
//!   batch-size-1 OS-ELM training O(H²) per sample;
//! * [`rng`] — a dependency-free xoshiro256++ generator (seedable,
//!   reproducible across platforms) with uniform/normal helpers;
//! * [`stats`] — Welford accumulators, quantiles and histograms used by the
//!   detectors and threshold calibration.
//!
//! The scalar type is [`Real`] (`f32` by default, matching the MCU firmware;
//! enable the `f64` feature for double precision on hosts).

pub mod cholesky;
pub mod fixed;
pub mod matrix;
pub mod rng;
pub mod robust;
pub mod sherman;
pub mod solve;
pub mod stats;
pub mod vector;
pub mod wire;

pub use matrix::Matrix;
pub use rng::Rng;

/// Scalar type used across the workspace.
///
/// `f32` by default: the paper's target device (Cortex-M0+) has no double
/// precision hardware and its firmware stores all model state in `f32`.
#[cfg(not(feature = "f64"))]
pub type Real = f32;
/// Scalar type used across the workspace (double-precision build).
#[cfg(feature = "f64")]
pub type Real = f64;

/// Errors produced by linear-algebra kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Shape of the left operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// The matrix is singular (or numerically so) and cannot be factorised.
    Singular,
    /// The matrix is not positive definite (Cholesky only).
    NotPositiveDefinite,
    /// An argument was out of its legal domain (e.g. empty input).
    InvalidArgument(&'static str),
    /// A kernel produced a NaN/Inf entry; the result is unusable and the
    /// in-place operand may be left corrupted (callers needing transactional
    /// behaviour must keep their own backup).
    NonFiniteResult,
}

impl core::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs {}x{}, rhs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::NotPositiveDefinite => write!(f, "matrix is not positive definite"),
            LinalgError::InvalidArgument(what) => write!(f, "invalid argument: {what}"),
            LinalgError::NonFiniteResult => write!(f, "kernel produced a non-finite result"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenience result alias for this crate.
pub type Result<T> = core::result::Result<T, LinalgError>;
