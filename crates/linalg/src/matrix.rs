//! Heap-backed, row-major dense matrix.
//!
//! Every hot kernel has an `*_into` variant writing into a caller-provided
//! output so that per-sample loops (OS-ELM sequential updates, detector
//! centroid updates) can run allocation-free after setup, as the session's
//! performance guidance and the paper's MCU target both demand.

use crate::{LinalgError, Real, Result};

/// Dense row-major matrix of [`Real`] scalars.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Real>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: Real) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<Real>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::InvalidArgument(
                "data length does not match rows * cols",
            ));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a matrix from row slices. All rows must have equal length.
    pub fn from_rows(rows: &[&[Real]]) -> Result<Self> {
        if rows.is_empty() {
            return Err(LinalgError::InvalidArgument("from_rows: no rows"));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(LinalgError::InvalidArgument("from_rows: ragged rows"));
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a 1 x n row matrix borrowing semantics from a slice copy.
    pub fn row_vector(v: &[Real]) -> Self {
        Matrix {
            rows: 1,
            cols: v.len(),
            data: v.to_vec(),
        }
    }

    /// Builds an n x 1 column matrix from a slice copy.
    pub fn col_vector(v: &[Real]) -> Self {
        Matrix {
            rows: v.len(),
            cols: 1,
            data: v.to_vec(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Whether the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable view of the backing row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[Real] {
        &self.data
    }

    /// Mutable view of the backing row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [Real] {
        &mut self.data
    }

    /// Element accessor. Panics on out-of-bounds in debug builds only.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> Real {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter. Panics on out-of-bounds in debug builds only.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: Real) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[Real] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [Real] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into `out` (which must have `rows` elements).
    pub fn col_into(&self, c: usize, out: &mut [Real]) {
        debug_assert_eq!(out.len(), self.rows);
        for (r, slot) in out.iter_mut().enumerate() {
            *slot = self.data[r * self.cols + c];
        }
    }

    /// Returns column `c` as a fresh vector.
    pub fn col(&self, c: usize) -> Vec<Real> {
        let mut out = vec![0.0; self.rows];
        self.col_into(c, &mut out);
        out
    }

    /// Fills the matrix with zeros without changing its shape.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Overwrites `self` with the identity; requires a square matrix.
    pub fn set_identity(&mut self) -> Result<()> {
        if !self.is_square() {
            return Err(LinalgError::InvalidArgument("set_identity: not square"));
        }
        self.data.fill(0.0);
        for i in 0..self.rows {
            self.data[i * self.cols + i] = 1.0;
        }
        Ok(())
    }

    /// Copies `src` into `self`; shapes must match.
    pub fn copy_from(&mut self, src: &Matrix) -> Result<()> {
        if self.shape() != src.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "copy_from",
                lhs: self.shape(),
                rhs: src.shape(),
            });
        }
        self.data.copy_from_slice(&src.data);
        Ok(())
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        self.transpose_into(&mut out)
            .expect("transpose_into with exact shape cannot fail");
        out
    }

    /// Writes the transpose of `self` into `out` (shape `cols x rows`).
    pub fn transpose_into(&self, out: &mut Matrix) -> Result<()> {
        if out.rows != self.cols || out.cols != self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "transpose_into",
                lhs: (self.cols, self.rows),
                rhs: out.shape(),
            });
        }
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * out.cols + r] = self.data[r * self.cols + c];
            }
        }
        Ok(())
    }

    /// `self * rhs` as a new matrix.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out)?;
        Ok(out)
    }

    /// Writes `self * rhs` into `out`.
    ///
    /// Uses the cache-friendly i-k-j loop order so the inner loop walks both
    /// `rhs` and `out` rows contiguously.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) -> Result<()> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        if out.rows != self.rows || out.cols != rhs.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul_into (out)",
                lhs: (self.rows, rhs.cols),
                rhs: out.shape(),
            });
        }
        out.data.fill(0.0);
        let n = rhs.cols;
        for i in 0..self.rows {
            let arow = &self.data[i * self.cols..(i + 1) * self.cols];
            let orow = &mut out.data[i * n..(i + 1) * n];
            for (k, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let brow = &rhs.data[k * n..(k + 1) * n];
                for (o, &b) in orow.iter_mut().zip(brow.iter()) {
                    *o += a * b;
                }
            }
        }
        Ok(())
    }

    /// Writes `selfᵀ * rhs` into `out` without materialising the transpose.
    pub fn tr_matmul_into(&self, rhs: &Matrix, out: &mut Matrix) -> Result<()> {
        if self.rows != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "tr_matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        if out.rows != self.cols || out.cols != rhs.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "tr_matmul_into (out)",
                lhs: (self.cols, rhs.cols),
                rhs: out.shape(),
            });
        }
        out.data.fill(0.0);
        let n = rhs.cols;
        for k in 0..self.rows {
            let arow = &self.data[k * self.cols..(k + 1) * self.cols];
            let brow = &rhs.data[k * n..(k + 1) * n];
            for (i, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let orow = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in orow.iter_mut().zip(brow.iter()) {
                    *o += a * b;
                }
            }
        }
        Ok(())
    }

    /// Writes `self * v` (matrix-vector product) into `out`.
    pub fn matvec_into(&self, v: &[Real], out: &mut [Real]) -> Result<()> {
        if v.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        if out.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec (out)",
                lhs: (self.rows, 1),
                rhs: (out.len(), 1),
            });
        }
        for (r, slot) in out.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            *slot = crate::vector::dot(row, v);
        }
        Ok(())
    }

    /// Returns `self * v` as a fresh vector.
    pub fn matvec(&self, v: &[Real]) -> Result<Vec<Real>> {
        let mut out = vec![0.0; self.rows];
        self.matvec_into(v, &mut out)?;
        Ok(out)
    }

    /// Writes `selfᵀ * v` into `out` without materialising the transpose.
    pub fn tr_matvec_into(&self, v: &[Real], out: &mut [Real]) -> Result<()> {
        if v.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "tr_matvec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        if out.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "tr_matvec (out)",
                lhs: (self.cols, 1),
                rhs: (out.len(), 1),
            });
        }
        out.fill(0.0);
        for (r, &vr) in v.iter().enumerate() {
            if vr == 0.0 {
                continue;
            }
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (o, &a) in out.iter_mut().zip(row.iter()) {
                *o += vr * a;
            }
        }
        Ok(())
    }

    /// In-place element-wise addition: `self += rhs`.
    pub fn add_assign(&mut self, rhs: &Matrix) -> Result<()> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "add_assign",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
        Ok(())
    }

    /// In-place element-wise subtraction: `self -= rhs`.
    pub fn sub_assign(&mut self, rhs: &Matrix) -> Result<()> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "sub_assign",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a -= b;
        }
        Ok(())
    }

    /// In-place scalar multiplication: `self *= s`.
    pub fn scale(&mut self, s: Real) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Adds `s * rhs` to `self` in place.
    pub fn add_scaled(&mut self, s: Real, rhs: &Matrix) -> Result<()> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "add_scaled",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += s * b;
        }
        Ok(())
    }

    /// Rank-1 update `self += s * u * vᵀ` performed in place.
    pub fn add_outer(&mut self, s: Real, u: &[Real], v: &[Real]) -> Result<()> {
        if u.len() != self.rows || v.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "add_outer",
                lhs: self.shape(),
                rhs: (u.len(), v.len()),
            });
        }
        for (r, &ur) in u.iter().enumerate() {
            if ur == 0.0 {
                continue;
            }
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            let su = s * ur;
            for (a, &b) in row.iter_mut().zip(v.iter()) {
                *a += su * b;
            }
        }
        Ok(())
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> Real {
        self.data.iter().map(|&x| x * x).sum::<Real>().sqrt()
    }

    /// Maximum absolute element value.
    pub fn max_abs(&self) -> Real {
        self.data.iter().fold(0.0, |m, &x| m.max(x.abs()))
    }

    /// True when every element of `self` is within `tol` of `other`.
    pub fn approx_eq(&self, other: &Matrix, tol: Real) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F: FnMut(Real) -> Real>(&mut self, mut f: F) {
        for a in &mut self.data {
            *a = f(*a);
        }
    }

    /// Appends a copy of `row` as the last row of the matrix.
    pub fn push_row(&mut self, row: &[Real]) -> Result<()> {
        if self.rows > 0 && row.len() != self.cols {
            return Err(LinalgError::InvalidArgument("push_row: width mismatch"));
        }
        if self.rows == 0 {
            self.cols = row.len();
        }
        self.data.extend_from_slice(row);
        self.rows += 1;
        Ok(())
    }

    /// Total number of scalar elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl core::fmt::Display for Matrix {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>10.4} ", self.get(r, c))?;
            }
            if self.cols > 8 {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[Real]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec()).unwrap()
    }

    #[test]
    fn zeros_has_correct_shape_and_content() {
        let z = Matrix::zeros(3, 4);
        assert_eq!(z.shape(), (3, 4));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_is_diagonal_ones() {
        let i = Matrix::identity(4);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(i.get(r, c), if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        assert!(Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).is_err());
        assert!(Matrix::from_rows(&[]).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(0, 1), 4.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn matmul_known_result() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = m(3, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]);
        let i = Matrix::identity(3);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn tr_matmul_matches_explicit_transpose() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let mut out = Matrix::zeros(2, 2);
        a.tr_matmul_into(&b, &mut out).unwrap();
        let expect = a.transpose().matmul(&b).unwrap();
        assert!(out.approx_eq(&expect, 1e-6));
    }

    #[test]
    fn matvec_known_result() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.matvec(&[1.0, 1.0, 1.0]).unwrap(), vec![6.0, 15.0]);
    }

    #[test]
    fn tr_matvec_matches_transpose_matvec() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut out = vec![0.0; 3];
        a.tr_matvec_into(&[1.0, 2.0], &mut out).unwrap();
        assert_eq!(out, a.transpose().matvec(&[1.0, 2.0]).unwrap());
    }

    #[test]
    fn add_sub_scale_roundtrip() {
        let mut a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = a.clone();
        a.add_assign(&b).unwrap();
        a.scale(0.5);
        a.sub_assign(&b).unwrap();
        assert!(a.max_abs() < 1e-6);
    }

    #[test]
    fn add_outer_matches_matmul() {
        let mut a = Matrix::zeros(2, 3);
        a.add_outer(2.0, &[1.0, 2.0], &[3.0, 4.0, 5.0]).unwrap();
        let u = Matrix::col_vector(&[1.0, 2.0]);
        let v = Matrix::row_vector(&[3.0, 4.0, 5.0]);
        let mut expect = u.matmul(&v).unwrap();
        expect.scale(2.0);
        assert!(a.approx_eq(&expect, 1e-6));
    }

    #[test]
    fn add_scaled_combines() {
        let mut a = m(1, 2, &[1.0, 1.0]);
        let b = m(1, 2, &[2.0, 4.0]);
        a.add_scaled(0.5, &b).unwrap();
        assert_eq!(a.as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn col_extraction() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.col(1), vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn push_row_grows_matrix() {
        let mut a = Matrix::zeros(0, 0);
        a.push_row(&[1.0, 2.0]).unwrap();
        a.push_row(&[3.0, 4.0]).unwrap();
        assert_eq!(a.shape(), (2, 2));
        assert!(a.push_row(&[1.0]).is_err());
    }

    #[test]
    fn set_identity_requires_square() {
        let mut a = Matrix::zeros(2, 3);
        assert!(a.set_identity().is_err());
        let mut b = Matrix::zeros(3, 3);
        b.set_identity().unwrap();
        assert_eq!(b, Matrix::identity(3));
    }

    #[test]
    fn frobenius_norm_known() {
        let a = m(1, 2, &[3.0, 4.0]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn map_inplace_applies() {
        let mut a = m(1, 3, &[1.0, -2.0, 3.0]);
        a.map_inplace(|x| x.abs());
        assert_eq!(a.as_slice(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn copy_from_checks_shape() {
        let mut a = Matrix::zeros(2, 2);
        let b = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        a.copy_from(&b).unwrap();
        assert_eq!(a, b);
        let c = Matrix::zeros(3, 2);
        assert!(a.copy_from(&c).is_err());
    }
}
