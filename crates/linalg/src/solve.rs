//! LU factorisation with partial pivoting: linear solves, inverses and
//! determinants.
//!
//! Used once per model (re)initialisation by OS-ELM to form
//! `P0 = (H0ᵀ H0 + λI)⁻¹`; the per-sample path never calls into this module
//! (it uses [`crate::sherman`] instead).

// Triangular solves index into the evolving solution vector by row;
// iterator rewrites obscure the dependence structure of the recurrences.
#![allow(clippy::needless_range_loop)]

use crate::{LinalgError, Matrix, Real, Result};

/// LU factorisation of a square matrix with partial (row) pivoting.
///
/// Stores the combined L (unit lower) / U (upper) factors in a single matrix
/// plus the pivot permutation, so repeated solves against the same matrix
/// reuse the factorisation.
#[derive(Debug, Clone)]
pub struct Lu {
    lu: Matrix,
    pivots: Vec<usize>,
    /// Number of row swaps performed (determines the determinant's sign).
    swaps: usize,
}

impl Lu {
    /// Factorises `a`. Returns [`LinalgError::Singular`] when a pivot
    /// underflows the numerical tolerance.
    pub fn factor(a: &Matrix) -> Result<Lu> {
        if !a.is_square() {
            return Err(LinalgError::InvalidArgument("lu: matrix not square"));
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut pivots: Vec<usize> = (0..n).collect();
        let mut swaps = 0usize;

        for k in 0..n {
            // Find pivot row.
            let mut p = k;
            let mut max = lu.get(k, k).abs();
            for r in (k + 1)..n {
                let v = lu.get(r, k).abs();
                if v > max {
                    max = v;
                    p = r;
                }
            }
            if max <= pivot_tolerance() {
                return Err(LinalgError::Singular);
            }
            if p != k {
                swap_rows(&mut lu, p, k);
                pivots.swap(p, k);
                swaps += 1;
            }
            let pivot = lu.get(k, k);
            for r in (k + 1)..n {
                let factor = lu.get(r, k) / pivot;
                lu.set(r, k, factor);
                if factor == 0.0 {
                    continue;
                }
                for c in (k + 1)..n {
                    let v = lu.get(r, c) - factor * lu.get(k, c);
                    lu.set(r, c, v);
                }
            }
        }
        Ok(Lu { lu, pivots, swaps })
    }

    /// Dimension of the factorised matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b` for a single right-hand side, writing into `x`.
    pub fn solve_into(&self, b: &[Real], x: &mut [Real]) -> Result<()> {
        let n = self.dim();
        if b.len() != n || x.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Apply permutation.
        for (i, &pi) in self.pivots.iter().enumerate() {
            x[i] = b[pi];
        }
        // Forward substitution with unit-diagonal L.
        for i in 0..n {
            let mut s = x[i];
            for k in 0..i {
                s -= self.lu.get(i, k) * x[k];
            }
            x[i] = s;
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            let mut s = x[i];
            for k in (i + 1)..n {
                s -= self.lu.get(i, k) * x[k];
            }
            x[i] = s / self.lu.get(i, i);
        }
        Ok(())
    }

    /// Solves `A X = B` column-by-column.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu solve_matrix",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        let mut col = vec![0.0; n];
        let mut sol = vec![0.0; n];
        for c in 0..b.cols() {
            b.col_into(c, &mut col);
            self.solve_into(&col, &mut sol)?;
            for r in 0..n {
                out.set(r, c, sol[r]);
            }
        }
        Ok(out)
    }

    /// Inverse of the factorised matrix.
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }

    /// Determinant of the factorised matrix.
    pub fn determinant(&self) -> Real {
        let mut det: Real = if self.swaps.is_multiple_of(2) {
            1.0
        } else {
            -1.0
        };
        for i in 0..self.dim() {
            det *= self.lu.get(i, i);
        }
        det
    }
}

/// Convenience wrapper: inverse of `a` via LU with partial pivoting.
pub fn inverse(a: &Matrix) -> Result<Matrix> {
    Lu::factor(a)?.inverse()
}

/// Convenience wrapper: solves `A x = b`.
pub fn solve(a: &Matrix, b: &[Real]) -> Result<Vec<Real>> {
    let lu = Lu::factor(a)?;
    let mut x = vec![0.0; b.len()];
    lu.solve_into(b, &mut x)?;
    Ok(x)
}

/// Convenience wrapper: determinant of `a` (0 when singular).
pub fn determinant(a: &Matrix) -> Result<Real> {
    match Lu::factor(a) {
        Ok(lu) => Ok(lu.determinant()),
        Err(LinalgError::Singular) => Ok(0.0),
        Err(e) => Err(e),
    }
}

fn swap_rows(m: &mut Matrix, a: usize, b: usize) {
    if a == b {
        return;
    }
    let cols = m.cols();
    let data = m.as_mut_slice();
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    let (head, tail) = data.split_at_mut(hi * cols);
    head[lo * cols..(lo + 1) * cols].swap_with_slice(&mut tail[..cols]);
}

#[inline]
fn pivot_tolerance() -> Real {
    // Pivots this small in f32 make the solve meaningless; treat the matrix
    // as singular rather than amplifying noise by ~1/pivot.
    if core::mem::size_of::<Real>() == 4 {
        1e-12
    } else {
        1e-300
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[Real]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec()).unwrap()
    }

    #[test]
    fn solve_known_system() {
        // 2x + y = 5 ; x + 3y = 10  => x = 1, y = 3
        let a = m(2, 2, &[2.0, 1.0, 1.0, 3.0]);
        let x = solve(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-5);
        assert!((x[1] - 3.0).abs() < 1e-5);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = m(3, 3, &[4.0, 2.0, 1.0, 2.0, 5.0, 3.0, 1.0, 3.0, 6.0]);
        let inv = inverse(&a).unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(3), 1e-4));
    }

    #[test]
    fn singular_matrix_is_rejected() {
        let a = m(2, 2, &[1.0, 2.0, 2.0, 4.0]);
        assert_eq!(inverse(&a).unwrap_err(), LinalgError::Singular);
    }

    #[test]
    fn determinant_known_values() {
        let a = m(2, 2, &[3.0, 8.0, 4.0, 6.0]);
        assert!((determinant(&a).unwrap() - (-14.0)).abs() < 1e-4);
        let singular = m(2, 2, &[1.0, 2.0, 2.0, 4.0]);
        assert_eq!(determinant(&singular).unwrap(), 0.0);
        assert!((determinant(&Matrix::identity(5)).unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn determinant_sign_tracks_row_swaps() {
        // Permutation matrix swapping two rows has determinant -1.
        let a = m(2, 2, &[0.0, 1.0, 1.0, 0.0]);
        assert!((determinant(&a).unwrap() + 1.0).abs() < 1e-6);
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(Lu::factor(&a).is_err());
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = m(2, 2, &[0.0, 1.0, 1.0, 0.0]);
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-6);
        assert!((x[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn solve_matrix_multi_rhs() {
        let a = m(2, 2, &[2.0, 0.0, 0.0, 4.0]);
        let b = m(2, 2, &[2.0, 4.0, 8.0, 12.0]);
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve_matrix(&b).unwrap();
        assert!(x.approx_eq(&m(2, 2, &[1.0, 2.0, 2.0, 3.0]), 1e-6));
    }

    #[test]
    fn hilbert_like_small_matrix_inverse_accurate() {
        // Mildly ill-conditioned 4x4; checks the factorisation stays stable.
        let n = 4;
        let mut a = Matrix::zeros(n, n);
        for r in 0..n {
            for c in 0..n {
                a.set(r, c, 1.0 / ((r + c + 1) as Real));
            }
        }
        let inv = inverse(&a).unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(n), 2e-2));
    }
}
