//! Cholesky factorisation for symmetric positive-definite systems.
//!
//! OS-ELM's initialisation solves `(H0ᵀ H0 + λI) β = H0ᵀ T0`, whose left-hand
//! side is SPD by construction; Cholesky is both ~2x cheaper than LU and
//! numerically safer here, so the model init path prefers it and falls back
//! to LU only when regularisation is disabled and the Gram matrix loses
//! definiteness to f32 rounding.

// Triangular solves index into the evolving solution vector by row;
// iterator rewrites obscure the dependence structure of the recurrences.
#![allow(clippy::needless_range_loop)]

use crate::{LinalgError, Matrix, Real, Result};

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorises the symmetric positive-definite matrix `a`.
    ///
    /// Only the lower triangle of `a` is read; asymmetry in the upper
    /// triangle is ignored (callers building Gram matrices get exact
    /// symmetry for free).
    pub fn factor(a: &Matrix) -> Result<Cholesky> {
        if !a.is_square() {
            return Err(LinalgError::InvalidArgument("cholesky: matrix not square"));
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            let mut diag = a.get(j, j);
            for k in 0..j {
                let v = l.get(j, k);
                diag -= v * v;
            }
            if diag <= 0.0 || !diag.is_finite() {
                return Err(LinalgError::NotPositiveDefinite);
            }
            let diag = diag.sqrt();
            l.set(j, j, diag);
            let inv = 1.0 / diag;
            for i in (j + 1)..n {
                let mut s = a.get(i, j);
                for k in 0..j {
                    s -= l.get(i, k) * l.get(j, k);
                }
                l.set(i, j, s * inv);
            }
        }
        Ok(Cholesky { l })
    }

    /// Dimension of the factorised matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` via forward/back substitution, writing into `x`.
    pub fn solve_into(&self, b: &[Real], x: &mut [Real]) -> Result<()> {
        let n = self.dim();
        if b.len() != n || x.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // L y = b
        for i in 0..n {
            let mut s = b[i];
            for k in 0..i {
                s -= self.l.get(i, k) * x[k];
            }
            x[i] = s / self.l.get(i, i);
        }
        // Lᵀ x = y
        for i in (0..n).rev() {
            let mut s = x[i];
            for k in (i + 1)..n {
                s -= self.l.get(k, i) * x[k];
            }
            x[i] = s / self.l.get(i, i);
        }
        Ok(())
    }

    /// Solves `A X = B` column-by-column.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky solve_matrix",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        let mut col = vec![0.0; n];
        let mut sol = vec![0.0; n];
        for c in 0..b.cols() {
            b.col_into(c, &mut col);
            self.solve_into(&col, &mut sol)?;
            for r in 0..n {
                out.set(r, c, sol[r]);
            }
        }
        Ok(out)
    }

    /// Inverse of the factorised matrix.
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }

    /// Log-determinant of `A` (useful for Gaussian log-likelihoods, where the
    /// determinant itself would under/overflow).
    pub fn log_determinant(&self) -> Real {
        let mut s = 0.0;
        for i in 0..self.dim() {
            s += self.l.get(i, i).ln();
        }
        2.0 * s
    }
}

/// Convenience wrapper: SPD inverse via Cholesky.
pub fn spd_inverse(a: &Matrix) -> Result<Matrix> {
    Cholesky::factor(a)?.inverse()
}

/// Fused block-merge kernel for federated Gram fusion: the element-wise
/// mean of the SPD matrices in `mats`, validated by a Cholesky factor of
/// the result. Averaging (rather than summing) keeps the merged Gram
/// magnitude on the same scale as its inputs across repeated merge
/// rounds. A mean of SPD matrices is SPD in exact arithmetic, so a
/// factorisation failure here means an input was not actually SPD or a
/// non-finite value crept in — both surface as
/// [`LinalgError::NotPositiveDefinite`], mirroring `seq_train`'s
/// transactional validation.
pub fn spd_mean(mats: &[&Matrix]) -> Result<Matrix> {
    let Some(first) = mats.first() else {
        return Err(LinalgError::InvalidArgument("spd_mean: empty input"));
    };
    if !first.is_square() {
        return Err(LinalgError::InvalidArgument("spd_mean: matrix not square"));
    }
    let n = first.rows();
    let mut mean = Matrix::zeros(n, n);
    let scale = 1.0 / mats.len() as Real;
    for m in mats {
        if m.shape() != (n, n) {
            return Err(LinalgError::ShapeMismatch {
                op: "spd_mean",
                lhs: (n, n),
                rhs: m.shape(),
            });
        }
        for r in 0..n {
            for c in 0..n {
                let v = m.get(r, c);
                if !v.is_finite() {
                    return Err(LinalgError::NotPositiveDefinite);
                }
                mean.set(r, c, mean.get(r, c) + v * scale);
            }
        }
    }
    // Factorise the mean itself: validates positive-definiteness of the
    // merged Gram before any caller commits to it.
    Cholesky::factor(&mean)?;
    Ok(mean)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        Matrix::from_vec(3, 3, vec![4.0, 2.0, 1.0, 2.0, 5.0, 3.0, 1.0, 3.0, 6.0]).unwrap()
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let lt = ch.l().transpose();
        let recon = ch.l().matmul(&lt).unwrap();
        assert!(recon.approx_eq(&a, 1e-4));
    }

    #[test]
    fn solve_matches_lu() {
        let a = spd3();
        let b = [1.0, 2.0, 3.0];
        let ch = Cholesky::factor(&a).unwrap();
        let mut x = [0.0; 3];
        ch.solve_into(&b, &mut x).unwrap();
        let expect = crate::solve::solve(&a, &b).unwrap();
        for i in 0..3 {
            assert!((x[i] - expect[i]).abs() < 1e-4);
        }
    }

    #[test]
    fn inverse_matches_lu_inverse() {
        let a = spd3();
        let inv_ch = spd_inverse(&a).unwrap();
        let inv_lu = crate::solve::inverse(&a).unwrap();
        assert!(inv_ch.approx_eq(&inv_lu, 1e-3));
    }

    #[test]
    fn non_spd_rejected() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]).unwrap(); // indefinite
        assert_eq!(
            Cholesky::factor(&a).unwrap_err(),
            LinalgError::NotPositiveDefinite
        );
    }

    #[test]
    fn non_square_rejected() {
        assert!(Cholesky::factor(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn log_determinant_matches_lu_determinant() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let det = crate::solve::determinant(&a).unwrap();
        assert!((ch.log_determinant() - det.ln()).abs() < 1e-3);
    }

    #[test]
    fn identity_factors_to_identity() {
        let ch = Cholesky::factor(&Matrix::identity(4)).unwrap();
        assert!(ch.l().approx_eq(&Matrix::identity(4), 1e-6));
        assert_eq!(ch.log_determinant(), 0.0);
    }

    #[test]
    fn spd_mean_averages_elementwise() {
        let a = spd3();
        let b = Matrix::identity(3);
        let mean = spd_mean(&[&a, &b]).unwrap();
        for r in 0..3 {
            for c in 0..3 {
                let want = (a.get(r, c) + b.get(r, c)) / 2.0;
                assert!((mean.get(r, c) - want).abs() < 1e-6);
            }
        }
        // Single input: mean is the input itself.
        let same = spd_mean(&[&a]).unwrap();
        assert!(same.approx_eq(&a, 1e-6));
    }

    #[test]
    fn spd_mean_rejects_bad_inputs() {
        let a = spd3();
        assert!(matches!(
            spd_mean(&[]),
            Err(LinalgError::InvalidArgument(_))
        ));
        let wrong = Matrix::identity(2);
        assert!(matches!(
            spd_mean(&[&a, &wrong]),
            Err(LinalgError::ShapeMismatch { .. })
        ));
        let mut poisoned = spd3();
        poisoned.set(1, 1, Real::NAN);
        assert_eq!(
            spd_mean(&[&a, &poisoned]).unwrap_err(),
            LinalgError::NotPositiveDefinite
        );
        // An indefinite input drags the mean off the SPD cone strongly
        // enough that the validating factorisation rejects it.
        let indefinite =
            Matrix::from_vec(3, 3, vec![1.0, 0.0, 0.0, 0.0, -100.0, 0.0, 0.0, 0.0, 1.0]).unwrap();
        assert_eq!(
            spd_mean(&[&a, &indefinite]).unwrap_err(),
            LinalgError::NotPositiveDefinite
        );
    }
}
