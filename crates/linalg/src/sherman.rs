//! Sherman–Morrison rank-1 inverse updates.
//!
//! The whole point of the paper's "fully sequential" regime is that with a
//! training batch size of one, OS-ELM's covariance update
//!
//! ```text
//! P <- P - (P hᵀ)(h P) / (1 + h P hᵀ)
//! ```
//!
//! needs no matrix inversion at all — only two matrix-vector products and a
//! rank-1 update, all O(H²). This module provides that kernel (with caller
//! scratch buffers so the per-sample loop allocates nothing) plus the general
//! Sherman–Morrison update used by tests to cross-check against direct
//! inversion.

use crate::{vector, LinalgError, Matrix, Real, Result};

/// Scratch buffers for [`oselm_p_update`]; allocate once, reuse per sample.
#[derive(Debug, Clone)]
pub struct Rank1Scratch {
    /// Holds `P hᵀ` (length = hidden dimension).
    pub ph: Vec<Real>,
    /// Holds `h P` (length = hidden dimension).
    pub hp: Vec<Real>,
}

impl Rank1Scratch {
    /// Creates scratch for a `dim x dim` matrix.
    pub fn new(dim: usize) -> Self {
        Rank1Scratch {
            ph: vec![0.0; dim],
            hp: vec![0.0; dim],
        }
    }
}

/// One OS-ELM covariance update step:
/// `P <- P - (P hᵀ)(h P) / (1 + h P hᵀ)`, in place.
///
/// `h` is the hidden-layer activation row vector for the current sample.
/// Returns the scalar gain denominator `1 + h P hᵀ` so callers can detect
/// numerical trouble (it must stay positive for P to remain SPD).
///
/// Errors with [`LinalgError::NotPositiveDefinite`] before touching `P` when
/// the gain denominator is non-positive or non-finite, and with
/// [`LinalgError::NonFiniteResult`] when the updated `P` contains a NaN/Inf
/// entry — in the latter case `P` is already corrupted; callers that need
/// transactional behaviour must keep a backup to restore from.
pub fn oselm_p_update(p: &mut Matrix, h: &[Real], scratch: &mut Rank1Scratch) -> Result<Real> {
    let n = p.rows();
    if !p.is_square() || h.len() != n || scratch.ph.len() != n || scratch.hp.len() != n {
        return Err(LinalgError::ShapeMismatch {
            op: "oselm_p_update",
            lhs: p.shape(),
            rhs: (h.len(), 1),
        });
    }
    // ph = P hᵀ ; hp = h P (= Pᵀ hᵀ, but P is symmetric in exact arithmetic —
    // we still compute both sides so f32 asymmetry does not accumulate).
    p.matvec_into(h, &mut scratch.ph)?;
    p.tr_matvec_into(h, &mut scratch.hp)?;
    let denom = 1.0 + vector::dot(h, &scratch.ph);
    if denom <= 0.0 || !denom.is_finite() {
        return Err(LinalgError::NotPositiveDefinite);
    }
    let ph = std::mem::take(&mut scratch.ph);
    let hp = std::mem::take(&mut scratch.hp);
    p.add_outer(-1.0 / denom, &ph, &hp)?;
    scratch.ph = ph;
    scratch.hp = hp;
    if !p.as_slice().iter().all(|v| v.is_finite()) {
        return Err(LinalgError::NonFiniteResult);
    }
    Ok(denom)
}

/// General Sherman–Morrison update:
/// given `P = A⁻¹`, transforms `P` into `(A + u vᵀ)⁻¹` in place.
///
/// Returns [`LinalgError::Singular`] when `1 + vᵀ P u` is (numerically)
/// zero — i.e. the updated matrix is singular — and
/// [`LinalgError::NonFiniteResult`] when the update produced a NaN/Inf
/// entry (in that case `P` is left corrupted; keep a backup if you need to
/// roll back).
pub fn sherman_morrison(p: &mut Matrix, u: &[Real], v: &[Real]) -> Result<()> {
    let n = p.rows();
    if !p.is_square() || u.len() != n || v.len() != n {
        return Err(LinalgError::ShapeMismatch {
            op: "sherman_morrison",
            lhs: p.shape(),
            rhs: (u.len(), v.len()),
        });
    }
    let pu = p.matvec(u)?;
    let mut vp = vec![0.0; n];
    p.tr_matvec_into(v, &mut vp)?;
    let denom = 1.0 + vector::dot(v, &pu);
    if denom.abs() < 1e-12 || !denom.is_finite() {
        return Err(LinalgError::Singular);
    }
    p.add_outer(-1.0 / denom, &pu, &vp)?;
    if !p.as_slice().iter().all(|x| x.is_finite()) {
        return Err(LinalgError::NonFiniteResult);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve;

    #[test]
    fn sherman_morrison_matches_direct_inverse() {
        let a = Matrix::from_vec(3, 3, vec![4.0, 1.0, 0.0, 1.0, 3.0, 1.0, 0.0, 1.0, 2.0]).unwrap();
        let u = [0.5, -1.0, 0.25];
        let v = [1.0, 0.5, -0.5];
        let mut p = solve::inverse(&a).unwrap();
        sherman_morrison(&mut p, &u, &v).unwrap();

        let mut a2 = a.clone();
        a2.add_outer(1.0, &u, &v).unwrap();
        let direct = solve::inverse(&a2).unwrap();
        assert!(p.approx_eq(&direct, 1e-3));
    }

    #[test]
    fn oselm_update_matches_recomputed_inverse() {
        // A = I (lambda = 1 regularised start), add h hᵀ and compare.
        let n = 4;
        let h = [0.3, -0.7, 0.2, 0.9];
        let mut p = Matrix::identity(n);
        let mut scratch = Rank1Scratch::new(n);
        let denom = oselm_p_update(&mut p, &h, &mut scratch).unwrap();
        assert!(denom > 1.0);

        let mut a = Matrix::identity(n);
        a.add_outer(1.0, &h, &h).unwrap();
        let direct = solve::inverse(&a).unwrap();
        assert!(p.approx_eq(&direct, 1e-4));
    }

    #[test]
    fn repeated_updates_stay_consistent_with_gram_inverse() {
        // After k rank-1 updates, P must equal (I + Σ h hᵀ)⁻¹.
        let n = 3;
        let samples: [[Real; 3]; 5] = [
            [1.0, 0.0, 0.5],
            [0.2, 0.8, -0.3],
            [-0.5, 0.4, 0.9],
            [0.7, -0.2, 0.1],
            [0.3, 0.3, 0.3],
        ];
        let mut p = Matrix::identity(n);
        let mut a = Matrix::identity(n);
        let mut scratch = Rank1Scratch::new(n);
        for h in &samples {
            oselm_p_update(&mut p, h, &mut scratch).unwrap();
            a.add_outer(1.0, h, h).unwrap();
        }
        let direct = solve::inverse(&a).unwrap();
        assert!(p.approx_eq(&direct, 1e-3));
    }

    #[test]
    fn p_stays_symmetric_under_updates() {
        let n = 5;
        let mut p = Matrix::identity(n);
        let mut scratch = Rank1Scratch::new(n);
        let mut rng = crate::rng::Rng::seed_from(42);
        let mut h = vec![0.0; n];
        for _ in 0..100 {
            for x in &mut h {
                *x = rng.standard_normal();
            }
            oselm_p_update(&mut p, &h, &mut scratch).unwrap();
        }
        let pt = p.transpose();
        assert!(p.approx_eq(&pt, 1e-3));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let mut p = Matrix::identity(3);
        let mut scratch = Rank1Scratch::new(3);
        assert!(oselm_p_update(&mut p, &[1.0, 2.0], &mut scratch).is_err());
        assert!(sherman_morrison(&mut p, &[1.0], &[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn singular_update_rejected() {
        // (I + u vᵀ) with vᵀu = -1 is singular: u = e1, v = -e1.
        let mut p = Matrix::identity(2);
        let res = sherman_morrison(&mut p, &[1.0, 0.0], &[-1.0, 0.0]);
        assert_eq!(res.unwrap_err(), LinalgError::Singular);
    }

    #[test]
    fn non_finite_p_is_reported_not_propagated() {
        // Poison one entry of P: the kernel must flag the corrupted result
        // instead of silently returning NaN-laced state.
        let mut p = Matrix::identity(3);
        p.set(0, 0, Real::NAN);
        let h = [1.0, 0.5, -0.5];
        let mut scratch = Rank1Scratch::new(3);
        let res = oselm_p_update(&mut p, &h, &mut scratch);
        assert!(matches!(
            res.unwrap_err(),
            LinalgError::NotPositiveDefinite | LinalgError::NonFiniteResult
        ));
    }

    #[test]
    #[cfg(not(feature = "f64"))]
    fn oselm_update_detects_overflow_to_non_finite() {
        // Huge P entries with a huge activation overflow f32 in add_outer:
        // ph entries ~1e30, outer product ~1e60 → Inf. The denominator is
        // positive-finite (dominated by 1e30-scale dot), so the pre-check
        // passes and the post-update scan must catch it.
        let n = 2;
        let mut p = Matrix::identity(n);
        p.set(0, 0, 1e30);
        p.set(1, 1, 1e30);
        let h = [1e30, 1e30];
        let mut scratch = Rank1Scratch::new(n);
        let res = oselm_p_update(&mut p, &h, &mut scratch);
        assert!(matches!(
            res.unwrap_err(),
            LinalgError::NotPositiveDefinite | LinalgError::NonFiniteResult
        ));
    }
}
