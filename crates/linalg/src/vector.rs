//! Slice-level vector kernels.
//!
//! These are the innermost loops of every model and detector in the
//! workspace; they operate on plain `&[Real]` so they work identically for
//! heap matrices, stack matrices, and borrowed sample buffers.

use crate::Real;

/// Dot product of two equal-length slices.
///
/// Panics in debug builds when lengths differ; in release the shorter length
/// wins (callers are expected to have validated shapes already).
#[inline]
pub fn dot(a: &[Real], b: &[Real]) -> Real {
    debug_assert_eq!(a.len(), b.len());
    // Four-way unrolled accumulation: helps the autovectoriser and reduces
    // f32 rounding by splitting the dependency chain.
    let mut acc = [0.0 as Real; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let j = i * 4;
        acc[0] += a[j] * b[j];
        acc[1] += a[j + 1] * b[j + 1];
        acc[2] += a[j + 2] * b[j + 2];
        acc[3] += a[j + 3] * b[j + 3];
    }
    let mut tail = 0.0;
    for j in chunks * 4..a.len() {
        tail += a[j] * b[j];
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// `y += alpha * x` (the BLAS axpy kernel).
#[inline]
pub fn axpy(alpha: Real, x: &[Real], y: &mut [Real]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// `y = x` element-wise copy.
#[inline]
pub fn copy(x: &[Real], y: &mut [Real]) {
    y.copy_from_slice(x);
}

/// In-place scalar multiply.
#[inline]
pub fn scale(alpha: Real, x: &mut [Real]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Sum of elements.
#[inline]
pub fn sum(x: &[Real]) -> Real {
    x.iter().sum()
}

/// Arithmetic mean; 0 for an empty slice.
#[inline]
pub fn mean(x: &[Real]) -> Real {
    if x.is_empty() {
        0.0
    } else {
        sum(x) / x.len() as Real
    }
}

/// L1 (Manhattan) norm.
#[inline]
pub fn norm_l1(x: &[Real]) -> Real {
    x.iter().map(|&v| v.abs()).sum()
}

/// L2 (Euclidean) norm.
#[inline]
pub fn norm_l2(x: &[Real]) -> Real {
    dot(x, x).sqrt()
}

/// Squared L2 norm (avoids the square root on hot paths).
#[inline]
pub fn norm_l2_sq(x: &[Real]) -> Real {
    dot(x, x)
}

/// L1 distance between two points.
///
/// This is the distance used by Algorithm 1 line 14 and Algorithms 3-4 of
/// the paper (`|cor[i][j] - train_cor[i][j]|` summed over dimensions).
#[inline]
pub fn dist_l1(a: &[Real], b: &[Real]) -> Real {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(&x, &y)| (x - y).abs()).sum()
}

/// Squared L2 distance between two points.
#[inline]
pub fn dist_l2_sq(a: &[Real], b: &[Real]) -> Real {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Euclidean distance between two points.
#[inline]
pub fn dist_l2(a: &[Real], b: &[Real]) -> Real {
    dist_l2_sq(a, b).sqrt()
}

/// Index of the minimum element; `None` for an empty slice.
///
/// NaN elements are skipped so a single corrupted score cannot poison the
/// argmin used for label prediction.
#[inline]
pub fn argmin(x: &[Real]) -> Option<usize> {
    let mut best: Option<(usize, Real)> = None;
    for (i, &v) in x.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if bv <= v => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Index of the maximum element; `None` for an empty slice (NaN skipped).
#[inline]
pub fn argmax(x: &[Real]) -> Option<usize> {
    let mut best: Option<(usize, Real)> = None;
    for (i, &v) in x.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if bv >= v => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Sequential running-mean update: `c <- (c * n + x) / (n + 1)`.
///
/// This is the exact centroid update of Algorithm 1 line 12 and Algorithm 4
/// line 3 of the paper, performed element-wise in place.
#[inline]
pub fn running_mean_update(centroid: &mut [Real], n: u64, x: &[Real]) {
    debug_assert_eq!(centroid.len(), x.len());
    let n = n as Real;
    let inv = 1.0 / (n + 1.0);
    for (c, &xi) in centroid.iter_mut().zip(x.iter()) {
        *c = (*c * n + xi) * inv;
    }
}

/// Exponentially-weighted mean update: `c <- (1 - alpha) * c + alpha * x`.
///
/// Used for the "assign a higher weight to a newer sample" variant of the
/// recent test centroid discussed in Section 3.2 of the paper.
#[inline]
pub fn ewma_update(centroid: &mut [Real], alpha: Real, x: &[Real]) {
    debug_assert_eq!(centroid.len(), x.len());
    for (c, &xi) in centroid.iter_mut().zip(x.iter()) {
        *c += alpha * (xi - *c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_known() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn dot_handles_lengths_not_multiple_of_four() {
        for n in 0..9usize {
            let a: Vec<Real> = (0..n).map(|i| i as Real).collect();
            let expect: Real = a.iter().map(|&x| x * x).sum();
            assert_eq!(dot(&a, &a), expect, "n = {n}");
        }
    }

    #[test]
    fn axpy_known() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 2.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0]);
    }

    #[test]
    fn norms_known() {
        assert_eq!(norm_l1(&[-1.0, 2.0, -3.0]), 6.0);
        assert!((norm_l2(&[3.0, 4.0]) - 5.0).abs() < 1e-6);
        assert_eq!(norm_l2_sq(&[3.0, 4.0]), 25.0);
    }

    #[test]
    fn distances_known() {
        assert_eq!(dist_l1(&[0.0, 0.0], &[1.0, -2.0]), 3.0);
        assert_eq!(dist_l2_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert!((dist_l2(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn argmin_argmax_basic() {
        assert_eq!(argmin(&[3.0, 1.0, 2.0]), Some(1));
        assert_eq!(argmax(&[3.0, 1.0, 2.0]), Some(0));
        assert_eq!(argmin(&[]), None);
    }

    #[test]
    fn argmin_skips_nan() {
        assert_eq!(argmin(&[Real::NAN, 2.0, 1.0]), Some(2));
        assert_eq!(argmax(&[Real::NAN, 2.0, 1.0]), Some(1));
        assert_eq!(argmin(&[Real::NAN]), None);
    }

    #[test]
    fn argmin_prefers_first_on_tie() {
        assert_eq!(argmin(&[1.0, 1.0, 2.0]), Some(0));
        assert_eq!(argmax(&[2.0, 2.0, 1.0]), Some(0));
    }

    #[test]
    fn running_mean_matches_batch_mean() {
        let xs = [
            [1.0, 10.0],
            [2.0, 20.0],
            [3.0, 30.0],
            [4.0, 40.0],
            [5.0, 50.0],
        ];
        let mut c = [0.0, 0.0];
        for (n, x) in xs.iter().enumerate() {
            running_mean_update(&mut c, n as u64, x);
        }
        assert!((c[0] - 3.0).abs() < 1e-5);
        assert!((c[1] - 30.0).abs() < 1e-4);
    }

    #[test]
    fn ewma_converges_to_constant_input() {
        let mut c = [0.0];
        for _ in 0..200 {
            ewma_update(&mut c, 0.1, &[7.0]);
        }
        assert!((c[0] - 7.0).abs() < 1e-3);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
