//! Minimal little-endian wire format shared by every serialisable type in
//! the workspace.
//!
//! Blobs start with a common header — magic `"SQDM"`, `u16` format
//! version, `u16` payload kind — followed by kind-specific fields. The
//! format is deliberately simple enough for a C decoder on a
//! microcontroller: fixed-width little-endian integers and raw scalar
//! runs, no varints, no alignment tricks.

use crate::Real;

/// Format magic shared by all seqdrift blobs.
pub const MAGIC: &[u8; 4] = b"SQDM";
/// Current wire-format version.
pub const VERSION: u16 = 1;

/// Errors produced while decoding a blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Not a seqdrift blob.
    BadMagic,
    /// Blob written by a newer library version.
    UnsupportedVersion(u16),
    /// Payload kind does not match the requested type.
    WrongKind {
        /// Kind tag expected.
        expected: u16,
        /// Kind tag found.
        got: u16,
    },
    /// The blob ended early or has trailing garbage.
    Truncated,
    /// A decoded field failed validation.
    Invalid(&'static str),
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "not a seqdrift blob"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            WireError::WrongKind { expected, got } => {
                write!(f, "wrong payload kind: expected {expected}, got {got}")
            }
            WireError::Truncated => write!(f, "blob truncated or has trailing bytes"),
            WireError::Invalid(what) => write!(f, "invalid field: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Append-only blob writer.
#[derive(Debug)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Starts a blob of the given payload kind (writes the header).
    pub fn new(kind: u16) -> Self {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&kind.to_le_bytes());
        Writer { buf }
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends one scalar.
    pub fn real(&mut self, v: Real) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed scalar run.
    pub fn reals(&mut self, vs: &[Real]) {
        self.u64(vs.len() as u64);
        for &v in vs {
            self.real(v);
        }
    }

    /// Appends a length-prefixed u64 run.
    pub fn u64s(&mut self, vs: &[u64]) {
        self.u64(vs.len() as u64);
        for &v in vs {
            self.u64(v);
        }
    }

    /// Finishes the blob.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor-based blob reader.
#[derive(Debug)]
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Opens a blob, validating magic, version and payload kind.
    pub fn new(data: &'a [u8], expected_kind: u16) -> Result<Self, WireError> {
        let mut r = Reader { data, pos: 0 };
        let magic = r.take(4)?;
        if magic != MAGIC {
            return Err(WireError::BadMagic);
        }
        let version = r.u16()?;
        // Version 0 was never issued; anything above VERSION is from a
        // newer library. Both are unsupported, not silently tolerated.
        if version == 0 || version > VERSION {
            return Err(WireError::UnsupportedVersion(version));
        }
        let kind = r.u16()?;
        if kind != expected_kind {
            return Err(WireError::WrongKind {
                expected: expected_kind,
                got: kind,
            });
        }
        Ok(r)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if n > self.remaining() {
            return Err(WireError::Truncated);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Bytes not yet consumed. Decoders use this to bound allocations
    /// *before* trusting a length field: a blob can never legitimately
    /// describe more payload than it has bytes left.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u16.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads one scalar.
    pub fn real(&mut self) -> Result<Real, WireError> {
        let n = core::mem::size_of::<Real>();
        let b = self.take(n)?;
        let mut arr = [0u8; core::mem::size_of::<Real>()];
        arr.copy_from_slice(b);
        Ok(Real::from_le_bytes(arr))
    }

    /// Reads a length-prefixed scalar run. The length field is checked
    /// against the bytes actually remaining before any allocation, so a
    /// length-lying blob fails with `Truncated` instead of reserving
    /// gigabytes.
    pub fn reals(&mut self) -> Result<Vec<Real>, WireError> {
        let n = self.u64()?;
        if n > (self.remaining() / core::mem::size_of::<Real>()) as u64 {
            return Err(WireError::Truncated);
        }
        let n = n as usize;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.real()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed u64 run (length checked against remaining
    /// bytes before allocating, as in [`Reader::reals`]).
    pub fn u64s(&mut self) -> Result<Vec<u64>, WireError> {
        let n = self.u64()?;
        if n > (self.remaining() / 8) as u64 {
            return Err(WireError::Truncated);
        }
        let n = n as usize;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u64()?);
        }
        Ok(out)
    }

    /// Asserts the whole blob was consumed.
    pub fn finish(self) -> Result<(), WireError> {
        if self.pos == self.data.len() {
            Ok(())
        } else {
            Err(WireError::Truncated)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_field_types() {
        let mut w = Writer::new(7);
        w.u8(9);
        w.u64(123_456_789);
        w.real(1.5);
        w.reals(&[1.0, -2.0, 3.5]);
        w.u64s(&[4, 5]);
        let blob = w.into_bytes();

        let mut r = Reader::new(&blob, 7).unwrap();
        assert_eq!(r.u8().unwrap(), 9);
        assert_eq!(r.u64().unwrap(), 123_456_789);
        assert_eq!(r.real().unwrap(), 1.5);
        assert_eq!(r.reals().unwrap(), vec![1.0, -2.0, 3.5]);
        assert_eq!(r.u64s().unwrap(), vec![4, 5]);
        r.finish().unwrap();
    }

    #[test]
    fn header_validation() {
        let blob = Writer::new(1).into_bytes();
        assert!(matches!(
            Reader::new(&blob, 2),
            Err(WireError::WrongKind {
                expected: 2,
                got: 1
            })
        ));
        let mut bad = blob.clone();
        bad[0] = b'Z';
        assert!(matches!(Reader::new(&bad, 1), Err(WireError::BadMagic)));
        let mut future = blob.clone();
        future[4] = 0xFF;
        assert!(matches!(
            Reader::new(&future, 1),
            Err(WireError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn truncation_detected_everywhere() {
        let mut w = Writer::new(3);
        w.reals(&[1.0, 2.0, 3.0]);
        let blob = w.into_bytes();
        for cut in 0..blob.len() {
            let r = Reader::new(&blob[..cut], 3);
            let ok = match r {
                Ok(mut rr) => rr.reals().is_ok() && rr.finish().is_ok(),
                Err(_) => false,
            };
            assert!(!ok, "truncation at {cut} went unnoticed");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut blob = Writer::new(1).into_bytes();
        blob.push(0);
        let r = Reader::new(&blob, 1).unwrap();
        assert!(matches!(r.finish(), Err(WireError::Truncated)));
    }

    #[test]
    fn absurd_length_prefix_rejected() {
        let mut w = Writer::new(1);
        w.u64(u64::MAX); // length prefix of a "reals" run
        let blob = w.into_bytes();
        let mut r = Reader::new(&blob, 1).unwrap();
        assert!(r.reals().is_err());
    }

    #[test]
    fn length_lying_prefix_rejected_before_allocation() {
        // Claim barely more scalars than the remaining bytes can hold:
        // the old scalar-count-vs-byte-count guard let this through and
        // over-allocated by sizeof(Real).
        let mut w = Writer::new(1);
        w.reals(&[1.0, 2.0, 3.0]);
        let mut blob = w.into_bytes();
        let lie = (4u64).to_le_bytes(); // 3 scalars present, claim 4
        blob[8..16].copy_from_slice(&lie);
        let mut r = Reader::new(&blob, 1).unwrap();
        assert_eq!(r.reals(), Err(WireError::Truncated));

        // Same for u64 runs.
        let mut w = Writer::new(1);
        w.u64s(&[7, 8]);
        let mut blob = w.into_bytes();
        blob[8..16].copy_from_slice(&(3u64).to_le_bytes());
        let mut r = Reader::new(&blob, 1).unwrap();
        assert_eq!(r.u64s(), Err(WireError::Truncated));
    }

    #[test]
    fn remaining_tracks_cursor() {
        let mut w = Writer::new(2);
        w.u64(5);
        let blob = w.into_bytes();
        let mut r = Reader::new(&blob, 2).unwrap();
        assert_eq!(r.remaining(), 8);
        r.u64().unwrap();
        assert_eq!(r.remaining(), 0);
    }
}
