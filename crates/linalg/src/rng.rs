//! Dependency-free, reproducible pseudo-random number generation.
//!
//! OS-ELM's input weights are random and *never trained*; reproducing the
//! paper's experiments therefore requires a generator that is deterministic
//! for a given seed on every platform — including a Cortex-M0+ with no OS
//! entropy source. This is xoshiro256++ seeded through SplitMix64 (the
//! reference seeding procedure), with uniform, normal, and shuffling helpers.
//!
//! The heavier `rand` crate is used only by the *dataset* generators on the
//! host; everything that would ship to the device uses this module.

use crate::Real;

/// xoshiro256++ PRNG.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
    /// Cached second Box–Muller variate.
    spare_normal: Option<Real>,
}

impl Rng {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        Rng {
            s,
            spare_normal: None,
        }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> Real {
        // 53 high bits -> f64 mantissa precision, then narrow.
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) as Real
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn uniform_range(&mut self, lo: Real, hi: Real) -> Real {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`. Panics when `n == 0`.
    ///
    /// Uses Lemire's multiply-shift rejection method for unbiased output.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "Rng::below called with n = 0");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            let low = m as u64;
            if low >= n {
                return (m >> 64) as u64;
            }
            // Rejection branch: only taken for low with probability < n/2^64.
            let threshold = n.wrapping_neg() % n;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Standard normal variate (Box–Muller, with caching of the pair).
    pub fn standard_normal(&mut self) -> Real {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Polar Box-Muller: rejection-samples a point in the unit disc.
        loop {
            let u = 2.0 * self.uniform() - 1.0;
            let v = 2.0 * self.uniform() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let f = ((-2.0 * (s as f64).ln() / s as f64) as Real).sqrt();
                self.spare_normal = Some(v * f);
                return u * f;
            }
        }
    }

    /// Normal variate with the given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: Real, std: Real) -> Real {
        mean + std * self.standard_normal()
    }

    /// Fills `out` with uniform values in `[lo, hi)`.
    pub fn fill_uniform(&mut self, out: &mut [Real], lo: Real, hi: Real) {
        for x in out {
            *x = self.uniform_range(lo, hi);
        }
    }

    /// Fills `out` with N(mean, std²) values.
    pub fn fill_normal(&mut self, out: &mut [Real], mean: Real, std: Real) {
        for x in out {
            *x = self.normal(mean, std);
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below((i + 1) as u64) as usize;
            items.swap(i, j);
        }
    }

    /// Samples an index from a discrete distribution given by `weights`
    /// (need not be normalised). Returns `None` when all weights are zero
    /// or the slice is empty.
    pub fn weighted_index(&mut self, weights: &[Real]) -> Option<usize> {
        let total: Real = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
        if total <= 0.0 {
            return None;
        }
        let mut target = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            if w.is_finite() && w > 0.0 {
                target -= w;
                if target <= 0.0 {
                    return Some(i);
                }
            }
        }
        // Floating-point slack: fall back to the last positive weight.
        weights.iter().rposition(|w| w.is_finite() && *w > 0.0)
    }

    /// Derives an independent generator (jump-free stream splitting by
    /// reseeding through SplitMix64 of fresh output).
    pub fn split(&mut self) -> Rng {
        Rng::seed_from(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Rng::seed_from(7);
        let mut b = Rng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = Rng::seed_from(3);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_near_half() {
        let mut rng = Rng::seed_from(11);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.uniform() as f64).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn below_respects_bound_and_covers_range() {
        let mut rng = Rng::seed_from(5);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "n = 0")]
    fn below_zero_panics() {
        Rng::seed_from(1).below(0);
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::seed_from(13);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.standard_normal() as f64).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn normal_with_params() {
        let mut rng = Rng::seed_from(17);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal(5.0, 2.0) as f64).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean = {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::seed_from(19);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>()); // astronomically unlikely
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = Rng::seed_from(23);
        let weights = [0.0, 1.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..20_000 {
            counts[rng.weighted_index(&weights).unwrap()] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[2] as f64 / counts[1] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio = {ratio}");
    }

    #[test]
    fn weighted_index_degenerate_cases() {
        let mut rng = Rng::seed_from(29);
        assert_eq!(rng.weighted_index(&[]), None);
        assert_eq!(rng.weighted_index(&[0.0, 0.0]), None);
        assert_eq!(rng.weighted_index(&[0.0, 2.0]), Some(1));
    }

    #[test]
    fn split_streams_are_independent() {
        let mut parent = Rng::seed_from(31);
        let mut a = parent.split();
        let mut b = parent.split();
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn fill_helpers_fill_everything() {
        let mut rng = Rng::seed_from(37);
        let mut buf = vec![0.0; 64];
        rng.fill_uniform(&mut buf, 1.0, 2.0);
        assert!(buf.iter().all(|&x| (1.0..2.0).contains(&x)));
        rng.fill_normal(&mut buf, 0.0, 1.0);
        assert!(buf.iter().any(|&x| x != 0.0));
    }
}
