//! `const`-generic stack-allocated matrices and vectors.
//!
//! This is the "firmware view" of the math in this workspace: on the
//! Raspberry Pi Pico the paper targets, every model buffer is a statically
//! sized array and the heap is never touched inside the sample loop. These
//! types let the test-suite prove that the algorithms run unchanged with
//! zero heap allocation, and give downstream `no_std`-leaning users a
//! drop-in option when dimensions are known at compile time.
//!
//! Kernels delegate to the same slice routines in [`crate::vector`] that the
//! heap [`crate::Matrix`] uses, so numerical behaviour is identical by
//! construction.

use crate::{vector, LinalgError, Real, Result};

/// Stack vector of `N` scalars.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SVec<const N: usize> {
    /// Element storage.
    pub data: [Real; N],
}

impl<const N: usize> Default for SVec<N> {
    fn default() -> Self {
        Self::zeros()
    }
}

impl<const N: usize> SVec<N> {
    /// All-zero vector.
    pub const fn zeros() -> Self {
        SVec { data: [0.0; N] }
    }

    /// Builds from an array.
    pub const fn from_array(data: [Real; N]) -> Self {
        SVec { data }
    }

    /// Immutable slice view.
    #[inline]
    pub fn as_slice(&self) -> &[Real] {
        &self.data
    }

    /// Mutable slice view.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [Real] {
        &mut self.data
    }

    /// Dot product.
    #[inline]
    pub fn dot(&self, other: &SVec<N>) -> Real {
        vector::dot(&self.data, &other.data)
    }

    /// L1 distance to another vector.
    #[inline]
    pub fn dist_l1(&self, other: &SVec<N>) -> Real {
        vector::dist_l1(&self.data, &other.data)
    }

    /// Euclidean distance to another vector.
    #[inline]
    pub fn dist_l2(&self, other: &SVec<N>) -> Real {
        vector::dist_l2(&self.data, &other.data)
    }

    /// `self += alpha * other`.
    #[inline]
    pub fn axpy(&mut self, alpha: Real, other: &SVec<N>) {
        vector::axpy(alpha, &other.data, &mut self.data);
    }

    /// Sequential running-mean update (Algorithm 1 line 12 on the stack).
    #[inline]
    pub fn running_mean_update(&mut self, n: u64, x: &SVec<N>) {
        vector::running_mean_update(&mut self.data, n, &x.data);
    }
}

/// Stack matrix of `R x C` scalars (row-major).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SMat<const R: usize, const C: usize> {
    /// Row-major element storage.
    pub data: [[Real; C]; R],
}

impl<const R: usize, const C: usize> Default for SMat<R, C> {
    fn default() -> Self {
        Self::zeros()
    }
}

impl<const R: usize, const C: usize> SMat<R, C> {
    /// All-zero matrix.
    pub const fn zeros() -> Self {
        SMat {
            data: [[0.0; C]; R],
        }
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> Real {
        self.data[r][c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: Real) {
        self.data[r][c] = v;
    }

    /// Row view.
    #[inline]
    pub fn row(&self, r: usize) -> &[Real; C] {
        &self.data[r]
    }

    /// Matrix-vector product into a stack vector.
    pub fn matvec(&self, v: &SVec<C>) -> SVec<R> {
        let mut out = SVec::zeros();
        for r in 0..R {
            out.data[r] = vector::dot(&self.data[r], &v.data);
        }
        out
    }

    /// Transposed matrix-vector product (`selfᵀ v`).
    pub fn tr_matvec(&self, v: &SVec<R>) -> SVec<C> {
        let mut out = SVec::zeros();
        for r in 0..R {
            let vr = v.data[r];
            if vr == 0.0 {
                continue;
            }
            for c in 0..C {
                out.data[c] += vr * self.data[r][c];
            }
        }
        out
    }

    /// Matrix product into a stack matrix.
    pub fn matmul<const K: usize>(&self, rhs: &SMat<C, K>) -> SMat<R, K> {
        let mut out = SMat::zeros();
        for i in 0..R {
            for (k, &a) in self.data[i].iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                for j in 0..K {
                    out.data[i][j] += a * rhs.data[k][j];
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> SMat<C, R> {
        let mut out = SMat::zeros();
        for r in 0..R {
            for c in 0..C {
                out.data[c][r] = self.data[r][c];
            }
        }
        out
    }

    /// Rank-1 update `self += s * u vᵀ`.
    pub fn add_outer(&mut self, s: Real, u: &SVec<R>, v: &SVec<C>) {
        for r in 0..R {
            let su = s * u.data[r];
            if su == 0.0 {
                continue;
            }
            for c in 0..C {
                self.data[r][c] += su * v.data[c];
            }
        }
    }

    /// Maximum absolute element.
    pub fn max_abs(&self) -> Real {
        let mut m = 0.0;
        for row in &self.data {
            for &x in row {
                m = x.abs().max(m);
            }
        }
        m
    }
}

impl<const N: usize> SMat<N, N> {
    /// Identity matrix.
    pub fn identity() -> Self {
        let mut m = Self::zeros();
        for i in 0..N {
            m.data[i][i] = 1.0;
        }
        m
    }

    /// Gauss–Jordan inverse with partial pivoting, entirely on the stack.
    pub fn inverse(&self) -> Result<SMat<N, N>> {
        let mut a = *self;
        let mut inv = Self::identity();
        for k in 0..N {
            // Pivot selection.
            let mut p = k;
            let mut max = a.data[k][k].abs();
            for r in (k + 1)..N {
                if a.data[r][k].abs() > max {
                    max = a.data[r][k].abs();
                    p = r;
                }
            }
            if max <= 1e-12 {
                return Err(LinalgError::Singular);
            }
            a.data.swap(p, k);
            inv.data.swap(p, k);
            let pivot = a.data[k][k];
            let pinv = 1.0 / pivot;
            for c in 0..N {
                a.data[k][c] *= pinv;
                inv.data[k][c] *= pinv;
            }
            for r in 0..N {
                if r == k {
                    continue;
                }
                let f = a.data[r][k];
                if f == 0.0 {
                    continue;
                }
                for c in 0..N {
                    a.data[r][c] -= f * a.data[k][c];
                    inv.data[r][c] -= f * inv.data[k][c];
                }
            }
        }
        Ok(inv)
    }

    /// Sherman–Morrison OS-ELM covariance update on the stack:
    /// `P <- P - (P h)(h P) / (1 + h P h)`.
    pub fn oselm_p_update(&mut self, h: &SVec<N>) -> Result<Real> {
        let ph = self.matvec(h);
        let hp = self.tr_matvec(h);
        let denom = 1.0 + vector::dot(&h.data, &ph.data);
        if denom <= 0.0 || !denom.is_finite() {
            return Err(LinalgError::NotPositiveDefinite);
        }
        self.add_outer(-1.0 / denom, &ph, &hp);
        Ok(denom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn svec_dot_and_distances() {
        let a = SVec::from_array([1.0, 2.0, 3.0]);
        let b = SVec::from_array([4.0, 5.0, 6.0]);
        assert_eq!(a.dot(&b), 32.0);
        assert_eq!(a.dist_l1(&b), 9.0);
        assert!((a.dist_l2(&b) - (27.0 as Real).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn smat_matvec_known() {
        let mut m = SMat::<2, 3>::zeros();
        m.data = [[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]];
        let v = SVec::from_array([1.0, 1.0, 1.0]);
        let out = m.matvec(&v);
        assert_eq!(out.data, [6.0, 15.0]);
    }

    #[test]
    fn smat_matmul_matches_heap_matrix() {
        let mut a = SMat::<2, 3>::zeros();
        a.data = [[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]];
        let mut b = SMat::<3, 2>::zeros();
        b.data = [[7.0, 8.0], [9.0, 10.0], [11.0, 12.0]];
        let c = a.matmul(&b);
        assert_eq!(c.data, [[58.0, 64.0], [139.0, 154.0]]);
    }

    #[test]
    fn smat_transpose_roundtrip() {
        let mut a = SMat::<2, 3>::zeros();
        a.data = [[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]];
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().data[2][1], 6.0);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let mut a = SMat::<3, 3>::zeros();
        a.data = [[4.0, 2.0, 1.0], [2.0, 5.0, 3.0], [1.0, 3.0, 6.0]];
        let inv = a.inverse().unwrap();
        let prod = a.matmul(&inv);
        let mut max_err: Real = 0.0;
        for r in 0..3 {
            for c in 0..3 {
                let expect = if r == c { 1.0 } else { 0.0 };
                max_err = max_err.max((prod.data[r][c] - expect).abs());
            }
        }
        assert!(max_err < 1e-4);
    }

    #[test]
    fn singular_inverse_rejected() {
        let mut a = SMat::<2, 2>::zeros();
        a.data = [[1.0, 2.0], [2.0, 4.0]];
        assert_eq!(a.inverse().unwrap_err(), LinalgError::Singular);
    }

    #[test]
    fn stack_oselm_update_matches_heap_kernel() {
        let h = [0.3, -0.7, 0.2, 0.9];
        // Stack path.
        let mut ps = SMat::<4, 4>::identity();
        ps.oselm_p_update(&SVec::from_array(h)).unwrap();
        // Heap path.
        let mut ph = crate::Matrix::identity(4);
        let mut scratch = crate::sherman::Rank1Scratch::new(4);
        crate::sherman::oselm_p_update(&mut ph, &h, &mut scratch).unwrap();
        for r in 0..4 {
            for c in 0..4 {
                assert!((ps.data[r][c] - ph.get(r, c)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn running_mean_update_on_stack() {
        let mut c = SVec::<2>::zeros();
        for (n, v) in [[2.0, 4.0], [4.0, 8.0], [6.0, 12.0]].iter().enumerate() {
            c.running_mean_update(n as u64, &SVec::from_array(*v));
        }
        assert!((c.data[0] - 4.0).abs() < 1e-5);
        assert!((c.data[1] - 8.0).abs() < 1e-5);
    }

    #[test]
    fn add_outer_known() {
        let mut m = SMat::<2, 2>::zeros();
        m.add_outer(
            2.0,
            &SVec::from_array([1.0, 2.0]),
            &SVec::from_array([3.0, 4.0]),
        );
        assert_eq!(m.data, [[6.0, 8.0], [12.0, 16.0]]);
    }
}
