//! Streaming and batch statistics.
//!
//! The detectors and the paper's Eq. 1 threshold calibration need running
//! means/variances (Welford), quantiles, and simple histograms. Everything
//! here is single-pass or operates on caller-owned buffers, in keeping with
//! the O(1)-memory-per-sample design constraint.

use crate::Real;

/// Welford online mean/variance accumulator.
///
/// Numerically stable for long streams (unlike the naive sum-of-squares
/// formula, which catastrophically cancels in f32).
#[derive(Debug, Clone, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one observation.
    #[inline]
    pub fn push(&mut self, x: Real) {
        self.n += 1;
        let x = x as f64;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 when empty).
    #[inline]
    pub fn mean(&self) -> Real {
        self.mean as Real
    }

    /// Population variance (divides by n; 0 when fewer than 2 samples).
    ///
    /// The paper's Eq. 1 uses the population form (`1/N`), so that is the
    /// default here.
    #[inline]
    pub fn variance(&self) -> Real {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / self.n as f64) as Real
        }
    }

    /// Sample variance (divides by n - 1).
    #[inline]
    pub fn sample_variance(&self) -> Real {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64) as Real
        }
    }

    /// Population standard deviation.
    #[inline]
    pub fn std(&self) -> Real {
        self.variance().sqrt()
    }

    /// Merges another accumulator (parallel reduction support).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
    }

    /// Resets to the empty state.
    pub fn reset(&mut self) {
        *self = Welford::default();
    }
}

/// Mean of a slice (0 for empty input).
pub fn mean(xs: &[Real]) -> Real {
    crate::vector::mean(xs)
}

/// Population standard deviation of a slice.
pub fn std_dev(xs: &[Real]) -> Real {
    let mut w = Welford::new();
    for &x in xs {
        w.push(x);
    }
    w.std()
}

/// Linear-interpolation quantile of **sorted** data, `q` in `[0, 1]`.
///
/// Matches numpy's default (`linear`) interpolation so Quant Tree split
/// points agree with the reference implementation's behaviour.
pub fn quantile_sorted(sorted: &[Real], q: Real) -> Real {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    let q = q.clamp(0.0, 1.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q as f64 * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = (pos - lo as f64) as Real;
        sorted[lo] + (sorted[hi] - sorted[lo]) * frac
    }
}

/// Quantile of unsorted data (sorts a scratch copy).
pub fn quantile(xs: &[Real], q: Real) -> Real {
    let mut copy = xs.to_vec();
    copy.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    quantile_sorted(&copy, q)
}

/// Fixed-width histogram over `[lo, hi]` with values outside clamped to the
/// end bins. Used by diagnostics and the distribution plots of Figure 1.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: Real,
    hi: Real,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins spanning `[lo, hi]`.
    pub fn new(lo: Real, hi: Real, bins: usize) -> Self {
        assert!(bins > 0 && hi > lo, "invalid histogram bounds");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Adds one observation (clamped into range).
    pub fn push(&mut self, x: Real) {
        let bins = self.counts.len();
        let t = ((x - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0);
        let idx = ((t * bins as Real) as usize).min(bins - 1);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Normalised bin frequencies (empty histogram gives all zeros).
    pub fn frequencies(&self) -> Vec<Real> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as Real / self.total as Real)
            .collect()
    }
}

/// Pearson chi-square statistic between observed counts and expected
/// probabilities over the same bins: `Σ (o_k - n·p_k)² / (n·p_k)`.
///
/// Bins with zero expected probability are skipped when they are also empty,
/// and contribute infinity when observed mass lands in them (any mass in an
/// impossible bin is maximal evidence of change).
pub fn pearson_chi2(observed: &[u64], expected_probs: &[Real]) -> Real {
    debug_assert_eq!(observed.len(), expected_probs.len());
    let n: u64 = observed.iter().sum();
    if n == 0 {
        return 0.0;
    }
    let n = n as Real;
    let mut stat = 0.0;
    for (&o, &p) in observed.iter().zip(expected_probs.iter()) {
        let e = n * p;
        if e <= 0.0 {
            if o > 0 {
                return Real::INFINITY;
            }
            continue;
        }
        let d = o as Real - e;
        stat += d * d / e;
    }
    stat
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_mean_var() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-6);
        assert!((w.variance() - 4.0).abs() < 1e-5);
        assert!((w.std() - 2.0).abs() < 1e-5);
        assert!((w.sample_variance() - 32.0 / 7.0).abs() < 1e-5);
    }

    #[test]
    fn welford_empty_and_single() {
        let mut w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        w.push(3.0);
        assert_eq!(w.mean(), 3.0);
        assert_eq!(w.variance(), 0.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<Real> = (0..100).map(|i| (i as Real).sin() * 10.0).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-4);
        assert!((a.variance() - whole.variance()).abs() < 1e-3);
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut a = Welford::new();
        let mut b = Welford::new();
        b.push(5.0);
        a.merge(&b);
        assert_eq!(a.mean(), 5.0);
        let empty = Welford::new();
        a.merge(&empty);
        assert_eq!(a.count(), 1);
    }

    #[test]
    fn quantile_median_and_extremes() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(quantile(&xs, 0.5), 3.0);
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [0.0, 10.0];
        assert!((quantile(&xs, 0.25) - 2.5).abs() < 1e-6);
        assert!((quantile(&xs, 0.75) - 7.5).abs() < 1e-6);
    }

    #[test]
    fn quantile_single_element() {
        assert_eq!(quantile(&[42.0], 0.3), 42.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_empty_panics() {
        quantile(&[], 0.5);
    }

    #[test]
    fn histogram_counts_and_clamps() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.5, 1.5, 2.5, 9.9, -5.0, 15.0] {
            h.push(x);
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.counts()[0], 3); // 0.5, 1.5, -5.0 (clamped)
        assert_eq!(h.counts()[4], 2); // 9.9, 15.0 (clamped)
        assert_eq!(h.counts()[1], 1); // 2.5
        let f = h.frequencies();
        assert!((f.iter().sum::<Real>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn chi2_zero_when_matching() {
        // Observations exactly proportional to expectations.
        let observed = [25u64, 25, 25, 25];
        let probs = [0.25, 0.25, 0.25, 0.25];
        assert_eq!(pearson_chi2(&observed, &probs), 0.0);
    }

    #[test]
    fn chi2_grows_with_mismatch() {
        let probs = [0.25, 0.25, 0.25, 0.25];
        let mild = pearson_chi2(&[30, 20, 25, 25], &probs);
        let severe = pearson_chi2(&[100, 0, 0, 0], &probs);
        assert!(severe > mild && mild > 0.0);
    }

    #[test]
    fn chi2_impossible_bin_is_infinite() {
        assert!(pearson_chi2(&[1, 9], &[0.0, 1.0]).is_infinite());
        assert_eq!(pearson_chi2(&[0, 10], &[0.0, 1.0]), 0.0);
    }

    #[test]
    fn chi2_empty_observation_is_zero() {
        assert_eq!(pearson_chi2(&[0, 0], &[0.5, 0.5]), 0.0);
    }
}
