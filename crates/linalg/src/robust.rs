#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! Byzantine-robust aggregation kernels for federated merging.
//!
//! [`crate::cholesky::spd_mean`] is the right fusion kernel when every
//! contributor is honest: it is exact for pooled normal equations. But a
//! mean has breakdown point zero — one adversarial (or merely broken)
//! contributor moves it arbitrarily far. The kernels here trade a little
//! arithmetic for a breakdown point of ⌊(K−1)/2⌋: as long as a strict
//! majority of the K inputs is honest, the aggregate stays within a
//! bounded distance of the honest centre no matter what the minority
//! submits.
//!
//! * [`trimmed_mean`] — coordinate-wise trimmed mean: per entry, the
//!   `trim` smallest and `trim` largest values are dropped and the rest
//!   averaged. With `trim == 0` the arithmetic (accumulation order and
//!   scaling included) is exactly [`crate::cholesky::spd_mean`]'s, so an
//!   outlier-free robust merge is bit-identical to the plain merge.
//! * [`geometric_median`] — the iteratively-reweighted (Weiszfeld)
//!   geometric median under the Frobenius metric: the point minimising
//!   the sum of distances to the inputs. This is the robust *centre*
//!   used to score contributors.
//! * [`deviation_scores`] — per-input normalized distance from a centre
//!   (Frobenius distance over the median distance), the outlier test a
//!   two-pass robust merge gates re-admission on.
//!
//! SPD-validated variants ([`spd_trimmed_mean`], [`spd_geometric_median`])
//! factor the aggregate through Cholesky before returning, mirroring
//! `spd_mean`'s transactional contract.

use crate::cholesky::Cholesky;
use crate::{LinalgError, Matrix, Real, Result};

/// Checks that every input matrix matches the first one's shape and is
/// entirely finite. Returns the common shape.
fn check_inputs(mats: &[&Matrix], op: &'static str) -> Result<(usize, usize)> {
    let Some(first) = mats.first() else {
        return Err(LinalgError::InvalidArgument("robust: empty input"));
    };
    let shape = first.shape();
    for m in mats {
        if m.shape() != shape {
            return Err(LinalgError::ShapeMismatch {
                op,
                lhs: shape,
                rhs: m.shape(),
            });
        }
        if !m.as_slice().iter().all(|v| v.is_finite()) {
            return Err(LinalgError::NonFiniteResult);
        }
    }
    Ok(shape)
}

/// Coordinate-wise trimmed mean: per entry, the `trim` smallest and
/// `trim` largest of the K values are dropped and the survivors
/// averaged. Requires `2 * trim < mats.len()` so at least one value
/// survives per coordinate.
///
/// Surviving values accumulate in input order with the same
/// multiply-by-scale arithmetic as [`crate::cholesky::spd_mean`], so
/// `trimmed_mean(mats, 0)` is bit-identical to the element-wise mean —
/// robust merging costs nothing on honest rounds.
pub fn trimmed_mean(mats: &[&Matrix], trim: usize) -> Result<Matrix> {
    let (rows, cols) = check_inputs(mats, "trimmed_mean")?;
    let k = mats.len();
    if 2 * trim >= k {
        return Err(LinalgError::InvalidArgument(
            "trimmed_mean: trim must satisfy 2*trim < inputs",
        ));
    }
    let keep = k - 2 * trim;
    let scale = 1.0 / keep as Real;
    let mut out = Matrix::zeros(rows, cols);
    let mut vals: Vec<Real> = vec![0.0; k];
    let mut order: Vec<usize> = vec![0; k];
    let mut dropped: Vec<bool> = vec![false; k];
    for r in 0..rows {
        for c in 0..cols {
            for (i, m) in mats.iter().enumerate() {
                vals[i] = m.get(r, c);
                order[i] = i;
                dropped[i] = false;
            }
            if trim > 0 {
                // Finiteness was validated up front, so the comparator
                // never sees NaN; ties keep input order (stable sort) so
                // equal values drop deterministically.
                order.sort_by(|&a, &b| {
                    vals[a]
                        .partial_cmp(&vals[b])
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                for &i in order.iter().take(trim) {
                    dropped[i] = true;
                }
                for &i in order.iter().rev().take(trim) {
                    dropped[i] = true;
                }
            }
            let mut acc = 0.0;
            for i in 0..k {
                if !dropped[i] {
                    acc += vals[i] * scale;
                }
            }
            out.set(r, c, acc);
        }
    }
    Ok(out)
}

/// [`trimmed_mean`] with the aggregate validated positive-definite by a
/// Cholesky factorisation, mirroring [`crate::cholesky::spd_mean`]'s
/// contract. Non-finite inputs surface as
/// [`LinalgError::NotPositiveDefinite`], exactly like `spd_mean`.
pub fn spd_trimmed_mean(mats: &[&Matrix], trim: usize) -> Result<Matrix> {
    if let Some(first) = mats.first() {
        if !first.is_square() {
            return Err(LinalgError::InvalidArgument(
                "spd_trimmed_mean: matrix not square",
            ));
        }
    }
    let mean = trimmed_mean(mats, trim).map_err(|e| match e {
        LinalgError::NonFiniteResult => LinalgError::NotPositiveDefinite,
        other => other,
    })?;
    Cholesky::factor(&mean)?;
    Ok(mean)
}

/// Frobenius distance `‖a − b‖_F` between two equal-shaped matrices.
pub fn frobenius_distance(a: &Matrix, b: &Matrix) -> Result<Real> {
    if a.shape() != b.shape() {
        return Err(LinalgError::ShapeMismatch {
            op: "frobenius_distance",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let mut acc = 0.0;
    for (&x, &y) in a.as_slice().iter().zip(b.as_slice()) {
        let d = x - y;
        acc += d * d;
    }
    Ok(acc.sqrt())
}

/// Iteratively-reweighted geometric median (Weiszfeld iteration) of the
/// inputs under the Frobenius metric: the matrix minimising
/// `Σᵢ ‖Xᵢ − Y‖_F`. Starts at the coordinate-wise mean and reweights by
/// inverse distance until the update falls below a relative tolerance or
/// `max_iters` passes. When the iterate lands on an input point the
/// point itself is returned (the Weiszfeld weights would divide by
/// zero there).
///
/// The geometric median has breakdown point ⌊(K−1)/2⌋: any strict
/// minority of adversarial inputs, placed anywhere, moves it only by a
/// bounded multiple of the honest inputs' spread.
pub fn geometric_median(mats: &[&Matrix], max_iters: usize) -> Result<Matrix> {
    let (rows, cols) = check_inputs(mats, "geometric_median")?;
    let k = mats.len();
    // Coordinate-wise mean as the starting iterate.
    let mut y = Matrix::zeros(rows, cols);
    let scale = 1.0 / k as Real;
    for m in mats {
        for (acc, &v) in y.as_mut_slice().iter_mut().zip(m.as_slice()) {
            *acc += v * scale;
        }
    }
    if k == 1 {
        return Ok(y);
    }
    // Singularity guard and convergence tolerance, both relative to the
    // data scale so the kernel behaves identically across magnitudes.
    let data_scale = mats
        .iter()
        .map(|m| m.as_slice().iter().map(|v| v * v).sum::<Real>().sqrt())
        .fold(0.0 as Real, Real::max)
        .max(1.0);
    let eps = data_scale * 1e-7;
    let tol = data_scale * 1e-6;
    let mut next = Matrix::zeros(rows, cols);
    for _ in 0..max_iters {
        let mut weight_sum = 0.0;
        next.fill_zero();
        let mut coincident: Option<usize> = None;
        for (i, m) in mats.iter().enumerate() {
            let d = frobenius_distance(m, &y)?;
            if d <= eps {
                coincident = Some(i);
                break;
            }
            let w = 1.0 / d;
            weight_sum += w;
            for (acc, &v) in next.as_mut_slice().iter_mut().zip(m.as_slice()) {
                *acc += v * w;
            }
        }
        if let Some(i) = coincident {
            // The iterate reached a data point; with a strict-majority
            // honest cluster this is (at worst) within the cluster.
            return Ok(mats[i].clone());
        }
        if !weight_sum.is_finite() || weight_sum <= 0.0 {
            return Err(LinalgError::NonFiniteResult);
        }
        let inv = 1.0 / weight_sum;
        for v in next.as_mut_slice() {
            *v *= inv;
        }
        let moved = frobenius_distance(&next, &y)?;
        std::mem::swap(&mut y, &mut next);
        if moved <= tol {
            break;
        }
    }
    if !y.as_slice().iter().all(|v| v.is_finite()) {
        return Err(LinalgError::NonFiniteResult);
    }
    Ok(y)
}

/// [`geometric_median`] validated positive-definite by a Cholesky
/// factorisation of the result — the SPD companion of
/// [`crate::cholesky::spd_mean`] for adversarial rounds.
pub fn spd_geometric_median(mats: &[&Matrix], max_iters: usize) -> Result<Matrix> {
    if let Some(first) = mats.first() {
        if !first.is_square() {
            return Err(LinalgError::InvalidArgument(
                "spd_geometric_median: matrix not square",
            ));
        }
    }
    let median = geometric_median(mats, max_iters).map_err(|e| match e {
        LinalgError::NonFiniteResult => LinalgError::NotPositiveDefinite,
        other => other,
    })?;
    Cholesky::factor(&median)?;
    Ok(median)
}

/// Per-input deviation scores against a (robust) centre: the Frobenius
/// distance of each input from `center`, normalized by the median of
/// those distances. Honest inputs cluster near score ≈ 1; an outlier's
/// score grows with how far it sits outside the honest spread. When the
/// distances collapse to ~0 (all inputs at the centre) every score is 0.
///
/// The normalizer is floored at a small multiple of the centre's own
/// magnitude so a fleet of near-identical honest contributors cannot
/// amplify femtoscale jitter into spurious outlier verdicts.
pub fn deviation_scores(mats: &[&Matrix], center: &Matrix) -> Result<Vec<Real>> {
    check_inputs(mats, "deviation_scores")?;
    if !center.as_slice().iter().all(|v| v.is_finite()) {
        return Err(LinalgError::NonFiniteResult);
    }
    let mut dists = Vec::with_capacity(mats.len());
    for m in mats {
        dists.push(frobenius_distance(m, center)?);
    }
    let mut sorted = dists.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let median = sorted[sorted.len() / 2];
    let center_norm = center.as_slice().iter().map(|v| v * v).sum::<Real>().sqrt();
    let floor = (center_norm * 1e-4).max(Real::MIN_POSITIVE);
    let scale = median.max(floor);
    Ok(dists.into_iter().map(|d| d / scale).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cholesky::spd_mean;
    use crate::Rng;

    /// A random SPD matrix `BᵀB + I` jittered around a seed-dependent base.
    fn random_spd(rng: &mut Rng, n: usize, spread: Real) -> Matrix {
        let mut b = Matrix::zeros(n, n);
        for r in 0..n {
            for c in 0..n {
                b.set(r, c, rng.normal(0.0, spread));
            }
        }
        let bt = b.transpose();
        let mut m = bt.matmul(&b).unwrap();
        for i in 0..n {
            m.set(i, i, m.get(i, i) + 1.0);
        }
        m
    }

    #[test]
    fn trimmed_mean_with_zero_trim_is_bitwise_spd_mean() {
        // Property loop: across seeds, dims and input counts, the
        // outlier-free robust kernel reproduces spd_mean exactly —
        // accumulation order, scaling and all.
        for seed in 0..40u64 {
            let mut rng = Rng::seed_from(seed);
            let n = 2 + (seed as usize % 5);
            let k = 2 + (seed as usize % 6);
            let mats: Vec<Matrix> = (0..k).map(|_| random_spd(&mut rng, n, 0.3)).collect();
            let refs: Vec<&Matrix> = mats.iter().collect();
            let plain = spd_mean(&refs).unwrap();
            let robust = spd_trimmed_mean(&refs, 0).unwrap();
            assert_eq!(
                plain.as_slice(),
                robust.as_slice(),
                "seed {seed}: trim=0 must be bit-identical to spd_mean"
            );
        }
    }

    #[test]
    fn trimmed_mean_shrugs_off_minority_adversaries() {
        // Up to ⌊(K−1)/2⌋ adversarial matrices (huge scale, flipped sign
        // structure) leave the trimmed mean within a bounded distance of
        // the clean centre, while the plain mean is dragged far away.
        for seed in 0..30u64 {
            let mut rng = Rng::seed_from(1000 + seed);
            let n = 3;
            let honest = 3 + (seed as usize % 3); // 3..=5 honest
            let adversaries = (honest - 1) / 2; // floor((K-1)/2) w.r.t. honest+adv? see below
            let mut mats: Vec<Matrix> = (0..honest).map(|_| random_spd(&mut rng, n, 0.2)).collect();
            let refs: Vec<&Matrix> = mats.iter().collect();
            let clean = spd_mean(&refs).unwrap();
            // Adversaries: honest-looking shape, scaled by 1e3.
            for _ in 0..adversaries {
                let mut bad = random_spd(&mut rng, n, 0.2);
                for v in bad.as_mut_slice() {
                    *v *= 1e3;
                }
                mats.push(bad);
            }
            let k = mats.len();
            assert!(2 * adversaries < k, "adversaries must be a strict minority");
            let refs: Vec<&Matrix> = mats.iter().collect();
            let robust = trimmed_mean(&refs, adversaries).unwrap();
            let polluted = spd_mean(&refs).unwrap();
            let honest_spread = (0..honest)
                .map(|i| frobenius_distance(refs[i], &clean).unwrap())
                .fold(0.0 as Real, Real::max)
                .max(1e-3);
            let robust_err = frobenius_distance(&robust, &clean).unwrap();
            let polluted_err = frobenius_distance(&polluted, &clean).unwrap();
            assert!(
                robust_err <= 4.0 * honest_spread,
                "seed {seed}: robust centre drifted {robust_err} (spread {honest_spread})"
            );
            assert!(
                polluted_err > 10.0 * honest_spread,
                "seed {seed}: adversaries too weak to prove anything ({polluted_err})"
            );
        }
    }

    #[test]
    fn geometric_median_stays_near_honest_cluster() {
        for seed in 0..30u64 {
            let mut rng = Rng::seed_from(2000 + seed);
            let n = 3 + (seed as usize % 3);
            let honest = 3 + (seed as usize % 4); // 3..=6
            let mut mats: Vec<Matrix> = (0..honest).map(|_| random_spd(&mut rng, n, 0.2)).collect();
            let refs: Vec<&Matrix> = mats.iter().collect();
            let clean = spd_mean(&refs).unwrap();
            let honest_spread = refs
                .iter()
                .map(|m| frobenius_distance(m, &clean).unwrap())
                .fold(0.0 as Real, Real::max)
                .max(1e-3);
            // floor((K-1)/2) adversaries of the final input set.
            let adversaries = (honest - 1) / 2;
            for _ in 0..adversaries {
                let mut bad = random_spd(&mut rng, n, 0.2);
                for v in bad.as_mut_slice() {
                    *v = *v * 500.0 + 100.0;
                }
                mats.push(bad);
            }
            let refs: Vec<&Matrix> = mats.iter().collect();
            let median = geometric_median(&refs, 200).unwrap();
            let err = frobenius_distance(&median, &clean).unwrap();
            assert!(
                err <= 6.0 * honest_spread,
                "seed {seed}: geometric median drifted {err} (spread {honest_spread})"
            );
        }
    }

    #[test]
    fn geometric_median_of_identical_inputs_is_the_input() {
        let mut rng = Rng::seed_from(7);
        let a = random_spd(&mut rng, 4, 0.5);
        let refs = vec![&a, &a, &a];
        let median = geometric_median(&refs, 64).unwrap();
        assert_eq!(median.as_slice(), a.as_slice());
        // SPD variant factors it too.
        let spd = spd_geometric_median(&refs, 64).unwrap();
        assert_eq!(spd.as_slice(), a.as_slice());
    }

    #[test]
    fn deviation_scores_flag_the_outlier() {
        for seed in 0..20u64 {
            let mut rng = Rng::seed_from(3000 + seed);
            let n = 3;
            let mut mats: Vec<Matrix> = (0..5).map(|_| random_spd(&mut rng, n, 0.2)).collect();
            let mut bad = random_spd(&mut rng, n, 0.2);
            for v in bad.as_mut_slice() {
                *v *= 1e3;
            }
            mats.push(bad);
            let refs: Vec<&Matrix> = mats.iter().collect();
            let center = geometric_median(&refs, 200).unwrap();
            let scores = deviation_scores(&refs, &center).unwrap();
            let honest_max = scores[..5].iter().cloned().fold(0.0 as Real, Real::max);
            assert!(
                scores[5] > 20.0 * honest_max.max(1.0),
                "seed {seed}: outlier score {} vs honest max {honest_max}",
                scores[5]
            );
        }
    }

    #[test]
    fn deviation_scores_of_identical_inputs_are_zero() {
        let a = Matrix::identity(3);
        let refs = vec![&a, &a, &a];
        let scores = deviation_scores(&refs, &a).unwrap();
        assert!(scores.iter().all(|&s| s == 0.0), "{scores:?}");
    }

    #[test]
    fn robust_kernels_reject_bad_inputs() {
        let a = Matrix::identity(3);
        let wrong = Matrix::identity(2);
        assert!(matches!(
            trimmed_mean(&[], 0),
            Err(LinalgError::InvalidArgument(_))
        ));
        assert!(matches!(
            trimmed_mean(&[&a, &wrong], 0),
            Err(LinalgError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            trimmed_mean(&[&a, &a], 1),
            Err(LinalgError::InvalidArgument(_))
        ));
        let mut nan = Matrix::identity(3);
        nan.set(0, 0, Real::NAN);
        assert_eq!(
            trimmed_mean(&[&a, &nan], 0).unwrap_err(),
            LinalgError::NonFiniteResult
        );
        assert_eq!(
            spd_trimmed_mean(&[&a, &nan], 0).unwrap_err(),
            LinalgError::NotPositiveDefinite
        );
        assert!(geometric_median(&[], 10).is_err());
        assert!(matches!(
            spd_geometric_median(&[&Matrix::zeros(2, 3)], 10),
            Err(LinalgError::InvalidArgument(_))
        ));
        assert!(deviation_scores(&[&a, &wrong], &a).is_err());
    }

    #[test]
    fn trimmed_mean_drops_extremes_per_coordinate() {
        let lo = Matrix::from_vec(1, 1, vec![-100.0]).unwrap();
        let mid1 = Matrix::from_vec(1, 1, vec![2.0]).unwrap();
        let mid2 = Matrix::from_vec(1, 1, vec![4.0]).unwrap();
        let hi = Matrix::from_vec(1, 1, vec![100.0]).unwrap();
        let mean = trimmed_mean(&[&lo, &mid1, &hi, &mid2], 1).unwrap();
        assert!((mean.get(0, 0) - 3.0).abs() < 1e-6);
    }
}
