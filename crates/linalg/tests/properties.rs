//! Property-based tests for the linear-algebra substrate.
//!
//! These check algebraic identities over randomly generated inputs rather
//! than hand-picked cases: associativity/compatibility of the kernels,
//! inverse correctness, Sherman–Morrison vs direct inversion, and
//! statistical accumulator invariants.

use proptest::prelude::*;
use seqdrift_linalg::{
    sherman::{oselm_p_update, Rank1Scratch},
    solve, stats, vector, Matrix, Real,
};

/// Strategy: a well-scaled vector of the given length.
fn vec_of(len: usize) -> impl Strategy<Value = Vec<Real>> {
    proptest::collection::vec(-10.0f32..10.0, len).prop_map(|v| v.into_iter().map(|x| x as Real).collect())
}

/// Strategy: (rows, cols, data) for a small matrix.
fn small_matrix() -> impl Strategy<Value = Matrix> {
    (1usize..6, 1usize..6).prop_flat_map(|(r, c)| {
        vec_of(r * c).prop_map(move |data| Matrix::from_vec(r, c, data).unwrap())
    })
}

/// Strategy: a diagonally dominant (hence invertible) square matrix.
fn invertible_matrix() -> impl Strategy<Value = Matrix> {
    (2usize..6).prop_flat_map(|n| {
        vec_of(n * n).prop_map(move |data| {
            let mut m = Matrix::from_vec(n, n, data).unwrap();
            for i in 0..n {
                let row_sum: Real = m.row(i).iter().map(|x| x.abs()).sum();
                m.set(i, i, row_sum + 1.0);
            }
            m
        })
    })
}

proptest! {
    #[test]
    fn transpose_is_involution(a in small_matrix()) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_identity_left_right(a in small_matrix()) {
        let il = Matrix::identity(a.rows());
        let ir = Matrix::identity(a.cols());
        prop_assert!(il.matmul(&a).unwrap().approx_eq(&a, 1e-4));
        prop_assert!(a.matmul(&ir).unwrap().approx_eq(&a, 1e-4));
    }

    #[test]
    fn matmul_transpose_identity(a in small_matrix(), seed in 0u64..1000) {
        // (A B)ᵀ = Bᵀ Aᵀ for a random compatible B.
        let mut rng = seqdrift_linalg::Rng::seed_from(seed);
        let mut b = Matrix::zeros(a.cols(), 3);
        for i in 0..b.rows() { for j in 0..b.cols() { b.set(i, j, rng.uniform_range(-5.0, 5.0)); } }
        let ab_t = a.matmul(&b).unwrap().transpose();
        let bt_at = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(ab_t.approx_eq(&bt_at, 1e-3));
    }

    #[test]
    fn tr_matmul_matches_explicit(a in small_matrix(), seed in 0u64..1000) {
        let mut rng = seqdrift_linalg::Rng::seed_from(seed);
        let mut b = Matrix::zeros(a.rows(), 4);
        for i in 0..b.rows() { for j in 0..b.cols() { b.set(i, j, rng.uniform_range(-5.0, 5.0)); } }
        let mut out = Matrix::zeros(a.cols(), 4);
        a.tr_matmul_into(&b, &mut out).unwrap();
        let expect = a.transpose().matmul(&b).unwrap();
        prop_assert!(out.approx_eq(&expect, 1e-3));
    }

    #[test]
    fn matvec_is_matmul_column(a in small_matrix(), seed in 0u64..1000) {
        let mut rng = seqdrift_linalg::Rng::seed_from(seed);
        let mut v = vec![0.0; a.cols()];
        rng.fill_uniform(&mut v, -5.0, 5.0);
        let got = a.matvec(&v).unwrap();
        let expect = a.matmul(&Matrix::col_vector(&v)).unwrap();
        for (i, &g) in got.iter().enumerate() {
            prop_assert!((g - expect.get(i, 0)).abs() < 1e-3);
        }
    }

    #[test]
    fn inverse_roundtrip(a in invertible_matrix()) {
        let inv = solve::inverse(&a).unwrap();
        let prod = a.matmul(&inv).unwrap();
        prop_assert!(prod.approx_eq(&Matrix::identity(a.rows()), 1e-2));
    }

    #[test]
    fn solve_satisfies_system(a in invertible_matrix(), seed in 0u64..1000) {
        let mut rng = seqdrift_linalg::Rng::seed_from(seed);
        let mut b = vec![0.0; a.rows()];
        rng.fill_uniform(&mut b, -5.0, 5.0);
        let x = solve::solve(&a, &b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (got, want) in ax.iter().zip(b.iter()) {
            prop_assert!((got - want).abs() < 1e-2, "Ax = {got}, b = {want}");
        }
    }

    #[test]
    fn sherman_morrison_tracks_direct_inverse(
        a in invertible_matrix(), seed in 0u64..1000
    ) {
        let n = a.rows();
        let mut rng = seqdrift_linalg::Rng::seed_from(seed);
        let mut h = vec![0.0; n];
        rng.fill_uniform(&mut h, -1.0, 1.0);

        // P must start as the inverse of an SPD matrix for the OS-ELM kernel;
        // use A = I for a clean start, then add h hᵀ.
        let mut p = Matrix::identity(n);
        let mut scratch = Rank1Scratch::new(n);
        oselm_p_update(&mut p, &h, &mut scratch).unwrap();

        let mut gram = Matrix::identity(n);
        gram.add_outer(1.0, &h, &h).unwrap();
        let direct = solve::inverse(&gram).unwrap();
        prop_assert!(p.approx_eq(&direct, 1e-3));
    }

    #[test]
    fn dot_commutative_and_linear(x in vec_of(8), y in vec_of(8), s in -3.0f32..3.0) {
        let s = s as Real;
        prop_assert!((vector::dot(&x, &y) - vector::dot(&y, &x)).abs() < 1e-3);
        let sx: Vec<Real> = x.iter().map(|&v| v * s).collect();
        prop_assert!((vector::dot(&sx, &y) - s * vector::dot(&x, &y)).abs() < 2e-2);
    }

    #[test]
    fn triangle_inequality_l1_l2(x in vec_of(6), y in vec_of(6), z in vec_of(6)) {
        prop_assert!(vector::dist_l1(&x, &z) <= vector::dist_l1(&x, &y) + vector::dist_l1(&y, &z) + 1e-3);
        prop_assert!(vector::dist_l2(&x, &z) <= vector::dist_l2(&x, &y) + vector::dist_l2(&y, &z) + 1e-3);
    }

    #[test]
    fn distances_are_symmetric_and_zero_on_self(x in vec_of(6), y in vec_of(6)) {
        prop_assert!((vector::dist_l1(&x, &y) - vector::dist_l1(&y, &x)).abs() < 1e-4);
        prop_assert_eq!(vector::dist_l1(&x, &x), 0.0);
        prop_assert_eq!(vector::dist_l2_sq(&x, &x), 0.0);
    }

    #[test]
    fn running_mean_equals_batch_mean(rows in proptest::collection::vec(vec_of(3), 1..40)) {
        let mut c = vec![0.0; 3];
        for (n, x) in rows.iter().enumerate() {
            vector::running_mean_update(&mut c, n as u64, x);
        }
        for d in 0..3 {
            let batch: Real = rows.iter().map(|r| r[d]).sum::<Real>() / rows.len() as Real;
            prop_assert!((c[d] - batch).abs() < 1e-2, "dim {d}: seq {} vs batch {}", c[d], batch);
        }
    }

    #[test]
    fn welford_matches_two_pass(xs in proptest::collection::vec(-100.0f32..100.0, 2..200)) {
        let mut w = stats::Welford::new();
        for &x in &xs { w.push(x as Real); }
        let n = xs.len() as f64;
        let mean: f64 = xs.iter().map(|&x| x as f64).sum::<f64>() / n;
        let var: f64 = xs.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((w.mean() as f64 - mean).abs() < 1e-2);
        prop_assert!((w.variance() as f64 - var).abs() / (var + 1.0) < 1e-2);
    }

    #[test]
    fn quantile_is_monotone(xs in proptest::collection::vec(-100.0f32..100.0, 1..60), q1 in 0.0f32..1.0, q2 in 0.0f32..1.0) {
        let xs: Vec<Real> = xs.into_iter().map(|x| x as Real).collect();
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(stats::quantile(&xs, lo as Real) <= stats::quantile(&xs, hi as Real) + 1e-4);
    }

    #[test]
    fn argmin_returns_minimum(xs in proptest::collection::vec(-100.0f32..100.0, 1..50)) {
        let xs: Vec<Real> = xs.into_iter().map(|x| x as Real).collect();
        let i = vector::argmin(&xs).unwrap();
        for &x in &xs { prop_assert!(xs[i] <= x); }
    }

    #[test]
    fn rng_below_is_in_range(seed in any::<u64>(), n in 1u64..1000) {
        let mut rng = seqdrift_linalg::Rng::seed_from(seed);
        for _ in 0..50 {
            prop_assert!(rng.below(n) < n);
        }
    }
}
