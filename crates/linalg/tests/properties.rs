//! Property-based tests for the linear-algebra substrate.
//!
//! These check algebraic identities over randomly generated inputs rather
//! than hand-picked cases: associativity/compatibility of the kernels,
//! inverse correctness, Sherman–Morrison vs direct inversion, and
//! statistical accumulator invariants. Cases are driven by the in-repo
//! seeded [`Rng`] (the workspace builds offline, so there is no proptest);
//! every failure reproduces from the printed case seed.

use seqdrift_linalg::{
    sherman::{oselm_p_update, Rank1Scratch},
    solve, stats, vector, Matrix, Real, Rng,
};

const CASES: u64 = 64;

/// Run `f` once per case with a distinct, reproducible RNG.
fn for_cases(f: impl Fn(&mut Rng)) {
    for case in 0..CASES {
        let mut rng = Rng::seed_from(0x11AA ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        f(&mut rng);
    }
}

/// A well-scaled random vector of the given length.
fn rand_vec(rng: &mut Rng, len: usize) -> Vec<Real> {
    let mut v = vec![0.0; len];
    rng.fill_uniform(&mut v, -10.0, 10.0);
    v
}

/// A small random matrix (1..6 x 1..6).
fn small_matrix(rng: &mut Rng) -> Matrix {
    let r = 1 + rng.below(5) as usize;
    let c = 1 + rng.below(5) as usize;
    Matrix::from_vec(r, c, rand_vec(rng, r * c)).unwrap()
}

/// A diagonally dominant (hence invertible) square matrix.
fn invertible_matrix(rng: &mut Rng) -> Matrix {
    let n = 2 + rng.below(4) as usize;
    let mut m = Matrix::from_vec(n, n, rand_vec(rng, n * n)).unwrap();
    for i in 0..n {
        let row_sum: Real = m.row(i).iter().map(|x| x.abs()).sum();
        m.set(i, i, row_sum + 1.0);
    }
    m
}

#[test]
fn transpose_is_involution() {
    for_cases(|rng| {
        let a = small_matrix(rng);
        assert_eq!(a.transpose().transpose(), a);
    });
}

#[test]
fn matmul_identity_left_right() {
    for_cases(|rng| {
        let a = small_matrix(rng);
        let il = Matrix::identity(a.rows());
        let ir = Matrix::identity(a.cols());
        assert!(il.matmul(&a).unwrap().approx_eq(&a, 1e-4));
        assert!(a.matmul(&ir).unwrap().approx_eq(&a, 1e-4));
    });
}

#[test]
fn matmul_transpose_identity() {
    // (A B)ᵀ = Bᵀ Aᵀ for a random compatible B.
    for_cases(|rng| {
        let a = small_matrix(rng);
        let mut b = Matrix::zeros(a.cols(), 3);
        for i in 0..b.rows() {
            for j in 0..b.cols() {
                b.set(i, j, rng.uniform_range(-5.0, 5.0));
            }
        }
        let ab_t = a.matmul(&b).unwrap().transpose();
        let bt_at = b.transpose().matmul(&a.transpose()).unwrap();
        assert!(ab_t.approx_eq(&bt_at, 1e-3));
    });
}

#[test]
fn tr_matmul_matches_explicit() {
    for_cases(|rng| {
        let a = small_matrix(rng);
        let mut b = Matrix::zeros(a.rows(), 4);
        for i in 0..b.rows() {
            for j in 0..b.cols() {
                b.set(i, j, rng.uniform_range(-5.0, 5.0));
            }
        }
        let mut out = Matrix::zeros(a.cols(), 4);
        a.tr_matmul_into(&b, &mut out).unwrap();
        let expect = a.transpose().matmul(&b).unwrap();
        assert!(out.approx_eq(&expect, 1e-3));
    });
}

#[test]
fn matvec_is_matmul_column() {
    for_cases(|rng| {
        let a = small_matrix(rng);
        let mut v = vec![0.0; a.cols()];
        rng.fill_uniform(&mut v, -5.0, 5.0);
        let got = a.matvec(&v).unwrap();
        let expect = a.matmul(&Matrix::col_vector(&v)).unwrap();
        for (i, &g) in got.iter().enumerate() {
            assert!((g - expect.get(i, 0)).abs() < 1e-3);
        }
    });
}

#[test]
fn inverse_roundtrip() {
    for_cases(|rng| {
        let a = invertible_matrix(rng);
        let inv = solve::inverse(&a).unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(a.rows()), 1e-2));
    });
}

#[test]
fn solve_satisfies_system() {
    for_cases(|rng| {
        let a = invertible_matrix(rng);
        let mut b = vec![0.0; a.rows()];
        rng.fill_uniform(&mut b, -5.0, 5.0);
        let x = solve::solve(&a, &b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (got, want) in ax.iter().zip(b.iter()) {
            assert!((got - want).abs() < 1e-2, "Ax = {got}, b = {want}");
        }
    });
}

#[test]
fn sherman_morrison_tracks_direct_inverse() {
    for_cases(|rng| {
        let n = 2 + rng.below(4) as usize;
        let mut h = vec![0.0; n];
        rng.fill_uniform(&mut h, -1.0, 1.0);

        // P must start as the inverse of an SPD matrix for the OS-ELM kernel;
        // use A = I for a clean start, then add h hᵀ.
        let mut p = Matrix::identity(n);
        let mut scratch = Rank1Scratch::new(n);
        oselm_p_update(&mut p, &h, &mut scratch).unwrap();

        let mut gram = Matrix::identity(n);
        gram.add_outer(1.0, &h, &h).unwrap();
        let direct = solve::inverse(&gram).unwrap();
        assert!(p.approx_eq(&direct, 1e-3));
    });
}

#[test]
fn dot_commutative_and_linear() {
    for_cases(|rng| {
        let x = rand_vec(rng, 8);
        let y = rand_vec(rng, 8);
        let s = rng.uniform_range(-3.0, 3.0);
        assert!((vector::dot(&x, &y) - vector::dot(&y, &x)).abs() < 1e-3);
        let sx: Vec<Real> = x.iter().map(|&v| v * s).collect();
        assert!((vector::dot(&sx, &y) - s * vector::dot(&x, &y)).abs() < 2e-2);
    });
}

#[test]
fn triangle_inequality_l1_l2() {
    for_cases(|rng| {
        let x = rand_vec(rng, 6);
        let y = rand_vec(rng, 6);
        let z = rand_vec(rng, 6);
        assert!(
            vector::dist_l1(&x, &z) <= vector::dist_l1(&x, &y) + vector::dist_l1(&y, &z) + 1e-3
        );
        assert!(
            vector::dist_l2(&x, &z) <= vector::dist_l2(&x, &y) + vector::dist_l2(&y, &z) + 1e-3
        );
    });
}

#[test]
fn distances_are_symmetric_and_zero_on_self() {
    for_cases(|rng| {
        let x = rand_vec(rng, 6);
        let y = rand_vec(rng, 6);
        assert!((vector::dist_l1(&x, &y) - vector::dist_l1(&y, &x)).abs() < 1e-4);
        assert_eq!(vector::dist_l1(&x, &x), 0.0);
        assert_eq!(vector::dist_l2_sq(&x, &x), 0.0);
    });
}

#[test]
fn running_mean_equals_batch_mean() {
    for_cases(|rng| {
        let n = 1 + rng.below(39) as usize;
        let rows: Vec<Vec<Real>> = (0..n).map(|_| rand_vec(rng, 3)).collect();
        let mut c = vec![0.0; 3];
        for (i, x) in rows.iter().enumerate() {
            vector::running_mean_update(&mut c, i as u64, x);
        }
        for d in 0..3 {
            let batch: Real = rows.iter().map(|r| r[d]).sum::<Real>() / rows.len() as Real;
            assert!(
                (c[d] - batch).abs() < 1e-2,
                "dim {d}: seq {} vs batch {}",
                c[d],
                batch
            );
        }
    });
}

#[test]
fn welford_matches_two_pass() {
    for_cases(|rng| {
        let n = 2 + rng.below(198) as usize;
        let mut xs = vec![0.0; n];
        rng.fill_uniform(&mut xs, -100.0, 100.0);
        let mut w = stats::Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let n = xs.len() as f64;
        let mean: f64 = xs.iter().map(|&x| x as f64).sum::<f64>() / n;
        let var: f64 = xs.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / n;
        assert!((w.mean() as f64 - mean).abs() < 1e-2);
        assert!((w.variance() as f64 - var).abs() / (var + 1.0) < 1e-2);
    });
}

#[test]
fn quantile_is_monotone() {
    for_cases(|rng| {
        let n = 1 + rng.below(59) as usize;
        let mut xs = vec![0.0; n];
        rng.fill_uniform(&mut xs, -100.0, 100.0);
        let q1 = rng.uniform();
        let q2 = rng.uniform();
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        assert!(stats::quantile(&xs, lo) <= stats::quantile(&xs, hi) + 1e-4);
    });
}

#[test]
fn argmin_returns_minimum() {
    for_cases(|rng| {
        let n = 1 + rng.below(49) as usize;
        let mut xs = vec![0.0; n];
        rng.fill_uniform(&mut xs, -100.0, 100.0);
        let i = vector::argmin(&xs).unwrap();
        for &x in &xs {
            assert!(xs[i] <= x);
        }
    });
}

#[test]
fn rng_below_is_in_range() {
    for_cases(|rng| {
        let seed = rng.below(u64::MAX);
        let n = 1 + rng.below(999);
        let mut inner = Rng::seed_from(seed);
        for _ in 0..50 {
            assert!(inner.below(n) < n);
        }
    });
}
