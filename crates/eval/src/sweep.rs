//! Thread-parallel parameter sweeps.
//!
//! Every (method-spec, dataset, seed) run is independent, so sweeps fan
//! out over scoped std threads via [`crate::par::par_map`]. The algorithms
//! under test stay strictly sequential inside each run; only the
//! *experiment grid* parallelises.

use crate::methods::MethodSpec;
use crate::par::par_map;
use crate::runner::{run_method, RunOptions, RunResult};
use seqdrift_datasets::DriftDataset;

/// One sweep cell: a method on a dataset with a seed.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Method to run.
    pub spec: MethodSpec,
    /// Index into the dataset list.
    pub dataset_idx: usize,
    /// Seed for this run.
    pub seed: u64,
}

/// Runs all cells in parallel; results come back in cell order.
pub fn run_sweep(
    cells: &[SweepCell],
    datasets: &[DriftDataset],
    base_opts: &RunOptions,
) -> Vec<RunResult> {
    par_map(cells, |cell| {
        let opts = RunOptions {
            seed: cell.seed,
            ..base_opts.clone()
        };
        run_method(&cell.spec, &datasets[cell.dataset_idx], &opts)
    })
}

/// Convenience grid builder: every spec x every dataset x every seed.
pub fn grid(specs: &[MethodSpec], n_datasets: usize, seeds: &[u64]) -> Vec<SweepCell> {
    let mut cells = Vec::with_capacity(specs.len() * n_datasets * seeds.len());
    for spec in specs {
        for d in 0..n_datasets {
            for &seed in seeds {
                cells.push(SweepCell {
                    spec: spec.clone(),
                    dataset_idx: d,
                    seed,
                });
            }
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdrift_datasets::nslkdd::{self, NslKddConfig};

    #[test]
    fn grid_enumerates_cross_product() {
        let specs = vec![
            MethodSpec::BaselineNoDetect,
            MethodSpec::Proposed { window: 10 },
        ];
        let cells = grid(&specs, 3, &[1, 2]);
        assert_eq!(cells.len(), 2 * 3 * 2);
        assert_eq!(cells[0].dataset_idx, 0);
        assert_eq!(cells[0].seed, 1);
    }

    #[test]
    fn parallel_results_in_cell_order_and_deterministic() {
        let d = nslkdd::generate(&NslKddConfig {
            n_train: 150,
            n_test: 300,
            drift_point: 150,
            ..NslKddConfig::default()
        });
        let specs = vec![MethodSpec::BaselineNoDetect];
        let cells = grid(&specs, 1, &[1, 2, 3, 4]);
        let opts = RunOptions {
            hidden: 8,
            ..RunOptions::default()
        };
        let a = run_sweep(&cells, std::slice::from_ref(&d), &opts);
        let b = run_sweep(&cells, std::slice::from_ref(&d), &opts);
        assert_eq!(a.len(), 4);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.accuracy, y.accuracy, "non-deterministic sweep result");
        }
        // Different seeds genuinely differ (different random weights).
        assert!(a.windows(2).any(|w| w[0].accuracy != w[1].accuracy) || a.len() < 2);
    }
}
