//! Table rendering: markdown for the console / EXPERIMENTS.md, CSV for
//! downstream plotting.

/// A simple column-aligned table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Table title (printed above).
    pub title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("### {}\n\n", self.title));
        }
        let widths: Vec<usize> = (0..self.header.len())
            .map(|c| {
                self.rows
                    .iter()
                    .map(|r| r[c].len())
                    .chain([self.header[c].len()])
                    .max()
                    .unwrap_or(1)
            })
            .collect();
        let render_row = |cells: &[String]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .zip(widths.iter())
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |\n", padded.join(" | "))
        };
        out.push_str(&render_row(&self.header));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("|-{}-|\n", sep.join("-|-")));
        for r in &self.rows {
            out.push_str(&render_row(r));
        }
        out
    }

    /// Renders CSV (quoted only when needed).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes markdown + CSV into `dir` as `<stem>.md` / `<stem>.csv`.
    pub fn write_to(&self, dir: &std::path::Path, stem: &str) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{stem}.md")), self.to_markdown())?;
        std::fs::write(dir.join(format!("{stem}.csv")), self.to_csv())?;
        Ok(())
    }
}

/// Formats an optional delay ("-" when never detected, like Table 3).
pub fn fmt_delay(delay: Option<usize>) -> String {
    match delay {
        Some(d) => d.to_string(),
        None => "-".to_string(),
    }
}

/// Formats a fraction as a percentage with one decimal (Table 2 style).
pub fn fmt_pct(frac: f64) -> String {
    format!("{:.1}", frac * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.push_row(vec!["alpha".into(), "1".into()]);
        t.push_row(vec!["b".into(), "22".into()]);
        t
    }

    #[test]
    fn markdown_shape() {
        let md = sample().to_markdown();
        assert!(md.starts_with("### Demo"));
        assert!(md.contains("| name  | value |"));
        assert!(md.contains("| alpha | 1     |"));
        assert_eq!(md.matches('\n').count(), 6);
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("", &["a", "b"]);
        t.push_row(vec!["plain".into(), "with,comma".into()]);
        t.push_row(vec!["with\"quote".into(), "x".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"with,comma\""));
        assert!(csv.contains("\"with\"\"quote\""));
        assert!(csv.starts_with("a,b\n"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn write_to_disk() {
        let dir = std::env::temp_dir().join("seqdrift-report-test");
        sample().write_to(&dir, "demo").unwrap();
        let md = std::fs::read_to_string(dir.join("demo.md")).unwrap();
        assert!(md.contains("alpha"));
        let csv = std::fs::read_to_string(dir.join("demo.csv")).unwrap();
        assert!(csv.contains("alpha,1"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_delay(Some(42)), "42");
        assert_eq!(fmt_delay(None), "-");
        assert_eq!(fmt_pct(0.968), "96.8");
    }
}
