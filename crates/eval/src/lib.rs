#![warn(missing_docs)]

//! # seqdrift-eval
//!
//! The evaluation harness that regenerates every table and figure of the
//! paper (and the extension ablations). See DESIGN.md §4 for the
//! experiment index.
//!
//! * [`methods`] — the five method combinations of §4.2 behind one
//!   [`methods::OnlineMethod`] interface: proposed pipeline, no-detection
//!   baseline, Quant Tree + OS-ELM, SPLL + OS-ELM, and ONLAD;
//! * [`runner`] — drives a method over a [`seqdrift_datasets::DriftDataset`]
//!   and collects accuracy series, detections, delays and wall time;
//! * [`metrics`] — windowed/overall accuracy (with label-permutation
//!   tolerance after unsupervised reconstruction), detection delay, false
//!   positives;
//! * [`sweep`] — thread-parallel parameter sweeps (windows x scenarios x
//!   seeds);
//! * [`report`] — markdown / CSV rendering of result tables;
//! * [`scenario`] — scenario-driven experiment rows: runs the method roster
//!   over the per-session streams of a declarative `.sqsc` scenario file
//!   (`cargo run --release -p seqdrift-eval --bin repro -- --scenario f.sqsc`);
//! * [`experiments`] — one module per paper artefact (fig1, fig4,
//!   table2–table6, ablations), each runnable via the `repro` binary:
//!   `cargo run --release -p seqdrift-eval --bin repro -- table2`.

pub mod experiments;
pub mod methods;
pub mod metrics;
pub mod par;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod sweep;

pub use methods::{MethodSpec, OnlineMethod, StepOutput};
pub use runner::{run_method, RunOptions, RunResult};
