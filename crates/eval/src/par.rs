//! Minimal scoped-thread parallel map.
//!
//! The workspace builds offline with no external crates, so the experiment
//! grid parallelism that used to come from rayon is provided by this one
//! function: each worker takes a contiguous block of the input and fills
//! disjoint output slots, so results come back in input order without any
//! locking and independent of the worker count.

/// Applies `f` to every item across scoped threads; results are returned in
/// input order. Falls back to a single worker when the host reports no
/// parallelism.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(items.len().max(1));
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let f = &f;
    std::thread::scope(|s| {
        let mut rest: &mut [Option<R>] = &mut out;
        let mut offset = 0;
        for w in 0..workers {
            // Contiguous block per worker; sizes differ by at most one.
            let len = (items.len() - offset) / (workers - w);
            let (block, tail) = rest.split_at_mut(len);
            rest = tail;
            let start = offset;
            offset += len;
            s.spawn(move || {
                for (i, slot) in block.iter_mut().enumerate() {
                    *slot = Some(f(&items[start + i]));
                }
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("worker filled slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_covers_all() {
        let xs: Vec<usize> = (0..103).collect();
        let ys = par_map(&xs, |&x| x * 2);
        assert_eq!(ys.len(), xs.len());
        for (i, y) in ys.iter().enumerate() {
            assert_eq!(*y, i * 2);
        }
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }
}
