//! Drives one method over one dataset and collects everything the paper's
//! tables report.

use crate::methods::{MethodSpec, OnlineMethod};
use crate::metrics;
use seqdrift_datasets::DriftDataset;
use std::time::{Duration, Instant};

/// Options for a run.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// OS-ELM hidden width (paper: 22).
    pub hidden: usize,
    /// Seed for model init / detector randomness.
    pub seed: u64,
    /// Bucket size of the accuracy series (Figure 4 granularity).
    pub accuracy_window: usize,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            hidden: 22,
            seed: 42,
            accuracy_window: 500,
        }
    }
}

/// Everything measured in one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Method display name.
    pub method: String,
    /// Dataset name.
    pub dataset: String,
    /// Overall accuracy in `[0, 1]` (permutation-tolerant per retraining
    /// epoch; see `metrics`).
    pub accuracy: f64,
    /// Windowed accuracy series `(stream_index, accuracy)`.
    pub accuracy_series: Vec<(usize, f64)>,
    /// Stream indices where drift was flagged.
    pub detections: Vec<usize>,
    /// Delay from true onset to first at-or-after detection.
    pub delay: Option<usize>,
    /// Detections before the true onset.
    pub false_positives: usize,
    /// Wall-clock time spent inside `process` calls (excludes setup).
    pub exec_time: Duration,
    /// Detector memory in scalars (Table 4 input).
    pub detector_memory_scalars: usize,
    /// Test-stream length.
    pub samples: usize,
}

impl RunResult {
    /// Accuracy as a percentage (Table 2's unit).
    pub fn accuracy_pct(&self) -> f64 {
        self.accuracy * 100.0
    }
}

/// Builds the method on the dataset and streams the full test split.
pub fn run_method(spec: &MethodSpec, dataset: &DriftDataset, opts: &RunOptions) -> RunResult {
    let mut method = spec.build(dataset, opts.hidden, opts.seed);
    run_prebuilt(&mut *method, dataset, opts)
}

/// Runs an already-built method over the dataset's test stream.
pub fn run_prebuilt(
    method: &mut dyn OnlineMethod,
    dataset: &DriftDataset,
    opts: &RunOptions,
) -> RunResult {
    let mut truth = Vec::with_capacity(dataset.test.len());
    let mut predicted = Vec::with_capacity(dataset.test.len());
    let mut detections = Vec::new();

    let start = Instant::now();
    for (i, s) in dataset.test.iter().enumerate() {
        let out = method.process(&s.x);
        truth.push(s.label);
        predicted.push(out.predicted_label);
        if out.drift_detected {
            detections.push(i);
        }
    }
    let exec_time = start.elapsed();

    let retraining = method.retraining_points().to_vec();
    let accuracy =
        metrics::epoch_permutation_accuracy(&truth, &predicted, dataset.classes, &retraining);
    let accuracy_series =
        metrics::windowed_accuracy(&truth, &predicted, dataset.classes, opts.accuracy_window);

    RunResult {
        method: method.name().to_string(),
        dataset: dataset.name.clone(),
        accuracy,
        accuracy_series,
        delay: metrics::detection_delay(&detections, dataset.drift_start),
        false_positives: metrics::false_positives(&detections, dataset.drift_start),
        detections,
        exec_time,
        detector_memory_scalars: method.detector_memory_scalars(),
        samples: dataset.test.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdrift_datasets::nslkdd::{self, NslKddConfig};

    fn tiny() -> DriftDataset {
        nslkdd::generate(&NslKddConfig {
            n_train: 200,
            n_test: 800,
            drift_point: 400,
            ..NslKddConfig::default()
        })
    }

    #[test]
    fn baseline_run_collects_everything() {
        let d = tiny();
        let r = run_method(
            &MethodSpec::BaselineNoDetect,
            &d,
            &RunOptions {
                hidden: 10,
                seed: 1,
                accuracy_window: 200,
            },
        );
        assert_eq!(r.samples, 800);
        assert_eq!(r.accuracy_series.len(), 4);
        assert!(r.detections.is_empty());
        assert_eq!(r.delay, None);
        assert!(r.accuracy > 0.3 && r.accuracy <= 1.0);
        assert!(r.exec_time.as_nanos() > 0);
    }

    #[test]
    fn baseline_accuracy_drops_after_drift() {
        let d = tiny();
        let r = run_method(
            &MethodSpec::BaselineNoDetect,
            &d,
            &RunOptions {
                hidden: 16,
                seed: 2,
                accuracy_window: 200,
            },
        );
        // Pre-drift buckets (first 2) should beat post-drift buckets
        // (last 2) for a frozen model on the evading-attack stream.
        let pre = (r.accuracy_series[0].1 + r.accuracy_series[1].1) / 2.0;
        let post = (r.accuracy_series[2].1 + r.accuracy_series[3].1) / 2.0;
        assert!(
            pre > post + 0.1,
            "pre {pre:.3} vs post {post:.3}: drift did not degrade the frozen model"
        );
        assert!(pre > 0.9, "pre-drift accuracy only {pre:.3}");
    }

    #[test]
    fn proposed_detects_and_beats_baseline() {
        let d = nslkdd::generate(&NslKddConfig {
            n_train: 400,
            n_test: 4000,
            drift_point: 1000,
            ..NslKddConfig::default()
        });
        let opts = RunOptions {
            hidden: 16,
            seed: 3,
            accuracy_window: 500,
        };
        let baseline = run_method(&MethodSpec::BaselineNoDetect, &d, &opts);
        let proposed = run_method(&MethodSpec::Proposed { window: 100 }, &d, &opts);
        assert!(
            proposed.delay.is_some(),
            "proposed never detected the drift"
        );
        assert!(
            proposed.accuracy > baseline.accuracy,
            "proposed {:.3} <= baseline {:.3}",
            proposed.accuracy,
            baseline.accuracy
        );
    }
}
