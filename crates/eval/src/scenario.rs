//! Scenario-driven experiment rows: run the method roster over the
//! per-session streams of a declarative `.sqsc` scenario.
//!
//! Every consumer of a scenario sees bit-identical streams (the player
//! derives them purely from the scenario seed), so a row produced here is
//! directly comparable with a `seqdrift fleet --scenario` run of the same
//! file: same samples, same order, same drift schedule per session.

use std::path::Path;

use crate::methods::MethodSpec;
use crate::report::{fmt_delay, Table};
use crate::runner::{run_method, RunOptions};
use seqdrift_scenario::ScenarioPlayer;

/// The default method roster for scenario tables: the paper's five methods
/// plus the AR(p)-residual extension baseline, with batch sizes scaled to
/// the scenario's stream length.
pub fn default_methods(samples: usize) -> Vec<MethodSpec> {
    let batch = (samples / 6).clamp(24, 480);
    vec![
        MethodSpec::Proposed { window: 100 },
        MethodSpec::BaselineNoDetect,
        MethodSpec::QuantTree { batch, bins: 16 },
        MethodSpec::Spll { batch },
        MethodSpec::Onlad { forgetting: 0.97 },
        MethodSpec::ArResidual {
            order: 3,
            window: batch.max(100),
        },
    ]
}

/// Runs `specs` over every *hot* session of the scenario and returns one
/// row per (session, method). Recorded scenarios carry no ground-truth
/// labels and are rejected.
pub fn run_scenario(
    player: &ScenarioPlayer,
    specs: &[MethodSpec],
    opts: &RunOptions,
) -> Result<Table, String> {
    let spec = player
        .scenario()
        .synthetic()
        .map_err(|e| e.to_string())?
        .clone();
    let mut table = Table::new(
        format!(
            "Scenario '{}': {} drift, {} session(s), stagger {}",
            player.name(),
            spec.drift.kind.keyword(),
            spec.sessions,
            spec.stagger
        ),
        &[
            "Session",
            "Method",
            "Accuracy (%)",
            "Detections",
            "Delay",
            "FP",
            "Detector memory (scalars)",
        ],
    );
    for session in player.sessions() {
        if player.stream_len(session) == 0 {
            continue; // idle session under the traffic mix
        }
        let dataset = player.dataset(session).map_err(|e| e.to_string())?;
        for m in specs {
            let r = run_method(m, &dataset, opts);
            table.push_row(vec![
                session.to_string(),
                r.method.clone(),
                format!("{:.1}", r.accuracy_pct()),
                r.detections.len().to_string(),
                fmt_delay(r.delay),
                r.false_positives.to_string(),
                r.detector_memory_scalars.to_string(),
            ]);
        }
    }
    if table.is_empty() {
        return Err(format!(
            "scenario '{}' has no hot sessions to evaluate",
            player.name()
        ));
    }
    Ok(table)
}

/// Convenience wrapper: load a `.sqsc` file and run the default roster.
pub fn run_scenario_file(path: &Path, opts: &RunOptions) -> Result<Table, String> {
    let player = ScenarioPlayer::from_file(path).map_err(|e| e.to_string())?;
    let samples = player
        .sessions()
        .iter()
        .map(|&s| player.stream_len(s))
        .max()
        .unwrap_or(0);
    let specs = default_methods(samples);
    run_scenario(&player, &specs, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdrift_scenario::Scenario;

    fn player() -> ScenarioPlayer {
        let text = "sqsc 1\nname eval-demo\nkind synthetic\nseed 5\nsessions 2\ndim 6\nclasses 2\ntrain 80\nsamples 400\nnoise 0.05\ndrift sudden start 150 magnitude 1.0\nstagger 50\ntraffic hot 1 idle 0\n";
        ScenarioPlayer::new(Scenario::parse(text).unwrap(), None).unwrap()
    }

    #[test]
    fn scenario_rows_cover_hot_sessions_and_methods() {
        let p = player();
        let specs = [
            MethodSpec::BaselineNoDetect,
            MethodSpec::Proposed { window: 60 },
        ];
        let opts = RunOptions {
            hidden: 10,
            seed: 9,
            accuracy_window: 200,
        };
        let t = run_scenario(&p, &specs, &opts).unwrap();
        // 1 hot session x 2 methods (session 1 is idle with 0 samples).
        assert_eq!(t.len(), 2);
        assert!(t.title.contains("eval-demo"));
    }

    #[test]
    fn scenario_rows_are_deterministic() {
        let p = player();
        let specs = [MethodSpec::BaselineNoDetect];
        let opts = RunOptions {
            hidden: 8,
            seed: 3,
            accuracy_window: 200,
        };
        let a = run_scenario(&p, &specs, &opts).unwrap();
        let b = run_scenario(&p, &specs, &opts).unwrap();
        assert_eq!(a.to_csv(), b.to_csv());
    }

    #[test]
    fn onlad_survives_rejected_forgetting_updates() {
        // Post-drift samples far from the training concepts can make the
        // forgetting-factor OS-ELM update reject transactionally; the
        // method must keep serving predictions instead of panicking.
        let text = "sqsc 1\nname onlad-reject\nkind synthetic\nseed 42\nsessions 1\ndim 6\nclasses 2\ntrain 40\nsamples 400\ndrift sudden start 80 magnitude 0.8\n";
        let p = ScenarioPlayer::new(Scenario::parse(text).unwrap(), None).unwrap();
        let specs = [MethodSpec::Onlad { forgetting: 0.97 }];
        let t = run_scenario(&p, &specs, &RunOptions::default()).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn default_roster_scales_batches() {
        let specs = default_methods(600);
        assert!(specs.len() >= 6);
        assert!(specs
            .iter()
            .any(|s| matches!(s, MethodSpec::ArResidual { .. })));
        if let Some(MethodSpec::QuantTree { batch, .. }) = specs
            .iter()
            .find(|s| matches!(s, MethodSpec::QuantTree { .. }))
        {
            assert_eq!(*batch, 100);
        }
    }
}
