//! Table 6 — per-sample execution-time breakdown of the proposed method.
//!
//! Measures the six operations of Algorithms 1–4 in isolation on the fan
//! configuration (511 features, 22 hidden nodes, 2 instances — the Pico
//! demo's shape), on the host, and projects onto the Pico with the edgesim
//! slowdown model. The paper's structural claims — label prediction
//! dominates; the detection-specific operations (distance computation,
//! coordinate updates) cost *less* than one prediction; retraining with
//! label prediction ≈ prediction + retraining without — are
//! projection-invariant.

use crate::report::Table;
use seqdrift_core::centroid::CentroidSet;
use seqdrift_core::DistanceMetric;
use seqdrift_edgesim::{TimingProjection, PICO};
use seqdrift_linalg::{Real, Rng};
use seqdrift_oselm::{MultiInstanceModel, OsElmConfig};
use std::time::{Duration, Instant};

/// Feature count of the fan configuration.
pub const DIM: usize = 511;
/// Hidden nodes (paper: 22).
pub const HIDDEN: usize = 22;
/// Instances (the multi-instance model of the Pico demo).
pub const CLASSES: usize = 2;

/// Times `f` over `reps` calls, returning the mean duration.
fn time_op(reps: usize, mut f: impl FnMut()) -> Duration {
    // Warm-up pass keeps first-touch page faults out of the measurement.
    f();
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed() / reps as u32
}

/// Measures the six Table 6 operations. `reps` trades precision for time
/// (tests use a small value; the repro binary a large one).
pub fn measure(reps: usize, seed: u64) -> Vec<TimingProjection> {
    let mut rng = Rng::seed_from(seed);
    // Model setup: two instances on 511-dim data.
    let mut model =
        MultiInstanceModel::new(CLASSES, OsElmConfig::new(DIM, HIDDEN).with_seed(seed)).unwrap();
    let make_blob = |mean: Real, rng: &mut Rng| -> Vec<Vec<Real>> {
        (0..60)
            .map(|_| {
                let mut x = vec![0.0; DIM];
                rng.fill_normal(&mut x, mean, 0.05);
                x
            })
            .collect()
    };
    let blob0 = make_blob(0.3, &mut rng);
    let blob1 = make_blob(0.7, &mut rng);
    model.init_train_class(0, &blob0).unwrap();
    model.init_train_class(1, &blob1).unwrap();

    let mut trained = CentroidSet::zeros(CLASSES, DIM);
    trained.set_centroid(0, &blob0[0]).unwrap();
    trained.set_centroid(1, &blob1[0]).unwrap();
    trained.set_count(0, 60);
    trained.set_count(1, 60);
    let mut test_set = trained.clone();

    let mut x = vec![0.0; DIM];
    rng.fill_normal(&mut x, 0.4, 0.1);

    let mut out = Vec::new();

    // 1. Label prediction (Algorithm 1 line 6).
    let mut m1 = model.clone();
    out.push(TimingProjection::new(
        "Label prediction",
        time_op(reps, || {
            std::hint::black_box(m1.predict(&x).unwrap());
        }),
    ));

    // 2. Distance computation (Algorithm 1 line 14) + centroid update.
    out.push(TimingProjection::new(
        "Distance computation",
        time_op(reps, || {
            test_set.update(0, &x).unwrap();
            std::hint::black_box(test_set.distance_to(&trained, DistanceMetric::L1));
        }),
    ));

    // 3. Model retraining without label prediction (Algorithm 2 lines 8–9).
    let mut m3 = model.clone();
    let cor = trained.clone();
    out.push(TimingProjection::new(
        "Model retraining without label prediction",
        time_op(reps, || {
            let label = cor.nearest_label(&x);
            m3.seq_train_label(label, &x).unwrap();
        }),
    ));

    // 4. Model retraining with label prediction (Algorithm 2 lines 11–12).
    let mut m4 = model.clone();
    out.push(TimingProjection::new(
        "Model retraining with label prediction",
        time_op(reps, || {
            let label = m4.predict(&x).unwrap().label;
            m4.seq_train_label(label, &x).unwrap();
        }),
    ));

    // 5. Label coordinates initialisation (Algorithm 3): for each class,
    // trial-replace the coordinate and evaluate the pairwise spread.
    let mut cor5 = trained.clone();
    let mut tmp = vec![0.0; DIM];
    out.push(TimingProjection::new(
        "Label coordinates initialization",
        time_op(reps, || {
            let baseline = cor5.pairwise_distance_sum();
            let mut best: Option<(usize, Real)> = None;
            for c in 0..CLASSES {
                tmp.copy_from_slice(cor5.centroid(c).unwrap());
                cor5.set_centroid(c, &x).unwrap();
                let d = cor5.pairwise_distance_sum();
                cor5.set_centroid(c, &tmp).unwrap();
                if d > baseline && best.is_none_or(|(_, bd)| d > bd) {
                    best = Some((c, d));
                }
            }
            std::hint::black_box(best);
        }),
    ));

    // 6. Label coordinates update (Algorithm 4).
    let mut cor6 = trained.clone();
    out.push(TimingProjection::new(
        "Label coordinates update",
        time_op(reps, || {
            let label = cor6.nearest_label(&x);
            cor6.update(label, &x).unwrap();
        }),
    ));

    out
}

/// Builds Table 6 with both projection models: the wall-clock slowdown
/// (every op scaled identically) and the analytic flop model (each op
/// scaled by its own arithmetic — closer to how an FPU-less MCU actually
/// reweights the rows; see `seqdrift_edgesim::flops`).
pub fn run(_scale: super::Scale) -> Vec<Table> {
    use seqdrift_edgesim::flops::TABLE6_OPS;
    let reps = 200;
    let measurements = measure(reps, 42);
    let mut t = Table::new(
        "Table 6: execution time breakdown for 1 sample (host-measured, Pico projected)",
        &[
            "operation",
            "host (µs)",
            "Pico wall-clock model (ms)",
            "Pico flop model (ms)",
        ],
    );
    for (m, op) in measurements.iter().zip(TABLE6_OPS.iter()) {
        debug_assert_eq!(m.label, op.label());
        let flop_ms =
            seqdrift_edgesim::project_op(*op, CLASSES as u64, DIM as u64, HIDDEN as u64, &PICO)
                .as_secs_f64()
                * 1e3;
        t.push_row(vec![
            m.label.clone(),
            format!("{:.1}", m.host.as_secs_f64() * 1e6),
            format!("{:.2}", m.on_ms(&PICO)),
            format!("{flop_ms:.2}"),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn med(reps: usize) -> Vec<TimingProjection> {
        measure(reps, 7)
    }

    #[test]
    fn six_operations_measured() {
        let m = med(10);
        assert_eq!(m.len(), 6);
        for t in &m {
            assert!(t.host.as_nanos() > 0, "{} measured as zero", t.label);
        }
    }

    #[test]
    fn detection_ops_cheaper_than_prediction() {
        // The paper's headline for Table 6: "the additional computation
        // time for the concept drift detection is less than the label
        // prediction time". Median of 3 to de-noise.
        let mut ratios_dist = Vec::new();
        let mut ratios_upd = Vec::new();
        for _ in 0..3 {
            let m = med(30);
            let get = |needle: &str| -> f64 {
                m.iter()
                    .find(|t| t.label.contains(needle))
                    .unwrap()
                    .host
                    .as_secs_f64()
            };
            let pred = get("Label prediction");
            ratios_dist.push(get("Distance computation") / pred);
            ratios_upd.push(get("coordinates update") / pred);
        }
        ratios_dist.sort_by(|a, b| a.partial_cmp(b).unwrap());
        ratios_upd.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(
            ratios_dist[1] < 1.0,
            "distance computation {}x of prediction",
            ratios_dist[1]
        );
        assert!(
            ratios_upd[1] < 1.0,
            "coordinate update {}x of prediction",
            ratios_upd[1]
        );
    }

    #[test]
    fn retraining_with_prediction_costs_more_than_without() {
        let mut ratios = Vec::new();
        for _ in 0..3 {
            let m = med(30);
            let get = |needle: &str| -> f64 {
                m.iter()
                    .find(|t| t.label.contains(needle))
                    .unwrap()
                    .host
                    .as_secs_f64()
            };
            ratios.push(get("with label prediction") / get("without label prediction"));
        }
        ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(
            ratios[1] > 1.0,
            "with-prediction retraining not slower: {}x",
            ratios[1]
        );
    }

    #[test]
    fn table_renders() {
        let tables = run(super::super::Scale::Quick);
        assert_eq!(tables[0].len(), 6);
    }
}
