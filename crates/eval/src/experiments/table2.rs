//! Table 2 — accuracy (%) and detection delay on NSL-KDD.
//!
//! Seven rows: Quant Tree, SPLL, baseline, ONLAD, and the proposed method
//! at window sizes 100 / 250 / 1000.

use super::{nslkdd_dataset, nslkdd_params as p, scaled_batch, Scale};
use crate::methods::MethodSpec;
use crate::report::{fmt_delay, Table};
use crate::runner::{run_method, RunOptions, RunResult};

/// Method rows in the paper's order.
pub fn method_specs(scale: Scale) -> Vec<MethodSpec> {
    let windows: &[usize] = match scale {
        Scale::Full => &[100, 250, 1000],
        Scale::Quick => &[100, 250, 500],
    };
    let mut specs = vec![
        MethodSpec::QuantTree {
            batch: scaled_batch(scale, p::QT_BATCH),
            bins: p::QT_BINS,
        },
        MethodSpec::Spll {
            batch: scaled_batch(scale, p::SPLL_BATCH),
        },
        MethodSpec::BaselineNoDetect,
        MethodSpec::Onlad {
            forgetting: p::ONLAD_FORGET,
        },
    ];
    specs.extend(windows.iter().map(|&w| MethodSpec::Proposed { window: w }));
    specs
}

/// Runs all rows in parallel.
pub fn run_all(scale: Scale, seed: u64) -> Vec<RunResult> {
    let dataset = nslkdd_dataset(scale);
    let opts = RunOptions {
        hidden: p::HIDDEN,
        seed,
        accuracy_window: 500,
    };
    crate::par::par_map(&method_specs(scale), |spec| {
        run_method(spec, &dataset, &opts)
    })
}

/// Builds Table 2.
pub fn run(scale: Scale) -> Vec<Table> {
    let results = run_all(scale, 42);
    let mut t = Table::new(
        "Table 2: accuracy (%) and delay for detecting concept drift on NSL-KDD",
        &["method", "accuracy (%)", "delay"],
    );
    for r in &results {
        t.push_row(vec![
            r.method.clone(),
            format!("{:.1}", r.accuracy_pct()),
            fmt_delay(r.delay),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_reproduces_table_shape() {
        let results = run_all(Scale::Quick, 11);
        let find = |needle: &str| -> &RunResult {
            results.iter().find(|r| r.method.contains(needle)).unwrap()
        };
        let qt = find("Quant Tree");
        let spll = find("SPLL");
        let baseline = find("Baseline");
        let w100 = find("Window size = 100");
        let w250 = find("Window size = 250");

        // Batch methods detect (their delay is bounded by batch size
        // granularity) and beat the baseline.
        assert!(qt.delay.is_some(), "quant tree never detected");
        assert!(spll.delay.is_some(), "spll never detected");
        assert!(w100.delay.is_some(), "proposed w=100 never detected");
        assert!(w250.delay.is_some(), "proposed w=250 never detected");

        // Paper shape: the proposed method needs more samples than the
        // batch methods but massively improves on no detection at all.
        let d_qt = qt.delay.unwrap();
        let d_w100 = w100.delay.unwrap();
        assert!(
            d_w100 >= d_qt,
            "proposed ({d_w100}) detected faster than quant tree ({d_qt}) — possible but \
             contradicts the paper's shape"
        );
        assert!(w100.accuracy > baseline.accuracy + 0.03);
        // Proposed stays within a few points of the batch detectors.
        assert!(
            qt.accuracy - w100.accuracy < 0.15,
            "qt {:.3} vs proposed {:.3}",
            qt.accuracy,
            w100.accuracy
        );
    }

    #[test]
    fn table_renders_seven_rows() {
        let tables = run(Scale::Quick);
        assert_eq!(tables[0].len(), 7);
    }
}
