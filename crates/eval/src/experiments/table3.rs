//! Table 3 — detection delay vs window size on the cooling-fan dataset.
//!
//! Proposed method only, windows {10, 50, 150}, scenarios sudden / gradual /
//! reoccurring. The paper's qualitative findings:
//!
//! 1. sudden: smaller window => shorter delay;
//! 2. gradual: too-small windows chatter, larger stabilise;
//! 3. reoccurring: the 50-sample anomaly burst is caught by W = 10/50 but
//!    *not* by W = 150 (the window closes after the old concept returned).

use super::{fan_dataset, fan_params as p, Scale};
use crate::methods::MethodSpec;
use crate::report::{fmt_delay, Table};
use crate::runner::{run_method, RunOptions, RunResult};
use seqdrift_datasets::fan::FanScenario;

/// Window sizes of the paper's Table 3.
pub const WINDOWS: [usize; 3] = [10, 50, 150];

/// Scenario column order.
pub const SCENARIOS: [FanScenario; 3] = [
    FanScenario::Sudden,
    FanScenario::Gradual,
    FanScenario::Reoccurring,
];

/// Runs the full window x scenario grid; result\[w\]\[s\] is the run for
/// `WINDOWS[w]` on `SCENARIOS[s]`.
pub fn run_grid(scale: Scale, seed: u64) -> Vec<Vec<RunResult>> {
    let datasets: Vec<_> = SCENARIOS.iter().map(|&s| fan_dataset(s, scale)).collect();
    let opts = RunOptions {
        hidden: p::HIDDEN,
        seed,
        accuracy_window: 100,
    };
    crate::par::par_map(&WINDOWS, |&w| {
        datasets
            .iter()
            .map(|d| run_method(&MethodSpec::Proposed { window: w }, d, &opts))
            .collect()
    })
}

/// Builds Table 3.
pub fn run(scale: Scale) -> Vec<Table> {
    let grid = run_grid(scale, 42);
    let mut t = Table::new(
        "Table 3: delay for detecting concept drift with different window sizes (cooling fan)",
        &["", "Sudden", "Gradual", "Reoccurring"],
    );
    for (wi, &w) in WINDOWS.iter().enumerate() {
        let mut row = vec![format!("Window size = {w}")];
        for cell in grid[wi].iter().take(SCENARIOS.len()) {
            row.push(fmt_delay(cell.delay));
        }
        t.push_row(row);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sudden_delay_grows_with_window() {
        let grid = run_grid(Scale::Quick, 5);
        let sudden: Vec<Option<usize>> = (0..3).map(|w| grid[w][0].delay).collect();
        let d10 = sudden[0].expect("W=10 must detect the sudden drift");
        let d150 = sudden[2].expect("W=150 must detect the sudden drift");
        assert!(
            d10 <= d150,
            "delay should grow with window: W=10 {d10} vs W=150 {d150}"
        );
    }

    #[test]
    fn small_windows_catch_reoccurring_burst() {
        let grid = run_grid(Scale::Quick, 5);
        let d10 = grid[0][2].delay;
        assert!(
            d10.is_some(),
            "W=10 must catch the 50-sample reoccurring burst"
        );
        // The burst lives in samples 120..170; a small window must fire
        // near it, not hundreds of samples later.
        assert!(d10.unwrap() < 200, "W=10 delay {:?}", d10);
    }

    #[test]
    fn gradual_drift_detected_by_mid_window() {
        let grid = run_grid(Scale::Quick, 5);
        let d50 = grid[1][1].delay;
        assert!(d50.is_some(), "W=50 must detect the gradual drift");
    }

    #[test]
    fn table_is_three_by_three() {
        let tables = run(Scale::Quick);
        assert_eq!(tables[0].len(), 3);
    }
}
