//! One module per paper artefact. Each returns [`crate::report::Table`]s
//! that the `repro` binary prints and writes under `results/`.
//!
//! | id | artefact | module |
//! |----|----------|--------|
//! | `fig1` | Figure 1: four drift types | [`fig1`] |
//! | `fig4` | Figure 4: accuracy over time on NSL-KDD | [`fig4`] |
//! | `table2` | Accuracy + delay on NSL-KDD | [`table2`] |
//! | `table3` | Window size vs delay on the fan dataset | [`table3`] |
//! | `table4` | Memory utilisation | [`table4`] |
//! | `table5` | Execution time, 700 fan samples | [`table5`] |
//! | `table6` | Per-sample execution breakdown | [`table6`] |
//! | `ablation-*` | extension ablations | [`ablations`] |

pub mod ablations;
pub mod fig1;
pub mod fig4;
pub mod sweep_exp;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;

use seqdrift_datasets::fan::{self, Environment, FanConfig, FanScenario};
use seqdrift_datasets::nslkdd::{self, NslKddConfig};
use seqdrift_datasets::DriftDataset;

/// Experiment scale: `Full` reproduces the paper's sample counts; `Quick`
/// shrinks streams for CI / smoke testing while keeping every code path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-scale streams (NSL-KDD: 22701 test samples).
    Full,
    /// Reduced streams for fast runs.
    Quick,
}

/// The NSL-KDD-like dataset at the requested scale.
pub fn nslkdd_dataset(scale: Scale) -> DriftDataset {
    let cfg = match scale {
        Scale::Full => NslKddConfig::default(),
        Scale::Quick => NslKddConfig {
            n_train: 400,
            n_test: 4000,
            drift_point: 1400,
            ..NslKddConfig::default()
        },
    };
    nslkdd::generate(&cfg)
}

/// A fan-scenario dataset (the fan streams are already small; scale only
/// trims the training split).
pub fn fan_dataset(scenario: FanScenario, scale: Scale) -> DriftDataset {
    // The fan streams are already Table-5-sized (700 samples); both scales
    // use the default 60-sample training split (see `FanConfig`).
    let cfg = FanConfig::default();
    let _ = scale;
    fan::generate(&cfg, scenario, Environment::Silent)
}

/// Paper hyper-parameters for NSL-KDD (§4.2): QT batch 480 / 32 bins,
/// SPLL batch 480, ONLAD forgetting 0.97, hidden 22.
pub mod nslkdd_params {
    /// Quant Tree batch size.
    pub const QT_BATCH: usize = 480;
    /// Quant Tree histogram count.
    pub const QT_BINS: usize = 32;
    /// SPLL batch size.
    pub const SPLL_BATCH: usize = 480;
    /// ONLAD forgetting rate.
    pub const ONLAD_FORGET: f32 = 0.97;
    /// OS-ELM hidden nodes.
    pub const HIDDEN: usize = 22;
}

/// Paper hyper-parameters for the fan dataset (§4.2): QT batch 235 / 16
/// bins, SPLL batch 235, ONLAD forgetting 0.99, hidden 22.
pub mod fan_params {
    /// Quant Tree batch size.
    pub const QT_BATCH: usize = 235;
    /// Quant Tree histogram count.
    pub const QT_BINS: usize = 16;
    /// SPLL batch size.
    pub const SPLL_BATCH: usize = 235;
    /// ONLAD forgetting rate.
    pub const ONLAD_FORGET: f32 = 0.99;
    /// OS-ELM hidden nodes.
    pub const HIDDEN: usize = 22;
}

/// Quick-scale NSL-KDD batch parameters: the batch detectors need several
/// batches before and after the drift to be meaningful on the shorter
/// stream.
pub fn scaled_batch(scale: Scale, full: usize) -> usize {
    match scale {
        Scale::Full => full,
        Scale::Quick => (full / 3).max(32),
    }
}
