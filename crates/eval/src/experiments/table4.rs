//! Table 4 — memory utilisation of the detectors (fan configuration:
//! batch 235 for Quant Tree / SPLL, batch 1 for the proposed method).
//!
//! Also regenerates the §5.3 feasibility claim: on the Raspberry Pi Pico's
//! 264 kB the batch detectors do not fit, the proposed one does.

use super::{fan_dataset, fan_params as p, Scale};
use crate::methods::MethodSpec;
use crate::report::Table;
use seqdrift_datasets::fan::FanScenario;
use seqdrift_edgesim::memory::MemoryFootprint;
use seqdrift_edgesim::{bytes_of_scalars, check_budget, MemoryReport, PICO};
use seqdrift_oselm::{MultiInstanceModel, OsElmConfig};

/// Computes the per-method memory reports on the fan configuration.
pub fn memory_reports(scale: Scale) -> Vec<MemoryReport> {
    let dataset = fan_dataset(FanScenario::Sudden, scale);
    let model = {
        let mut m =
            MultiInstanceModel::new(dataset.classes, OsElmConfig::new(dataset.dim(), p::HIDDEN))
                .expect("model");
        for (label, bucket) in dataset.train_by_class().iter().enumerate() {
            m.init_train_class(label, bucket).expect("train");
        }
        m
    };
    let model_bytes = model.memory_bytes();

    let specs = [
        MethodSpec::QuantTree {
            batch: p::QT_BATCH,
            bins: p::QT_BINS,
        },
        MethodSpec::Spll {
            batch: p::SPLL_BATCH,
        },
        MethodSpec::Proposed { window: 50 },
    ];
    specs
        .iter()
        .map(|spec| {
            let method = spec.build(&dataset, p::HIDDEN, 42);
            MemoryReport::new(
                match spec {
                    MethodSpec::QuantTree { .. } => "Quant Tree",
                    MethodSpec::Spll { .. } => "SPLL",
                    _ => "Proposed method",
                },
                bytes_of_scalars(method.detector_memory_scalars()),
                model_bytes,
            )
        })
        .collect()
}

/// Builds Table 4 plus the Pico budget check.
pub fn run(scale: Scale) -> Vec<Table> {
    let reports = memory_reports(scale);

    let mut t4 = Table::new(
        "Table 4: memory utilisation (kB) — detector state, fan configuration",
        &["method", "memory size (kB)"],
    );
    for r in &reports {
        t4.push_row(vec![r.label.clone(), format!("{:.0}", r.detector_kb())]);
    }

    let verdicts = check_budget(&reports, &PICO);
    let mut budget = Table::new(
        format!(
            "Pico feasibility: detector + model vs {} kB RAM (75% usable)",
            PICO.ram_kb()
        ),
        &["method", "total (kB)", "fits on Pico"],
    );
    for v in &verdicts {
        budget.push_row(vec![
            v.label.clone(),
            format!("{:.0}", v.total_bytes as f64 / 1024.0),
            if v.fits { "yes" } else { "no" }.into(),
        ]);
    }
    vec![t4, budget]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ordering_holds() {
        let reports = memory_reports(Scale::Quick);
        let kb = |label: &str| -> f64 {
            reports
                .iter()
                .find(|r| r.label == label)
                .unwrap()
                .detector_kb()
        };
        let qt = kb("Quant Tree");
        let spll = kb("SPLL");
        let proposed = kb("Proposed method");
        // Table 4 ordering: SPLL > Quant Tree >> proposed.
        assert!(spll > qt, "spll {spll} <= qt {qt}");
        assert!(qt > 10.0 * proposed, "qt {qt} vs proposed {proposed}");
        // Headline claims: proposed reduces memory by ~88.9% vs QT and
        // ~96.4% vs SPLL; with the same batch sizes the reductions land in
        // the same bands.
        assert!(
            1.0 - proposed / qt > 0.8,
            "qt reduction {}",
            1.0 - proposed / qt
        );
        assert!(
            1.0 - proposed / spll > 0.9,
            "spll reduction {}",
            1.0 - proposed / spll
        );
    }

    #[test]
    fn magnitudes_match_paper_order_of_magnitude() {
        let reports = memory_reports(Scale::Quick);
        let qt = reports.iter().find(|r| r.label == "Quant Tree").unwrap();
        let spll = reports.iter().find(|r| r.label == "SPLL").unwrap();
        // Paper: 619 kB and 1933 kB. Ours: batch buffers dominate
        // (235 x 511 x 4 = 470 kB; SPLL holds two windows = 940 kB).
        assert!(qt.detector_kb() > 300.0 && qt.detector_kb() < 1000.0);
        assert!(spll.detector_kb() > 800.0 && spll.detector_kb() < 3000.0);
    }

    #[test]
    fn pico_feasibility_matches_paper() {
        let reports = memory_reports(Scale::Quick);
        let verdicts = check_budget(&reports, &PICO);
        let fits = |label: &str| verdicts.iter().find(|v| v.label == label).unwrap().fits;
        assert!(!fits("Quant Tree"), "QT must not fit on the Pico");
        assert!(!fits("SPLL"), "SPLL must not fit on the Pico");
        assert!(fits("Proposed method"), "proposed must fit on the Pico");
    }

    #[test]
    fn tables_render() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].len(), 3);
        assert_eq!(tables[1].len(), 3);
    }
}
