//! Extension ablations for the design choices DESIGN.md §6 calls out.
//!
//! * **ensemble** — the paper's stated future work: multiple windows
//!   voting, vs each single window, across the three fan scenarios;
//! * **threshold** — `θ_error` gating on/off and the Eq. 1 `z` sweep;
//! * **distance** — L1 (paper) vs L2 drift distance;
//! * **forgetting** — ONLAD forgetting-rate sensitivity (reproduces the
//!   "parameter tuning of a forgetting rate of ONLAD is difficult" claim).

use super::{fan_dataset, nslkdd_dataset, Scale};
use crate::methods::MethodSpec;
use crate::metrics;
use crate::report::{fmt_delay, Table};
use crate::runner::{run_method, RunOptions};
use seqdrift_core::centroid::CentroidSet;
use seqdrift_core::ensemble::{EnsembleDetector, VotePolicy};
use seqdrift_core::threshold::calibrate_drift_threshold;
use seqdrift_core::{DetectorConfig, DistanceMetric};
use seqdrift_datasets::fan::FanScenario;
use seqdrift_datasets::DriftDataset;
use seqdrift_linalg::Real;
use seqdrift_oselm::{MultiInstanceModel, OsElmConfig};

/// Trains the fan model + centroids and streams the dataset through an
/// ensemble, returning the first firing index.
fn ensemble_first_fire(
    dataset: &DriftDataset,
    windows: &[usize],
    policy: VotePolicy,
    seed: u64,
) -> Option<usize> {
    let dim = dataset.dim();
    let mut model =
        MultiInstanceModel::new(dataset.classes, OsElmConfig::new(dim, 22).with_seed(seed))
            .expect("model");
    for (label, bucket) in dataset.train_by_class().iter().enumerate() {
        model.init_train_class(label, bucket).expect("train");
    }
    let pairs: Vec<(usize, &[Real])> = dataset
        .train
        .iter()
        .map(|s| (s.label, s.x.as_slice()))
        .collect();
    let trained = CentroidSet::from_labeled(dataset.classes, dim, &pairs).expect("centroids");
    let theta_drift =
        calibrate_drift_threshold(&trained, &pairs, DistanceMetric::L1, 1.0).expect("eq1");
    // Same θ_error policy as the pipeline: a margin above the training
    // score band, so in-distribution samples do not churn windows.
    let max_score = dataset
        .train
        .iter()
        .map(|s| model.predict(&s.x).expect("predict").score)
        .fold(0.0, Real::max);
    let base = DetectorConfig::new(dataset.classes, dim)
        .with_theta_drift(theta_drift)
        .with_theta_error(3.0 * max_score);
    let mut ensemble = EnsembleDetector::new(base, windows, &trained, policy).expect("ensemble");

    for (i, s) in dataset.test.iter().enumerate() {
        let p = model.predict(&s.x).expect("predict");
        if ensemble.observe(p.label, &s.x, p.score).expect("observe") {
            return Some(i);
        }
    }
    None
}

/// Ensemble ablation: single windows vs Any/Majority votes on the fan
/// scenarios.
pub fn ensemble(scale: Scale) -> Vec<Table> {
    let scenarios = [
        FanScenario::Sudden,
        FanScenario::Gradual,
        FanScenario::Reoccurring,
    ];
    let datasets: Vec<_> = scenarios.iter().map(|&s| fan_dataset(s, scale)).collect();

    let rows: Vec<(&str, Vec<usize>, Option<VotePolicy>)> = vec![
        ("single W=10", vec![10], None),
        ("single W=50", vec![50], None),
        ("single W=150", vec![150], None),
        (
            "ensemble any {10,50,150}",
            vec![10, 50, 150],
            Some(VotePolicy::Any),
        ),
        (
            "ensemble majority {10,50,150}",
            vec![10, 50, 150],
            Some(VotePolicy::Majority),
        ),
    ];

    let results: Vec<Vec<Option<usize>>> = crate::par::par_map(&rows, |(_, windows, policy)| {
        datasets
            .iter()
            .map(|d| {
                let pol = policy.unwrap_or(VotePolicy::Any);
                ensemble_first_fire(d, windows, pol, 42).map(|i| i.saturating_sub(d.drift_start))
            })
            .collect()
    });

    let mut t = Table::new(
        "Ablation: multi-window ensemble vs single windows — detection delay (fan)",
        &["configuration", "Sudden", "Gradual", "Reoccurring"],
    );
    for ((name, _, _), delays) in rows.iter().zip(results.iter()) {
        t.push_row(vec![
            (*name).into(),
            fmt_delay(delays[0]),
            fmt_delay(delays[1]),
            fmt_delay(delays[2]),
        ]);
    }
    vec![t]
}

/// θ_error gating and z sweep on NSL-KDD.
pub fn threshold(scale: Scale) -> Vec<Table> {
    let dataset = nslkdd_dataset(match scale {
        Scale::Full => Scale::Quick, // full-scale adds nothing but minutes here
        s => s,
    });
    let opts = RunOptions {
        hidden: 22,
        seed: 42,
        accuracy_window: 500,
    };

    // Gating ablation rides on the pipeline's calibration quantile: q=0
    // forces θ_error to the minimum training score (gate effectively open).
    let mut t = Table::new(
        "Ablation: θ_error gating and Eq. 1 z on NSL-KDD (proposed, W=100)",
        &["variant", "accuracy (%)", "delay", "false positives"],
    );
    let variants: Vec<(String, MethodSpec)> = vec![(
        "margin-gated (3x max), z=1 [default]".into(),
        MethodSpec::Proposed { window: 100 },
    )];
    for (name, spec) in &variants {
        let r = run_method(spec, &dataset, &opts);
        t.push_row(vec![
            name.clone(),
            format!("{:.1}", r.accuracy_pct()),
            fmt_delay(r.delay),
            r.false_positives.to_string(),
        ]);
    }

    // Direct detector-level sweep for gating and z (bypasses the method
    // factory to vary the thresholds).
    for (name, margin, z) in [
        ("ungated (theta_error = 0), z=1", 0.0f32, 1.0f32),
        ("margin-gated (3x max), z=0.5", 3.0, 0.5),
        ("margin-gated (3x max), z=2", 3.0, 2.0),
    ] {
        let r = run_threshold_variant(&dataset, margin as Real, z, &opts);
        t.push_row(vec![
            name.into(),
            format!("{:.1}", r.0 * 100.0),
            fmt_delay(r.1),
            r.2.to_string(),
        ]);
    }
    vec![t]
}

/// Runs the proposed pipeline with an explicit gate margin and z, returning
/// (accuracy, delay, false positives). `margin = 0` disables gating
/// entirely (every sample opens a window).
fn run_threshold_variant(
    dataset: &DriftDataset,
    error_margin: Real,
    z: Real,
    opts: &RunOptions,
) -> (f64, Option<usize>, usize) {
    use seqdrift_core::pipeline::{DriftPipeline, PipelineConfig};
    use seqdrift_core::reconstruct::ReconstructConfig;

    let dim = dataset.dim();
    let mut model = MultiInstanceModel::new(
        dataset.classes,
        OsElmConfig::new(dim, opts.hidden).with_seed(opts.seed),
    )
    .expect("model");
    for (label, bucket) in dataset.train_by_class().iter().enumerate() {
        model.init_train_class(label, bucket).expect("train");
    }
    let pairs: Vec<(usize, &[Real])> = dataset
        .train
        .iter()
        .map(|s| (s.label, s.x.as_slice()))
        .collect();
    // margin = 0 means "no gate": θ_error stays 0 and every sample opens a
    // window (PipelineConfig treats theta_error = 0 as "calibrate", so set
    // a tiny explicit value instead).
    let det = if error_margin == 0.0 {
        DetectorConfig::new(dataset.classes, dim)
            .with_window(100)
            .with_theta_error(Real::MIN_POSITIVE)
    } else {
        DetectorConfig::new(dataset.classes, dim).with_window(100)
    };
    let mut cfg = PipelineConfig::new(det.clone())
        .with_reconstruct(ReconstructConfig::new(200).with_search(20).with_update(50));
    cfg.error_margin = error_margin.max(Real::MIN_POSITIVE);
    cfg.z = z;
    let mut pipe = DriftPipeline::calibrate_with(model, det, &pairs, Some(cfg)).expect("pipeline");

    let mut truth = Vec::new();
    let mut pred = Vec::new();
    let mut detections = Vec::new();
    for (i, s) in dataset.test.iter().enumerate() {
        let out = pipe.process(&s.x).expect("process");
        truth.push(s.label);
        pred.push(out.predicted_label.unwrap());
        if out.drift_detected {
            detections.push(i);
        }
    }
    let retrain: Vec<usize> = pipe
        .events()
        .iter()
        .filter_map(|e| match e {
            seqdrift_core::pipeline::PipelineEvent::Reconstructed { index, .. } => {
                Some(*index as usize)
            }
            _ => None,
        })
        .collect();
    (
        metrics::epoch_permutation_accuracy(&truth, &pred, dataset.classes, &retrain),
        metrics::detection_delay(&detections, dataset.drift_start),
        metrics::false_positives(&detections, dataset.drift_start),
    )
}

/// L1 vs L2 drift distance.
pub fn distance(scale: Scale) -> Vec<Table> {
    let dataset = nslkdd_dataset(match scale {
        Scale::Full => Scale::Quick,
        s => s,
    });
    let mut t = Table::new(
        "Ablation: drift distance metric (proposed, W=100, NSL-KDD)",
        &["metric", "accuracy (%)", "delay", "false positives"],
    );
    for (name, metric) in [
        ("L1 [paper]", DistanceMetric::L1),
        ("L2", DistanceMetric::L2),
    ] {
        let r = run_metric_variant(&dataset, metric);
        t.push_row(vec![
            name.into(),
            format!("{:.1}", r.0 * 100.0),
            fmt_delay(r.1),
            r.2.to_string(),
        ]);
    }
    vec![t]
}

fn run_metric_variant(
    dataset: &DriftDataset,
    metric: DistanceMetric,
) -> (f64, Option<usize>, usize) {
    use seqdrift_core::pipeline::{DriftPipeline, PipelineConfig};
    use seqdrift_core::reconstruct::ReconstructConfig;

    let dim = dataset.dim();
    let mut model =
        MultiInstanceModel::new(dataset.classes, OsElmConfig::new(dim, 22).with_seed(42))
            .expect("model");
    for (label, bucket) in dataset.train_by_class().iter().enumerate() {
        model.init_train_class(label, bucket).expect("train");
    }
    let pairs: Vec<(usize, &[Real])> = dataset
        .train
        .iter()
        .map(|s| (s.label, s.x.as_slice()))
        .collect();
    let det = DetectorConfig::new(dataset.classes, dim)
        .with_window(100)
        .with_metric(metric);
    let cfg = PipelineConfig::new(det.clone())
        .with_reconstruct(ReconstructConfig::new(200).with_search(20).with_update(50));
    let mut pipe = DriftPipeline::calibrate_with(model, det, &pairs, Some(cfg)).expect("pipeline");
    let mut truth = Vec::new();
    let mut pred = Vec::new();
    let mut detections = Vec::new();
    for (i, s) in dataset.test.iter().enumerate() {
        let out = pipe.process(&s.x).expect("process");
        truth.push(s.label);
        pred.push(out.predicted_label.unwrap());
        if out.drift_detected {
            detections.push(i);
        }
    }
    let retrain: Vec<usize> = pipe
        .events()
        .iter()
        .filter_map(|e| match e {
            seqdrift_core::pipeline::PipelineEvent::Reconstructed { index, .. } => {
                Some(*index as usize)
            }
            _ => None,
        })
        .collect();
    (
        metrics::epoch_permutation_accuracy(&truth, &pred, dataset.classes, &retrain),
        metrics::detection_delay(&detections, dataset.drift_start),
        metrics::false_positives(&detections, dataset.drift_start),
    )
}

/// ONLAD forgetting-rate sweep.
pub fn forgetting(scale: Scale) -> Vec<Table> {
    let dataset = nslkdd_dataset(match scale {
        Scale::Full => Scale::Quick,
        s => s,
    });
    let opts = RunOptions {
        hidden: 22,
        seed: 42,
        accuracy_window: 500,
    };
    let rates: Vec<Real> = vec![0.90, 0.95, 0.97, 0.99, 1.0];
    let results: Vec<_> = crate::par::par_map(&rates, |&forgetting| {
        run_method(&MethodSpec::Onlad { forgetting }, &dataset, &opts)
    });
    let mut t = Table::new(
        "Ablation: ONLAD forgetting rate on NSL-KDD (paper: tuning is difficult)",
        &["forgetting rate", "accuracy (%)"],
    );
    for (rate, r) in rates.iter().zip(results.iter()) {
        t.push_row(vec![
            format!("{rate:.2}"),
            format!("{:.1}", r.accuracy_pct()),
        ]);
    }
    vec![t]
}

/// Environment robustness — the paper records its fan data in silent *and*
/// noisy environments but only evaluates the silent one. Here the model
/// trains on a silent healthy fan and is deployed next to a ventilation
/// fan: the interference band is a genuine distribution change, so the
/// question is not *whether* the detector reacts but whether the system
/// recovers (reconstructs onto the noisy-healthy concept) and then still
/// catches real damage.
pub fn noisy_env(_scale: Scale) -> Vec<Table> {
    use seqdrift_datasets::fan::{self, Environment, FanConfig, FanScenario};

    let cfg = FanConfig::default();
    let opts = RunOptions {
        hidden: 22,
        seed: 42,
        accuracy_window: 100,
    };

    let rows: Vec<(&str, Environment, FanScenario)> = vec![
        (
            "silent deploy, sudden damage @120",
            Environment::Silent,
            FanScenario::Sudden,
        ),
        (
            "noisy deploy, sudden damage @120",
            Environment::Noisy,
            FanScenario::Sudden,
        ),
        (
            "noisy deploy, gradual damage 120-600",
            Environment::Noisy,
            FanScenario::Gradual,
        ),
    ];
    let results: Vec<_> = crate::par::par_map(&rows, |(_, env, scenario)| {
        let d = fan::generate(&cfg, *scenario, *env);
        run_method(&MethodSpec::Proposed { window: 50 }, &d, &opts)
    });

    let mut t = Table::new(
        "Ablation: noisy deployment environment (fan, trained silent, W=50)",
        &[
            "scenario",
            "first detection",
            "delay vs damage onset",
            "detections",
        ],
    );
    for ((name, _, _), r) in rows.iter().zip(results.iter()) {
        let first = r
            .detections
            .first()
            .map(|d| d.to_string())
            .unwrap_or_else(|| "-".into());
        t.push_row(vec![
            (*name).into(),
            first,
            fmt_delay(r.delay),
            r.detections.len().to_string(),
        ]);
    }
    vec![t]
}

/// Recency weighting of the test centroids — §3.2's "it is possible to
/// assign a higher weight to a newer sample" sketch. Running mean (the
/// paper's Algorithm 1) vs EWMA at several alphas, on NSL-KDD.
pub fn recency(scale: Scale) -> Vec<Table> {
    use seqdrift_core::centroid::Recency;
    use seqdrift_core::pipeline::{DriftPipeline, PipelineConfig};
    use seqdrift_core::reconstruct::ReconstructConfig;

    let dataset = nslkdd_dataset(match scale {
        Scale::Full => Scale::Quick,
        s => s,
    });
    let variants: Vec<(String, Recency)> = vec![
        ("running mean [paper]".into(), Recency::RunningMean),
        ("EWMA alpha=0.01".into(), Recency::Ewma(0.01)),
        ("EWMA alpha=0.05".into(), Recency::Ewma(0.05)),
        ("EWMA alpha=0.20".into(), Recency::Ewma(0.20)),
    ];

    let rows: Vec<(String, f64, Option<usize>, usize)> =
        crate::par::par_map(&variants, |(name, recency)| {
            let dim = dataset.dim();
            let mut model =
                MultiInstanceModel::new(dataset.classes, OsElmConfig::new(dim, 22).with_seed(42))
                    .expect("model");
            for (label, bucket) in dataset.train_by_class().iter().enumerate() {
                model.init_train_class(label, bucket).expect("train");
            }
            let pairs: Vec<(usize, &[Real])> = dataset
                .train
                .iter()
                .map(|s| (s.label, s.x.as_slice()))
                .collect();
            let det = DetectorConfig::new(dataset.classes, dim)
                .with_window(100)
                .with_recency(*recency);
            let cfg = PipelineConfig::new(det.clone())
                .with_reconstruct(ReconstructConfig::new(200).with_search(20).with_update(50));
            let mut pipe =
                DriftPipeline::calibrate_with(model, det, &pairs, Some(cfg)).expect("pipeline");
            let mut truth = Vec::new();
            let mut pred = Vec::new();
            let mut detections = Vec::new();
            for (i, s) in dataset.test.iter().enumerate() {
                let out = pipe.process(&s.x).expect("process");
                truth.push(s.label);
                pred.push(out.predicted_label.unwrap());
                if out.drift_detected {
                    detections.push(i);
                }
            }
            let retrain: Vec<usize> = pipe
                .events()
                .iter()
                .filter_map(|e| match e {
                    seqdrift_core::pipeline::PipelineEvent::Reconstructed { index, .. } => {
                        Some(*index as usize)
                    }
                    _ => None,
                })
                .collect();
            (
                name.clone(),
                metrics::epoch_permutation_accuracy(&truth, &pred, dataset.classes, &retrain),
                metrics::detection_delay(&detections, dataset.drift_start),
                metrics::false_positives(&detections, dataset.drift_start),
            )
        });

    let mut t = Table::new(
        "Ablation: test-centroid recency weighting (proposed, W=100, NSL-KDD)",
        &["variant", "accuracy (%)", "delay", "false positives"],
    );
    for (name, acc, delay, fp) in rows {
        t.push_row(vec![
            name,
            format!("{:.1}", acc * 100.0),
            fmt_delay(delay),
            fp.to_string(),
        ]);
    }
    vec![t]
}

/// Incremental drift — the Figure 1 type the paper's evaluation never
/// exercises. Runs the proposed detector over sudden / gradual /
/// incremental streams built from the *same* two concepts and transition
/// interval, so delays are directly comparable.
pub fn incremental(_scale: Scale) -> Vec<Table> {
    use seqdrift_datasets::drift::{compose_single_class, DriftSchedule};
    use seqdrift_datasets::synth::ClassConcept;

    let dim = 16;
    let mut rng = seqdrift_linalg::Rng::seed_from(0x11C0);
    let old = ClassConcept::random_pattern(dim, 0.2, 0.4, 0.05, &mut rng);
    let dims: Vec<usize> = (0..8).collect();
    let new = old.shifted(&dims, 0.45);

    let schedules = [
        ("sudden @200", DriftSchedule::sudden(200)),
        ("gradual 200-600", DriftSchedule::gradual(200, 600)),
        ("incremental 200-600", DriftSchedule::incremental(200, 600)),
    ];
    let windows = [10usize, 50, 150];
    let opts = RunOptions {
        hidden: 12,
        seed: 42,
        accuracy_window: 100,
    };

    let rows: Vec<(String, Vec<Option<usize>>)> =
        crate::par::par_map(&schedules, |(name, schedule)| {
            let d = compose_single_class(&old, &new, *schedule, 120, 1000, 7);
            let delays = windows
                .iter()
                .map(|&w| run_method(&MethodSpec::Proposed { window: w }, &d, &opts).delay)
                .collect();
            (name.to_string(), delays)
        });

    let mut t = Table::new(
        "Ablation: incremental drift (Figure 1's fourth type) vs sudden/gradual — detection delay",
        &["drift type", "W=10", "W=50", "W=150"],
    );
    for (name, delays) in rows {
        t.push_row(vec![
            name,
            fmt_delay(delays[0]),
            fmt_delay(delays[1]),
            fmt_delay(delays[2]),
        ]);
    }
    vec![t]
}

/// Error-rate detectors (DDM, ADWIN) given oracle labels — the §2.2.2
/// family the paper rules out for edge devices because run-time labels are
/// unavailable there. With labels they detect fast; the table shows what
/// that label requirement buys.
pub fn error_rate(scale: Scale) -> Vec<Table> {
    use seqdrift_baselines::{Adwin, Ddm, ErrorRateDetector, ErrorRateVerdict};

    let dataset = nslkdd_dataset(match scale {
        Scale::Full => Scale::Quick,
        s => s,
    });
    // Frozen model's error stream (oracle ground truth consumed at run
    // time — the thing an edge deployment does not have).
    let opts = RunOptions {
        hidden: 22,
        seed: 42,
        accuracy_window: 500,
    };
    let frozen = run_method(&MethodSpec::BaselineNoDetect, &dataset, &opts);
    let proposed = run_method(&MethodSpec::Proposed { window: 100 }, &dataset, &opts);
    let mut model = {
        let mut m = MultiInstanceModel::new(
            dataset.classes,
            OsElmConfig::new(dataset.dim(), 22).with_seed(42),
        )
        .expect("model");
        for (label, bucket) in dataset.train_by_class().iter().enumerate() {
            m.init_train_class(label, bucket).expect("train");
        }
        m
    };
    let errors: Vec<bool> = dataset
        .test
        .iter()
        .map(|s| model.predict(&s.x).expect("predict").label != s.label)
        .collect();

    let run_detector = |det: &mut dyn ErrorRateDetector| -> (Option<usize>, usize) {
        let mut first_after = None;
        let mut fp = 0;
        for (i, &e) in errors.iter().enumerate() {
            if det.push(e) == ErrorRateVerdict::Drift {
                if i >= dataset.drift_start {
                    if first_after.is_none() {
                        first_after = Some(i - dataset.drift_start);
                    }
                } else {
                    fp += 1;
                }
                det.reset();
            }
        }
        (first_after, fp)
    };

    let mut ddm = Ddm::default();
    let (ddm_delay, ddm_fp) = run_detector(&mut ddm);
    let mut adwin = Adwin::default();
    let (adwin_delay, adwin_fp) = run_detector(&mut adwin);

    let mut t = Table::new(
        "Ablation: error-rate detectors with oracle labels vs label-free methods (NSL-KDD)",
        &["detector", "needs labels", "delay", "false positives"],
    );
    t.push_row(vec![
        "DDM".into(),
        "yes".into(),
        fmt_delay(ddm_delay),
        ddm_fp.to_string(),
    ]);
    t.push_row(vec![
        "ADWIN".into(),
        "yes".into(),
        fmt_delay(adwin_delay),
        adwin_fp.to_string(),
    ]);
    t.push_row(vec![
        "Proposed (label-free)".into(),
        "no".into(),
        fmt_delay(proposed.delay),
        proposed.false_positives.to_string(),
    ]);
    t.push_row(vec![
        "Baseline (no detection)".into(),
        "no".into(),
        fmt_delay(frozen.delay),
        frozen.false_positives.to_string(),
    ]);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensemble_any_is_as_fast_as_fastest_member() {
        let d = fan_dataset(FanScenario::Sudden, Scale::Quick);
        let single10 = ensemble_first_fire(&d, &[10], VotePolicy::Any, 42);
        let any = ensemble_first_fire(&d, &[10, 50, 150], VotePolicy::Any, 42);
        let s = single10.expect("W=10 detects the sudden drift");
        let a = any.expect("ensemble detects the sudden drift");
        assert_eq!(a, s, "any-vote should fire with its fastest member");
    }

    #[test]
    fn ensemble_majority_slower_than_any() {
        let d = fan_dataset(FanScenario::Sudden, Scale::Quick);
        let any = ensemble_first_fire(&d, &[10, 50, 150], VotePolicy::Any, 42).unwrap();
        let maj = ensemble_first_fire(&d, &[10, 50, 150], VotePolicy::Majority, 42).unwrap();
        assert!(maj >= any, "majority {maj} earlier than any {any}");
    }

    #[test]
    fn forgetting_sweep_shows_sensitivity() {
        let tables = forgetting(Scale::Quick);
        assert_eq!(tables[0].len(), 5);
        // The table renders percentages; spread across rates should be
        // non-trivial (the "hard to tune" claim) — check via the CSV.
        let csv = tables[0].to_csv();
        let accs: Vec<f64> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(1).unwrap().parse().unwrap())
            .collect();
        let min = accs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = accs.iter().cloned().fold(0.0, f64::max);
        assert!(
            max - min > 2.0,
            "forgetting rate barely matters ({min}..{max}) — unexpected"
        );
    }

    #[test]
    fn distance_ablation_renders() {
        let tables = distance(Scale::Quick);
        assert_eq!(tables[0].len(), 2);
    }
}
