//! Table 5 — execution time for 700 fan samples.
//!
//! Methods: Quant Tree, SPLL, baseline, proposed. Times are measured on the
//! host (wall clock over the streaming loop, excluding setup) and projected
//! onto the Raspberry Pi 4 with the edgesim slowdown model. The paper's
//! claims are relative — SPLL slowest by far (k-means in the loop),
//! proposed ≈ Quant Tree, baseline fastest — and survive projection
//! unchanged.

use super::{fan_dataset, fan_params as p, Scale};
use crate::methods::MethodSpec;
use crate::report::Table;
use crate::runner::{run_method, RunOptions, RunResult};
use seqdrift_edgesim::{project_duration, PI4};

/// The four Table 5 rows.
pub fn method_specs() -> Vec<(&'static str, MethodSpec)> {
    vec![
        (
            "Quant Tree",
            MethodSpec::QuantTree {
                batch: p::QT_BATCH,
                bins: p::QT_BINS,
            },
        ),
        (
            "SPLL",
            MethodSpec::Spll {
                batch: p::SPLL_BATCH,
            },
        ),
        (
            "Baseline (no concept drift detection)",
            MethodSpec::BaselineNoDetect,
        ),
        ("Proposed method", MethodSpec::Proposed { window: 50 }),
    ]
}

/// Runs the four methods sequentially (timing runs must not share cores).
pub fn run_all(scale: Scale, seed: u64) -> Vec<(&'static str, RunResult)> {
    let dataset = fan_dataset(seqdrift_datasets::fan::FanScenario::Sudden, scale);
    let opts = RunOptions {
        hidden: p::HIDDEN,
        seed,
        accuracy_window: 100,
    };
    method_specs()
        .into_iter()
        .map(|(label, spec)| (label, run_method(&spec, &dataset, &opts)))
        .collect()
}

/// Builds Table 5.
pub fn run(scale: Scale) -> Vec<Table> {
    let results = run_all(scale, 42);
    let mut t = Table::new(
        "Table 5: execution time for 700 fan samples (host-measured, Pi 4 projected)",
        &["method", "host (ms)", "Pi 4 projection (s)"],
    );
    for (label, r) in &results {
        let host_ms = r.exec_time.as_secs_f64() * 1e3;
        let pi4_s = project_duration(r.exec_time, &PI4).as_secs_f64();
        t.push_row(vec![
            (*label).into(),
            format!("{host_ms:.1}"),
            format!("{pi4_s:.3}"),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Timing assertions are inherently flaky on shared CI hardware, so the
    /// test asserts only the large, structural gaps the paper reports
    /// (SPLL ~6x slower than the others; baseline no slower than proposed
    /// by more than the detection overhead bound).
    #[test]
    fn relative_ordering_matches_paper() {
        // Median of 3 runs to de-noise.
        let mut spll_over_baseline = Vec::new();
        let mut proposed_over_baseline = Vec::new();
        for seed in [1, 2, 3] {
            let results = run_all(Scale::Quick, seed);
            let time = |needle: &str| -> f64 {
                results
                    .iter()
                    .find(|(l, _)| l.contains(needle))
                    .unwrap()
                    .1
                    .exec_time
                    .as_secs_f64()
            };
            let base = time("Baseline");
            spll_over_baseline.push(time("SPLL") / base);
            proposed_over_baseline.push(time("Proposed") / base);
        }
        spll_over_baseline.sort_by(|a, b| a.partial_cmp(b).unwrap());
        proposed_over_baseline.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let spll_ratio = spll_over_baseline[1];
        let proposed_ratio = proposed_over_baseline[1];
        // SPLL pays per-sample Mahalanobis against k clusters plus k-means
        // refits; it must be clearly slower than the bare baseline.
        assert!(spll_ratio > 1.2, "SPLL only {spll_ratio:.2}x over baseline");
        // The proposed detection adds bounded overhead (paper: +42.9%
        // over baseline; allow slack for host noise).
        assert!(
            proposed_ratio < 3.0,
            "proposed {proposed_ratio:.2}x over baseline"
        );
    }

    #[test]
    fn table_renders_four_rows() {
        let tables = run(Scale::Quick);
        assert_eq!(tables[0].len(), 4);
    }
}
