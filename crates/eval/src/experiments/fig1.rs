//! Figure 1 — the four concept-drift types.
//!
//! The paper's Figure 1 sketches data-distribution-vs-time for sudden,
//! gradual, incremental and reoccurring drifts. This regenerates it as
//! data: a 1-D stream switches between an "old" concept at 0 and a "new"
//! concept at 1 under each schedule; the table reports the bucketed mean,
//! which traces exactly the four shapes.

use crate::report::Table;
use seqdrift_datasets::drift::DriftSchedule;
use seqdrift_datasets::synth::ClassConcept;
use seqdrift_linalg::{Real, Rng};

/// Stream length of each trace.
pub const STREAM_LEN: usize = 1000;
/// Bucket width of the reported series.
pub const BUCKET: usize = 50;

/// One drift-type trace: bucketed means of the 1-D stream.
pub fn trace(schedule: &DriftSchedule, seed: u64) -> Vec<Real> {
    let old = ClassConcept::isotropic(vec![0.0], 0.05);
    let new = ClassConcept::isotropic(vec![1.0], 0.05);
    let mut rng = Rng::seed_from(seed);
    let mut means = Vec::with_capacity(STREAM_LEN / BUCKET);
    let mut acc = 0.0;
    let mut n = 0usize;
    for t in 0..STREAM_LEN {
        let (use_new, morph) = schedule.resolve(t, &mut rng);
        let x = match morph {
            Some(m) => ClassConcept::lerp(&old, &new, m).sample(&mut rng)[0],
            None => {
                if use_new {
                    new.sample(&mut rng)[0]
                } else {
                    old.sample(&mut rng)[0]
                }
            }
        };
        acc += x;
        n += 1;
        if n == BUCKET {
            means.push(acc / n as Real);
            acc = 0.0;
            n = 0;
        }
    }
    means
}

/// Builds the Figure 1 table: one column per drift type, one row per
/// bucket.
pub fn run() -> Vec<Table> {
    let schedules = [
        ("sudden", DriftSchedule::sudden(400)),
        ("gradual", DriftSchedule::gradual(300, 700)),
        ("incremental", DriftSchedule::incremental(300, 700)),
        ("reoccurring", DriftSchedule::reoccurring(400, 600)),
    ];
    let traces: Vec<(&str, Vec<Real>)> = schedules
        .iter()
        .map(|(name, s)| (*name, trace(s, 0xF161)))
        .collect();

    let mut t = Table::new(
        "Figure 1: data distribution over time for the four drift types (bucketed stream mean)",
        &["samples", "sudden", "gradual", "incremental", "reoccurring"],
    );
    for b in 0..(STREAM_LEN / BUCKET) {
        let mut row = vec![format!("{}", (b + 1) * BUCKET)];
        for (_, tr) in &traces {
            row.push(format!("{:.3}", tr[b]));
        }
        t.push_row(row);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tr(s: DriftSchedule) -> Vec<Real> {
        trace(&s, 7)
    }

    #[test]
    fn sudden_trace_steps_once() {
        let m = tr(DriftSchedule::sudden(400));
        // Buckets 0..8 (samples < 400) near 0; buckets 8.. near 1.
        assert!(m[..8].iter().all(|&v| v.abs() < 0.1));
        assert!(m[8..].iter().all(|&v| (v - 1.0).abs() < 0.1));
    }

    #[test]
    fn gradual_trace_ramps() {
        let m = tr(DriftSchedule::gradual(300, 700));
        assert!(m[2] < 0.1);
        assert!(m[19] > 0.9);
        // Middle of the transition sits in between.
        let mid = m[9];
        assert!(mid > 0.2 && mid < 0.8, "mid bucket {mid}");
    }

    #[test]
    fn incremental_trace_is_monotone_through_transition() {
        let m = tr(DriftSchedule::incremental(300, 700));
        // From bucket 6 (samples 300) to bucket 14 (samples 700) the means
        // must be non-decreasing within noise.
        for pair in m[6..14].windows(2) {
            assert!(pair[1] > pair[0] - 0.05, "not monotone: {m:?}");
        }
    }

    #[test]
    fn reoccurring_trace_returns() {
        let m = tr(DriftSchedule::reoccurring(400, 600));
        assert!(m[7] < 0.1); // before
        assert!(m[9] > 0.9); // during (samples 450..500)
        assert!(m[13] < 0.1); // after
    }

    #[test]
    fn table_dimensions() {
        let tables = run();
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), STREAM_LEN / BUCKET);
    }
}
