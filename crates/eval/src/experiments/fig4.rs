//! Figure 4 — accuracy over time on NSL-KDD for the five methods.
//!
//! Reproduces the accuracy-vs-stream-position curves: the frozen baseline
//! collapses after the drift at sample 8333, ONLAD decays even earlier
//! (forgetting-rate mistuning), and the three active methods recover after
//! detection + retraining.

use super::{nslkdd_dataset, nslkdd_params as p, scaled_batch, Scale};
use crate::methods::MethodSpec;
use crate::report::Table;
use crate::runner::{run_method, RunOptions, RunResult};

/// The five method specs of §4.2 with the paper's NSL-KDD parameters.
pub fn method_specs(scale: Scale) -> Vec<MethodSpec> {
    vec![
        MethodSpec::Proposed { window: 100 },
        MethodSpec::BaselineNoDetect,
        MethodSpec::QuantTree {
            batch: scaled_batch(scale, p::QT_BATCH),
            bins: p::QT_BINS,
        },
        MethodSpec::Spll {
            batch: scaled_batch(scale, p::SPLL_BATCH),
        },
        MethodSpec::Onlad {
            forgetting: p::ONLAD_FORGET,
        },
    ]
}

/// Runs all five methods (in parallel) and returns their results.
pub fn run_all(scale: Scale, seed: u64) -> Vec<RunResult> {
    let dataset = nslkdd_dataset(scale);
    let opts = RunOptions {
        hidden: p::HIDDEN,
        seed,
        accuracy_window: match scale {
            Scale::Full => 500,
            Scale::Quick => 250,
        },
    };
    crate::par::par_map(&method_specs(scale), |spec| {
        run_method(spec, &dataset, &opts)
    })
}

/// Builds the Figure 4 series table plus a summary.
pub fn run(scale: Scale) -> Vec<Table> {
    let results = run_all(scale, 42);
    let drift_point = nslkdd_dataset(scale).drift_start;

    let mut header: Vec<String> = vec!["samples".into()];
    header.extend(results.iter().map(|r| r.method.clone()));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut series = Table::new(
        format!(
            "Figure 4: accuracy over the NSL-KDD stream (concept drift at sample {drift_point})"
        ),
        &header_refs,
    );
    let n_buckets = results[0].accuracy_series.len();
    for b in 0..n_buckets {
        let mut row = vec![results[0].accuracy_series[b].0.to_string()];
        for r in &results {
            row.push(format!("{:.3}", r.accuracy_series[b].1));
        }
        series.push_row(row);
    }

    let mut summary = Table::new(
        "Figure 4 summary: overall accuracy and first detection",
        &[
            "method",
            "accuracy (%)",
            "first detection",
            "false positives",
        ],
    );
    for r in &results {
        let first = r
            .detections
            .first()
            .map(|d| d.to_string())
            .unwrap_or_else(|| "-".into());
        summary.push_row(vec![
            r.method.clone(),
            format!("{:.1}", r.accuracy_pct()),
            first,
            r.false_positives.to_string(),
        ]);
    }
    vec![series, summary]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_reproduces_figure_shape() {
        let results = run_all(Scale::Quick, 7);
        assert_eq!(results.len(), 5);
        let by_name = |needle: &str| -> &RunResult {
            results
                .iter()
                .find(|r| r.method.contains(needle))
                .unwrap_or_else(|| panic!("method {needle} missing"))
        };
        let proposed = by_name("Proposed");
        let baseline = by_name("Baseline");
        let qt = by_name("Quant Tree");
        let spll = by_name("SPLL");

        // Shape claims of the figure: active methods beat the frozen
        // baseline; the proposed method detects the drift.
        assert!(proposed.delay.is_some(), "proposed never detected");
        assert!(
            proposed.accuracy > baseline.accuracy,
            "proposed {:.3} <= baseline {:.3}",
            proposed.accuracy,
            baseline.accuracy
        );
        assert!(
            qt.accuracy > baseline.accuracy,
            "qt {:.3} <= baseline {:.3}",
            qt.accuracy,
            baseline.accuracy
        );
        assert!(
            spll.accuracy > baseline.accuracy,
            "spll {:.3} <= baseline {:.3}",
            spll.accuracy,
            baseline.accuracy
        );
    }

    #[test]
    fn tables_render() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 2);
        assert!(tables[0].len() >= 4);
        assert_eq!(tables[1].len(), 5);
        let md = tables[1].to_markdown();
        assert!(md.contains("Quant Tree"));
    }
}
