//! Multi-seed robustness sweep (beyond the paper, which reports single
//! runs): window sizes x seeds on the NSL-KDD stream, aggregated as
//! mean ± std. All cells run in parallel via rayon — the workspace's
//! hpc-parallel showcase.

use super::{nslkdd_dataset, Scale};
use crate::methods::MethodSpec;
use crate::metrics::mean_f64;
use crate::report::Table;
use crate::runner::RunOptions;
use crate::sweep::{grid, run_sweep};

/// Window sizes swept.
pub const WINDOWS: [usize; 4] = [50, 100, 250, 500];
/// Seeds per cell.
pub const SEEDS: [u64; 6] = [1, 2, 3, 4, 5, 6];

/// Runs the sweep and aggregates per window.
pub fn run(scale: Scale) -> Vec<Table> {
    let dataset = nslkdd_dataset(match scale {
        // Full scale would take windows x seeds x 22701 samples; the sweep
        // is about variance, which the quick stream already exposes.
        Scale::Full => Scale::Quick,
        s => s,
    });
    let specs: Vec<MethodSpec> = WINDOWS
        .iter()
        .map(|&w| MethodSpec::Proposed { window: w })
        .collect();
    let cells = grid(&specs, 1, &SEEDS);
    let opts = RunOptions {
        hidden: 22,
        seed: 0, // overridden per cell
        accuracy_window: 500,
    };
    let results = run_sweep(&cells, std::slice::from_ref(&dataset), &opts);

    let mut t = Table::new(
        format!(
            "Sweep: proposed method over {} seeds per window (NSL-KDD, mean ± std)",
            SEEDS.len()
        ),
        &[
            "window",
            "accuracy (%)",
            "delay",
            "detected (of seeds)",
            "false positives (total)",
        ],
    );
    for (wi, &w) in WINDOWS.iter().enumerate() {
        let rows = &results[wi * SEEDS.len()..(wi + 1) * SEEDS.len()];
        let accs: Vec<f64> = rows.iter().map(|r| r.accuracy * 100.0).collect();
        let acc_mean = mean_f64(&accs);
        let acc_std =
            (accs.iter().map(|a| (a - acc_mean).powi(2)).sum::<f64>() / accs.len() as f64).sqrt();
        let delays: Vec<f64> = rows
            .iter()
            .filter_map(|r| r.delay.map(|d| d as f64))
            .collect();
        let detected = delays.len();
        let delay_mean = mean_f64(&delays);
        let delay_std = if delays.is_empty() {
            0.0
        } else {
            (delays.iter().map(|d| (d - delay_mean).powi(2)).sum::<f64>() / delays.len() as f64)
                .sqrt()
        };
        let fp: usize = rows.iter().map(|r| r.false_positives).sum();
        t.push_row(vec![
            w.to_string(),
            format!("{acc_mean:.1} ± {acc_std:.1}"),
            if detected > 0 {
                format!("{delay_mean:.0} ± {delay_std:.0}")
            } else {
                "-".into()
            },
            format!("{detected}/{}", SEEDS.len()),
            fp.to_string(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_table_has_one_row_per_window() {
        let tables = run(Scale::Quick);
        assert_eq!(tables[0].len(), WINDOWS.len());
        // Every window must detect on a majority of seeds.
        let csv = tables[0].to_csv();
        for line in csv.lines().skip(1) {
            let detected = line.split(',').nth(3).unwrap();
            let (got, of) = detected.split_once('/').unwrap();
            let got: usize = got.parse().unwrap();
            let of: usize = of.parse().unwrap();
            assert!(got * 2 > of, "window row {line} detected too rarely");
        }
    }
}
