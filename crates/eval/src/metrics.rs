//! Evaluation metrics: accuracy (with label-permutation tolerance after
//! unsupervised retraining), detection delay, and false positives.

use seqdrift_linalg::Real;

/// Accuracy over `(truth, predicted)` pairs with optional permutation
/// tolerance for two-class problems.
///
/// After an *unsupervised* model reconstruction the cluster-to-label
/// assignment is arbitrary: instance 0 may now hold what ground truth calls
/// class 1. Standard clustering-accuracy practice scores the best label
/// permutation; for the two-class datasets used here that means
/// `max(direct, swapped)` within each retraining epoch. `epochs` splits the
/// stream at retraining completion points so one permutation is chosen per
/// epoch (a method cannot flip its labelling mid-epoch).
pub fn epoch_permutation_accuracy(
    truth: &[usize],
    predicted: &[usize],
    classes: usize,
    retraining_points: &[usize],
) -> f64 {
    assert_eq!(truth.len(), predicted.len());
    if truth.is_empty() {
        return 0.0;
    }
    if classes != 2 {
        // Direct accuracy for C != 2 (the paper only evaluates C = 2).
        let correct = truth
            .iter()
            .zip(predicted.iter())
            .filter(|(t, p)| t == p)
            .count();
        return correct as f64 / truth.len() as f64;
    }
    let mut boundaries: Vec<usize> = Vec::with_capacity(retraining_points.len() + 2);
    boundaries.push(0);
    for &p in retraining_points {
        let b = (p + 1).min(truth.len());
        if b > *boundaries.last().unwrap() {
            boundaries.push(b);
        }
    }
    if *boundaries.last().unwrap() < truth.len() {
        boundaries.push(truth.len());
    }
    let mut correct = 0usize;
    for pair in boundaries.windows(2) {
        let (lo, hi) = (pair[0], pair[1]);
        let direct = truth[lo..hi]
            .iter()
            .zip(&predicted[lo..hi])
            .filter(|(t, p)| t == p)
            .count();
        let swapped = (hi - lo) - direct;
        correct += direct.max(swapped);
    }
    correct as f64 / truth.len() as f64
}

/// Plain accuracy (no permutation tolerance).
pub fn accuracy(truth: &[usize], predicted: &[usize]) -> f64 {
    epoch_permutation_accuracy(truth, predicted, usize::MAX, &[])
}

/// Windowed accuracy series for Figure-4-style plots: one `(window_end,
/// accuracy)` point per `window` samples, permutation-tolerant per window.
pub fn windowed_accuracy(
    truth: &[usize],
    predicted: &[usize],
    classes: usize,
    window: usize,
) -> Vec<(usize, f64)> {
    assert!(window > 0);
    let mut out = Vec::new();
    let mut start = 0;
    while start < truth.len() {
        let end = (start + window).min(truth.len());
        let acc =
            epoch_permutation_accuracy(&truth[start..end], &predicted[start..end], classes, &[]);
        out.push((end, acc));
        start = end;
    }
    out
}

/// Detection delay: samples between the true drift onset and the first
/// detection at or after it. `None` when never detected after onset.
pub fn detection_delay(detections: &[usize], drift_start: usize) -> Option<usize> {
    detections
        .iter()
        .find(|&&d| d >= drift_start)
        .map(|&d| d - drift_start)
}

/// Detections strictly before the drift onset (false positives).
pub fn false_positives(detections: &[usize], drift_start: usize) -> usize {
    detections.iter().filter(|&&d| d < drift_start).count()
}

/// Mean of an f64 slice (0 when empty) — sweep aggregation helper.
pub fn mean_f64(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Drift-rate trace helper: fraction of samples in `window`-sized buckets
/// that carry a positive signal (used by the Figure 1 reproduction to show
/// concept mixtures over time).
pub fn bucket_fraction(signal: &[bool], window: usize) -> Vec<(usize, Real)> {
    assert!(window > 0);
    let mut out = Vec::new();
    let mut start = 0;
    while start < signal.len() {
        let end = (start + window).min(signal.len());
        let frac =
            signal[start..end].iter().filter(|&&b| b).count() as Real / (end - start) as Real;
        out.push((end, frac));
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_accuracy() {
        assert_eq!(accuracy(&[0, 1, 1, 0], &[0, 1, 0, 0]), 0.75);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn permutation_tolerance_scores_swapped_epoch() {
        // Perfect prediction with labels flipped.
        let truth = vec![0, 1, 0, 1];
        let pred = vec![1, 0, 1, 0];
        assert_eq!(epoch_permutation_accuracy(&truth, &pred, 2, &[]), 1.0);
    }

    #[test]
    fn permutation_chosen_per_epoch() {
        // Epoch 1 (samples 0..3): direct. Retraining completes at index 2.
        // Epoch 2 (samples 3..6): flipped.
        let truth = vec![0, 1, 0, 0, 1, 0];
        let pred = vec![0, 1, 0, 1, 0, 1];
        let acc = epoch_permutation_accuracy(&truth, &pred, 2, &[2]);
        assert_eq!(acc, 1.0);
        // Without the epoch split, one global permutation cannot fix both.
        let global = epoch_permutation_accuracy(&truth, &pred, 2, &[]);
        assert!(global < 1.0);
    }

    #[test]
    fn permutation_never_scores_below_half_per_epoch() {
        let truth = vec![0, 0, 1, 1];
        let pred = vec![1, 0, 0, 1];
        assert_eq!(epoch_permutation_accuracy(&truth, &pred, 2, &[]), 0.5);
    }

    #[test]
    fn multiclass_falls_back_to_direct() {
        let truth = vec![0, 1, 2];
        let pred = vec![2, 1, 0];
        assert!((epoch_permutation_accuracy(&truth, &pred, 3, &[]) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn windowed_accuracy_buckets() {
        let truth = vec![0, 0, 0, 0, 1, 1];
        let pred = vec![0, 0, 1, 1, 1, 1];
        let w = windowed_accuracy(&truth, &pred, usize::MAX, 2);
        assert_eq!(w, vec![(2, 1.0), (4, 0.0), (6, 1.0)]);
    }

    #[test]
    fn delay_and_false_positives() {
        let detections = vec![50, 120, 300];
        assert_eq!(detection_delay(&detections, 100), Some(20));
        assert_eq!(false_positives(&detections, 100), 1);
        assert_eq!(detection_delay(&detections, 400), None);
        assert_eq!(detection_delay(&[], 0), None);
    }

    #[test]
    fn bucket_fraction_counts() {
        let signal = vec![false, false, true, true, true, false];
        let b = bucket_fraction(&signal, 3);
        assert_eq!(b.len(), 2);
        assert!((b[0].1 - 1.0 / 3.0).abs() < 1e-6);
        assert!((b[1].1 - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn retraining_boundaries_clamped() {
        // Retraining point beyond the stream must not panic or distort.
        let truth = vec![0, 1];
        let pred = vec![0, 1];
        assert_eq!(epoch_permutation_accuracy(&truth, &pred, 2, &[10]), 1.0);
    }
}
