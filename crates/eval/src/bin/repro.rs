//! Experiment driver: regenerates each table/figure of the paper.
//!
//! ```text
//! cargo run --release -p seqdrift-eval --bin repro -- all
//! cargo run --release -p seqdrift-eval --bin repro -- table2
//! cargo run --release -p seqdrift-eval --bin repro -- fig4 --quick
//! cargo run --release -p seqdrift-eval --bin repro -- --scenario drills/sudden.sqsc
//! ```
//!
//! Results print as markdown and are written under `results/` (markdown +
//! CSV per table).

use seqdrift_eval::experiments::{self, Scale};
use seqdrift_eval::report::Table;
use std::path::PathBuf;

const EXPERIMENTS: &[&str] = &[
    "fig1",
    "fig4",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "ablation-ensemble",
    "ablation-threshold",
    "ablation-distance",
    "ablation-forgetting",
    "ablation-incremental",
    "ablation-errorrate",
    "ablation-recency",
    "ablation-noisy",
    "sweep",
];

fn run_one(name: &str, scale: Scale) -> Vec<Table> {
    match name {
        "fig1" => experiments::fig1::run(),
        "fig4" => experiments::fig4::run(scale),
        "table2" => experiments::table2::run(scale),
        "table3" => experiments::table3::run(scale),
        "table4" => experiments::table4::run(scale),
        "table5" => experiments::table5::run(scale),
        "table6" => experiments::table6::run(scale),
        "ablation-ensemble" => experiments::ablations::ensemble(scale),
        "ablation-threshold" => experiments::ablations::threshold(scale),
        "ablation-distance" => experiments::ablations::distance(scale),
        "ablation-forgetting" => experiments::ablations::forgetting(scale),
        "ablation-incremental" => experiments::ablations::incremental(scale),
        "ablation-errorrate" => experiments::ablations::error_rate(scale),
        "ablation-recency" => experiments::ablations::recency(scale),
        "ablation-noisy" => experiments::ablations::noisy_env(scale),
        "sweep" => experiments::sweep_exp::run(scale),
        other => {
            eprintln!("unknown experiment {other:?}; known: {EXPERIMENTS:?} or 'all'");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Full };
    let out_dir: PathBuf = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    let scenario_file: Option<PathBuf> = args
        .iter()
        .position(|a| a == "--scenario")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);

    if let Some(path) = scenario_file {
        let opts = seqdrift_eval::RunOptions::default();
        match seqdrift_eval::scenario::run_scenario_file(&path, &opts) {
            Ok(table) => {
                println!("{}", table.to_markdown());
                let stem = format!(
                    "scenario-{}",
                    path.file_stem()
                        .map(|s| s.to_string_lossy().into_owned())
                        .unwrap_or_else(|| "run".to_string())
                );
                if let Err(e) = table.write_to(&out_dir, &stem) {
                    eprintln!("warning: could not write {stem}: {e}");
                }
                eprintln!("results written under {}", out_dir.display());
                return;
            }
            Err(e) => {
                eprintln!("scenario {} failed: {e}", path.display());
                std::process::exit(2);
            }
        }
    }

    let targets: Vec<&str> = {
        let named: Vec<&str> = args
            .iter()
            .map(String::as_str)
            .filter(|a| !a.starts_with("--") && *a != out_dir.to_string_lossy())
            .collect();
        if named.is_empty() || named.contains(&"all") {
            EXPERIMENTS.to_vec()
        } else {
            named
        }
    };

    println!("# seqdrift reproduction ({:?} scale)\n", scale);
    for name in targets {
        eprintln!(">>> running {name} ...");
        let started = std::time::Instant::now();
        let tables = run_one(name, scale);
        eprintln!(
            "<<< {name} finished in {:.1}s",
            started.elapsed().as_secs_f64()
        );
        for (i, t) in tables.iter().enumerate() {
            println!("{}", t.to_markdown());
            let stem = if tables.len() == 1 {
                name.to_string()
            } else {
                format!("{name}-{i}")
            };
            if let Err(e) = t.write_to(&out_dir, &stem) {
                eprintln!("warning: could not write {stem}: {e}");
            }
        }
    }
    eprintln!("results written under {}", out_dir.display());
}
