//! Internal diagnostic: prints the quantities the detection dynamics hinge
//! on (Eq. 1 threshold, class-shift L1 magnitudes, drift-distance
//! trajectories, per-method delays). Not part of the reproduction surface;
//! useful when tuning the synthetic datasets.

use seqdrift_core::centroid::CentroidSet;
use seqdrift_core::threshold::calibrate_drift_threshold;
use seqdrift_core::DistanceMetric;
use seqdrift_datasets::fan::FanScenario;
use seqdrift_eval::experiments::{fan_dataset, nslkdd_dataset, Scale};
use seqdrift_eval::methods::MethodSpec;
use seqdrift_eval::runner::{run_method, RunOptions};
use seqdrift_linalg::{vector, Real};

fn centroid_of(rows: &[&[Real]]) -> Vec<Real> {
    let mut m = vec![0.0; rows[0].len()];
    for r in rows {
        vector::axpy(1.0, r, &mut m);
    }
    vector::scale(1.0 / rows.len() as Real, &mut m);
    m
}

fn main() {
    // ---- fan ----
    for scenario in [
        FanScenario::Sudden,
        FanScenario::Gradual,
        FanScenario::Reoccurring,
    ] {
        let d = fan_dataset(scenario, Scale::Quick);
        let pairs: Vec<(usize, &[Real])> =
            d.train.iter().map(|s| (s.label, s.x.as_slice())).collect();
        let trained = CentroidSet::from_labeled(d.classes, d.dim(), &pairs).unwrap();
        let theta = calibrate_drift_threshold(&trained, &pairs, DistanceMetric::L1, 1.0).unwrap();
        // Damaged-segment centroid distance from trained.
        let seg: Vec<&[Real]> = match scenario {
            FanScenario::Sudden => d.test[200..600].iter().map(|s| s.x.as_slice()).collect(),
            FanScenario::Gradual => d.test[600..].iter().map(|s| s.x.as_slice()).collect(),
            FanScenario::Reoccurring => d.test[120..170].iter().map(|s| s.x.as_slice()).collect(),
        };
        let seg_centroid = centroid_of(&seg);
        let diff = vector::dist_l1(&seg_centroid, trained.centroid(0).unwrap());
        println!(
            "{:?}: theta_drift = {theta:.2}, damaged diff = {diff:.2}, ratio = {:.2}",
            scenario,
            diff / theta
        );
        for w in [10usize, 50, 150] {
            let r = run_method(
                &MethodSpec::Proposed { window: w },
                &d,
                &RunOptions {
                    hidden: 22,
                    seed: 42,
                    accuracy_window: 100,
                },
            );
            println!(
                "  W={w}: delay {:?}, detections {:?}, fp {}",
                r.delay, r.detections, r.false_positives
            );
        }
    }

    // ---- nsl-kdd ----
    let d = nslkdd_dataset(Scale::Quick);
    let pairs: Vec<(usize, &[Real])> = d.train.iter().map(|s| (s.label, s.x.as_slice())).collect();
    let trained = CentroidSet::from_labeled(d.classes, d.dim(), &pairs).unwrap();
    let theta = calibrate_drift_threshold(&trained, &pairs, DistanceMetric::L1, 1.0).unwrap();
    let post: Vec<&[Real]> = d.test[d.drift_start..]
        .iter()
        .map(|s| s.x.as_slice())
        .collect();
    let post_centroid = centroid_of(&post);
    let d0 = vector::dist_l1(&post_centroid, trained.centroid(0).unwrap());
    let d1 = vector::dist_l1(&post_centroid, trained.centroid(1).unwrap());
    println!("nslkdd: theta = {theta:.2}, post-mix diff to c0 = {d0:.2}, to c1 = {d1:.2}");
    for spec in [
        MethodSpec::Proposed { window: 100 },
        MethodSpec::BaselineNoDetect,
        MethodSpec::QuantTree {
            batch: 160,
            bins: 32,
        },
        MethodSpec::Spll { batch: 160 },
        MethodSpec::Onlad { forgetting: 0.97 },
    ] {
        let r = run_method(
            &spec,
            &d,
            &RunOptions {
                hidden: 22,
                seed: 42,
                accuracy_window: 500,
            },
        );
        println!(
            "  {}: acc {:.1}%, delay {:?}, fp {}, detections {:?}",
            r.method,
            r.accuracy_pct(),
            r.delay,
            r.false_positives,
            &r.detections[..r.detections.len().min(6)]
        );
    }
}
