//! The five evaluated method combinations (§4.2) behind one interface.
//!
//! | # | Detector        | Discriminative model        | Approach |
//! |---|-----------------|-----------------------------|----------|
//! | 1 | proposed        | OS-ELM multi-instance       | active   |
//! | 2 | none            | OS-ELM multi-instance       | baseline |
//! | 3 | Quant Tree      | OS-ELM multi-instance       | active   |
//! | 4 | SPLL            | OS-ELM multi-instance       | active   |
//! | 5 | none            | ONLAD (OS-ELM + forgetting) | passive  |
//!
//! The batch detectors (3, 4) retrain on detection from the batch they have
//! buffered anyway: the batch is clustered with k-means (k = classes),
//! clusters are matched to the previous per-label centroids so label
//! identity survives, each instance re-initialises on its cluster, and the
//! detector refits on the same batch. This is the natural batch counterpart
//! of the proposed method's sequential reconstruction — both are
//! label-free.

use seqdrift_baselines::ar::{ArResidual, ArResidualConfig};
use seqdrift_baselines::kmeans::KMeans;
use seqdrift_baselines::quanttree::{QuantTree, QuantTreeConfig};
use seqdrift_baselines::spll::{Spll, SpllConfig};
use seqdrift_baselines::{BatchDriftDetector, BatchVerdict};
use seqdrift_core::pipeline::{DriftPipeline, PipelineConfig};
use seqdrift_core::reconstruct::ReconstructConfig;
use seqdrift_core::DetectorConfig;
use seqdrift_datasets::DriftDataset;
use seqdrift_linalg::{vector, Real, Rng};
use seqdrift_oselm::{ModelError, MultiInstanceModel, Onlad, OsElmConfig};

/// Per-sample output of any method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepOutput {
    /// Predicted class label.
    pub predicted_label: usize,
    /// True on the sample where a drift was flagged.
    pub drift_detected: bool,
}

/// Uniform interface over the five methods.
pub trait OnlineMethod {
    /// Display name (matches the paper's tables).
    fn name(&self) -> &str;

    /// Processes one test sample.
    fn process(&mut self, x: &[Real]) -> StepOutput;

    /// Detector-state scalars (Table 4; excludes the discriminative model,
    /// which is identical across methods).
    fn detector_memory_scalars(&self) -> usize;

    /// Indices (relative to the processed stream) where this method
    /// completed a model retraining, if any. Used by the accuracy metric to
    /// re-anchor label permutation per epoch.
    fn retraining_points(&self) -> &[usize];
}

/// Declarative method selector used by experiments and sweeps.
#[derive(Debug, Clone, PartialEq)]
pub enum MethodSpec {
    /// Proposed sequential detector with the given window size.
    Proposed {
        /// Window size `W`.
        window: usize,
    },
    /// OS-ELM with no drift handling at all.
    BaselineNoDetect,
    /// Quant Tree with the given batch size and bin count.
    QuantTree {
        /// Batch size `ν`.
        batch: usize,
        /// Histogram bin count `K`.
        bins: usize,
    },
    /// SPLL with the given batch size.
    Spll {
        /// Batch size `ν`.
        batch: usize,
    },
    /// ONLAD with the given forgetting rate.
    Onlad {
        /// Forgetting factor `α`.
        forgetting: Real,
    },
    /// AR(p)-residual detector on the model's anomaly score
    /// (arXiv 2203.04769): least-squares autoregressive fit on a rolling
    /// window, Page–Hinkley on the one-step-ahead residuals.
    ArResidual {
        /// Autoregressive order `p`.
        order: usize,
        /// Rolling fit window (also the retraining buffer length).
        window: usize,
    },
}

impl MethodSpec {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> String {
        match self {
            MethodSpec::Proposed { window } => format!("Proposed method (Window size = {window})"),
            MethodSpec::BaselineNoDetect => "Baseline (no concept drift detection)".into(),
            MethodSpec::QuantTree { .. } => "Quant Tree".into(),
            MethodSpec::Spll { .. } => "SPLL".into(),
            MethodSpec::Onlad { .. } => "ONLAD".into(),
            MethodSpec::ArResidual { order, .. } => format!("AR({order}) residual"),
        }
    }

    /// Instantiates the method on a dataset: trains the discriminative
    /// model on the dataset's initial training split and calibrates the
    /// detector. `hidden` is the OS-ELM hidden width (paper: 22);
    /// `seed` controls weight init and detector randomness.
    pub fn build(&self, dataset: &DriftDataset, hidden: usize, seed: u64) -> Box<dyn OnlineMethod> {
        let dim = dataset.dim();
        let classes = dataset.classes;
        let cfg = OsElmConfig::new(dim, hidden).with_seed(seed);
        let by_class = dataset.train_by_class();

        let make_model = |cfg: &OsElmConfig| -> MultiInstanceModel {
            let mut model =
                MultiInstanceModel::new(classes, cfg.clone()).expect("valid model config");
            for (label, bucket) in by_class.iter().enumerate() {
                model
                    .init_train_class(label, bucket)
                    .expect("initial training");
            }
            model
        };
        let train_rows: Vec<Vec<Real>> = dataset.train.iter().map(|s| s.x.clone()).collect();

        match self {
            MethodSpec::Proposed { window } => {
                let model = make_model(&cfg);
                let train_pairs: Vec<(usize, &[Real])> = dataset
                    .train
                    .iter()
                    .map(|s| (s.label, s.x.as_slice()))
                    .collect();
                let det = DetectorConfig::new(classes, dim).with_window(*window);
                // Reconstruction budget scales with how much data a concept
                // needs at this dimensionality; 200 samples suffices for
                // both of the paper's configurations.
                let pipe_cfg = PipelineConfig::new(det.clone())
                    .with_reconstruct(ReconstructConfig::new(200).with_search(20).with_update(50));
                let pipeline =
                    DriftPipeline::calibrate_with(model, det, &train_pairs, Some(pipe_cfg))
                        .expect("pipeline calibration");
                Box::new(ProposedMethod {
                    name: self.name(),
                    pipeline,
                    retraining_points: Vec::new(),
                    index: 0,
                })
            }
            MethodSpec::BaselineNoDetect => Box::new(BaselineMethod {
                name: self.name(),
                model: make_model(&cfg),
            }),
            MethodSpec::QuantTree { batch, bins } => {
                let qt_cfg = QuantTreeConfig {
                    bins: *bins,
                    batch_size: *batch,
                    alpha: 0.005,
                    mc_reps: 1500,
                    seed,
                };
                let qt = QuantTree::fit(&train_rows, &qt_cfg);
                Box::new(BatchMethod {
                    name: self.name(),
                    model: make_model(&cfg),
                    detector: BatchDetectorKind::QuantTree(qt),
                    buffer: Vec::with_capacity(*batch),
                    batch: *batch,
                    trained_centroids: class_centroids(dataset),
                    retraining_points: Vec::new(),
                    index: 0,
                    rng: Rng::seed_from(seed ^ 0xBA7C4),
                })
            }
            MethodSpec::Spll { batch } => {
                let spll_cfg = SpllConfig {
                    clusters: (classes + 1).max(3),
                    batch_size: *batch,
                    z: 4.0,
                    max_kmeans_iter: 100,
                    seed,
                };
                let spll = Spll::fit(&train_rows, &spll_cfg);
                Box::new(BatchMethod {
                    name: self.name(),
                    model: make_model(&cfg),
                    detector: BatchDetectorKind::Spll(spll),
                    buffer: Vec::with_capacity(*batch),
                    batch: *batch,
                    trained_centroids: class_centroids(dataset),
                    retraining_points: Vec::new(),
                    index: 0,
                    rng: Rng::seed_from(seed ^ 0x5B11),
                })
            }
            MethodSpec::Onlad { forgetting } => {
                let mut onlad = Onlad::new(classes, cfg, *forgetting).expect("valid onlad config");
                for (label, bucket) in by_class.iter().enumerate() {
                    onlad
                        .init_train_class(label, bucket)
                        .expect("initial training");
                }
                Box::new(OnladMethod {
                    name: self.name(),
                    onlad,
                })
            }
            MethodSpec::ArResidual { order, window } => {
                let mut model = make_model(&cfg);
                let mut detector = ArResidual::new(
                    ArResidualConfig::new(*order, *window).with_thresholds(0.01, 2.0),
                );
                // Warm the residual model on the training split's anomaly
                // scores so the stream starts with a calibrated baseline.
                for x in &train_rows {
                    let p = model.predict(x).expect("prediction");
                    detector.push(p.score);
                }
                Box::new(ArMethod {
                    name: self.name(),
                    model,
                    detector,
                    buffer: Vec::with_capacity(*window),
                    window: *window,
                    trained_centroids: class_centroids(dataset),
                    retraining_points: Vec::new(),
                    index: 0,
                    rng: Rng::seed_from(seed ^ 0xA12),
                })
            }
        }
    }
}

/// Per-label training centroids (used for cluster-to-label matching on
/// batch retraining).
fn class_centroids(dataset: &DriftDataset) -> Vec<Vec<Real>> {
    let dim = dataset.dim();
    let mut sums = vec![vec![0.0; dim]; dataset.classes];
    let mut counts = vec![0usize; dataset.classes];
    for s in &dataset.train {
        vector::axpy(1.0, &s.x, &mut sums[s.label]);
        counts[s.label] += 1;
    }
    for (sum, &n) in sums.iter_mut().zip(counts.iter()) {
        if n > 0 {
            vector::scale(1.0 / n as Real, sum);
        }
    }
    sums
}

// ---------------------------------------------------------------------------
// Method 1: proposed.

struct ProposedMethod {
    name: String,
    pipeline: DriftPipeline,
    retraining_points: Vec<usize>,
    index: usize,
}

impl OnlineMethod for ProposedMethod {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, x: &[Real]) -> StepOutput {
        let was_reconstructing = self.pipeline.is_reconstructing();
        let out = self.pipeline.process(x).expect("pipeline step");
        if was_reconstructing && !self.pipeline.is_reconstructing() {
            self.retraining_points.push(self.index);
        }
        self.index += 1;
        StepOutput {
            predicted_label: out.predicted_label.expect("pipeline always predicts"),
            drift_detected: out.drift_detected,
        }
    }

    fn detector_memory_scalars(&self) -> usize {
        self.pipeline.detector_memory_scalars()
    }

    fn retraining_points(&self) -> &[usize] {
        &self.retraining_points
    }
}

// ---------------------------------------------------------------------------
// Method 2: baseline without detection.

struct BaselineMethod {
    name: String,
    model: MultiInstanceModel,
}

impl OnlineMethod for BaselineMethod {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, x: &[Real]) -> StepOutput {
        let p = self.model.predict(x).expect("prediction");
        StepOutput {
            predicted_label: p.label,
            drift_detected: false,
        }
    }

    fn detector_memory_scalars(&self) -> usize {
        0
    }

    fn retraining_points(&self) -> &[usize] {
        &[]
    }
}

// ---------------------------------------------------------------------------
// Methods 3 and 4: batch detectors + OS-ELM.

enum BatchDetectorKind {
    QuantTree(QuantTree),
    Spll(Spll),
}

impl BatchDetectorKind {
    fn push(&mut self, x: &[Real]) -> BatchVerdict {
        match self {
            BatchDetectorKind::QuantTree(qt) => qt.push(x),
            BatchDetectorKind::Spll(s) => s.push(x),
        }
    }

    fn memory_scalars(&self) -> usize {
        match self {
            BatchDetectorKind::QuantTree(qt) => qt.memory_scalars(),
            BatchDetectorKind::Spll(s) => s.memory_scalars(),
        }
    }

    fn refit(&mut self, batch: &[Vec<Real>]) {
        match self {
            // Partition rebuild only; the threshold was precomputed at fit
            // time (distribution-free lookup-table style).
            BatchDetectorKind::QuantTree(qt) => qt.refit_partition(batch),
            // SPLL slides its reference window onto every completed batch
            // inside `push` — on a drift verdict it has already adapted.
            BatchDetectorKind::Spll(..) => {}
        }
    }
}

struct BatchMethod {
    name: String,
    model: MultiInstanceModel,
    detector: BatchDetectorKind,
    /// Sliding copy of the current batch (the data the detector itself has
    /// buffered; kept here so retraining can reuse it).
    buffer: Vec<Vec<Real>>,
    batch: usize,
    trained_centroids: Vec<Vec<Real>>,
    retraining_points: Vec<usize>,
    index: usize,
    rng: Rng,
}

impl BatchMethod {
    /// Batch retraining on detection: cluster the buffered batch, match
    /// clusters to the previous label centroids (minimum total L2 over
    /// permutations for small C, greedy otherwise), re-initialise each
    /// instance, refit the detector.
    fn retrain(&mut self) {
        let classes = self.model.classes();
        let km = KMeans::fit(&self.buffer, classes, 100, &mut self.rng);
        let mapping = match_clusters(&km.centroids, &self.trained_centroids);
        // Group batch samples per mapped label.
        let mut buckets: Vec<Vec<Vec<Real>>> = vec![Vec::new(); classes];
        for (x, &cluster) in self.buffer.iter().zip(km.assignments.iter()) {
            buckets[mapping[cluster]].push(x.clone());
        }
        for (label, bucket) in buckets.iter().enumerate() {
            if bucket.len() >= 4 {
                self.model
                    .init_train_class(label, bucket)
                    .expect("batch retraining");
                self.trained_centroids[label] = mean_of(bucket);
            }
            // A label whose cluster collapsed keeps its old instance — the
            // old concept may simply be absent from this batch.
        }
        self.detector.refit(&self.buffer);
        self.retraining_points.push(self.index);
    }
}

impl OnlineMethod for BatchMethod {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, x: &[Real]) -> StepOutput {
        let p = self.model.predict(x).expect("prediction");
        self.buffer.push(x.to_vec());
        if self.buffer.len() > self.batch {
            self.buffer.remove(0);
        }
        let verdict = self.detector.push(x);
        let drift = verdict == BatchVerdict::Drift;
        if drift {
            self.retrain();
            self.buffer.clear();
        }
        self.index += 1;
        StepOutput {
            predicted_label: p.label,
            drift_detected: drift,
        }
    }

    fn detector_memory_scalars(&self) -> usize {
        self.detector.memory_scalars()
    }

    fn retraining_points(&self) -> &[usize] {
        &self.retraining_points
    }
}

fn mean_of(rows: &[Vec<Real>]) -> Vec<Real> {
    let mut m = vec![0.0; rows[0].len()];
    for r in rows {
        vector::axpy(1.0, r, &mut m);
    }
    vector::scale(1.0 / rows.len() as Real, &mut m);
    m
}

/// Maps cluster index -> label index. For C <= 4 an exact minimum-cost
/// permutation; greedy nearest otherwise.
fn match_clusters(clusters: &[Vec<Real>], labels: &[Vec<Real>]) -> Vec<usize> {
    let c = clusters.len();
    debug_assert_eq!(c, labels.len());
    if c <= 4 {
        let mut best: Option<(Real, Vec<usize>)> = None;
        let mut perm: Vec<usize> = (0..c).collect();
        permute(&mut perm, 0, &mut |p| {
            let cost: Real = p
                .iter()
                .enumerate()
                .map(|(cluster, &label)| vector::dist_l2_sq(&clusters[cluster], &labels[label]))
                .sum();
            if best.as_ref().is_none_or(|(bc, _)| cost < *bc) {
                best = Some((cost, p.to_vec()));
            }
        });
        best.expect("at least one permutation").1
    } else {
        // Greedy: clusters claim their nearest unclaimed label.
        let mut mapping = vec![usize::MAX; c];
        let mut taken = vec![false; c];
        for (cluster, cc) in clusters.iter().enumerate() {
            let mut best = None;
            let mut best_d = Real::INFINITY;
            for (label, lc) in labels.iter().enumerate() {
                if taken[label] {
                    continue;
                }
                let d = vector::dist_l2_sq(cc, lc);
                if d < best_d {
                    best_d = d;
                    best = Some(label);
                }
            }
            let label = best.expect("labels remain");
            mapping[cluster] = label;
            taken[label] = true;
        }
        mapping
    }
}

fn permute(items: &mut Vec<usize>, k: usize, visit: &mut impl FnMut(&[usize])) {
    if k == items.len() {
        visit(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, visit);
        items.swap(k, i);
    }
}

// ---------------------------------------------------------------------------
// Extension method: AR(p)-residual detector on the anomaly score.

struct ArMethod {
    name: String,
    model: MultiInstanceModel,
    detector: ArResidual,
    /// Rolling copy of the last `window` samples, reused for label-free
    /// retraining on detection (same recipe as the batch methods).
    buffer: Vec<Vec<Real>>,
    window: usize,
    trained_centroids: Vec<Vec<Real>>,
    retraining_points: Vec<usize>,
    index: usize,
    rng: Rng,
}

impl ArMethod {
    fn retrain(&mut self) {
        let classes = self.model.classes();
        if self.buffer.len() < 4 * classes {
            return;
        }
        let km = KMeans::fit(&self.buffer, classes, 100, &mut self.rng);
        let mapping = match_clusters(&km.centroids, &self.trained_centroids);
        let mut buckets: Vec<Vec<Vec<Real>>> = vec![Vec::new(); classes];
        for (x, &cluster) in self.buffer.iter().zip(km.assignments.iter()) {
            buckets[mapping[cluster]].push(x.clone());
        }
        for (label, bucket) in buckets.iter().enumerate() {
            if bucket.len() >= 4 {
                self.model
                    .init_train_class(label, bucket)
                    .expect("AR retraining");
                self.trained_centroids[label] = mean_of(bucket);
            }
        }
        self.retraining_points.push(self.index);
    }
}

impl OnlineMethod for ArMethod {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, x: &[Real]) -> StepOutput {
        let p = self.model.predict(x).expect("prediction");
        self.buffer.push(x.to_vec());
        if self.buffer.len() > self.window {
            self.buffer.remove(0);
        }
        let drift = self.detector.push(p.score);
        if drift {
            self.retrain();
            self.buffer.clear();
            self.detector.reset();
        }
        self.index += 1;
        StepOutput {
            predicted_label: p.label,
            drift_detected: drift,
        }
    }

    fn detector_memory_scalars(&self) -> usize {
        // The residual model's own state plus the retraining buffer it
        // obliges us to keep (charged the same way the batch methods are
        // charged for their batch).
        self.detector.memory_scalars() + self.window * self.trained_centroids[0].len()
    }

    fn retraining_points(&self) -> &[usize] {
        &self.retraining_points
    }
}

// ---------------------------------------------------------------------------
// Method 5: ONLAD (passive).

struct OnladMethod {
    name: String,
    onlad: Onlad,
}

impl OnlineMethod for OnladMethod {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, x: &[Real]) -> StepOutput {
        // Forgetting-factor updates are transactional: on a hostile sample
        // the OS-ELM guard rejects and rolls back, so the prediction is
        // still valid — re-read it from the untouched model and move on.
        let label = match self.onlad.process(x) {
            Ok(p) => p.label,
            Err(ModelError::RejectedUpdate(_)) => {
                self.onlad
                    .model_mut()
                    .predict(x)
                    .expect("onlad predict")
                    .label
            }
            Err(e) => panic!("onlad step: {e:?}"),
        };
        StepOutput {
            predicted_label: label,
            drift_detected: false,
        }
    }

    fn detector_memory_scalars(&self) -> usize {
        0
    }

    fn retraining_points(&self) -> &[usize] {
        &[]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdrift_datasets::nslkdd::{self, NslKddConfig};

    fn tiny_dataset() -> DriftDataset {
        nslkdd::generate(&NslKddConfig {
            n_train: 200,
            n_test: 600,
            drift_point: 300,
            ..NslKddConfig::default()
        })
    }

    #[test]
    fn match_clusters_identity_and_swap() {
        let a = vec![vec![0.0, 0.0], vec![1.0, 1.0]];
        let b_same = vec![vec![0.1, 0.0], vec![0.9, 1.0]];
        assert_eq!(match_clusters(&a, &b_same), vec![0, 1]);
        let b_swapped = vec![vec![0.9, 1.0], vec![0.1, 0.0]];
        assert_eq!(match_clusters(&a, &b_swapped), vec![1, 0]);
    }

    #[test]
    fn match_clusters_greedy_path() {
        // 5 clusters exercises the greedy branch; identical layouts map to
        // the identity.
        let pts: Vec<Vec<Real>> = (0..5).map(|i| vec![i as Real * 2.0]).collect();
        assert_eq!(match_clusters(&pts, &pts), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn all_specs_build_and_step() {
        let d = tiny_dataset();
        let specs = [
            MethodSpec::Proposed { window: 50 },
            MethodSpec::BaselineNoDetect,
            MethodSpec::QuantTree { batch: 60, bins: 8 },
            MethodSpec::Spll { batch: 60 },
            MethodSpec::Onlad { forgetting: 0.97 },
            MethodSpec::ArResidual {
                order: 3,
                window: 60,
            },
        ];
        for spec in &specs {
            let mut m = spec.build(&d, 10, 42);
            for s in d.test.iter().take(70) {
                let out = m.process(&s.x);
                assert!(out.predicted_label < d.classes, "{}", m.name());
            }
        }
    }

    #[test]
    fn baseline_and_onlad_report_zero_detector_memory() {
        let d = tiny_dataset();
        assert_eq!(
            MethodSpec::BaselineNoDetect
                .build(&d, 8, 1)
                .detector_memory_scalars(),
            0
        );
        assert_eq!(
            MethodSpec::Onlad { forgetting: 0.97 }
                .build(&d, 8, 1)
                .detector_memory_scalars(),
            0
        );
    }

    #[test]
    fn batch_methods_memory_dominated_by_batch() {
        let d = tiny_dataset();
        let qt = MethodSpec::QuantTree { batch: 60, bins: 8 }.build(&d, 8, 1);
        let spll = MethodSpec::Spll { batch: 60 }.build(&d, 8, 1);
        let proposed = MethodSpec::Proposed { window: 50 }.build(&d, 8, 1);
        assert!(qt.detector_memory_scalars() >= 60 * 38);
        assert!(spll.detector_memory_scalars() >= 2 * 60 * 38);
        // The proposed detector keeps only centroid sets (O(classes x dim));
        // at this toy batch size (60) the gap is ~10x, at the paper's 235+
        // it is the 88.9-96.4% of Table 4.
        assert!(proposed.detector_memory_scalars() < qt.detector_memory_scalars() / 5);
    }

    #[test]
    fn ar_method_detects_and_retrains_on_sudden_drift() {
        let d = tiny_dataset();
        let mut m = MethodSpec::ArResidual {
            order: 3,
            window: 100,
        }
        .build(&d, 10, 7);
        let mut detected_at = None;
        for (i, s) in d.test.iter().enumerate() {
            if m.process(&s.x).drift_detected && detected_at.is_none() {
                detected_at = Some(i);
            }
        }
        let at = detected_at.expect("AR method never detected the sudden drift");
        assert!(
            at >= d.drift_start,
            "false positive before drift: detected at {at}, drift at {}",
            d.drift_start
        );
        assert!(
            at < d.drift_start + 250,
            "detection too slow: {at} vs drift at {}",
            d.drift_start
        );
        assert!(
            !m.retraining_points().is_empty(),
            "detection did not trigger retraining"
        );
    }

    #[test]
    fn names_match_paper_tables() {
        assert_eq!(
            MethodSpec::Proposed { window: 100 }.name(),
            "Proposed method (Window size = 100)"
        );
        assert_eq!(
            MethodSpec::QuantTree { batch: 1, bins: 2 }.name(),
            "Quant Tree"
        );
        assert_eq!(MethodSpec::Spll { batch: 1 }.name(), "SPLL");
        assert_eq!(MethodSpec::Onlad { forgetting: 0.9 }.name(), "ONLAD");
    }
}
