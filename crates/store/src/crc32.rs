//! CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), implemented
//! in-repo so the workspace keeps its zero-external-dependency property.
//!
//! The table is computed once at first use; a 256-entry table-driven CRC
//! is fast enough for checkpoint-sized payloads (a few hundred kB at
//! most) and byte-for-byte compatible with zlib's `crc32()`, so frames
//! can be checked by standard tooling off-device.

use std::sync::OnceLock;

/// Reflected CRC-32 polynomial (IEEE 802.3 / zlib / PNG).
const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        let mut i = 0usize;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            t[i] = crc;
            i += 1;
        }
        t
    })
}

/// CRC-32 of `data` (init `0xFFFF_FFFF`, final xor `0xFFFF_FFFF`).
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut crc = u32::MAX;
    for &b in data {
        crc = (crc >> 8) ^ t[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Incremental CRC-32 for callers that hash in chunks.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// Fresh hasher.
    pub fn new() -> Self {
        Crc32 { state: u32::MAX }
    }

    /// Feeds more bytes.
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        for &b in data {
            self.state = (self.state >> 8) ^ t[((self.state ^ b as u32) & 0xFF) as usize];
        }
    }

    /// Finishes and returns the checksum.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard zlib/PNG check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0u16..1024).map(|i| (i % 251) as u8).collect();
        let mut h = Crc32::new();
        for chunk in data.chunks(13) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), crc32(&data));
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let data: Vec<u8> = (0u16..256).map(|i| i as u8).collect();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut bad = data.clone();
                bad[byte] ^= 1 << bit;
                assert_ne!(crc32(&bad), base, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
