//! Crash-safe durable state store for seqdrift pipelines and fleets.
//!
//! Edge deployments lose power mid-write: a checkpoint `std::fs::write`
//! interrupted at the wrong instant leaves a torn file that silently
//! destroys the model it was supposed to protect. This crate makes the
//! persistence layer power-loss-tolerant with nothing beyond `std`:
//!
//! - **Self-validating frames** ([`frame`]): every checkpoint is wrapped
//!   in a magic + version + generation + length envelope sealed by a
//!   CRC-32 over header and payload, so torn writes, truncation and bit
//!   rot are detected, never decoded.
//! - **Atomic writes** ([`atomic_write`]): temp file + fsync + rename +
//!   directory fsync. A crash at any instant leaves the previous file
//!   intact.
//! - **Generational slots** ([`Store`]): each session keeps the newest N
//!   checkpoint generations; recovery falls back to the newest
//!   generation that both frames *and* decodes, so the worst case after
//!   any crash is losing one checkpoint interval — never the model.
//! - **Durable quarantine ledger**: the fleet supervisor's quarantine
//!   decisions persist in a store-level manifest (written through the
//!   same machinery), so a poisoned session stays quarantined across
//!   process restarts.
//! - **Injectable filesystem** ([`vfs`]): every disk operation goes
//!   through the [`Vfs`] trait — [`RealVfs`] in production, the seeded
//!   deterministic [`FaultVfs`] under storage-chaos tests — so ENOSPC,
//!   EIO, lying fsyncs and rename failures are reproducible from a seed.
//!
//! The CRC-32 implementation ([`crc32`]) is in-repo and zlib-compatible,
//! keeping the workspace dependency-free.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(missing_docs)]

pub mod crc32;
pub mod frame;
mod store;
pub mod vfs;

pub use frame::{FrameError, CRC_LEN, FRAME_MAGIC, HEADER_LEN, STORE_VERSION};
pub use store::{
    atomic_write, atomic_write_with, LedgerEntry, RecoveryReport, ReputationEntry, Store,
    StoreConfig, StoreError,
};
pub use vfs::{FaultPlan, FaultVfs, RealVfs, Vfs};
